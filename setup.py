"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs cannot build; this shim lets ``pip install -e .``
fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
