"""Interconnect timing, in-flight tracking, and driver memory footprints."""

import pytest

from repro.memory.region import RegionKind
from repro.net import INTERCONNECTS, make_interconnect
from repro.net.fabrics import MB, AriesInterconnect, ShmemTransport, TcpInterconnect
from repro.simtime import Engine


@pytest.fixture
def engine():
    return Engine()


def test_registry_contains_all_fabrics():
    assert set(INTERCONNECTS) == {"aries", "infiniband", "omnipath", "tcp", "shmem"}


def test_make_interconnect_unknown_name(engine):
    with pytest.raises(ValueError, match="unknown interconnect"):
        make_interconnect("myrinet", engine)


def test_transfer_time_alpha_beta(engine):
    net = make_interconnect("tcp", engine)
    assert net.transfer_time(0) == pytest.approx(net.alpha)
    big = net.transfer_time(12_000_000)
    assert big == pytest.approx(net.alpha + 12_000_000 / net.beta)


def test_fabric_ordering_small_messages(engine):
    """Aries < InfiniBand < TCP on latency, as on the real hardware."""
    aries = make_interconnect("aries", engine)
    ib = make_interconnect("infiniband", engine)
    tcp = make_interconnect("tcp", engine)
    for size in (0, 8, 1024):
        assert aries.transfer_time(size) < ib.transfer_time(size) < tcp.transfer_time(size)


def test_transmit_delivers_at_model_time(engine):
    net = make_interconnect("aries", engine)
    msg, done = net.transmit(0, 1, size=1 << 20, payload=b"x")
    assert net.in_flight_count == 1
    assert net.in_flight_bytes == 1 << 20
    engine.run()
    assert done.done
    assert done.value is msg
    assert engine.now == pytest.approx(net.transfer_time(1 << 20))
    assert net.in_flight_count == 0


def test_transmit_statistics(engine):
    net = make_interconnect("tcp", engine)
    net.transmit(0, 1, size=100)
    net.transmit(1, 0, size=200)
    assert net.messages_sent == 2
    assert net.bytes_sent == 300


def test_in_flight_ordering_preserved_per_size(engine):
    net = make_interconnect("tcp", engine)
    arrivals = []
    _, d1 = net.transmit(0, 1, size=10)
    _, d2 = net.transmit(0, 1, size=10)
    d1.on_done(lambda m: arrivals.append("first"))
    d2.on_done(lambda m: arrivals.append("second"))
    engine.run()
    assert arrivals == ["first", "second"]


class TestDriverRegions:
    def test_aries_shmem_growth_matches_paper(self, engine):
        """§3.2.2: ~2 MB at 2 nodes growing to ~40 MB at 64 nodes."""
        net = AriesInterconnect(engine)

        def shmem(n):
            return next(r.size for r in net.driver_regions(n, 32)
                        if r.kind is RegionKind.SHMEM)

        assert shmem(2) == pytest.approx(2 * MB, rel=0.3)
        assert shmem(64) == pytest.approx(40 * MB, rel=0.1)
        assert shmem(64) > shmem(16) > shmem(4)

    def test_shmem_transport_scales_with_ranks_per_node(self, engine):
        net = ShmemTransport(engine)
        small = net.driver_regions(1, 2)[0].size
        large = net.driver_regions(1, 32)[0].size
        assert large == 16 * small

    def test_tcp_has_no_pinned_memory(self, engine):
        kinds = {r.kind for r in TcpInterconnect(engine).driver_regions(4, 32)}
        assert RegionKind.PINNED not in kinds

    def test_infiniband_has_pinned_memory(self, engine):
        net = make_interconnect("infiniband", engine)
        kinds = {r.kind for r in net.driver_regions(4, 32)}
        assert RegionKind.PINNED in kinds
