"""Exhaustive exploration of the topological-sort protocol model.

The differential requirement (docs/protocols.md): on the same 3-rank
collective scenario, BOTH protocol models must explore deadlock-free state
spaces, each under its own write-ordering invariant — write-after-local-drain
for topo, write-after-global-drain for alg2.
"""

import pytest

from repro.modelcheck import ModelChecker, TopoSortModel, TwoPhaseModel


@pytest.mark.parametrize("n", [2, 3])
def test_toposort_model_holds(n):
    """Exhaustive check: invariants, deadlock-freedom, liveness."""
    res = ModelChecker(TopoSortModel(n_ranks=n)).run()
    assert res.ok, f"{res}\n" + "\n".join(res.trace)
    assert res.states_explored > 100


def test_both_protocols_deadlock_free_three_ranks():
    """The differential scenario: 3 ranks, one collective, both engines.

    Deadlock-freedom AND liveness (every reachable state can still reach
    completion) must hold for both state spaces — the topo model's ring of
    p2p sends is a dependency cycle, so this exercises the bounded-drain
    fallback path, not just the happy topological order.
    """
    topo = ModelChecker(TopoSortModel(n_ranks=3)).run(check_liveness=True)
    alg2 = ModelChecker(TwoPhaseModel(n_ranks=3, n_iters=1)).run(
        check_liveness=True
    )
    assert topo.ok, f"{topo}\n" + "\n".join(topo.trace)
    assert alg2.ok, f"{alg2}\n" + "\n".join(alg2.trace)
    assert topo.failure is None and alg2.failure is None


def test_topo_invariants_are_per_protocol():
    """Each model registers its own write-ordering invariant."""
    topo_inv = TopoSortModel(n_ranks=2).invariants()
    alg2_inv = TwoPhaseModel(n_ranks=2).invariants()
    assert "write-after-local-drain" in topo_inv
    assert "no-write-in-phase-2" in topo_inv
    assert "write-after-global-drain" in alg2_inv
    # the invariants are protocol-specific, not shared
    assert "write-after-global-drain" not in topo_inv
    assert "write-after-local-drain" not in alg2_inv


def test_topo_simulation_mode_scales():
    """Random-walk mode covers a rank count beyond exhaustive reach."""
    res = ModelChecker(TopoSortModel(n_ranks=4)).simulate(
        n_walks=50, seed=0
    )
    assert res.ok
    assert res.states_explored > 500
