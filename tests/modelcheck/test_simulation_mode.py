"""Random-walk (TLC simulation mode) checking at scales beyond exhaustion."""


from repro.modelcheck import ModelChecker, NaiveModel, TwoPhaseModel
from repro.modelcheck.checker import Model


def test_simulation_passes_for_two_phase_n5():
    res = ModelChecker(TwoPhaseModel(n_ranks=5, n_iters=1)).simulate(
        n_walks=60, seed=7
    )
    assert res.ok
    assert res.states_explored > 1000


def test_simulation_passes_for_two_phase_n6():
    res = ModelChecker(TwoPhaseModel(n_ranks=6, n_iters=1)).simulate(
        n_walks=25, seed=11
    )
    assert res.ok


def test_simulation_finds_naive_violation():
    res = ModelChecker(NaiveModel(n_ranks=3, n_iters=2)).simulate(
        n_walks=300, seed=3
    )
    assert not res.ok
    assert res.failure == "no-rank-in-phase2-at-ckpt"
    assert res.trace  # a concrete counterexample path


def test_simulation_deterministic_per_seed():
    a = ModelChecker(TwoPhaseModel(3, 1)).simulate(n_walks=10, seed=5)
    b = ModelChecker(TwoPhaseModel(3, 1)).simulate(n_walks=10, seed=5)
    assert (a.states_explored, a.transitions) == (b.states_explored, b.transitions)


def test_simulation_detects_deadlock():
    class DeadEnd(Model):
        def initial_states(self):
            return [0]

        def successors(self, s):
            if s == 0:
                yield ("go", 1)

        def is_terminal(self, s):
            return False

    res = ModelChecker(DeadEnd()).simulate(n_walks=1)
    assert not res.ok
    assert res.failure == "deadlock"
