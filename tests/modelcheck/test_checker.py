"""The explicit-state checker itself, on tiny hand-built models."""

import pytest

from repro.modelcheck.checker import Model, ModelChecker


class LineModel(Model):
    """0 -> 1 -> ... -> n (terminal)."""

    def __init__(self, n, bad=None):
        self.n = n
        self.bad = bad

    def initial_states(self):
        return [0]

    def successors(self, s):
        if s < self.n:
            yield (f"step{s}", s + 1)

    def invariants(self):
        if self.bad is None:
            return {}
        return {"not-bad": lambda s: s != self.bad}

    def is_terminal(self, s):
        return s == self.n


class ForkModel(Model):
    """0 branches to a terminal and to a dead end."""

    def initial_states(self):
        return ["start"]

    def successors(self, s):
        if s == "start":
            yield ("good", "end")
            yield ("bad", "stuck")

    def is_terminal(self, s):
        return s == "end"


class CycleModel(Model):
    """A cycle that can always escape to a terminal."""

    def initial_states(self):
        return [0]

    def successors(self, s):
        if s == 0:
            yield ("loop", 1)
            yield ("exit", "end")
        elif s == 1:
            yield ("back", 0)

    def is_terminal(self, s):
        return s == "end"


def test_clean_line_passes():
    res = ModelChecker(LineModel(5)).run()
    assert res.ok
    assert res.states_explored == 6
    assert res.diameter == 5


def test_invariant_violation_with_shortest_trace():
    res = ModelChecker(LineModel(5, bad=3)).run()
    assert not res.ok
    assert res.failure == "not-bad"
    assert res.trace == ["step0", "step1", "step2"]
    assert res.failing_state == 3


def test_deadlock_detection():
    res = ModelChecker(ForkModel()).run(check_liveness=False)
    assert not res.ok
    assert res.failure == "deadlock"
    assert res.trace == ["bad"]


def test_liveness_passes_with_escapeable_cycle():
    res = ModelChecker(CycleModel()).run(check_liveness=True)
    assert res.ok


def test_liveness_failure():
    class Trap(Model):
        def initial_states(self):
            return [0]

        def successors(self, s):
            if s == 0:
                yield ("go", "end")
                yield ("trap", 1)
            elif s == 1:
                yield ("spin", 2)
            elif s == 2:
                yield ("spin", 1)

        def is_terminal(self, s):
            return s == "end"

    res = ModelChecker(Trap()).run(check_liveness=True)
    assert not res.ok
    assert res.failure == "liveness"


def test_max_states_guard():
    class Infinite(Model):
        def initial_states(self):
            return [0]

        def successors(self, s):
            yield ("inc", s + 1)

        def is_terminal(self, s):
            return False

    with pytest.raises(RuntimeError, match="state space"):
        ModelChecker(Infinite(), max_states=100).run()


def test_initial_state_invariant_checked():
    res = ModelChecker(LineModel(3, bad=0)).run()
    assert not res.ok
    assert res.trace == []
