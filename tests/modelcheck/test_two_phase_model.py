"""§2.6 reproduced: exhaustive verification of the two-phase protocol."""

import pytest

from repro.modelcheck import ModelChecker, NaiveModel, TwoPhaseModel


@pytest.mark.parametrize("n,k", [(2, 1), (2, 2), (2, 3), (3, 1), (3, 2)])
def test_two_phase_protocol_verified(n, k):
    """Safety (no rank in phase 2 at do-ckpt), deadlock freedom, and
    liveness hold over the full state space."""
    res = ModelChecker(TwoPhaseModel(n_ranks=n, n_iters=k)).run()
    assert res.ok, f"{res}\ntrace: {res.trace}"
    assert res.states_explored > 100


def test_two_phase_protocol_four_ranks():
    res = ModelChecker(TwoPhaseModel(n_ranks=4, n_iters=1)).run()
    assert res.ok
    assert res.states_explored > 10_000


def test_naive_protocol_violates_invariant():
    """Without the two-phase wrapper, the checker finds a checkpoint that
    lands inside a collective — the reason Algorithm 2 exists."""
    res = ModelChecker(NaiveModel(n_ranks=2, n_iters=1)).run(check_liveness=False)
    assert not res.ok
    assert res.failure == "no-rank-in-phase2-at-ckpt"
    assert any("enter-coll" in a for a in res.trace)
    assert res.trace[-1].endswith("recv-D-freeze")


def test_naive_violation_scales(n=3):
    res = ModelChecker(NaiveModel(n_ranks=n, n_iters=2)).run(check_liveness=False)
    assert not res.ok


def test_state_space_grows_with_ranks():
    small = ModelChecker(TwoPhaseModel(2, 1)).run()
    large = ModelChecker(TwoPhaseModel(3, 1)).run()
    assert large.states_explored > 3 * small.states_explored


def test_counterexample_trace_is_replayable():
    """The failure trace of the naive model is a genuine path: replay it
    action by action from the initial state."""
    model = NaiveModel(2, 1)
    res = ModelChecker(model).run(check_liveness=False)
    state = next(iter(model.initial_states()))
    for action in res.trace:
        options = dict(model.successors(state))
        assert action in options, f"action {action} not enabled"
        state = options[action]
    assert not model.invariants()["no-rank-in-phase2-at-ckpt"](state)
