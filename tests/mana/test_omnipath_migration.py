"""Migration onto the Omni-Path fabric (the interconnect DMTCP could only
partially support — under MANA it is just another discardable lower half)."""

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart

from tests.mana.conftest import launch_small, ring_factory, expected_ring_acc


def test_restart_onto_omnipath():
    src = make_cluster("src", 2, interconnect="aries")
    factory = ring_factory(n_steps=5)
    job = launch_small(src, factory)
    ckpt, _ = job.checkpoint_at(0.45)

    dst = make_cluster("opa", 4, interconnect="omnipath")
    job2 = restart(ckpt, dst, factory, ranks_per_node=1, mpi="intelmpi")
    job2.run_to_completion()
    assert job2.world.fabric.name == "omnipath"
    for r, s in enumerate(job2.states):
        assert s["acc"] == expected_ring_acc(r, 4, 5)


def test_omnipath_lower_half_regions():
    src = make_cluster("opa", 2, interconnect="omnipath")
    job = launch_mana(src, ring_factory(3), n_ranks=4, ranks_per_node=2,
                      app_mem_bytes=1 << 20).start()
    names = {r.name for r in job.runtimes[0].proc.space.regions()}
    assert "opa-psm2-mmio" in names
    assert "opa-pinned-eager" in names
    job.run_to_completion()
