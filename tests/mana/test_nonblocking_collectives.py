"""§4.2 extension: nonblocking collectives via the Ibarrier two-phase
wrapper, including checkpoint/restart with posted-but-unwaited requests."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.virtualize import VirtualizationError
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq


def _init(s):
    s["x"] = np.array([float(s["rank"] + 1)])
    s["hist"] = []
    s["overlap_work"] = 0


def _post(s, api):
    return api.iallreduce(s["x"], SUM)


def _overlap(s):
    # compute overlapped with the in-flight collective — the whole point of
    # the nonblocking variant
    s["overlap_work"] += 1


def _wait(s, api):
    return api.wait(s["req"])


def _absorb(s):
    s["hist"].append(float(s["summed"][0]))
    s["x"] = s["x"] + 1.0


def iallreduce_factory(n_iters=4, overlap_cost=0.4):
    def factory(rank, size):
        return Program(Seq(
            Compute(_init),
            Loop(n_iters, Seq(
                Call(_post, store="req"),
                Compute(_overlap, cost=overlap_cost),
                Call(_wait, store="summed"),
                Compute(_absorb),
            )),
        ), name="iallreduce-app")

    return factory


@pytest.fixture
def cluster():
    return make_cluster("nbc", 2, interconnect="aries")


def run(job):
    job.run_to_completion()
    return job


def test_iallreduce_correct_results(cluster):
    job = launch_mana(cluster, iallreduce_factory(4), n_ranks=4,
                      ranks_per_node=2, app_mem_bytes=1 << 20).start()
    run(job)
    for s in job.states:
        assert s["hist"] == [10.0, 14.0, 18.0, 22.0]
        assert s["overlap_work"] == 4


def test_overlap_actually_overlaps(cluster):
    """With compute between post and wait, total time ~ max(compute, coll),
    not their sum (the rank makes progress while the barrier fills)."""

    def blocking_factory(rank, size):
        def coll(s, api):
            return api.allreduce(s["x"], SUM)

        return Program(Seq(
            Compute(_init),
            Loop(4, Seq(
                Compute(_overlap, cost=0.4),
                Call(coll, store="summed"),
                Compute(_absorb),
            )),
        ), name="blocking")

    nb = launch_mana(cluster, iallreduce_factory(4, overlap_cost=0.4),
                     n_ranks=4, ranks_per_node=2, app_mem_bytes=1 << 20).start()
    t_nb = nb.run_to_completion()
    bl = launch_mana(cluster, blocking_factory, n_ranks=4, ranks_per_node=2,
                     app_mem_bytes=1 << 20).start()
    t_bl = bl.run_to_completion()
    # Both are compute-bound here so times are close, but the nonblocking
    # variant must never be slower in this perfectly-overlappable pattern.
    assert t_nb <= t_bl * 1.01


def test_ibarrier_and_test(cluster):
    def factory(rank, size):
        def post(s, api):
            return api.ibarrier()

        def test_req(s, api):
            return api.test(s["req"])

        def wait_req(s, api):
            return api.wait(s["req"])

        return Program(Seq(
            Compute(_init),
            Call(post, store="req"),
            Call(test_req, store="flag_early"),
            Compute(lambda s: None, cost=0.3),
            Call(test_req, store="flag_late"),
            Call(wait_req, store="_done"),
        ), name="ibarrier-test")

    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=2,
                      app_mem_bytes=1 << 20).start()
    run(job)
    for s in job.states:
        assert s["flag_late"] is True or s["flag_late"] is np.True_


def test_wait_unknown_request_raises(cluster):
    def factory(rank, size):
        def bad(s, api):
            return api.wait(424242)

        return Program(Call(bad))

    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=2,
                      app_mem_bytes=1 << 20).start()
    with pytest.raises(VirtualizationError):
        job.engine.run()


class TestCheckpointWithOutstandingIColl:
    def test_checkpoint_between_post_and_wait(self, cluster):
        """Checkpoint cut while requests are posted but unwaited; restart
        re-posts the Ibarriers into the fresh lower half."""
        factory = iallreduce_factory(n_iters=5, overlap_cost=0.5)
        baseline = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                               app_mem_bytes=1 << 20).start()
        run(baseline)
        expected = [s["hist"] for s in baseline.states]

        job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                          app_mem_bytes=1 << 20).start()
        # 0.25 into a 0.5 s overlap window: requests posted, not waited
        ckpt, _ = job.checkpoint_at(0.25)
        assert any(rt.icolls for rt in job.runtimes), \
            "the checkpoint should capture outstanding nonblocking requests"

        dst = make_cluster("dst", 4, interconnect="tcp")
        job2 = restart(ckpt, dst, factory, mpi="openmpi", ranks_per_node=1)
        run(job2)
        assert [s["hist"] for s in job2.states] == expected

        # the original world continues too
        run(job)
        assert [s["hist"] for s in job.states] == expected

    @pytest.mark.parametrize("t_frac", [0.1, 0.4, 0.7, 0.9])
    def test_checkpoint_sweep_with_icolls(self, cluster, t_frac):
        factory = iallreduce_factory(n_iters=4, overlap_cost=0.3)
        baseline = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                               app_mem_bytes=1 << 20).start()
        run(baseline)
        total = baseline.engine.now
        expected = [s["hist"] for s in baseline.states]

        job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                          app_mem_bytes=1 << 20).start()
        ckpt, _ = job.checkpoint_at(total * t_frac)
        job2 = restart(ckpt, cluster, factory, ranks_per_node=2)
        run(job2)
        assert [s["hist"] for s in job2.states] == expected
