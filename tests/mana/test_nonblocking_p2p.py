"""Virtualized nonblocking p2p (isend/irecv/wait/waitall/test) under MANA,
including requests that straddle checkpoints and restarts."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.virtualize import VirtualizationError
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.simtime import Completion


def _resolved(api, value=None):
    done = Completion(api.rt.engine)
    done.resolve(value)
    return done


def ring_isend_factory(n_steps=4, skew=0.0):
    """Nonblocking ring: post isend+irecv, compute, then waitall."""

    def factory(rank, size):
        def init(s):
            s["v"] = float(s["rank"])
            s["log"] = []

        def cost(s):
            return 0.2 + skew * s["rank"]

        def post(s, api):
            right = (s["rank"] + 1) % s["size"]
            left = (s["rank"] - 1) % s["size"]
            sreq = api.isend(right, np.array([s["v"]]), tag=6)
            rreq = api.irecv(source=left, tag=6)
            return _resolved(api, (sreq, rreq))

        def wait_both(s, api):
            sreq, rreq = s["reqs"]
            return api.waitall([sreq, rreq])

        def absorb(s):
            _send_res, (data, _status) = s["done"]
            s["log"].append(float(data[0]))
            s["v"] += 10.0

        return Program(Seq(Compute(init), Loop(n_steps, Seq(
            Call(post, store="reqs"),
            Compute(lambda s: None, cost=cost, label="overlap"),
            Call(wait_both, store="done"),
            Compute(absorb),
        ))))

    return factory


@pytest.fixture
def cluster():
    return make_cluster("nbp2p", 2, interconnect="aries")


def launch(cluster, factory, n_ranks=4, **kw):
    return launch_mana(cluster, factory, n_ranks=n_ranks,
                       ranks_per_node=-(-n_ranks // 2),
                       app_mem_bytes=1 << 20, **kw).start()


def expected_log(rank, size, n_steps):
    out = []
    v = {r: float(r) for r in range(size)}
    for _ in range(n_steps):
        left = (rank - 1) % size
        out.append(v[left])
        v = {r: v[r] + 10.0 for r in range(size)}
    return out


def test_isend_irecv_waitall_results(cluster):
    job = launch(cluster, ring_isend_factory(4))
    job.run_to_completion()
    for r, s in enumerate(job.states):
        assert s["log"] == expected_log(r, 4, 4)


def test_requests_freed_after_wait(cluster):
    job = launch(cluster, ring_isend_factory(3))
    job.run_to_completion()
    assert all(not rt.vrequests for rt in job.runtimes)
    assert all(not rt.vreq_sites for rt in job.runtimes)


def test_wait_unknown_handle_raises(cluster):
    def factory(rank, size):
        def bad(s, api):
            return api.wait(987654)

        return Program(Call(bad))

    job = launch(cluster, factory, n_ranks=2)
    with pytest.raises(VirtualizationError):
        job.engine.run()


def test_p2p_test_reports_completion(cluster):
    def factory(rank, size):
        def post(s, api):
            peer = 1 - s["rank"]
            api.isend(peer, np.ones(1), tag=2)
            return _resolved(api, api.irecv(source=peer, tag=2))

        def probe(s, api):
            return api.test(s["rreq"])

        def wait_it(s, api):
            return api.wait(s["rreq"])

        return Program(Seq(
            Call(post, store="rreq"),
            Compute(lambda s: None, cost=0.2),
            Call(probe, store="flag"),
            Call(wait_it, store="_v"),
        ))

    job = launch(cluster, factory, n_ranks=2)
    job.run_to_completion()
    assert all(s["flag"] is True for s in job.states)


@pytest.mark.parametrize("t_frac", [0.08, 0.3, 0.55, 0.8])
def test_checkpoint_with_outstanding_requests(cluster, t_frac):
    """Checkpoints land between post and waitall: completed results must
    travel in the image; pending receives must re-post after restart; sends
    must never duplicate."""
    factory = ring_isend_factory(n_steps=5, skew=0.3)
    baseline = launch(cluster, factory)
    baseline.run_to_completion()
    total = baseline.engine.now
    expected = [s["log"] for s in baseline.states]

    job = launch(cluster, factory)
    ckpt, _ = job.checkpoint_at(total * t_frac)

    dst = make_cluster("dst", 4, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    assert [s["log"] for s in job2.states] == expected

    job.run_to_completion()
    assert [s["log"] for s in job.states] == expected


def test_image_carries_request_records(cluster):
    factory = ring_isend_factory(n_steps=3, skew=0.5)
    job = launch(cluster, factory)
    # catch rank 0 inside its overlap window: requests posted, not waited
    ckpt, _ = job.checkpoint_at(0.25)
    snapshots = [ckpt.image_for(r).restore_state() for r in range(4)]
    assert any(s["vrequests"] for s in snapshots)
    job.run_to_completion()
