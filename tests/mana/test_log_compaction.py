"""Checkpoint-time log compaction: O(live handles) restart, and the
replay-path hardening that rides along (docs/record_replay.md).

The tentpole property: a compacted image and a full image of the same
instant restart to *bit-identical* application state, while the compacted
one replays O(live handles) entries instead of O(call history).
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance.oracles import (
    check_handle_ledger,
    check_replay_consistency,
    state_fingerprint,
)
from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.checkpoint_image import CheckpointImage
from repro.mana.log_compaction import (
    check_collective_consistency,
    compact_log,
)
from repro.mana.record_replay import (
    LogEntry,
    RecordLog,
    ReplayEngine,
    ReplayError,
)
from repro.mana.virtualize import VCOMM_WORLD, HandleKind, VirtualHandleTable
from repro.mpilib import DOUBLE, SUM
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.simtime import Completion, Engine

WORLD4 = (0, 1, 2, 3)


def _entry(op, args, vid, kind=HandleKind.COMM, group=None):
    return LogEntry(op, tuple(args), vid, kind, group)


def _no_live():
    return {kind: set() for kind in HandleKind}


# --------------------------------------------------------- unit: compaction

def test_dead_dup_pair_cancels():
    entries = [
        _entry("comm_dup", (VCOMM_WORLD,), 1000, group=WORLD4),
        _entry("comm_free", (1000,), None),
    ]
    result = compact_log(entries, _no_live(), n_ranks=4)
    assert result.entries == []
    assert result.stats.cancelled_pairs == 1
    assert result.stats.kept == 0


def test_live_handle_pins_parent_chain():
    entries = [
        _entry("comm_dup", (VCOMM_WORLD,), 1000, group=WORLD4),
        _entry("comm_split", (1000, 0, 0), 1001, group=WORLD4),
        _entry("comm_dup", (VCOMM_WORLD,), 1002, group=WORLD4),
        _entry("comm_free", (1002,), None),
    ]
    live = _no_live()
    live[HandleKind.COMM] = {VCOMM_WORLD, 1001}
    result = compact_log(entries, live, n_ranks=4)
    # the live split pins the dead-but-referenced dup it derives from; the
    # unreferenced dead dup cancels with its free
    assert [e.result_vid for e in result.entries] == [1000, 1001]
    assert result.stats.cancelled_pairs == 1


def test_dead_but_referenced_create_keeps_its_free():
    entries = [
        _entry("comm_dup", (VCOMM_WORLD,), 1000, group=WORLD4),
        _entry("comm_split", (1000, 0, 0), 1001, group=WORLD4),
        _entry("comm_free", (1000,), None),
    ]
    live = _no_live()
    live[HandleKind.COMM] = {VCOMM_WORLD, 1001}
    result = compact_log(entries, live, n_ranks=4)
    # the dup is dead but pinned by the live split: replay must re-create
    # AND re-free it so the table converges to the snapshot's bindings
    assert [e.op for e in result.entries] == [
        "comm_dup", "comm_split", "comm_free",
    ]


def test_subset_split_pair_never_cancels():
    entries = [
        _entry("comm_split", (VCOMM_WORLD, 0, 0), 1000, group=(0, 1)),
        _entry("comm_free", (1000,), None),
    ]
    result = compact_log(entries, _no_live(), n_ranks=4)
    # proper-subset membership: the other colour's ranks cannot observe
    # this pair, so nobody may cancel
    assert [e.op for e in result.entries] == ["comm_split", "comm_free"]
    assert result.stats.cancelled_pairs == 0


def test_uniform_split_pair_cancels():
    entries = [
        _entry("comm_split", (VCOMM_WORLD, 0, 0), 1000, group=WORLD4),
        _entry("comm_free", (1000,), None),
    ]
    result = compact_log(entries, _no_live(), n_ranks=4)
    assert result.entries == []
    assert result.stats.cancelled_pairs == 1


def test_nonmember_entry_always_kept():
    # undefined colour: this rank got no communicator, but its participation
    # in the collective is still required at replay
    entries = [_entry("comm_split", (VCOMM_WORLD, None, 0), None)]
    result = compact_log(entries, _no_live(), n_ranks=4)
    assert result.entries == entries


def test_unknown_membership_degrades_to_keeping():
    # an old image without recorded result groups: the split may be a
    # subset, so the pair must survive
    entries = [
        _entry("comm_split", (VCOMM_WORLD, 0, 0), 1000, group=None),
        _entry("comm_free", (1000,), None),
    ]
    result = compact_log(entries, _no_live(), n_ranks=4)
    assert len(result.entries) == 2
    assert result.stats.cancelled_pairs == 0


def test_comm_create_cancels_only_on_full_membership():
    full = [
        _entry("comm_create", (VCOMM_WORLD, WORLD4), 1000, group=WORLD4),
        _entry("comm_free", (1000,), None),
    ]
    subset = [
        _entry("comm_create", (VCOMM_WORLD, (0, 1)), 1001, group=(0, 1)),
        _entry("comm_free", (1001,), None),
    ]
    assert compact_log(full, _no_live(), n_ranks=4).entries == []
    assert len(compact_log(subset, _no_live(), n_ranks=4).entries) == 2


def test_local_entries_always_elided():
    entries = [
        _entry("type_create", (("contiguous", 4, "d"),), 2000,
               HandleKind.DATATYPE),
        _entry("comm_group", (VCOMM_WORLD,), 3000, HandleKind.GROUP),
        _entry("group_incl", (3000, (0, 1)), 3001, HandleKind.GROUP),
        _entry("group_free", (3001,), None, HandleKind.GROUP),
        _entry("type_free", (2000,), None, HandleKind.DATATYPE),
    ]
    live = _no_live()
    live[HandleKind.GROUP] = {3000}  # still live: the snapshot carries it
    result = compact_log(entries, live, n_ranks=4)
    assert result.entries == []
    assert result.stats.elided_local == 5


# ------------------------------------------- unit: the consistency oracle

def test_consistency_oracle_passes_symmetric_logs():
    log = [
        _entry("comm_dup", (VCOMM_WORLD,), 1000, group=WORLD4),
        _entry("comm_split", (1000, 0, 0), 1001, group=(0, 1)),
    ]
    # every rank replays the same schedule (split colours differ per rank
    # but the instance matches on op + parent)
    logs = [list(log) for _ in range(4)]
    assert check_collective_consistency(logs, 4) == []


def test_consistency_oracle_detects_one_sided_pruning():
    kept = [_entry("comm_dup", (VCOMM_WORLD,), 1000, group=WORLD4)]
    logs = [list(kept), list(kept), list(kept), []]  # rank 3 pruned it
    problems = check_collective_consistency(logs, 4)
    assert problems, "three ranks wait forever on rank 3's cancelled dup"
    assert "stuck" in problems[0]


def test_consistency_oracle_matches_by_parent_not_position():
    # rank 0 kept an extra *local-parent-only* dup pair the others pruned —
    # genuinely inconsistent, must be flagged
    extra = [
        _entry("comm_dup", (VCOMM_WORLD,), 1000, group=WORLD4),
        _entry("comm_dup", (VCOMM_WORLD,), 1001, group=WORLD4),
    ]
    pruned = [_entry("comm_dup", (VCOMM_WORLD,), 1000, group=WORLD4)]
    problems = check_collective_consistency(
        [extra, pruned, pruned, pruned], 4
    )
    assert problems


# ------------------------------------------------- replay-path hardening

def _world_table():
    from repro.mpilib.comm import Group

    class _WorldStub:
        group = Group(WORLD4)

    table = VirtualHandleTable()
    table.register(HandleKind.COMM, _WorldStub(), virtual=VCOMM_WORLD)
    return table


def test_unknown_op_raises_replay_error_up_front():
    log = RecordLog()
    log.record("comm_quadruplicate", (VCOMM_WORLD,), 1000)
    replay = ReplayEngine(Engine(), None, _world_table(), log)
    with pytest.raises(ReplayError, match="comm_quadruplicate"):
        replay.start()


def test_failing_entry_resolves_finished_with_error():
    """A dangling reference mid-log must surface as a typed error, not
    wedge the engine with ``finished`` unresolved."""
    log = RecordLog()
    log.record("group_free", (9999,), None, result_kind=HandleKind.GROUP)
    engine = Engine()
    replay = ReplayEngine(engine, None, _world_table(), log)
    replay.start()
    engine.run()
    assert replay.finished.done
    assert isinstance(replay.finished.value, ReplayError)
    assert replay.error is replay.finished.value


def test_group_entry_without_result_vid_is_typed_error():
    log = RecordLog()
    log.record("comm_group", (VCOMM_WORLD,), None, result_kind=HandleKind.GROUP)
    engine = Engine()
    replay = ReplayEngine(engine, None, _world_table(), log)
    replay.start()
    engine.run()
    assert isinstance(replay.finished.value, ReplayError)


def test_old_style_type_create_args_normalized():
    """Images from before this change carry ``(recipe, vid)`` args; restore
    must shrink them to ``(recipe,)`` and replay from result_vid."""
    from repro.mpilib.datatypes import contiguous

    dt = contiguous(4, DOUBLE)
    old = LogEntry("type_create", (dt.recipe, 2000), 2000,
                   HandleKind.DATATYPE)
    log = RecordLog()
    log.restore([old])
    assert log.entries[0].args == (dt.recipe,)

    engine = Engine()
    table = _world_table()
    replay = ReplayEngine(engine, None, table, log)
    replay.start()
    engine.run()
    assert replay.finished.value == 1
    assert table.resolve(HandleKind.DATATYPE, 2000).extent == dt.extent


def test_restored_entries_without_group_field():
    """Entries unpickled from old images lack the ``group`` attribute
    entirely; restore must default it to None (= never cancel)."""
    e = LogEntry("comm_dup", (VCOMM_WORLD,), 1000)
    clone = pickle.loads(pickle.dumps(e))
    object.__delattr__(clone, "group")
    log = RecordLog()
    log.restore([clone])
    assert log.entries[0].group is None


# ------------------------------------------------------------- end to end

def _done(api, value=None):
    out = Completion(api.rt.engine)
    out.resolve(value)
    return out


def _churn_factory(n_steps):
    """Per step: dup + uniform split, barrier + allreduce on them, free
    both, plus a datatype and two groups created and freed — pure log
    growth with constant live state."""

    def _init(s):
        s["checksum"] = 0.0
        s["rank_f"] = float(s["rank"])

    def _dup(s, api):
        return api.comm_dup()

    def _split(s, api):
        return api.comm_split(color=0, key=s["rank"])

    def _use_dup(s, api):
        return api.barrier(comm=s["edup"])

    def _use_split(s, api):
        return api.allreduce(np.array([s["rank_f"] + s["step"]]), SUM,
                             comm=s["esplit"], size=16)

    def _churn_local_and_free(s, api):
        api.comm_free(s.pop("edup"))
        api.comm_free(s.pop("esplit"))
        tvid = api.type_contiguous(3 + s["step"] % 5, DOUBLE)
        s["checksum"] += api.resolve_type(tvid).extent * 1e-6
        api.type_free(tvid)
        g = api.comm_group()
        half = api.group_incl(g, [0, 1])
        s["checksum"] += api.group_size(half)
        api.group_free(half)
        api.group_free(g)
        return _done(api)

    def _absorb(s):
        s["checksum"] += float(s["esum"][0]) * 1e-3

    def factory(rank, size):
        return Program(Seq(
            Compute(_init),
            Loop(n_steps, Seq(
                Call(_dup, store="edup"),
                Call(_split, store="esplit"),
                Call(_use_dup),
                Call(_use_split, store="esum"),
                Call(_churn_local_and_free),
                Compute(_absorb, cost=0.4e-3),
            ), var="step"),
        ), name="churn-test")

    return factory


@pytest.fixture
def cluster():
    return make_cluster("lc", 2, interconnect="aries", default_mpi="craympich")


def _fingerprint_of_baseline(cluster, factory):
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    job.run_to_completion()
    return state_fingerprint(job.states)


def _cycle(cluster, factory, t_ckpt, compact):
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                      compact=compact).start()
    ckpt, _ = job.checkpoint_at(t_ckpt)
    dst = make_cluster("dst", 4, interconnect="infiniband")
    job2 = restart(ckpt, dst, factory, mpi="openmpi", ranks_per_node=1)
    job2.run_to_completion()
    return ckpt, job2


def test_compacted_restart_is_bit_identical_and_small(cluster):
    factory = _churn_factory(n_steps=12)
    golden = _fingerprint_of_baseline(cluster, factory)

    ckpt_full, job_full = _cycle(cluster, factory, 0.004, compact=False)
    ckpt_comp, job_comp = _cycle(cluster, factory, 0.004, compact=True)

    assert state_fingerprint(job_full.states) == golden
    assert state_fingerprint(job_comp.states) == golden

    full = job_full.restart_report
    comp = job_comp.restart_report
    assert comp.replayed_entries < full.replayed_entries / 4, \
        "compaction must shrink replay work by far more than a constant"
    assert check_replay_consistency(ckpt_comp) == []

    # every entry the compacted image kept corresponds to a live handle:
    # nothing was freed between the cut and the replay's end of log
    stats = ckpt_comp.meta["log_compaction"]
    assert stats["kept"] == comp.replayed_entries
    assert stats["cancelled_pairs"] > 0
    assert stats["elided_local"] > 0


def test_replay_frees_release_lower_half_handles(cluster):
    """Satellite: replayed frees must release real handles through the
    endpoint — the ledger and the virtual tables agree after replay."""
    factory = _churn_factory(n_steps=10)
    for compact in (False, True):
        _ckpt, job2 = _cycle(cluster, factory, 0.004, compact=compact)
        assert check_handle_ledger(job2) == []
        ledger = job2.world.ledger
        bound = sum(
            len(rt.table.bound(HandleKind.COMM)) for rt in job2.runtimes
        )
        assert ledger.live("comm") == bound
        if not compact:
            # the full log replayed every dead create AND its free
            assert ledger.released["comm"] > 0


def test_compaction_meta_only_when_enabled(cluster):
    factory = _churn_factory(n_steps=6)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    ckpt, _ = job.checkpoint_at(0.004)
    assert "log_compaction" not in ckpt.meta

    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                      compact=True).start()
    ckpt, _ = job.checkpoint_at(0.004)
    assert ckpt.meta["log_compaction"]["examined"] > 0


def test_corrupted_image_surfaces_replay_error(cluster):
    """Satellite: a corrupted log in a real image must raise a typed
    ReplayError out of the restarted run, not wedge the engine."""
    factory = _churn_factory(n_steps=8)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    ckpt, _ = job.checkpoint_at(0.004)

    img = ckpt.image_for(0)
    state = img.restore_state()
    snap = state["log"]
    entries = snap["entries"] if isinstance(snap, dict) else snap
    entries.append(LogEntry("comm_frobnicate", (VCOMM_WORLD,), 4242))
    ckpt.images[0] = CheckpointImage(
        rank=img.rank, size_bytes=img.size_bytes, regions=img.regions,
        payload=pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        taken_at=img.taken_at,
    )

    dst = make_cluster("dst", 2, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=2)
    with pytest.raises(ReplayError, match="comm_frobnicate"):
        job2.run_to_completion()


def test_compact_then_noncompact_checkpoint_carries_local_bindings(cluster):
    """Carry-forward: once local creates were compacted away, later
    non-compact checkpoints must ship the value bindings instead."""
    from tests.mana.test_record_replay import comm_mgmt_factory

    factory = comm_mgmt_factory(n_iters=8)
    baseline = launch_mana(cluster, factory, n_ranks=4,
                           ranks_per_node=2).start()
    baseline.run_to_completion()

    # hop 1: compacted cut (the live datatype becomes a snapshot binding)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                      compact=True).start()
    ckpt, _ = job.checkpoint_at(1.0)
    snap = ckpt.image_for(0).restore_state()["log"]
    assert snap["local"], "live datatype must ride as a value binding"

    # hop 2: restart WITHOUT compaction, checkpoint again — the datatype
    # create no longer exists in any log, so the binding must carry forward
    mid = make_cluster("mid", 2, interconnect="tcp")
    job2 = restart(ckpt, mid, factory, mpi="mpich", ranks_per_node=2)
    while not job2.resumed.done:
        assert job2.engine.step()
    rep = job2.restart_report
    assert rep.restored_bindings > 0
    ckpt2, _ = job2.checkpoint_at(job2.engine.now + 1.0)
    snap2 = ckpt2.image_for(0).restore_state()["log"]
    assert isinstance(snap2, dict) and snap2["local"]

    # hop 3: restart the second image and finish — still bit-identical
    dst = make_cluster("dst", 4, interconnect="infiniband")
    job3 = restart(ckpt2, dst, factory, mpi="openmpi", ranks_per_node=1)
    job3.run_to_completion()
    job2.run_to_completion()
    assert state_fingerprint(job3.states) == state_fingerprint(baseline.states)
    vid = job3.states[0]["vec_type"]
    assert job3.runtimes[0].table.resolve(HandleKind.DATATYPE, vid).extent \
        == 8 * 8


# ----------------------------------------- property: compacted ≡ full

_OPS = ("dup", "split_u", "split_p", "type", "group")


def _scripted_factory(script):
    """SPMD churn driven by a generated script: every rank executes the
    same op sequence, so collectives match; frees happen ``delay`` steps
    after the create (99 = never: the handle stays live)."""

    def _init(s):
        s["checksum"] = 0.0
        s["due"] = []

    def _create(s, api):
        op, _delay = script[s["step"]]
        if op == "dup":
            return api.comm_dup()
        if op == "split_u":
            return api.comm_split(color=0, key=s["rank"])
        if op == "split_p":
            return api.comm_split(color=s["rank"] % 2, key=s["rank"])
        return _done(api, None)

    def _use(s, api):
        op, delay = script[s["step"]]
        step = s["step"]
        if op in ("dup", "split_u", "split_p"):
            s["due"].append((step + delay, "comm", s["made"]))
            return api.allreduce(np.array([float(s["rank"] + step)]), SUM,
                                 comm=s["made"], size=16)
        if op == "type":
            tvid = api.type_contiguous(2 + step % 6, DOUBLE)
            s["checksum"] += api.resolve_type(tvid).extent * 1e-6
            s["due"].append((step + delay, "type", tvid))
        else:
            g = api.comm_group()
            half = api.group_incl(g, [0, 1, 2])
            s["checksum"] += api.group_size(half)
            s["due"].append((step + delay, "group", g))
            s["due"].append((step + delay, "group", half))
        return _done(api, np.zeros(1))

    def _retire(s, api):
        step = s["step"]
        keep = []
        for due, kind, vid in s["due"]:
            if due > step:
                keep.append((due, kind, vid))
            elif kind == "comm":
                api.comm_free(vid)
            elif kind == "type":
                api.type_free(vid)
            else:
                api.group_free(vid)
        s["due"] = keep
        return _done(api)

    def _absorb(s):
        s["checksum"] += float(s["got"][0]) * 1e-3

    def factory(rank, size):
        return Program(Seq(
            Compute(_init),
            Loop(len(script), Seq(
                Call(_create, store="made"),
                Call(_use, store="got"),
                Call(_retire),
                Compute(_absorb, cost=0.3e-3),
            ), var="step"),
        ), name="scripted-churn")

    return factory


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    script=st.lists(
        st.tuples(st.sampled_from(_OPS), st.sampled_from([0, 1, 2, 99])),
        min_size=3, max_size=8,
    ),
    ckpt_frac=st.floats(0.15, 0.85),
)
def test_property_compacted_replay_equals_full_replay(script, ckpt_frac):
    """The tentpole invariant, fuzzed over churn histories and checkpoint
    times: compaction must never change a single replayed bit, across
    every HandleKind, while never replaying more than the full log."""
    factory = _scripted_factory(script)
    cl = make_cluster("prop", 2, interconnect="aries",
                      default_mpi="craympich")
    baseline = launch_mana(cl, factory, n_ranks=4, ranks_per_node=2).start()
    makespan = baseline.run_to_completion()
    golden = state_fingerprint(baseline.states)

    t = makespan * ckpt_frac
    ckpt_full, job_full = _cycle(cl, factory, t, compact=False)
    ckpt_comp, job_comp = _cycle(cl, factory, t, compact=True)

    assert state_fingerprint(job_full.states) == golden
    assert state_fingerprint(job_comp.states) == golden
    assert (job_comp.restart_report.replayed_entries
            <= job_full.restart_report.replayed_entries)
    assert check_replay_consistency(ckpt_comp) == []
    assert check_handle_ledger(job_comp) == []

    # the virtual tables of both restarts converged to identical bindings
    for rt_f, rt_c in zip(job_full.runtimes, job_comp.runtimes):
        for kind in HandleKind:
            assert sorted(rt_f.table.bound(kind)) == \
                sorted(rt_c.table.bound(kind))
