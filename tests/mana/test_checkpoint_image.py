"""Checkpoint image construction and the upper-half-only invariant."""

import numpy as np
import pytest

from repro.mana.checkpoint_image import (
    CheckpointError,
    CheckpointImage,
    CheckpointSet,
)
from repro.memory.region import Half, MemoryRegion, Perm, RegionKind


def upper_region(name="r", size=4096, ephemeral=False):
    return MemoryRegion(start=0x1000, size=size, perm=Perm.RW,
                        half=Half.UPPER, kind=RegionKind.DATA, name=name,
                        ephemeral=ephemeral)


def test_capture_and_restore_round_trip():
    state = {"arr": np.arange(5.0), "counter": 42}
    img = CheckpointImage.capture(0, [upper_region(size=1 << 20)], state, 12.5)
    assert img.size_bytes == 1 << 20
    restored = img.restore_state()
    assert np.array_equal(restored["arr"], np.arange(5.0))
    assert restored["counter"] == 42
    assert img.taken_at == 12.5


def test_lower_half_region_rejected():
    bad = MemoryRegion(start=0, size=4096, perm=Perm.RW, half=Half.LOWER,
                       kind=RegionKind.TEXT, name="libmpi")
    with pytest.raises(CheckpointError, match="lower-half"):
        CheckpointImage.capture(0, [bad], {}, 0.0)


def test_ephemeral_region_rejected():
    with pytest.raises(CheckpointError, match="ephemeral"):
        CheckpointImage.capture(0, [upper_region(ephemeral=True)], {}, 0.0)


def test_size_is_sum_of_regions():
    regions = [upper_region("a", 4096), upper_region("b", 8192)]
    img = CheckpointImage.capture(1, regions, {}, 0.0)
    assert img.size_bytes == 4096 + 8192
    assert [d.name for d in img.regions] == ["a", "b"]


def test_payload_is_independent_of_source_state():
    state = {"arr": np.zeros(3)}
    img = CheckpointImage.capture(0, [upper_region()], state, 0.0)
    state["arr"][0] = 99.0
    assert img.restore_state()["arr"][0] == 0.0


class TestCheckpointSet:
    def _img(self, rank):
        return CheckpointImage.capture(rank, [upper_region(size=4096)], {}, 0.0)

    def test_ranks_must_be_dense_and_ordered(self):
        with pytest.raises(CheckpointError):
            CheckpointSet(images=[self._img(1), self._img(0)])
        with pytest.raises(CheckpointError):
            CheckpointSet(images=[self._img(0), self._img(2)])

    def test_accessors(self):
        cs = CheckpointSet(images=[self._img(0), self._img(1)])
        assert cs.n_ranks == 2
        assert cs.total_bytes == 8192
        assert cs.image_for(1).rank == 1
        with pytest.raises(CheckpointError):
            cs.image_for(2)
