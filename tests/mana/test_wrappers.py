"""ManaApi details: handle virtualization from the app's view, datatypes,
drained-buffer semantics, overhead accounting knobs."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.rank_runtime import BufferedMsg, DrainBuffer
from repro.mana.virtualize import HandleKind
from repro.mpilib import DOUBLE, SUM
from repro.mpilib.comm import ANY_SOURCE, ANY_TAG
from repro.mprog import Call, Compute, Loop, Program, Seq


@pytest.fixture
def cluster():
    return make_cluster("wrap", 2, interconnect="aries")


def run_factory(cluster, factory, n_ranks=2, rpn=1, **kw):
    job = launch_mana(cluster, factory, n_ranks=n_ranks, ranks_per_node=rpn,
                      app_mem_bytes=1 << 20, **kw).start()
    job.run_to_completion()
    return job


def test_sendrecv_under_mana(cluster):
    def factory(rank, size):
        def xchg(s, api):
            peer = 1 - s["rank"]
            return api.sendrecv(peer, np.array([float(s["rank"])]),
                                source=peer, tag=5)

        return Program(Seq(
            Call(xchg, store="got"),
            Compute(lambda s: s.__setitem__("peer_val", float(s["got"][0][0]))),
        ))

    job = run_factory(cluster, factory)
    assert job.states[0]["peer_val"] == 1.0
    assert job.states[1]["peer_val"] == 0.0


def test_recv_wildcards_under_mana(cluster):
    def factory(rank, size):
        if rank == 0:
            def recv_any(s, api):
                return api.recv(source=ANY_SOURCE, tag=ANY_TAG)

            return Program(Call(recv_any, store="got"))

        def send(s, api):
            return api.send(0, np.array([42.0]), tag=9)

        return Program(Call(send))

    job = run_factory(cluster, factory)
    data, status = job.states[0]["got"]
    assert data[0] == 42.0
    assert status.source == 1 and status.tag == 9


def test_datatype_virtualization(cluster):
    def factory(rank, size):
        def make(s, api):
            from repro.simtime import Completion

            vid = api.type_vector(4, 2, 3, DOUBLE)
            s["extent"] = api.resolve_type(vid).extent
            done = Completion(api.rt.engine)
            done.resolve(vid)
            return done

        return Program(Call(make, store="vid"))

    job = run_factory(cluster, factory)
    assert job.states[0]["extent"] == ((4 - 1) * 3 + 2) * 8
    assert isinstance(job.states[0]["vid"], int)
    assert job.runtimes[0].log.entries[-1].op == "type_create"


def test_comm_free_retires_handle_and_logs(cluster):
    def factory(rank, size):
        def dup(s, api):
            return api.comm_dup()

        def free(s, api):
            from repro.simtime import Completion

            api.comm_free(s["dup"])
            done = Completion(api.rt.engine)
            done.resolve(None)
            return done

        return Program(Seq(Call(dup, store="dup"), Call(free)))

    job = run_factory(cluster, factory)
    rt = job.runtimes[0]
    assert [e.op for e in rt.log.entries] == ["comm_dup", "comm_free"]
    from repro.mana.virtualize import VirtualizationError

    with pytest.raises(VirtualizationError):
        rt.table.resolve(HandleKind.COMM, job.states[0]["dup"])


def test_comm_free_replay_round_trip(cluster):
    """Create + free + create again, checkpoint, restart: replay converges."""

    def factory(rank, size):
        def dup(s, api):
            return api.comm_dup()

        def free(s, api):
            from repro.simtime import Completion

            api.comm_free(s["dup1"])
            done = Completion(api.rt.engine)
            done.resolve(None)
            return done

        def use(s, api):
            return api.allreduce(np.array([1.0]), SUM, comm=s["dup2"])

        return Program(Seq(
            Call(dup, store="dup1"),
            Call(free),
            Call(dup, store="dup2"),
            Loop(4, Seq(Call(use, store="x"),
                        Compute(lambda s: None, cost=0.3))),
        ))

    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    ckpt, _ = job.checkpoint_at(0.7)
    job2 = restart(ckpt, cluster, factory, ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    assert job2.states[0]["x"][0] == 2.0


def test_topology_accessor_under_mana(cluster):
    def factory(rank, size):
        def cart(s, api):
            return api.cart_create([2, 1], [True, False])

        def probe(s, api):
            from repro.simtime import Completion

            topo = api.topology(s["cart"])
            s["dims"] = topo.dims
            s["me"] = api.comm_rank(s["cart"])
            s["n"] = api.comm_size(s["cart"])
            done = Completion(api.rt.engine)
            done.resolve(None)
            return done

        return Program(Seq(Call(cart, store="cart"), Call(probe)))

    job = run_factory(cluster, factory)
    assert job.states[0]["dims"] == (2, 1)
    assert job.states[0]["n"] == 2
    assert job.states[1]["me"] == 1


def test_fs_switch_count_per_p2p_call(cluster):
    def factory(rank, size):
        if rank == 0:
            def send(s, api):
                return api.send(1, np.ones(1))

            return Program(Loop(10, Call(send)))

        def recv(s, api):
            return api.recv(source=0)

        return Program(Loop(10, Call(recv, store="g")))

    job = run_factory(cluster, factory)
    # each interposed call = one upper->lower->upper transition = 2 switches
    assert job.runtimes[0].proc.fs_switches == 20
    assert job.runtimes[1].proc.fs_switches == 20


def test_two_phase_disabled_skips_trivial_barriers(cluster):
    def factory(rank, size):
        def coll(s, api):
            return api.allreduce(np.ones(1), SUM)

        return Program(Loop(5, Call(coll, store="x")))

    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20)
    for rt in job.runtimes:
        rt.two_phase_enabled = False
    job.start()
    job.run_to_completion()
    assert all(rt.stats.trivial_barriers == 0 for rt in job.runtimes)
    assert job.states[0]["x"][0] == 2.0


class TestDrainBuffer:
    def _msg(self, vcomm=1, src=0, tag=0, seq=0, data=None):
        return BufferedMsg(vcomm=vcomm, src_world=src, tag=tag,
                           data=data, size=8, seq=seq)

    def test_fifo_per_source(self):
        buf = DrainBuffer()
        buf.add(self._msg(seq=0, data="first"))
        buf.add(self._msg(seq=1, data="second"))
        assert buf.take(1, 0, 0).data == "first"
        assert buf.take(1, 0, 0).data == "second"
        assert buf.take(1, 0, 0) is None

    def test_wildcard_matching(self):
        buf = DrainBuffer()
        buf.add(self._msg(src=3, tag=7, data="x"))
        assert buf.take(1, ANY_SOURCE, ANY_TAG).data == "x"

    def test_selective_matching(self):
        buf = DrainBuffer()
        buf.add(self._msg(src=1, tag=1, data="a"))
        buf.add(self._msg(src=2, tag=2, data="b"))
        assert buf.take(1, 2, 2).data == "b"
        assert buf.take(1, 1, 1).data == "a"

    def test_comm_scoped(self):
        buf = DrainBuffer()
        buf.add(self._msg(vcomm=5, data="x"))
        assert buf.take(1, ANY_SOURCE, ANY_TAG) is None
        assert buf.take(5, ANY_SOURCE, ANY_TAG).data == "x"

    def test_snapshot_restore(self):
        import pickle

        buf = DrainBuffer()
        buf.add(self._msg(data=np.arange(3.0)))
        snap = pickle.loads(pickle.dumps(buf.snapshot()))
        buf2 = DrainBuffer()
        buf2.restore(snap)
        assert np.array_equal(buf2.take(1, 0, 0).data, np.arange(3.0))
