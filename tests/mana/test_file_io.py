"""MPI-IO under MANA: virtual file handles, checkpointed apps with open
files, replayed MPI_File_open across restart (the DMTCP fd-restore story)."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.hardware.filesystem import SimFilesystem
from repro.mana import launch_mana, restart
from repro.mana.virtualize import HandleKind, VirtualizationError
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.simtime import Completion


def writer_factory(n_steps=5, path="/out/results.dat"):
    """Each rank writes its evolving value to a rank-strided slot each step
    (fixed offsets: replays after restart are idempotent overwrites)."""

    def factory(rank, size):
        def init(s):
            s["v"] = float(s["rank"] * 100)
            s["written"] = 0

        def open_file(s, api):
            return api.file_open(path, "rw")

        def write_step(s, api):
            offset = (s["step"] * s["size"] + s["rank"]) * 8
            payload = np.array([s["v"]]).tobytes()
            return api.file_write_at_all(s["fh"], offset, payload)

        def advance(s):
            s["v"] += 1.0
            s["written"] += 1

        def close_file(s, api):
            api.file_close(s["fh"])
            done = Completion(api.rt.engine)
            done.resolve(None)
            return done

        return Program(Seq(
            Compute(init),
            Call(open_file, store="fh"),
            Loop(n_steps, Seq(
                Call(write_step, store="_w"),
                Compute(advance, cost=0.3),
            ), var="step"),
            Call(close_file),
        ), name="writer")

    return factory


def read_results(fs, path, n_steps, size):
    f = fs.open(path, create=False)
    out = []
    for step in range(n_steps):
        row = []
        for rank in range(size):
            raw = f.read((step * size + rank) * 8, 8)
            row.append(float(np.frombuffer(raw, dtype=np.float64)[0]))
        out.append(row)
    return out


@pytest.fixture
def cluster():
    return make_cluster("fio", 2, interconnect="aries")


def test_file_writes_under_mana(cluster):
    job = launch_mana(cluster, writer_factory(3), n_ranks=4, ranks_per_node=2,
                      app_mem_bytes=1 << 20).start()
    job.run_to_completion()
    rows = read_results(cluster.fs, "/out/results.dat", 3, 4)
    assert rows == [
        [0.0, 100.0, 200.0, 300.0],
        [1.0, 101.0, 201.0, 301.0],
        [2.0, 102.0, 202.0, 302.0],
    ]


def test_file_handle_is_virtual(cluster):
    job = launch_mana(cluster, writer_factory(2), n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    job.run_to_completion()
    assert isinstance(job.states[0]["fh"], int)
    ops = [e.op for e in job.runtimes[0].log.entries]
    assert ops[0] == "file_open"
    assert ops[-1] == "file_close"


def test_restart_reopens_files_on_shared_storage(cluster):
    """The migration contract: files live on shared storage; restart replays
    MPI_File_open against the target cluster's filesystem and continues
    writing where the application logic says to."""
    factory = writer_factory(6)
    baseline = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                           app_mem_bytes=1 << 20).start()
    baseline.run_to_completion()
    expected = read_results(cluster.fs, "/out/results.dat", 6, 4)

    shared_fs = SimFilesystem("site-shared")
    src = make_cluster("src", 2, interconnect="aries", fs=shared_fs)
    job = launch_mana(src, factory, n_ranks=4, ranks_per_node=2,
                      app_mem_bytes=1 << 20).start()
    ckpt, _ = job.checkpoint_at(1.0)

    dst = make_cluster("dst", 4, interconnect="tcp", fs=shared_fs)
    job2 = restart(ckpt, dst, factory, ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    assert read_results(shared_fs, "/out/results.dat", 6, 4) == expected
    # and the virtual handle still resolves in the rebuilt table after close
    assert all(s["written"] == 6 for s in job2.states)


def test_checkpoint_between_open_and_writes(cluster):
    factory = writer_factory(4)
    shared_fs = SimFilesystem()
    src = make_cluster("src", 2, interconnect="aries", fs=shared_fs)
    job = launch_mana(src, factory, n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    # Cut almost immediately: the file is open, little or nothing written.
    ckpt, _ = job.checkpoint_at(0.05)
    dst = make_cluster("dst", 2, interconnect="aries", fs=shared_fs)
    job2 = restart(ckpt, dst, factory, ranks_per_node=1)
    job2.run_to_completion()
    rows = read_results(shared_fs, "/out/results.dat", 4, 2)
    assert rows[-1] == [3.0, 103.0]


def test_closed_handle_is_retired(cluster):
    job = launch_mana(cluster, writer_factory(2), n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    job.run_to_completion()
    with pytest.raises(VirtualizationError):
        job.runtimes[0].table.resolve(HandleKind.FILE, job.states[0]["fh"])


def test_file_read_at_all_under_mana(cluster):
    def factory(rank, size):
        def open_file(s, api):
            return api.file_open("/in.dat", "rw")

        def seed(s, api):
            if s["rank"] == 0:
                return api.file_write_at(s["fh"], 0, b"shared-content")
            done = Completion(api.rt.engine)
            done.resolve(None)
            return done

        def sync(s, api):
            return api.barrier()

        def read_all(s, api):
            return api.file_read_at_all(s["fh"], 0, 14)

        return Program(Seq(
            Call(open_file, store="fh"),
            Call(seed),
            Call(sync),
            Call(read_all, store="data"),
        ))

    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    job.run_to_completion()
    assert all(s["data"] == b"shared-content" for s in job.states)
