"""Shared MANA test fixtures: small deterministic MPI applications."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq


# ---------------------------------------------------------------- programs
# All state-mutating callables are module-level so programs behave like
# on-disk binaries: available identically before and after restart.

def _ar_init(s):
    s["x"] = np.array([float(s["rank"] + 1)])
    s["hist"] = []


def _ar_call(s, api):
    return api.allreduce(s["x"], SUM)


def _ar_absorb(s):
    s["hist"].append(float(s["sum"][0]))
    s["x"] = s["x"] + 1.0


def allreduce_factory(n_iters=5, cost=0.5):
    def factory(rank, size):
        return Program(Seq(
            Compute(_ar_init),
            Loop(n_iters, Seq(
                Call(_ar_call, store="sum"),
                Compute(_ar_absorb, cost=cost),
            )),
        ), name="allreduce-app")

    return factory


def _ring_init(s):
    s["val"] = float(s["rank"])
    s["acc"] = float(s["rank"])


def _ring_send(s, api):
    return api.send((s["rank"] + 1) % s["size"], np.array([s["val"]]), tag=7)


def _ring_recv(s, api):
    return api.recv(source=(s["rank"] - 1) % s["size"], tag=7)


def _ring_absorb(s):
    data, _status = s["got"]
    s["val"] = float(data[0])
    s["acc"] += s["val"]


def ring_factory(n_steps=4, cost=0.2):
    """p2p ring: exercises draining (messages in flight at checkpoint)."""

    def factory(rank, size):
        return Program(Seq(
            Compute(_ring_init),
            Loop(n_steps, Seq(
                Call(_ring_send),
                Compute(lambda s: None, cost=cost, label="work"),
                Call(_ring_recv, store="got"),
                Compute(_ring_absorb),
            )),
        ), name="ring-app")

    return factory


def expected_ring_acc(rank, size, n_steps):
    return rank + sum((rank - k) % size for k in range(1, n_steps + 1))


@pytest.fixture
def small_cluster():
    return make_cluster("src", 2, interconnect="aries", default_mpi="craympich")


@pytest.fixture
def target_cluster():
    return make_cluster("dst", 4, interconnect="tcp", default_mpi="mpich")


def launch_small(cluster, factory, n_ranks=4, **kw):
    job = launch_mana(cluster, factory, n_ranks=n_ranks,
                      ranks_per_node=max(1, n_ranks // cluster.node_count), **kw)
    job.start()
    return job


def ring_job(n_ranks=4, protocol="alg2", n_steps=4):
    """A started ring app on a fresh 2-node cluster — p2p always in flight,
    so the topo protocol's dependency DAG is one full cycle."""
    cluster = make_cluster("ring-src", 2, interconnect="aries",
                           default_mpi="craympich")
    return launch_small(cluster, ring_factory(n_steps=n_steps),
                        n_ranks=n_ranks, protocol=protocol)
