"""The two-phase algorithm (Algorithms 1 & 2) under adversarial timing.

These tests trigger checkpoints at times chosen to land in every phase of
the collective wrapper and assert the paper's invariant: **no rank is inside
the real collective (phase 2) when the image is cut**, while liveness holds
(the checkpoint always completes and the application always finishes with
correct results).
"""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.protocol import WrapperPhase
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq

from tests.mana.conftest import allreduce_factory, launch_small


def _skewed_init(s):
    s["x"] = np.array([1.0])
    s["hist"] = []


def _skew_cost(s):
    # rank-dependent compute before each collective: ranks arrive at the
    # wrapper at very different times, maximizing protocol exposure.
    return 0.2 + 0.45 * s["rank"]


def _coll(s, api):
    return api.allreduce(s["x"], SUM)


def _absorb(s):
    s["hist"].append(float(s["sum"][0]))


def skewed_factory(n_iters=6):
    def factory(rank, size):
        return Program(Seq(
            Compute(_skewed_init),
            Loop(n_iters, Seq(
                Compute(lambda s: None, cost=_skew_cost, label="skew"),
                Call(_coll, store="sum"),
                Compute(_absorb),
            )),
        ), name="skewed")

    return factory


@pytest.fixture
def cluster():
    return make_cluster("proto", 4, interconnect="aries")


@pytest.mark.parametrize("t_ckpt", [0.05, 0.3, 0.65, 1.0, 1.45, 2.0, 2.6, 3.3])
def test_checkpoint_at_any_time_is_safe_and_correct(cluster, t_ckpt):
    """Sweep checkpoint trigger times across the whole run."""
    factory = skewed_factory(n_iters=4)
    baseline_job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1).start()
    baseline_job.run_to_completion()
    baseline = [s["hist"] for s in baseline_job.states]

    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1).start()
    # The runtime itself asserts Theorem 1's invariant at image time (the
    # rank helper raises if it is asked to write inside phase 2), so simply
    # completing the checkpoint is the safety check.
    ckpt, report = job.checkpoint_at(t_ckpt)
    job.run_to_completion()
    assert [s["hist"] for s in job.states] == baseline

    # and restarting from that checkpoint also reproduces the tail
    dst = make_cluster("dst", 2, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=2, mpi="mpich")
    job2.run_to_completion()
    assert [s["hist"] for s in job2.states] == baseline


def test_phase2_rank_defers_reply_and_coordinator_iterates(cluster):
    """A long collective in progress forces exit-phase-2 + extra iteration."""
    # Large payload => long collective work phase (~45 ms per call), so a
    # checkpoint intent lands while ranks are inside phase 2.
    def factory(rank, size):
        def init(s):
            s["x"] = np.zeros(16, dtype=np.float64)

        def coll(s, api):
            return api.allreduce(s["x"], SUM, size=128 << 20)

        return Program(Seq(
            Compute(init),
            Loop(40, Call(coll, store="y")),
        ), name="longcoll")

    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1).start()
    job.run_until(0.5)  # everyone deep inside some collective
    ckpt, report = job.checkpoint()
    # The coordinator needed at least one extra round (someone was committed
    # into phase 2 or a barrier was fully entered).
    assert report.rounds >= 2
    job.run_to_completion()


def test_trivial_barrier_interrupted_and_reissued(cluster):
    """Rank 0 reaches the wrapper early and parks in the trivial barrier
    while rank 3 computes; a checkpoint cut there must save rank 0
    in-phase-1 and restart must re-issue the barrier."""
    factory = skewed_factory(n_iters=2)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1).start()
    # At t=0.25: rank 0 (skew 0.2) is in the wrapper; rank 3 (skew 1.55) is not.
    ckpt, _ = job.checkpoint_at(0.25)
    phases = [rt.protocol.phase for rt in job.runtimes]
    assert WrapperPhase.PHASE_1 in phases or WrapperPhase.ENTRY_HELD in phases

    dst = make_cluster("dst", 4, interconnect="infiniband")
    job2 = restart(ckpt, dst, factory, ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    # the restarted world re-issued trivial barriers for the interrupted call
    assert all(rt.stats.trivial_barriers > 0 for rt in job2.runtimes)
    assert all(len(s["hist"]) == 2 for s in job2.states)

    # the original world continues correctly too
    job.run_to_completion()
    assert all(len(s["hist"]) == 2 for s in job.states)


def test_entry_gate_holds_ranks_during_intent(cluster):
    """After acking intend-to-ckpt, a rank reaching a collective wrapper
    parks at entry (Algorithm 2 line 28) until resume."""
    factory = skewed_factory(n_iters=3)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1).start()
    job.checkpoint_at(0.25)
    # during the checkpoint, some rank was held at entry at least once OR
    # waited in phase 1; either way the run completes consistently
    job.run_to_completion()
    assert all(len(s["hist"]) == 3 for s in job.states)


def test_two_phase_wrapper_counts_trivial_barriers(cluster):
    factory = allreduce_factory(n_iters=7, cost=0.05)
    job = launch_small(cluster, factory, n_ranks=4)
    job.run_to_completion()
    for rt in job.runtimes:
        assert rt.stats.trivial_barriers == 7


def test_checkpoint_of_idle_finished_ranks(cluster):
    """Ranks that already finished reply ready immediately."""
    factory = allreduce_factory(n_iters=1, cost=0.01)
    job = launch_small(cluster, factory, n_ranks=4)
    job.run_to_completion()
    ckpt, report = job.checkpoint()
    assert report.rounds == 1
    assert ckpt.n_ranks == 4


def test_fully_entered_barrier_triggers_extra_iteration(cluster):
    """Challenge I: all ranks sitting in the same trivial barrier when the
    intent lands must NOT be checkpointed in-phase-1 (the barrier is about
    to commit them into phase 2)."""

    def factory(rank, size):
        def init(s):
            s["x"] = np.zeros(1 << 22)  # long phase 2 (~ms)

        def coll(s, api):
            return api.allreduce(s["x"], SUM)

        return Program(Seq(
            Compute(init),
            Loop(3, Call(coll, store="y")),
        ), name="sync-coll")

    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1).start()
    # All ranks enter the wrapper almost simultaneously at t≈0; trigger the
    # checkpoint immediately so intend lands while barriers are filling.
    ckpt, report = job.checkpoint_at(0.001)
    job.run_to_completion()
    final = [float(s["y"][0]) for s in job.states]
    assert final == [0.0] * 4  # values trivially correct
    # correctness of protocol: the checkpointed state restarts cleanly
    dst = make_cluster("dst", 2, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=2)
    job2.run_to_completion()


class TestOverheadAccounting:
    def test_fs_switches_charged_per_wrapper_call(self, cluster):
        factory = allreduce_factory(n_iters=5, cost=0.01)
        job = launch_small(cluster, factory, n_ranks=4)
        job.run_to_completion()
        for rt in job.runtimes:
            # every wrapper call = 1 transition = 2 switches; 5 collectives
            assert rt.proc.fs_switches >= 10

    def test_patched_kernel_reduces_mana_runtime(self):
        from repro.hardware.kernelmodel import PATCHED, UNPATCHED

        def run(kernel):
            cl = make_cluster("k", 1, kernel=kernel, interconnect="aries")

            def factory(rank, size):
                def send(s, api):
                    return api.send(1 - s["rank"], np.zeros(64, dtype=np.uint8),
                                    size=64)

                def recv(s, api):
                    return api.recv(source=1 - s["rank"])

                body = Seq(Call(send), Call(recv, store="g")) \
                    if rank == 0 else Seq(Call(recv, store="g"), Call(send))
                return Program(Loop(300, body), name="pingpong")

            job = launch_mana(cl, factory, n_ranks=2, ranks_per_node=2).start()
            return job.run_to_completion()

        assert run(PATCHED) < run(UNPATCHED)

    def test_virtualization_lookups_counted(self, cluster):
        factory = allreduce_factory(n_iters=3, cost=0.01)
        job = launch_small(cluster, factory, n_ranks=4)
        job.run_to_completion()
        assert all(rt.table.lookups > 0 for rt in job.runtimes)
