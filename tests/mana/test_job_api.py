"""ManaJob surface: metadata, run control, restart determinism."""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart

from tests.mana.conftest import allreduce_factory, launch_small


@pytest.fixture
def cluster():
    return make_cluster("jobapi", 2, interconnect="aries")


def test_checkpoint_meta_records_provenance(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=4))
    ckpt, _ = job.checkpoint_at(0.6)
    assert ckpt.meta["source_cluster"] == "jobapi"
    assert ckpt.meta["source_mpi"] == job.world.impl.name
    assert ckpt.meta["n_ranks"] == 4
    assert ckpt.meta["taken_at"] > 0


def test_restart_meta_marks_restarted(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=4))
    ckpt, _ = job.checkpoint_at(0.6)
    job2 = restart(ckpt, cluster, allreduce_factory(n_iters=4),
                   ranks_per_node=2)
    assert job2.meta["restarted"] is True
    job2.run_to_completion()


def test_run_until_is_bounded(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=8))
    t = job.run_until(1.0)
    assert t == pytest.approx(1.0)
    assert not job.finished.done


def test_states_accessible_midrun(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=8))
    job.run_until(1.2)
    partial = [len(s.get("hist", [])) for s in job.states]
    assert any(0 < p < 8 for p in partial)


def test_restart_is_deterministic(cluster):
    factory = allreduce_factory(n_iters=6)
    job = launch_small(cluster, factory)
    ckpt, _ = job.checkpoint_at(1.0)

    def run_restart():
        j = restart(ckpt, cluster, factory, ranks_per_node=2, seed=3)
        j.run_to_completion()
        return [s["hist"] for s in j.states], j.engine.now

    r1, t1 = run_restart()
    r2, t2 = run_restart()
    assert r1 == r2
    assert t1 == t2


def test_straggler_seed_changes_timing_not_results(cluster):
    factory = allreduce_factory(n_iters=6)

    def run(seed):
        job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                          seed=seed).start()
        _, report = job.checkpoint_at(1.0)
        job.run_to_completion()
        return report.write_time, [s["hist"] for s in job.states]

    w1, res1 = run(1)
    w2, res2 = run(2)
    assert res1 == res2
    assert w1 != w2  # different straggler draws


def test_stragglers_disabled_gives_clean_write_times(cluster):
    factory = allreduce_factory(n_iters=6)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                      stragglers=False, app_mem_bytes=64 << 20).start()
    _, report = job.checkpoint_at(1.0)
    job.run_to_completion()
    # without straggler draws, the write time is the deterministic model
    fs = cluster.storage
    expected = fs.burst([job.runtimes[0].proc.upper_bytes()] * 4,
                        [0, 0, 1, 1], rng=None).max_time
    assert report.write_time == pytest.approx(expected, rel=0.05)


def test_profiling_after_restart(cluster):
    """§4.2: switch to an instrumented run mid-flight — restart the job and
    enable PMPI-style tracing on the restarted world."""
    factory = allreduce_factory(n_iters=6)
    job = launch_small(cluster, factory)
    ckpt, _ = job.checkpoint_at(1.0)
    job2 = restart(ckpt, cluster, factory, ranks_per_node=2)
    job2.enable_profiling()
    job2.run_to_completion()
    profile = job2.call_profile()
    assert profile.get("allreduce", (0, 0))[0] > 0
    # the original (un-instrumented) job records nothing
    job.run_to_completion()
    assert job.call_profile() == {}
