"""Two-phase protocol on sub-communicators.

The fully-entered-barrier refinement keys on (context id, membership): a
trivial barrier on a *sub*-communicator is complete when its members have
entered, regardless of what the rest of the world is doing.  These tests
checkpoint while sub-groups sit in sub-communicator collectives.
"""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq


def subcomm_factory(n_iters=6, skew=True):
    """Split world into even/odd halves; each half allreduces on its own
    communicator with (optionally) rank-dependent compute skew."""

    def factory(rank, size):
        def split(s, api):
            return api.comm_split(color=s["rank"] % 2, key=s["rank"])

        def init(s):
            s["x"] = np.array([float(s["rank"] + 1)])
            s["hist"] = []

        def cost(s):
            return 0.2 + (0.5 * s["rank"] if skew else 0.0)

        def coll(s, api):
            return api.allreduce(s["x"], SUM, comm=s["sub"])

        def absorb(s):
            s["hist"].append(float(s["y"][0]))

        return Program(Seq(
            Compute(init),
            Call(split, store="sub"),
            Loop(n_iters, Seq(
                Compute(lambda s: None, cost=cost, label="work"),
                Call(coll, store="y"),
                Compute(absorb),
            )),
        ), name="subcomm-app")

    return factory


@pytest.fixture
def cluster():
    return make_cluster("sub", 4, interconnect="aries")


def expected_hist(rank, size, n_iters):
    members = [r for r in range(size) if r % 2 == rank % 2]
    return [float(sum(m + 1 for m in members))] * n_iters


@pytest.mark.parametrize("t_ckpt", [0.05, 0.4, 0.9, 1.5, 2.4])
def test_checkpoint_during_subcomm_collectives(cluster, t_ckpt):
    factory = subcomm_factory(n_iters=4)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    ckpt, _report = job.checkpoint_at(t_ckpt)
    job.run_to_completion()
    for r, s in enumerate(job.states):
        assert s["hist"] == expected_hist(r, 4, 4)

    dst = make_cluster("dst", 2, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=2, mpi="mpich")
    job2.run_to_completion()
    for r, s in enumerate(job2.states):
        assert s["hist"] == expected_hist(r, 4, 4)


def test_one_subcomm_fully_in_barrier_other_computing(cluster):
    """Even ranks sit in their sub-barrier (fully entered) while odd ranks
    compute for a long time: the coordinator must let the even half's
    collective commit and flow, then checkpoint safely."""

    def factory(rank, size):
        def split(s, api):
            return api.comm_split(color=s["rank"] % 2, key=s["rank"])

        def init(s):
            s["x"] = np.array([1.0])

        # even ranks reach their collective almost immediately; odd ranks
        # compute for 2 simulated seconds first
        def cost(s):
            return 0.001 if s["rank"] % 2 == 0 else 2.0

        def coll(s, api):
            return api.allreduce(s["x"], SUM, comm=s["sub"])

        return Program(Seq(
            Compute(init),
            Call(split, store="sub"),
            Loop(3, Seq(
                Compute(lambda s: None, cost=cost),
                Call(coll, store="y"),
            )),
        ))

    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    # trigger while evens are inside their subcomm wrapper and odds compute
    ckpt, report = job.checkpoint_at(0.05)
    job.run_to_completion()
    assert all(s["y"][0] == 2.0 for s in job.states)

    job2 = restart(ckpt, cluster, factory, ranks_per_node=1)
    job2.run_to_completion()
    assert all(s["y"][0] == 2.0 for s in job2.states)


def test_overlapping_collectives_world_and_subcomm(cluster):
    """Challenge III territory: independent collectives on overlapping
    communicators in flight around a checkpoint."""

    def factory(rank, size):
        def split(s, api):
            return api.comm_split(color=s["rank"] % 2, key=s["rank"])

        def init(s):
            s["x"] = np.array([float(s["rank"] + 1)])
            s["trace"] = []

        def sub_coll(s, api):
            return api.allreduce(s["x"], SUM, comm=s["sub"])

        def world_coll(s, api):
            return api.allreduce(s["x"], SUM)

        def cost(s):
            return 0.1 + 0.3 * s["rank"]

        def absorb(s):
            s["trace"].append((float(s["a"][0]), float(s["b"][0])))

        return Program(Seq(
            Compute(init),
            Call(split, store="sub"),
            Loop(4, Seq(
                Compute(lambda s: None, cost=cost),
                Call(sub_coll, store="a"),
                Call(world_coll, store="b"),
                Compute(absorb),
            )),
        ))

    baseline = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1,
                           app_mem_bytes=1 << 20).start()
    baseline.run_to_completion()
    expected = [s["trace"] for s in baseline.states]

    for t_ckpt in (0.15, 0.7, 1.9):
        job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1,
                          app_mem_bytes=1 << 20).start()
        ckpt, _ = job.checkpoint_at(t_ckpt)
        job.run_to_completion()
        assert [s["trace"] for s in job.states] == expected

        job2 = restart(ckpt, cluster, factory, ranks_per_node=1,
                       mpi="intelmpi")
        job2.run_to_completion()
        assert [s["trace"] for s in job2.states] == expected
