"""On-disk checkpoint persistence: save / load / verify / restart-from-disk."""

import json

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import CheckpointError, restart
from repro.mana.storage import describe_checkpoint, load_checkpoint, save_checkpoint

from tests.mana.conftest import allreduce_factory, launch_small


@pytest.fixture
def cluster():
    return make_cluster("disk", 2, interconnect="aries")


@pytest.fixture
def checkpoint(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=6))
    ckpt, _ = job.checkpoint_at(1.0)
    return ckpt


def test_save_load_round_trip(cluster, checkpoint, tmp_path):
    save_checkpoint(checkpoint, tmp_path / "ckpt")
    loaded = load_checkpoint(tmp_path / "ckpt")
    assert loaded.n_ranks == checkpoint.n_ranks
    assert loaded.total_bytes == checkpoint.total_bytes
    for orig, back in zip(checkpoint.images, loaded.images):
        assert back.rank == orig.rank
        assert back.payload == orig.payload
        assert back.regions == orig.regions
        assert back.taken_at == orig.taken_at
    assert loaded.meta["source_cluster"] == "disk"


def test_restart_from_disk(cluster, checkpoint, tmp_path):
    """The full operational loop: save, forget everything, load, restart."""
    save_checkpoint(checkpoint, tmp_path / "ckpt")
    del checkpoint

    loaded = load_checkpoint(tmp_path / "ckpt")
    dst = make_cluster("dst", 4, interconnect="tcp")
    job2 = restart(loaded, dst, allreduce_factory(n_iters=6),
                   ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    assert all(len(s["hist"]) == 6 for s in job2.states)


def test_manifest_contents(cluster, checkpoint, tmp_path):
    manifest_path = save_checkpoint(checkpoint, tmp_path / "ckpt")
    manifest = json.loads(manifest_path.read_text())
    assert manifest["format"] == "mana-checkpoint/1"
    assert manifest["n_ranks"] == 4
    assert len(manifest["images"]) == 4
    assert all("sha256" in e for e in manifest["images"])


def test_corruption_detected(cluster, checkpoint, tmp_path):
    save_checkpoint(checkpoint, tmp_path / "ckpt")
    victim = tmp_path / "ckpt" / "rank_00002.img"
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="corrupt"):
        load_checkpoint(tmp_path / "ckpt")


def test_bad_magic_detected(cluster, checkpoint, tmp_path):
    save_checkpoint(checkpoint, tmp_path / "ckpt")
    victim = tmp_path / "ckpt" / "rank_00001.img"
    blob = victim.read_bytes()
    victim.write_bytes(b"NOTMANA!" + blob[8:])
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path / "ckpt")


def test_missing_manifest(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint manifest"):
        load_checkpoint(tmp_path)


def test_describe_checkpoint(cluster, checkpoint, tmp_path):
    save_checkpoint(checkpoint, tmp_path / "ckpt")
    info = describe_checkpoint(tmp_path / "ckpt")
    assert info["n_ranks"] == 4
    assert info["total_modeled_bytes"] == checkpoint.total_bytes
    assert any(name == "app-data" for name, _size in info["regions_rank0"])
    assert info["meta"]["source_mpi"] == "mpich"  # the cluster's default
