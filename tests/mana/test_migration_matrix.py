"""Capstone: the m×n agnosticism claim, exercised as a chained migration.

The paper's pitch is one code base over every (MPI implementation ×
interconnect) combination.  This test checkpoints one job and restarts the
SAME images under every combination; then chains migrations through a
sequence of worlds, checkpointing each time — the "temporally complex
computation outliving its original cluster" of §4.2.
"""

import itertools

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import restart
from repro.mpilib.impls import IMPLEMENTATIONS
from repro.net import INTERCONNECTS

from tests.mana.conftest import allreduce_factory, launch_small

FABRICS = [n for n in sorted(INTERCONNECTS) if n != "shmem"]  # shmem = intra-node
MPIS = list(IMPLEMENTATIONS)


@pytest.fixture(scope="module")
def source_run():
    cluster = make_cluster("matrix-src", 2, interconnect="aries",
                           default_mpi="craympich")
    factory = allreduce_factory(n_iters=5)
    baseline = launch_small(cluster, factory)
    baseline.run_to_completion()
    expected = [s["hist"] for s in baseline.states]

    job = launch_small(cluster, factory)
    ckpt, _ = job.checkpoint_at(1.2)
    return factory, ckpt, expected


@pytest.mark.parametrize("mpi,net", list(itertools.product(MPIS, FABRICS)))
def test_one_image_restarts_everywhere(source_run, mpi, net):
    """Every implementation × fabric combination accepts the same images."""
    factory, ckpt, expected = source_run
    dst = make_cluster(f"dst-{mpi}-{net}", 2, interconnect=net)
    job = restart(ckpt, dst, factory, mpi=mpi, ranks_per_node=2)
    job.run_to_completion()
    assert [s["hist"] for s in job.states] == expected
    assert job.world.impl.name == mpi
    assert job.world.fabric.name == net


def test_chained_migration_through_every_implementation():
    """Checkpoint → migrate → checkpoint → migrate …, visiting every
    implementation once, with changing fabrics and layouts."""
    factory = allreduce_factory(n_iters=2 * len(MPIS) + 2)
    src = make_cluster("chain-0", 2, interconnect="aries",
                       default_mpi=MPIS[0])
    baseline = launch_small(src, factory)
    baseline.run_to_completion()
    expected = [s["hist"] for s in baseline.states]

    job = launch_small(src, factory)
    ckpt, _ = job.checkpoint_at(0.7)
    for hop, mpi in enumerate(MPIS[1:] + [MPIS[0]], start=1):
        net = FABRICS[hop % len(FABRICS)]
        nodes = 1 + hop % 4
        dst = make_cluster(f"chain-{hop}", nodes, cores_per_node=32,
                           interconnect=net)
        job = restart(ckpt, dst, factory, mpi=mpi,
                      ranks_per_node=-(-4 // nodes))
        if hop < len(MPIS):
            job.run_until(job.engine.now + 0.9)
            ckpt, _ = job.checkpoint()
    job.run_to_completion()
    assert [s["hist"] for s in job.states] == expected
