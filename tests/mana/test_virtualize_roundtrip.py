"""Property tests: VirtualHandleTable snapshot/restore/clear_reals round-trips.

Across every handle kind, an arbitrary register/unregister history must
round-trip through snapshot+restore with counter continuity (no id reuse),
an exactly-preserved bound-vid set, and strict dangling-handle errors for
everything outside that set.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.mana.virtualize import (
    HandleKind,
    VirtualHandleTable,
    VirtualizationError,
)

KINDS = list(HandleKind)

#: one history step: (kind index, action) — register a fresh handle, or
#: unregister the i-th oldest still-bound one of that kind
_steps = st.lists(
    st.tuples(st.integers(0, len(KINDS) - 1),
              st.one_of(st.none(), st.integers(0, 5))),
    min_size=0, max_size=40,
)


def _apply_history(table: VirtualHandleTable, steps) -> None:
    for kind_idx, action in steps:
        kind = KINDS[kind_idx]
        if action is None:
            table.register(kind, object())
        else:
            bound = sorted(table.bound(kind))
            if bound:
                table.unregister(kind, bound[action % len(bound)])


@settings(max_examples=60, deadline=None)
@given(steps=_steps)
def test_snapshot_restore_roundtrip(steps):
    table = VirtualHandleTable()
    _apply_history(table, steps)
    bound_before = {k: set(table.bound(k)) for k in KINDS}
    snap = pickle.loads(pickle.dumps(table.snapshot()))

    fresh = VirtualHandleTable()
    fresh.restore(snap)
    for kind in KINDS:
        # the snapshot's bound set is exactly the rebind entitlement...
        for vid in bound_before[kind]:
            assert fresh.expects_rebind(kind, vid)
            fresh.rebind(kind, vid, object())
        assert set(fresh.bound(kind)) == bound_before[kind]
        # ...and counter continuity: fresh mints never collide with old ids
        new_vid = fresh.register(kind, object())
        assert all(new_vid > old for old in bound_before[kind])
        twin = VirtualHandleTable()
        twin.restore(snap)
        assert twin.register(kind, object()) == new_vid, \
            "restore must be deterministic: same snapshot, same next id"


@settings(max_examples=60, deadline=None)
@given(steps=_steps)
def test_clear_reals_roundtrip(steps):
    table = VirtualHandleTable()
    _apply_history(table, steps)
    bound_before = {k: set(table.bound(k)) for k in KINDS}

    dangling = table.clear_reals()
    assert set(dangling) == {
        (k, vid) for k in KINDS for vid in bound_before[k]
    }
    for kind, vid in dangling:
        # every cleared handle is dangling until replay rebinds it
        with pytest.raises(VirtualizationError, match="dangling"):
            table.resolve(kind, vid)
        table.rebind(kind, vid, object())
        table.resolve(kind, vid)  # now live again
    for kind in KINDS:
        assert set(table.bound(kind)) == bound_before[kind]


@settings(max_examples=40, deadline=None)
@given(steps=_steps, probe=st.integers(0, 10_000))
def test_restore_rejects_vids_outside_bound_set(steps, probe):
    table = VirtualHandleTable()
    _apply_history(table, steps)
    snap = table.snapshot()
    fresh = VirtualHandleTable()
    fresh.restore(snap)
    for kind in KINDS:
        bound = set(snap["bound"][kind.value])
        if probe in bound:
            continue
        with pytest.raises(VirtualizationError):
            fresh.rebind(kind, probe, object())
