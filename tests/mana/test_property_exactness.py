"""Property-based exactness: checkpoint anywhere, restart anywhere,
bit-identical results (DESIGN.md invariant 1)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mpilib import MAX, SUM
from repro.mprog import Call, Compute, Loop, Program, Seq

# ------------------------------------------------------- a mixed workload
# p2p ring + allreduce + reduction state, so every checkpoint lands amid a
# different mixture of in-flight messages and collective phases.


def _mx_init(s):
    rng = np.random.default_rng(1234 + s["rank"])
    s["vec"] = rng.random(16)
    s["trace"] = []


def _mx_send(s, api):
    return api.send((s["rank"] + 1) % s["size"], s["vec"][:4].copy(), tag=3)


def _mx_recv(s, api):
    return api.recv(source=(s["rank"] - 1) % s["size"], tag=3)


def _mx_mix(s):
    data, _ = s["got"]
    s["vec"][:4] = 0.5 * (s["vec"][:4] + data)


def _mx_allreduce(s, api):
    return api.allreduce(s["vec"], SUM)


def _mx_maxreduce(s, api):
    return api.allreduce(np.array([s["vec"].sum()]), MAX)


def _mx_absorb(s):
    s["vec"] = s["vec"] + 0.01 * s["summed"]
    s["trace"].append(round(float(s["peak"][0]), 12))


def mixed_factory(n_iters):
    def factory(rank, size):
        return Program(Seq(
            Compute(_mx_init),
            Loop(n_iters, Seq(
                Call(_mx_send),
                Compute(lambda s: None, cost=0.15, label="work"),
                Call(_mx_recv, store="got"),
                Compute(_mx_mix),
                Call(_mx_allreduce, store="summed"),
                Call(_mx_maxreduce, store="peak"),
                Compute(_mx_absorb, cost=0.1),
            )),
        ), name="mixed")

    return factory


NETS = ["aries", "infiniband", "tcp"]
MPIS = ["craympich", "mpich", "openmpi", "intelmpi", "mpich-debug"]


def run_to_traces(job):
    job.run_to_completion()
    return [s["trace"] for s in job.states], [s["vec"].copy() for s in job.states]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n_ranks=st.sampled_from([2, 3, 4]),
    n_iters=st.integers(2, 5),
    ckpt_frac=st.floats(0.02, 0.95),
    src_net=st.sampled_from(NETS),
    dst_net=st.sampled_from(NETS),
    src_mpi=st.sampled_from(MPIS),
    dst_mpi=st.sampled_from(MPIS),
    dst_nodes=st.sampled_from([1, 2, 4]),
)
def test_checkpoint_restart_exactness(n_ranks, n_iters, ckpt_frac, src_net,
                                      dst_net, src_mpi, dst_mpi, dst_nodes):
    factory = mixed_factory(n_iters)
    src = make_cluster("src", 2, interconnect=src_net)

    baseline_job = launch_mana(src, factory, n_ranks=n_ranks,
                               ranks_per_node=-(-n_ranks // 2),
                               mpi=src_mpi).start()
    t_end = baseline_job.engine.now
    baseline_traces, baseline_vecs = run_to_traces(baseline_job)
    duration = baseline_job.engine.now - t_end

    job = launch_mana(src, factory, n_ranks=n_ranks,
                      ranks_per_node=-(-n_ranks // 2), mpi=src_mpi).start()
    ckpt, _report = job.checkpoint_at(duration * ckpt_frac)

    dst = make_cluster("dst", dst_nodes, cores_per_node=32, interconnect=dst_net)
    job2 = restart(ckpt, dst, factory, mpi=dst_mpi,
                   ranks_per_node=-(-n_ranks // dst_nodes))
    traces, vecs = run_to_traces(job2)

    assert traces == baseline_traces
    for v, b in zip(vecs, baseline_vecs):
        assert np.array_equal(v, b), "restart must be bit-identical"

    # the interrupted original run must also still be correct
    cont_traces, cont_vecs = run_to_traces(job)
    assert cont_traces == baseline_traces


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_determinism_same_seed_same_world(seed):
    """Two identical launches produce identical event outcomes."""
    factory = mixed_factory(3)

    def run():
        cl = make_cluster("d", 2, interconnect="aries")
        job = launch_mana(cl, factory, n_ranks=4, ranks_per_node=2,
                          seed=seed).start()
        job.run_to_completion()
        return [s["trace"] for s in job.states], job.engine.now

    t1, now1 = run()
    t2, now2 = run()
    assert t1 == t2
    assert now1 == now2
