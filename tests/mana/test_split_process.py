"""Split-process runtime: tagging, bootstrap/discard, sbrk, FS accounting."""

import pytest

from repro.hardware.kernelmodel import PATCHED, UNPATCHED, KernelModel
from repro.mana.split_process import SplitProcess
from repro.memory import Half, RegionKind
from repro.mpilib.impls import get_implementation
from repro.net import make_interconnect
from repro.net.fabrics import ShmemTransport
from repro.simtime import Engine

MB = 1 << 20


@pytest.fixture
def proc():
    return SplitProcess(rank=0, kernel=KernelModel(), app_mem_bytes=32 * MB)


def bootstrap(proc, impl_name="craympich", fabric_name="aries",
              n_nodes=4, ranks_per_node=32):
    engine = Engine()
    impl = get_implementation(impl_name)
    fabric = make_interconnect(fabric_name, engine)
    shmem = ShmemTransport(engine)
    proc.bootstrap_lower_half(impl, fabric, shmem, n_nodes, ranks_per_node)
    return impl


def test_initial_process_is_upper_only(proc):
    assert proc.lower_bytes() == 0
    assert proc.upper_bytes() > 32 * MB


def test_upper_half_contains_duplicate_mpi_text(proc):
    """§3.2.2: the app links its own never-initialized copy of the MPI lib."""
    region = proc.space.find("app-mpi-copy")
    assert region.half is Half.UPPER
    assert region.size == 26 * MB


def test_bootstrap_maps_library_and_driver_regions(proc):
    impl = bootstrap(proc)
    lower = proc.space.regions(half=Half.LOWER)
    names = {r.name for r in lower}
    assert f"{impl.name}-text" in names
    assert "aries-shmem" in names
    assert "sysv-shm-intranode" in names
    assert proc.lower_bytes() >= impl.text_size


def test_double_bootstrap_rejected(proc):
    bootstrap(proc)
    with pytest.raises(RuntimeError, match="already present"):
        bootstrap(proc)


def test_discard_lower_half_removes_everything(proc):
    bootstrap(proc)
    discarded = proc.discard_lower_half()
    assert discarded > 0
    assert proc.lower_bytes() == 0
    # a fresh bootstrap (restart) is now possible, with a different stack
    bootstrap(proc, impl_name="openmpi", fabric_name="infiniband")
    names = {r.name for r in proc.space.regions(half=Half.LOWER)}
    assert "openmpi-text" in names
    assert "aries-shmem" not in names


def test_upper_bytes_excludes_lower(proc):
    before = proc.upper_bytes()
    bootstrap(proc)
    assert proc.upper_bytes() == before


def test_fs_transition_cost_and_counter(proc):
    c1 = proc.fs_transition_cost()
    c2 = proc.fs_transition_cost()
    assert c1 == c2 == UNPATCHED.upper_lower_transition()
    assert proc.fs_switches == 4


def test_patched_kernel_cheapens_transitions():
    slow = SplitProcess(0, UNPATCHED)
    fast = SplitProcess(0, PATCHED)
    assert fast.fs_transition_cost() < slow.fs_transition_cost() / 5


def test_sbrk_interposition_keeps_upper_growth_off_the_brk(proc):
    brk0 = proc.space.brk
    proc.heap.alloc_array("big", 8 << 20, dtype="u1")  # forces heap growth
    assert proc.space.brk == brk0
    grown = [r for r in proc.space.regions(half=Half.UPPER)
             if r.name.startswith("upper-sbrk-mmap")]
    assert grown, "heap growth should have gone through the interposer"
    assert all(r.kind is RegionKind.ANON for r in grown)


def test_set_app_mem_bytes(proc):
    proc.set_app_mem_bytes(100 * MB)
    assert proc.space.find("app-data").size == 100 * MB


def test_lower_half_scales_with_node_count():
    small = SplitProcess(0, KernelModel())
    bootstrap(small, n_nodes=2)
    large = SplitProcess(0, KernelModel())
    bootstrap(large, n_nodes=64)
    assert large.lower_bytes() > small.lower_bytes()
