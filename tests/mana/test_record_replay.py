"""Record-replay of persistent MPI calls (§2.2): communicators, topologies
and derived datatypes created before a checkpoint must work after restart on
a different MPI implementation."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.virtualize import HandleKind
from repro.mpilib import DOUBLE, SUM
from repro.mprog import Call, Compute, Loop, Program, Seq


# ---------------------------------------------------------------- programs

def _split_comm(s, api):
    # even/odd sub-communicators
    return api.comm_split(color=s["rank"] % 2, key=s["rank"])


def _sub_allreduce(s, api):
    return api.allreduce(np.array([float(s["rank"])]), SUM, comm=s["subcomm"])


def _record_sub(s):
    s.setdefault("sub_results", []).append(float(s["subsum"][0]))


def _dup_world(s, api):
    return api.comm_dup()


def _dup_barrier(s, api):
    return api.barrier(comm=s["dupcomm"])


def _make_cart(s, api):
    return api.cart_create([2, 2], [True, True])


def _cart_exchange(s, api):
    topo = api.topology(s["cart"])
    me = api.comm_rank(s["cart"])
    _src, dst = topo.shift(me, dim=0, disp=1)
    src, _ = topo.shift(me, dim=0, disp=1)
    api.send(dst, np.array([float(me)]), tag=11, comm=s["cart"])
    return api.recv(source=src, tag=11, comm=s["cart"])


def _record_cart(s):
    data, status = s["cart_got"]
    s.setdefault("cart_results", []).append((float(data[0]), status.source))


def _make_type(s, api):
    from repro.simtime import Completion

    vid = api.type_contiguous(8, DOUBLE)
    s["vec_type"] = vid
    done = Completion(api.rt.engine)
    done.resolve(vid)
    return done


def comm_mgmt_factory(n_iters=4):
    def factory(rank, size):
        return Program(Seq(
            Call(_split_comm, store="subcomm"),
            Call(_dup_world, store="dupcomm"),
            Call(_make_cart, store="cart"),
            Call(_make_type, store="type_vid"),
            Loop(n_iters, Seq(
                Call(_sub_allreduce, store="subsum"),
                Compute(_record_sub, cost=0.3),
                Call(_cart_exchange, store="cart_got"),
                Compute(_record_cart),
                Call(_dup_barrier),
            )),
        ), name="comm-mgmt")

    return factory


@pytest.fixture
def cluster():
    return make_cluster("rr", 2, interconnect="aries", default_mpi="craympich")


def run_baseline(cluster, factory):
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    job.run_to_completion()
    return job


def test_comm_management_works_under_mana(cluster):
    job = run_baseline(cluster, comm_mgmt_factory())
    for r, s in enumerate(job.states):
        # even subcomm sums 0+2, odd sums 1+3
        expected = 2.0 if r % 2 == 0 else 4.0
        assert s["sub_results"] == [expected] * 4
        assert len(s["cart_results"]) == 4
        assert isinstance(s["subcomm"], int), "app must hold virtual handles"


def test_record_log_contains_persistent_calls(cluster):
    job = run_baseline(cluster, comm_mgmt_factory())
    ops = [e.op for e in job.runtimes[0].log.entries]
    assert ops[:4] == ["comm_split", "comm_dup", "cart_create", "type_create"]


def test_restart_replays_communicators(cluster):
    factory = comm_mgmt_factory(n_iters=6)
    baseline = run_baseline(cluster, factory)

    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    ckpt, _ = job.checkpoint_at(1.0)  # mid-loop: sub-comms already exist

    dst = make_cluster("dst", 4, interconnect="infiniband")
    job2 = restart(ckpt, dst, factory, mpi="openmpi", ranks_per_node=1)
    job2.run_to_completion()

    for s, b in zip(job2.states, baseline.states):
        assert s["sub_results"] == b["sub_results"]
        assert s["cart_results"] == b["cart_results"]


def test_replayed_real_handles_are_fresh(cluster):
    factory = comm_mgmt_factory(n_iters=5)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    ckpt, _ = job.checkpoint_at(1.0)
    old_sub_vid = job.states[0]["subcomm"]
    old_real = job.runtimes[0].table.resolve(HandleKind.COMM, old_sub_vid)

    dst = make_cluster("dst", 2, interconnect="tcp")
    # Open MPI mints pointer-style handles from a different value space than
    # Cray MPICH's tagged small integers.
    job2 = restart(ckpt, dst, factory, mpi="openmpi", ranks_per_node=2)
    job2.run_to_completion()
    assert job2.states[0]["subcomm"] == old_sub_vid  # virtual id stable
    new_real = job2.runtimes[0].table.resolve(HandleKind.COMM, old_sub_vid)
    assert new_real is not old_real
    assert new_real.handle != old_real.handle
    assert new_real.group.world_ranks == old_real.group.world_ranks


def test_cart_topology_survives_restart(cluster):
    factory = comm_mgmt_factory(n_iters=5)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    ckpt, _ = job.checkpoint_at(1.0)
    dst = make_cluster("dst", 2, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, mpi="intelmpi", ranks_per_node=2)
    job2.run_to_completion()
    cart_vid = job2.states[0]["cart"]
    real = job2.runtimes[0].table.resolve(HandleKind.COMM, cart_vid)
    assert real.topology.dims == (2, 2)


def test_datatype_replay(cluster):
    factory = comm_mgmt_factory(n_iters=3)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    ckpt, _ = job.checkpoint_at(1.0)
    dst = make_cluster("dst", 2, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=2)
    job2.run_to_completion()
    vid = job2.states[0]["vec_type"]
    dtype = job2.runtimes[0].table.resolve(HandleKind.DATATYPE, vid)
    assert dtype.extent == 8 * 8


def test_replay_time_counted_in_restart_report(cluster):
    factory = comm_mgmt_factory(n_iters=4)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2).start()
    ckpt, _ = job.checkpoint_at(1.0)
    dst = make_cluster("dst", 2, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=2)
    job2.run_to_completion()
    rep = job2.restart_report
    assert rep.replay_time > 0, "comm replay is collective work, takes time"
    # §3.4: opaque-id recreation is a small share of restart
    assert rep.replay_time < 0.5 * rep.total_time


# ----------------------------------------------- long-log iterative replay

def _build_local_heavy_table_and_log(n_entries):
    """An original-run table + log made (almost) entirely of local entries:
    derived datatypes and group algebra, with some handles freed again
    before the snapshot so replay exercises both bind paths."""
    from repro.mpilib.comm import Group
    from repro.mpilib.datatypes import contiguous
    from repro.mpilib import DOUBLE
    from repro.mana.record_replay import RecordLog
    from repro.mana.virtualize import VCOMM_WORLD, VirtualHandleTable

    class _WorldStub:
        group = Group((0, 1, 2, 3))

    world = _WorldStub()
    table = VirtualHandleTable()
    table.register(HandleKind.COMM, world, virtual=VCOMM_WORLD)
    log = RecordLog()

    gvid = table.register(HandleKind.GROUP, world.group)
    log.record("comm_group", (VCOMM_WORLD,), gvid,
               result_kind=HandleKind.GROUP)
    for i in range(n_entries):
        if i % 2 == 0:
            dt = contiguous(2 + i % 5, DOUBLE)
            vid = table.register(HandleKind.DATATYPE, dt)
            log.record("type_create", (dt.recipe, vid), vid,
                       result_kind=HandleKind.DATATYPE)
        else:
            derived = world.group.incl([0, 1])
            vid = table.register(HandleKind.GROUP, derived)
            log.record("group_incl", (gvid, (0, 1)), vid,
                       result_kind=HandleKind.GROUP)
            if i % 4 == 1:  # freed before the checkpoint: replay re-frees it
                table.unregister(HandleKind.GROUP, vid)
                log.record("group_free", (vid,), None,
                           result_kind=HandleKind.GROUP)
    return world, table, log


def test_long_local_log_replays_without_recursion():
    """Regression: ~1000+ consecutive local entries used to recurse through
    _step and blow the interpreter's recursion limit on restart."""
    import sys

    from repro.mana.record_replay import RecordLog, ReplayEngine
    from repro.mana.virtualize import VCOMM_WORLD, VirtualHandleTable
    from repro.simtime import Engine

    n_entries = 4 * sys.getrecursionlimit()  # far beyond any stack budget
    world, table, log = _build_local_heavy_table_and_log(n_entries)
    n_logged = len(log)

    fresh = VirtualHandleTable()
    fresh.restore(table.snapshot())
    fresh.rebind(HandleKind.COMM, VCOMM_WORLD, world)
    log2 = RecordLog()
    log2.restore(log.snapshot())

    engine = Engine()
    replay = ReplayEngine(engine, None, fresh, log2)
    replay.start()
    engine.run()

    assert replay.finished.done
    assert replay.finished.value == replay.replayed == n_logged
    # the table converged to the pre-checkpoint bindings, kind by kind
    for kind in HandleKind:
        assert sorted(fresh.bound(kind)) == sorted(table.bound(kind))


def test_log_entries_carry_result_kind():
    """Non-comm creations must not rebind into the COMM namespace: the
    recorded entry carries its handle kind through the checkpoint image."""
    from repro.mana.record_replay import LogEntry

    _world, _table, log = _build_local_heavy_table_and_log(8)
    kinds = {e.op: e.result_kind for e in log.entries}
    assert kinds["type_create"] is HandleKind.DATATYPE
    assert kinds["group_incl"] is HandleKind.GROUP
    # default stays COMM so comm-management entries are unchanged
    assert LogEntry("comm_dup", (1,), 1000).result_kind is HandleKind.COMM
