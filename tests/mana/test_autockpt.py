"""Periodic checkpointing loop + Young/Daly interval."""

import math

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import load_checkpoint, restart
from repro.mana.autockpt import (
    PeriodicRun,
    run_with_periodic_checkpoints,
    young_daly_interval,
)

from tests.mana.conftest import allreduce_factory, launch_small


@pytest.fixture
def cluster():
    return make_cluster("auto", 2, interconnect="aries")


def test_young_daly():
    assert young_daly_interval(3600.0, 30.0) == pytest.approx(
        math.sqrt(2 * 30 * 3600)
    )
    with pytest.raises(ValueError):
        young_daly_interval(0, 1)


def test_periodic_checkpoints_taken(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=10))
    run = run_with_periodic_checkpoints(job, interval=1.4)
    assert run.completed
    assert len(run.reports) >= 2
    assert run.checkpoint_overhead > 0
    assert all(len(s["hist"]) == 10 for s in job.states)


def test_max_checkpoints_cap(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=10))
    run = run_with_periodic_checkpoints(job, interval=0.8, max_checkpoints=2)
    assert run.completed
    assert len(run.reports) == 2


def test_save_and_prune(cluster, tmp_path):
    job = launch_small(cluster, allreduce_factory(n_iters=10))
    run = run_with_periodic_checkpoints(job, interval=1.0,
                                        out_dir=tmp_path, keep=2)
    assert run.completed
    assert len(run.saved_dirs) <= 2
    remaining = sorted(p.name for p in tmp_path.iterdir())
    assert remaining == sorted(p.name for p in run.saved_dirs)
    assert run.latest_dir is not None


def test_recover_from_latest(cluster, tmp_path):
    factory = allreduce_factory(n_iters=10)
    baseline = launch_small(cluster, factory)
    baseline.run_to_completion()

    job = launch_small(cluster, factory)
    run = run_with_periodic_checkpoints(job, interval=1.2, out_dir=tmp_path)
    ckpt = load_checkpoint(run.latest_dir)
    recovered = restart(ckpt, cluster, factory, ranks_per_node=2)
    recovered.run_to_completion()
    assert [s["hist"] for s in recovered.states] == \
        [s["hist"] for s in baseline.states]


def test_bad_args(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=2))
    with pytest.raises(ValueError):
        run_with_periodic_checkpoints(job, interval=0)
    with pytest.raises(ValueError):
        run_with_periodic_checkpoints(job, interval=1, keep=0)
    job.run_to_completion()


def test_no_checkpoint_if_job_finishes_first(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=2))
    run = run_with_periodic_checkpoints(job, interval=1e6)
    assert run.completed
    assert run.reports == []


def test_until_deadline_interrupts(cluster, tmp_path):
    """Injected failure: the loop stops at the deadline with completed=False
    and the saved checkpoints recover the run."""
    factory = allreduce_factory(n_iters=10)
    job = launch_small(cluster, factory)
    run = run_with_periodic_checkpoints(job, interval=1.0, out_dir=tmp_path,
                                        until=2.6)
    assert not run.completed
    assert len(run.reports) >= 1
    assert job.engine.now <= 2.6 + 1e-9

    baseline = launch_small(cluster, factory)
    baseline.run_to_completion()
    recovered = restart(load_checkpoint(run.latest_dir), cluster, factory,
                        ranks_per_node=2)
    recovered.run_to_completion()
    assert [s["hist"] for s in recovered.states] == \
        [s["hist"] for s in baseline.states]
