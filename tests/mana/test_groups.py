"""Group handles under MANA: virtualization, algebra, replay across restart."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.virtualize import HandleKind
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.simtime import Completion


def _resolved(api, value):
    done = Completion(api.rt.engine)
    done.resolve(value)
    return done


def group_factory(n_iters=4):
    """MPI_Comm_group -> Group_excl -> Comm_create(subgroup) -> use it."""

    def factory(rank, size):
        def make_group(s, api):
            wg = api.comm_group()
            sub = api.group_excl(wg, [size - 1])   # drop the last rank
            s["group_size"] = api.group_size(sub)
            s["my_pos"] = api.group_rank(sub)
            return _resolved(api, sub)

        def create(s, api):
            return api.comm_create(s["vgroup"])

        def use(s, api):
            if s["subcomm"] is None:
                return _resolved(api, None)
            return api.allreduce(np.array([1.0]), SUM, comm=s["subcomm"])

        def absorb(s):
            if s["res"] is not None:
                s.setdefault("sums", []).append(float(s["res"][0]))

        return Program(Seq(
            Call(make_group, store="vgroup"),
            Call(create, store="subcomm"),
            Loop(n_iters, Seq(
                Call(use, store="res"),
                Compute(absorb, cost=0.4),
            )),
        ), name="group-app")

    return factory


@pytest.fixture
def cluster():
    return make_cluster("grp", 2, interconnect="aries")


def run(cluster, factory, **kw):
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=2,
                      app_mem_bytes=1 << 20, **kw).start()
    return job


def test_group_algebra_and_comm_create(cluster):
    job = run(cluster, group_factory())
    job.run_to_completion()
    for r, s in enumerate(job.states):
        assert s["group_size"] == 3
        if r < 3:
            assert s["my_pos"] == r
            assert s["sums"] == [3.0] * 4
        else:
            assert s["my_pos"] is None
            assert s["subcomm"] is None
            assert "sums" not in s


def test_group_ops_are_logged(cluster):
    job = run(cluster, group_factory())
    job.run_to_completion()
    ops = [e.op for e in job.runtimes[0].log.entries]
    assert ops[:3] == ["comm_group", "group_excl", "comm_create"]


def test_group_handles_survive_restart(cluster):
    factory = group_factory(n_iters=6)
    baseline = run(cluster, factory)
    baseline.run_to_completion()

    job = run(cluster, factory)
    ckpt, _ = job.checkpoint_at(1.0)
    dst = make_cluster("dst", 4, interconnect="tcp")
    job2 = restart(ckpt, dst, factory, ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    for s2, sb in zip(job2.states, baseline.states):
        assert s2.get("sums") == sb.get("sums")
    # the group virtual id in app state resolves in the rebuilt table
    vgroup = job2.states[0]["vgroup"]
    g = job2.runtimes[0].table.resolve(HandleKind.GROUP, vgroup)
    assert g.world_ranks == (0, 1, 2)


def test_group_free_replay(cluster):
    def factory(rank, size):
        def make_and_free(s, api):
            wg = api.comm_group()
            sub = api.group_incl(wg, [0, 1])
            api.group_free(sub)
            api.group_free(wg)
            return _resolved(api, None)

        def work(s, api):
            return api.allreduce(np.ones(1), SUM)

        return Program(Seq(
            Call(make_and_free),
            Loop(3, Seq(Call(work, store="w"),
                        Compute(lambda s: None, cost=0.5))),
        ))

    job = run(cluster, factory)
    ckpt, _ = job.checkpoint_at(0.8)
    job2 = restart(ckpt, cluster, factory, ranks_per_node=2)
    job2.run_to_completion()
    assert job2.states[0]["w"][0] == 4.0
    assert not job2.runtimes[0].table.bound(HandleKind.GROUP)


def test_group_union_intersection(cluster):
    def factory(rank, size):
        def ops(s, api):
            wg = api.comm_group()
            a = api.group_incl(wg, [0, 1])
            b = api.group_incl(wg, [1, 2])
            s["union"] = api.group_size(api.group_union(a, b))
            s["inter"] = api.group_size(api.group_intersection(a, b))
            return _resolved(api, None)

        return Program(Call(ops))

    job = run(cluster, factory)
    job.run_to_completion()
    assert job.states[0]["union"] == 3
    assert job.states[0]["inter"] == 1
