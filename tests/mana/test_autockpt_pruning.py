"""CheckpointPruner retention and periodic-loop boundary semantics."""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana.autockpt import (
    CheckpointPruner,
    run_with_periodic_checkpoints,
)

from tests.mana.conftest import allreduce_factory, launch_small


@pytest.fixture
def cluster():
    return make_cluster("prune", 2, interconnect="aries")


def _one_ckpt(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=6))
    ckpt, _ = job.checkpoint_at(0.5)
    return ckpt


def test_pruner_keeps_newest_generations(cluster, tmp_path):
    ckpt = _one_ckpt(cluster)
    pruner = CheckpointPruner(tmp_path, keep=2)
    for _ in range(4):
        pruner.save(ckpt)
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == ["ckpt_0002", "ckpt_0003"]
    assert [p.name for p in pruner.saved_dirs] == names
    assert pruner.latest_dir.name == "ckpt_0003"


def test_pruner_never_deletes_the_newest(cluster, tmp_path):
    ckpt = _one_ckpt(cluster)
    pruner = CheckpointPruner(tmp_path, keep=1)
    for i in range(3):
        target = pruner.save(ckpt)
        # after every save, the set just written is on disk and readable
        assert target.exists()
        assert pruner.latest_dir == target
        assert [p.name for p in pruner.saved_dirs] == [f"ckpt_{i:04d}"]


def test_pruner_rejects_keep_below_one(tmp_path):
    with pytest.raises(ValueError):
        CheckpointPruner(tmp_path, keep=0)


def test_until_on_interval_boundary_does_not_double_checkpoint(cluster):
    # until == 2 * interval: checkpoint at t=1 only; the loop must stop at
    # the boundary rather than cutting a redundant checkpoint there
    job = launch_small(cluster, allreduce_factory(n_iters=50))
    run = run_with_periodic_checkpoints(job, interval=1.0, until=2.0)
    assert not run.completed
    assert len(run.reports) == 1

    job2 = launch_small(make_cluster("prune2", 2, interconnect="aries"),
                        allreduce_factory(n_iters=50))
    run2 = run_with_periodic_checkpoints(job2, interval=1.0, until=1.0)
    assert not run2.completed
    assert len(run2.reports) == 0


def test_total_time_is_finish_time_not_deadline(cluster):
    # the engine clock lands on each run_until deadline; total_time must
    # still report when the job finished, not the overshot deadline
    factory = allreduce_factory(n_iters=4)
    ref = launch_small(make_cluster("prune3", 2, interconnect="aries"),
                       factory)
    ref_time = ref.run_to_completion()

    job = launch_small(cluster, factory)
    run = run_with_periodic_checkpoints(job, interval=100.0)
    assert run.completed and run.reports == []
    assert run.total_time == pytest.approx(ref_time)
    assert run.total_time < 100.0


def test_loop_rejects_keep_below_one(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=4))
    with pytest.raises(ValueError):
        run_with_periodic_checkpoints(job, interval=1.0, keep=0)
