"""Coordinator edge cases and failure-injection workflows."""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.coordinator import ControlPlaneModel
from repro.mana.protocol import CkptMsg

from tests.mana.conftest import allreduce_factory, launch_small


@pytest.fixture
def cluster():
    return make_cluster("edge", 2, interconnect="aries")


def test_concurrent_checkpoint_requests_rejected(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=6))
    job.coordinator.request_checkpoint()
    with pytest.raises(RuntimeError, match="already in progress"):
        job.coordinator.request_checkpoint()
    job.run_to_completion()


def test_sequential_checkpoints_allowed(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=8))
    job.checkpoint_at(0.6)
    job.checkpoint_at(1.8)
    assert job.coordinator.checkpoints_taken == 2
    job.run_to_completion()


def test_unexpected_reply_kind_raises(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=4))
    coord = job.coordinator
    coord._start_phase("collect-states", CkptMsg.STATE_REPLY)
    with pytest.raises(RuntimeError, match="expected"):
        coord._on_reply(0, CkptMsg.DRAINED, 123)


def test_duplicate_reply_raises(cluster):
    from repro.mana.protocol import RankCkptState

    job = launch_small(cluster, allreduce_factory(n_iters=4))
    coord = job.coordinator
    coord._start_phase("collect-states", CkptMsg.STATE_REPLY)
    coord._on_reply(0, CkptMsg.STATE_REPLY, RankCkptState.READY)
    with pytest.raises(RuntimeError, match="duplicate"):
        coord._on_reply(0, CkptMsg.STATE_REPLY, RankCkptState.READY)


def test_revision_outside_round_raises(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=4))
    coord = job.coordinator
    coord._start_phase("bookmarks", CkptMsg.BOOKMARKS)
    with pytest.raises(RuntimeError, match="revision"):
        coord._on_reply(1, CkptMsg.REVISE_IN_PHASE_1, None)


def test_control_plane_cost_scales_with_ranks():
    """Fig. 8's comm-overhead growth: broadcast fan-out is serialized at
    the coordinator."""
    model = ControlPlaneModel()
    assert model.fanout_delay(2047) > 100 * model.fanout_delay(7)


def test_slow_control_plane_slows_protocol_not_results(cluster):
    fast = launch_small(cluster, allreduce_factory(n_iters=6))
    _, fast_report = fast.checkpoint_at(0.6)
    fast.run_to_completion()

    slow = launch_mana_with_control(
        cluster, ControlPlaneModel(latency=5e-3, per_message_cpu=2e-3)
    )
    _, slow_report = slow.checkpoint_at(0.6)
    slow.run_to_completion()

    assert slow_report.comm_overhead > fast_report.comm_overhead
    assert [s["hist"] for s in slow.states] == [s["hist"] for s in fast.states]


def launch_mana_with_control(cluster, control):
    job = launch_mana(cluster, allreduce_factory(n_iters=6), n_ranks=4,
                      ranks_per_node=2, control=control)
    return job.start()


class TestFailureRecoveryWorkflow:
    """The operational pattern MANA enables: periodic checkpoints, node
    failure, restore the whole computation from the last checkpoint
    (coordinated checkpointing restores everything — §4.1)."""

    def test_periodic_checkpoint_then_recover(self, cluster):
        factory = allreduce_factory(n_iters=10)
        baseline = launch_small(cluster, factory)
        baseline.run_to_completion()
        expected = [s["hist"] for s in baseline.states]

        job = launch_small(cluster, factory)
        checkpoints = []
        for t in (0.8, 2.0, 3.2):
            ckpt, _ = job.checkpoint_at(t)
            checkpoints.append(ckpt)
        # DISASTER at t=3.9: a node dies.  The world is lost; the last
        # checkpoint is all that survives (on Lustre).
        job.run_until(3.9)
        survivor = checkpoints[-1]
        del job  # the crashed world

        # Recover on whatever hardware is available now.
        spare = make_cluster("spare", 4, interconnect="tcp",
                             default_mpi="mpich")
        recovered = restart(survivor, spare, factory, ranks_per_node=1)
        recovered.run_to_completion()
        assert [s["hist"] for s in recovered.states] == expected

    def test_recovery_loses_only_post_checkpoint_work(self, cluster):
        factory = allreduce_factory(n_iters=10)
        job = launch_small(cluster, factory)
        ckpt, _ = job.checkpoint_at(2.0)
        progress_at_ckpt = len(
            ckpt.image_for(0).restore_state()["app_state"]["hist"]
        )
        # the computation had advanced past the checkpoint before the crash
        job.run_until(4.0)
        progress_at_crash = len(job.states[0]["hist"])
        assert progress_at_crash > progress_at_ckpt

        recovered = restart(ckpt, cluster, factory, ranks_per_node=2)
        # step the engine until the restore completes (init + read + replay)
        while recovered.restart_report is None:
            assert recovered.engine.step(), "restore stalled"
        # recovery resumes from the checkpoint, not the crash point
        assert len(recovered.states[0]["hist"]) == progress_at_ckpt
        recovered.run_to_completion()
        assert len(recovered.states[0]["hist"]) == 10
