"""End-to-end checkpoint/restart: the paper's core guarantees.

The headline invariant (DESIGN.md #1): run-to-completion results equal
(run, checkpoint, restart anywhere, run-to-completion) results — across MPI
implementations, interconnects, clusters, and rank layouts.
"""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mana.virtualize import HandleKind

from tests.mana.conftest import (
    allreduce_factory,
    expected_ring_acc,
    launch_small,
    ring_factory,
)


def finish_states(job):
    job.run_to_completion()
    return job.states


class TestContinueAfterCheckpoint:
    def test_allreduce_results_unchanged(self, small_cluster):
        factory = allreduce_factory(n_iters=5)
        baseline = finish_states(launch_small(small_cluster, factory))
        job = launch_small(small_cluster, factory)
        job.checkpoint_at(1.2)
        states = finish_states(job)
        for s, b in zip(states, baseline):
            assert s["hist"] == b["hist"]

    def test_ring_with_in_flight_messages(self, small_cluster):
        factory = ring_factory(n_steps=6)
        job = launch_small(small_cluster, factory)
        job.checkpoint_at(0.55)
        states = finish_states(job)
        for r, s in enumerate(states):
            assert s["acc"] == expected_ring_acc(r, 4, 6)

    def test_multiple_checkpoints_in_one_run(self, small_cluster):
        factory = allreduce_factory(n_iters=8)
        job = launch_small(small_cluster, factory)
        job.checkpoint_at(0.7)
        job.checkpoint_at(2.1)
        job.checkpoint_at(3.4)
        states = finish_states(job)
        assert all(len(s["hist"]) == 8 for s in states)
        assert job.coordinator.checkpoints_taken == 3


class TestRestart:
    @pytest.mark.parametrize("mpi2,net2", [
        ("openmpi", "infiniband"),
        ("mpich", "tcp"),
        ("intelmpi", "aries"),
        ("mpich-debug", "tcp"),
    ])
    def test_cross_implementation_and_network(self, small_cluster, mpi2, net2):
        factory = allreduce_factory(n_iters=5)
        baseline = finish_states(launch_small(small_cluster, factory))

        job = launch_small(small_cluster, factory)
        ckpt, _report = job.checkpoint_at(1.2)

        cluster2 = make_cluster("dst", 4, interconnect=net2)
        job2 = restart(ckpt, cluster2, factory, mpi=mpi2, ranks_per_node=1)
        states = finish_states(job2)
        for s, b in zip(states, baseline):
            assert s["hist"] == b["hist"]
        assert job2.world.impl.name == mpi2
        assert job2.world.fabric.name == net2

    def test_layout_change_ranks_per_node(self, small_cluster):
        """8 ranks over 4 nodes -> restart as 8 ranks on 1 node (§3.6)."""
        factory = ring_factory(n_steps=5)
        src = make_cluster("src8", 4, interconnect="aries")
        job = launch_mana(src, factory, n_ranks=8, ranks_per_node=2).start()
        ckpt, _ = job.checkpoint_at(0.45)

        dst = make_cluster("dst1", 1, cores_per_node=16, interconnect="tcp")
        job2 = restart(ckpt, dst, factory, ranks_per_node=8)
        states = finish_states(job2)
        for r, s in enumerate(states):
            assert s["acc"] == expected_ring_acc(r, 8, 5)

    def test_restart_with_drained_messages(self, small_cluster, target_cluster):
        """Checkpoint cut while ring messages are in flight: the drained
        buffer must feed post-restart receives exactly once."""
        factory = ring_factory(n_steps=6, cost=0.3)
        job = launch_small(small_cluster, factory)
        ckpt, report = job.checkpoint_at(0.95)
        drained = sum(rt.stats.drained_messages for rt in job.runtimes)
        job2 = restart(ckpt, target_cluster, factory, ranks_per_node=1)
        states = finish_states(job2)
        for r, s in enumerate(states):
            assert s["acc"] == expected_ring_acc(r, 4, 6)
        # the invariant matters most when something was actually drained
        assert drained >= 0

    def test_restart_of_finished_job_is_noop_run(self, small_cluster):
        factory = allreduce_factory(n_iters=2)
        job = launch_small(small_cluster, factory)
        job.run_to_completion()
        ckpt, _ = job.checkpoint()
        job2 = restart(ckpt, small_cluster, factory, ranks_per_node=2)
        states = finish_states(job2)
        assert all(len(s["hist"]) == 2 for s in states)

    def test_second_checkpoint_after_restart(self, small_cluster, target_cluster):
        """Checkpoint a restarted job and restart again (chained migration)."""
        factory = allreduce_factory(n_iters=6)
        job = launch_small(small_cluster, factory)
        ckpt1, _ = job.checkpoint_at(1.2)
        job2 = restart(ckpt1, target_cluster, factory, ranks_per_node=1)
        job2.engine.run(until=job2.engine.now + 1.5)
        ckpt2, _ = job2.checkpoint()
        job3 = restart(ckpt2, small_cluster, factory, ranks_per_node=2,
                       mpi="intelmpi")
        states = finish_states(job3)
        assert all(s["hist"] == [10.0, 14.0, 18.0, 22.0, 26.0, 30.0]
                   for s in states)

    def test_restart_report_populated(self, small_cluster, target_cluster):
        factory = allreduce_factory(n_iters=4)
        job = launch_small(small_cluster, factory)
        ckpt, _ = job.checkpoint_at(1.0)
        job2 = restart(ckpt, target_cluster, factory, ranks_per_node=1)
        job2.run_to_completion()
        rep = job2.restart_report
        assert rep is not None
        assert rep.read_time > 0
        assert rep.total_time >= rep.read_time + rep.init_time


class TestImageInvariants:
    def test_images_exclude_lower_half(self, small_cluster):
        factory = allreduce_factory()
        job = launch_small(small_cluster, factory)
        ckpt, _ = job.checkpoint_at(1.0)
        for img, rt in zip(ckpt.images, job.runtimes):
            names = {d.name for d in img.regions}
            assert not any("text" in n and n.startswith(("craympich", "mpich"))
                           for n in names)
            assert "aries-shmem" not in names
            assert img.size_bytes == rt.proc.upper_bytes()

    def test_image_size_reflects_app_memory(self, small_cluster):
        factory = allreduce_factory()
        big = launch_mana(small_cluster, factory, n_ranks=2, ranks_per_node=1,
                          app_mem_bytes=200 << 20).start()
        ckpt_big, _ = big.checkpoint_at(1.0)
        small = launch_mana(small_cluster, factory, n_ranks=2, ranks_per_node=1,
                            app_mem_bytes=20 << 20).start()
        ckpt_small, _ = small.checkpoint_at(1.0)
        assert ckpt_big.total_bytes > ckpt_small.total_bytes + (300 << 20)

    def test_checkpoint_discards_network_driver_state(self, small_cluster):
        """MANA writes less than DMTCP/InfiniBand would: driver regions are
        not in the image (§3.2.2)."""
        factory = allreduce_factory()
        job = launch_small(small_cluster, factory)
        ckpt, _ = job.checkpoint_at(1.0)
        rt = job.runtimes[0]
        assert rt.proc.lower_bytes() > 0
        assert ckpt.image_for(0).size_bytes == rt.proc.upper_bytes()


class TestVirtualHandles:
    def test_real_handles_differ_across_restart_virtuals_do_not(
            self, small_cluster, target_cluster):
        factory = allreduce_factory(n_iters=5)
        job = launch_small(small_cluster, factory)
        old_real = job.runtimes[0].table.resolve(HandleKind.COMM, 1).handle
        ckpt, _ = job.checkpoint_at(1.2)
        job2 = restart(ckpt, target_cluster, factory, mpi="openmpi",
                       ranks_per_node=1)
        job2.run_to_completion()
        new_real = job2.runtimes[0].table.resolve(HandleKind.COMM, 1).handle
        assert old_real != new_real  # different impl, different value space
        # the application-visible handle is the same virtual id (1) both times


class TestDrainInvariant:
    def test_no_in_flight_bytes_at_image_time(self, small_cluster):
        factory = ring_factory(n_steps=6, cost=0.25)
        job = launch_small(small_cluster, factory)
        ckpt, report = job.checkpoint_at(0.6)
        # After the checkpoint resolves, nothing that predates it may still
        # be on the wire unaccounted: counters balance.
        sent = sum(rt.counters.sent_total for rt in job.runtimes)
        received = sum(rt.counters.received_total for rt in job.runtimes)
        buffered = sum(len(rt.buffer) for rt in job.runtimes)
        assert received == sent
        assert buffered >= 0

    def test_drain_counts_reported(self, small_cluster):
        factory = ring_factory(n_steps=6, cost=0.25)
        job = launch_small(small_cluster, factory)
        _, report = job.checkpoint_at(0.6)
        assert report.drain_time >= 0
        assert report.write_time > 0
        assert report.total_time >= report.drain_time + report.write_time
