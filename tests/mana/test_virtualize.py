"""Virtual handle tables."""

import pytest

from repro.mana.virtualize import (
    VCOMM_WORLD,
    HandleKind,
    VirtualHandleTable,
    VirtualizationError,
)


@pytest.fixture
def table():
    return VirtualHandleTable()


def test_register_mints_increasing_ids(table):
    a = table.register(HandleKind.COMM, object())
    b = table.register(HandleKind.COMM, object())
    assert b > a >= 1000


def test_kinds_have_independent_namespaces(table):
    c = table.register(HandleKind.COMM, "c")
    d = table.register(HandleKind.DATATYPE, "d")
    assert table.resolve(HandleKind.COMM, c) == "c"
    assert table.resolve(HandleKind.DATATYPE, d) == "d"


def test_explicit_virtual_id(table):
    table.register(HandleKind.COMM, "world", virtual=VCOMM_WORLD)
    assert table.resolve(HandleKind.COMM, VCOMM_WORLD) == "world"


def test_double_bind_rejected(table):
    table.register(HandleKind.COMM, "a", virtual=5)
    with pytest.raises(VirtualizationError):
        table.register(HandleKind.COMM, "b", virtual=5)


def test_resolve_counts_lookups(table):
    vid = table.register(HandleKind.COMM, "x")
    assert table.lookups == 0
    table.resolve(HandleKind.COMM, vid)
    table.resolve(HandleKind.COMM, vid)
    assert table.lookups == 2


def test_dangling_resolve_raises(table):
    with pytest.raises(VirtualizationError, match="dangling"):
        table.resolve(HandleKind.COMM, 9999)


def test_unregister(table):
    vid = table.register(HandleKind.COMM, "x")
    table.unregister(HandleKind.COMM, vid)
    with pytest.raises(VirtualizationError):
        table.resolve(HandleKind.COMM, vid)
    with pytest.raises(VirtualizationError):
        table.unregister(HandleKind.COMM, vid)


def test_rebind_points_to_new_real(table):
    vid = table.register(HandleKind.COMM, "old")
    table.rebind(HandleKind.COMM, vid, "new")
    assert table.resolve(HandleKind.COMM, vid) == "new"


def test_reverse_lookup(table):
    real = object()
    vid = table.register(HandleKind.GROUP, real)
    assert table.reverse(HandleKind.GROUP, real) == vid
    assert table.reverse(HandleKind.GROUP, object()) is None


def test_clear_reals_reports_dangling(table):
    a = table.register(HandleKind.COMM, "a")
    b = table.register(HandleKind.DATATYPE, "b")
    dangling = table.clear_reals()
    assert (HandleKind.COMM, a) in dangling
    assert (HandleKind.DATATYPE, b) in dangling
    with pytest.raises(VirtualizationError):
        table.resolve(HandleKind.COMM, a)


def test_snapshot_restore_preserves_counter(table):
    a = table.register(HandleKind.COMM, "a")
    snap = table.snapshot()

    fresh = VirtualHandleTable()
    fresh.restore(snap)
    fresh.rebind(HandleKind.COMM, a, "a2")  # replay rebinds old ids
    new = fresh.register(HandleKind.COMM, "b")
    assert new > a, "minting after restore must not collide with old ids"


def test_snapshot_does_not_consume_counter_values(table):
    table.snapshot()
    a = table.register(HandleKind.COMM, "a")
    fresh = VirtualHandleTable()
    b = fresh.register(HandleKind.COMM, "a")
    assert a == b


def test_snapshot_is_picklable(table):
    import pickle

    table.register(HandleKind.COMM, object())
    snap = pickle.loads(pickle.dumps(table.snapshot()))
    assert snap["bound"]["comm"]


def test_rebind_never_registered_vid_raises(table):
    """Replay bugs that rebind a dangling handle must surface, not be
    silently masked by minting a binding nothing accounts for."""
    with pytest.raises(VirtualizationError, match="never bound"):
        table.rebind(HandleKind.COMM, 4242, "ghost")


def test_rebind_allowed_only_for_snapshot_bound_set(table):
    live = table.register(HandleKind.COMM, "live")
    freed = table.register(HandleKind.COMM, "freed")
    table.unregister(HandleKind.COMM, freed)
    snap = table.snapshot()

    fresh = VirtualHandleTable()
    fresh.restore(snap)
    assert fresh.expects_rebind(HandleKind.COMM, live)
    assert not fresh.expects_rebind(HandleKind.COMM, freed)
    fresh.rebind(HandleKind.COMM, live, "live2")
    with pytest.raises(VirtualizationError, match="never bound"):
        fresh.rebind(HandleKind.COMM, freed, "freed2")
    with pytest.raises(VirtualizationError, match="never bound"):
        fresh.rebind(HandleKind.GROUP, live, "wrong-namespace")


def test_rebind_after_clear_reals(table):
    vid = table.register(HandleKind.DATATYPE, "dt")
    dangling = table.clear_reals()
    assert (HandleKind.DATATYPE, vid) in dangling
    assert table.expects_rebind(HandleKind.DATATYPE, vid)
    table.rebind(HandleKind.DATATYPE, vid, "dt2")
    assert table.resolve(HandleKind.DATATYPE, vid) == "dt2"
    # the entitlement is consumed: a second restart must re-clear first
    assert not table.expects_rebind(HandleKind.DATATYPE, vid)
