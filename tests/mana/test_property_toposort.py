"""Property tests for the topological-sort protocol's ordering core.

Two claims, fuzzed over arbitrary send/receive bookmark matrices:

1. any wave order :func:`topological_waves` emits is a valid linearization
   of the in-flight dependency DAG (every rank strictly after every rank
   it depends on, each rank placed exactly once);
2. injected cycles never deadlock the planner — the cyclic ranks always
   land in the bounded-drain ``fallback`` set, never in a wave.

A third, runtime-level test drives a real ring-of-sends app (a guaranteed
dependency cycle) through a topo checkpoint and restarts it: the fallback
path must produce a working image, not just a plan.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mana.protocol_engine import build_inflight_dag, topological_waves

RANKS = 6


@st.composite
def bookmark_matrices(draw):
    """Random (sent, received) bookmark pairs with received <= sent."""
    n = draw(st.integers(min_value=2, max_value=RANKS))
    sent: dict[int, dict[int, int]] = {}
    received: dict[int, dict[int, int]] = {i: {} for i in range(n)}
    for j in range(n):
        sent[j] = {}
        for i in range(n):
            if i == j:
                continue
            total = draw(st.integers(min_value=0, max_value=3))
            if total:
                sent[j][i] = total
                received[i][j] = draw(
                    st.integers(min_value=0, max_value=total)
                )
    return n, sent, received


@given(bookmark_matrices())
@settings(max_examples=200, deadline=None)
def test_waves_are_a_valid_linearization(matrices):
    """Every emitted order respects every in-flight dependency edge."""
    n, sent, received = matrices
    edges = build_inflight_dag(sent, received)
    waves, fallback = topological_waves(range(n), edges)

    placed = [r for wave in waves for r in wave]
    # partition: each rank exactly once, across waves + fallback
    assert sorted(placed + list(fallback)) == list(range(n))

    wave_of = {r: w for w, wave in enumerate(waves) for r in wave}
    for j, dsts in edges.items():
        for i in dsts:
            if j in wave_of and i in wave_of:
                # i depends on j: strictly later wave
                assert wave_of[i] > wave_of[j], (
                    f"edge {j}->{i} violated: wave {wave_of[j]} vs "
                    f"{wave_of[i]}"
                )
            elif j in fallback:
                # anything downstream of a cycle cannot be linearized
                assert i in fallback


@given(bookmark_matrices())
@settings(max_examples=200, deadline=None)
def test_waves_deterministic(matrices):
    """Same bookmarks, same plan — the order is replay-stable."""
    n, sent, received = matrices
    edges = build_inflight_dag(sent, received)
    assert topological_waves(range(n), edges) == topological_waves(
        range(n), build_inflight_dag(sent, received)
    )


@given(
    st.integers(min_value=2, max_value=RANKS),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_injected_cycles_take_the_fallback(n, data):
    """A planted cycle always lands in ``fallback``, never in a wave."""
    cycle_len = data.draw(st.integers(min_value=2, max_value=n))
    cycle = list(range(cycle_len))
    sent = {j: {} for j in range(n)}
    received = {i: {} for i in range(n)}
    # the planted cycle: each member has one undrained send to the next
    for idx, j in enumerate(cycle):
        sent[j][cycle[(idx + 1) % cycle_len]] = 1
    # plus arbitrary extra *acyclic-or-not* edges drawn on top
    for j in range(n):
        for i in range(n):
            if i != j and data.draw(st.booleans()):
                sent[j][i] = sent[j].get(i, 0) + 1

    edges = build_inflight_dag(sent, received)
    waves, fallback = topological_waves(range(n), edges)
    for r in cycle:
        assert r in fallback, f"cycle member {r} escaped the fallback"
    # the planner never loses ranks, cycle or not
    assert sorted([r for w in waves for r in w] + list(fallback)) == list(
        range(n)
    )


def test_fully_drained_world_is_one_wave():
    """No in-flight traffic: everything checkpoints in wave zero."""
    sent = {0: {1: 2}, 1: {0: 1}}
    received = {0: {1: 1}, 1: {0: 2}}
    edges = build_inflight_dag(sent, received)
    assert edges == {}
    waves, fallback = topological_waves(range(2), edges)
    assert waves == [(0, 1)] and fallback == ()


def test_ring_app_cycle_checkpoints_via_fallback():
    """Runtime integration: a send-ring (dependency cycle) under topo.

    Every rank keeps a message in flight to its successor, so the DAG is
    one big cycle; the checkpoint must complete through the bounded-drain
    fallback and the image must restart cleanly.
    """
    from tests.mana.conftest import ring_job  # local factory helper

    job = ring_job(n_ranks=4, protocol="topo")
    ckpt, report = job.checkpoint_at(0.6)
    assert report.protocol == "topo"
    # the ring is a 4-cycle: every rank falls back
    assert set(report.fallback_ranks) == {0, 1, 2, 3}
    assert report.ckpt_set is not None
    job.run_to_completion()
