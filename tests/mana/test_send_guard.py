"""Exactly-once sends in multi-op call leaves (sendrecv / exchange).

Regression suite for a bug found during reproduction: a Call leaf that both
sends and receives is re-executed after restart (the interpreter's
continuation unit is the leaf), so its send — already drained into the
peer's buffer at checkpoint time — would be duplicated, and a later receive
with the same envelope could match the stale duplicate.  The send guard
keys on the dynamic leaf instance and is part of the checkpoint image.
"""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mprog import Call, Compute, Loop, Program, Seq


def skewed_sendrecv_factory(n_steps=4):
    """Rank 1 arrives late at each exchange, so a checkpoint catches rank 0
    blocked inside the sendrecv leaf with its send already drained."""

    def factory(rank, size):
        def init(s):
            s["v"] = float(s["rank"])
            s["log"] = []

        def skew(s):
            return 0.1 + 0.8 * s["rank"]

        def xchg(s, api):
            peer = 1 - s["rank"]
            return api.sendrecv(peer, np.array([s["v"]]), source=peer, tag=1)

        def absorb(s):
            s["log"].append(float(s["got"][0][0]))
            s["v"] += 10.0  # payload varies: duplicates would be visible

        return Program(Seq(Compute(init), Loop(n_steps, Seq(
            Compute(lambda s: None, cost=skew),
            Call(xchg, store="got"),
            Compute(absorb),
        ))))

    return factory


def exchange_factory(n_steps=4):
    """Batched exchange with both ring neighbours, varying payloads."""

    def factory(rank, size):
        def init(s):
            s["v"] = float(s["rank"])
            s["log"] = []

        def skew(s):
            return 0.05 + 0.25 * s["rank"]

        def xchg(s, api):
            left, right = (s["rank"] - 1) % s["size"], (s["rank"] + 1) % s["size"]
            payload = np.array([s["v"]])
            return api.exchange(
                sends=[(left, payload, 2, 8), (right, payload, 2, 8)],
                recvs=[(left, 2), (right, 2)],
            )

        def absorb(s):
            got = [float(d[0]) for d, _st in s["res"]]
            s["log"].append(tuple(got))
            s["v"] += 100.0

        return Program(Seq(Compute(init), Loop(n_steps, Seq(
            Compute(lambda s: None, cost=skew),
            Call(xchg, store="res"),
            Compute(absorb),
        ))))

    return factory


@pytest.fixture
def cluster():
    return make_cluster("guard", 2, interconnect="tcp")


def baseline_logs(cluster, factory, n_ranks, rpn):
    job = launch_mana(cluster, factory, n_ranks=n_ranks, ranks_per_node=rpn,
                      app_mem_bytes=1 << 20).start()
    job.run_to_completion()
    return [s["log"] for s in job.states], job.engine.now


@pytest.mark.parametrize("t_frac", [0.05, 0.2, 0.4, 0.6, 0.8])
def test_sendrecv_no_duplicate_after_restart(cluster, t_frac):
    factory = skewed_sendrecv_factory()
    expected, total = baseline_logs(cluster, factory, 2, 1)
    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    ckpt, _ = job.checkpoint_at(total * t_frac)
    job2 = restart(ckpt, cluster, factory, ranks_per_node=1)
    job2.run_to_completion()
    assert [s["log"] for s in job2.states] == expected
    # the interrupted original continues correctly too
    job.run_to_completion()
    assert [s["log"] for s in job.states] == expected


@pytest.mark.parametrize("t_frac", [0.1, 0.35, 0.65, 0.9])
def test_exchange_no_duplicate_after_restart(t_frac):
    cluster = make_cluster("guard4", 4, interconnect="aries")
    factory = exchange_factory()
    expected, total = baseline_logs(cluster, factory, 4, 1)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    ckpt, _ = job.checkpoint_at(total * t_frac)
    job2 = restart(ckpt, cluster, factory, ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    assert [s["log"] for s in job2.states] == expected


def test_guard_state_travels_in_image(cluster):
    factory = skewed_sendrecv_factory()
    _expected, total = baseline_logs(cluster, factory, 2, 1)
    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    ckpt, _ = job.checkpoint_at(total * 0.15)
    states = [ckpt.image_for(r).restore_state() for r in range(2)]
    # rank 0 was blocked in the sendrecv leaf: its guard must be captured
    assert any(s["sends_done"] for s in states), \
        "a pending sendrecv's send guard should be in the image"


def test_guard_cleaned_up_after_completion(cluster):
    factory = skewed_sendrecv_factory()
    job = launch_mana(cluster, factory, n_ranks=2, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    job.run_to_completion()
    assert all(not rt.sends_done for rt in job.runtimes)


@pytest.mark.parametrize("t_frac", [0.15, 0.45, 0.75])
def test_exchange_rendezvous_sizes_across_restart(t_frac):
    """Same exchange pattern but with modeled sizes deep in the rendezvous
    regime (1 MB > every implementation's eager threshold): RTS/CTS
    handshakes are in flight at checkpoint time and the drain must complete
    them; restart must not duplicate or lose anything."""
    cluster = make_cluster("rdv", 4, interconnect="aries")

    def factory(rank, size):
        def init(s):
            s["v"] = float(s["rank"])
            s["log"] = []

        def skew(s):
            return 0.05 + 0.22 * s["rank"]

        def xchg(s, api):
            left = (s["rank"] - 1) % s["size"]
            right = (s["rank"] + 1) % s["size"]
            payload = np.array([s["v"]])
            return api.exchange(
                sends=[(left, payload, 9, 1 << 20), (right, payload, 9, 1 << 20)],
                recvs=[(left, 9), (right, 9)],
            )

        def absorb(s):
            got = tuple(float(d[0]) for d, _st in s["res"])
            s["log"].append(got)
            s["v"] += 1000.0

        return Program(Seq(Compute(init), Loop(3, Seq(
            Compute(lambda s: None, cost=skew),
            Call(xchg, store="res"),
            Compute(absorb),
        ))))

    expected, total = baseline_logs(cluster, factory, 4, 1)
    job = launch_mana(cluster, factory, n_ranks=4, ranks_per_node=1,
                      app_mem_bytes=1 << 20).start()
    ckpt, _ = job.checkpoint_at(total * t_frac)
    job2 = restart(ckpt, cluster, factory, ranks_per_node=1, mpi="mpich")
    job2.run_to_completion()
    assert [s["log"] for s in job2.states] == expected
    job.run_to_completion()
    assert [s["log"] for s in job.states] == expected
