"""The pluggable protocol layer: alg2 vs topo, differentially.

The tentpole claim, at unit scale: both engines cut the same consistent
cut.  A checkpoint + cross-cluster restart must finish with bit-identical
state fingerprints whichever protocol drove it — on a collective-heavy app
(laggard classification) and on a p2p ring (in-flight drain + the full
dependency-cycle fallback).  The topo engine must also be *why* you'd pick
it: its quiesce wait (intent → first drain) is one control round, below
alg2's multi-round global quiesce on the same cut.
"""

import pytest

from repro.conformance.oracles import state_fingerprint
from repro.hardware.cluster import make_cluster
from repro.mana import restart
from repro.mana.protocol import PROTOCOLS
from repro.mana.protocol_engine import make_protocol

from tests.mana.conftest import (
    allreduce_factory,
    expected_ring_acc,
    launch_small,
    ring_factory,
)


def _cycle(factory, protocol, t_ckpt=0.6, n_ranks=4):
    """checkpoint on aries/craympich at ``t_ckpt``, restart on tcp/mpich."""
    src = make_cluster("src", 2, interconnect="aries",
                       default_mpi="craympich")
    job = launch_small(src, factory, n_ranks=n_ranks, protocol=protocol)
    ckpt, report = job.checkpoint_at(t_ckpt)
    dst = make_cluster("dst", 2, interconnect="tcp", default_mpi="mpich")
    job2 = restart(ckpt, dst, factory, mpi="mpich", protocol=protocol)
    job2.run_to_completion()
    return state_fingerprint(job2.states), report


@pytest.mark.parametrize("factory_fn,kw", [
    (allreduce_factory, {}),                  # collective-heavy: laggards
    (ring_factory, {"n_steps": 6}),           # p2p in flight: drain + cycle
])
def test_restart_fingerprints_bit_identical_across_protocols(factory_fn, kw):
    fp_alg2, rep_alg2 = _cycle(factory_fn(**kw), "alg2")
    fp_topo, rep_topo = _cycle(factory_fn(**kw), "topo")
    assert fp_alg2 == fp_topo
    assert rep_alg2.protocol == "alg2" and rep_topo.protocol == "topo"


def test_topo_quiesce_wait_below_alg2_on_collectives():
    """The headline latency win: one control round vs alg2's 2+extra."""
    _fp_a, rep_alg2 = _cycle(allreduce_factory(), "alg2")
    _fp_t, rep_topo = _cycle(allreduce_factory(), "topo")
    assert rep_topo.quiesce_wait > 0
    assert rep_topo.quiesce_wait < rep_alg2.quiesce_wait
    # alg2's quiesce wait covers the intent rounds + bookmark collection
    assert rep_alg2.rounds >= 1 and rep_topo.rounds == 1


def test_ring_cycle_takes_fallback_and_restart_is_exact():
    """The full send ring is one dependency cycle: every rank must land in
    the bounded-drain fallback, and the image must still be exact."""
    n, steps = 4, 6
    fp_topo, rep = _cycle(ring_factory(n_steps=steps), "topo")
    assert set(rep.fallback_ranks) == set(range(n))

    # golden: the same app, never checkpointed
    src = make_cluster("gold", 2, interconnect="aries",
                       default_mpi="craympich")
    job = launch_small(src, ring_factory(n_steps=steps), n_ranks=n)
    job.run_to_completion()
    assert fp_topo == state_fingerprint(job.states)
    for st in job.states:
        assert st["acc"] == expected_ring_acc(st["rank"], n, steps)


def test_collective_app_has_no_fallback_under_topo():
    """Laggards drain through classification, not the cycle fallback."""
    _fp, rep = _cycle(allreduce_factory(), "topo")
    assert rep.fallback_ranks == ()


def test_alg2_is_the_default_protocol():
    src = make_cluster("dflt", 2, interconnect="aries",
                       default_mpi="craympich")
    job = launch_small(src, allreduce_factory(), n_ranks=4)
    _ckpt, report = job.checkpoint_at(0.6)
    assert report.protocol == "alg2"
    assert report.fallback_ranks == ()
    job.run_to_completion()


def test_make_protocol_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown checkpoint protocol"):
        make_protocol("two-phase", None)
    assert set(PROTOCOLS) == {"alg2", "topo"}
