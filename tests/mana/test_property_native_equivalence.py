"""Property: MANA is *transparent* — any program computes exactly the same
values under MANA as natively (only timing differs)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana
from repro.mpilib import MAX, MIN, SUM, launch
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.runtime.native import NativeJob
from repro.simtime import Engine

OPS = {"sum": SUM, "max": MAX, "min": MIN}


def build_program(step_kinds, n_iters):
    """A program from a generated list of step kinds."""

    def factory(rank, size):
        def init(s):
            rng = np.random.default_rng(500 + s["rank"])
            s["v"] = rng.random(8)
            s["out"] = []

        nodes = [Compute(init)]
        body = []
        for i, kind in enumerate(step_kinds):
            if kind in OPS:
                op = OPS[kind]

                def coll(s, api, op=op):
                    return api.allreduce(s["v"], op)

                def absorb(s, i=i):
                    s["out"].append(round(float(s["_c"].sum()), 12))
                    s["v"] = s["v"] * 0.5 + 0.1

                body.append(Call(coll, store="_c"))
                body.append(Compute(absorb))
            elif kind == "ring":
                def send(s, api):
                    return api.send((s["rank"] + 1) % s["size"],
                                    s["v"][:2].copy(), tag=5)

                def recv(s, api):
                    return api.recv(source=(s["rank"] - 1) % s["size"], tag=5)

                def mix(s):
                    data, _ = s["_r"]
                    s["v"][:2] = 0.5 * (s["v"][:2] + data)
                    s["out"].append(round(float(s["v"].sum()), 12))

                body.append(Call(send))
                body.append(Call(recv, store="_r"))
                body.append(Compute(mix))
            elif kind == "gather":
                def gath(s, api):
                    return api.gather(np.array([s["v"].sum()]), root=0)

                def take(s):
                    if s["_g"] is not None:
                        s["out"].append(
                            round(float(sum(g[0] for g in s["_g"])), 12)
                        )

                body.append(Call(gath, store="_g"))
                body.append(Compute(take))
            elif kind == "bcast":
                def bc(s, api):
                    payload = s["v"][:3].copy() if s["rank"] == 0 else None
                    return api.bcast(payload, root=0)

                def absorb_bc(s):
                    s["v"][:3] = s["_b"]
                    s["out"].append(round(float(s["v"][0]), 12))

                body.append(Call(bc, store="_b"))
                body.append(Compute(absorb_bc))
        nodes.append(Loop(n_iters, Seq(*body)))
        return Program(Seq(*nodes), name="generated")

    return factory


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    step_kinds=st.lists(
        st.sampled_from(["sum", "max", "min", "ring", "gather", "bcast"]),
        min_size=1, max_size=4,
    ),
    n_iters=st.integers(1, 3),
    n_ranks=st.sampled_from([2, 3, 4]),
    mpi=st.sampled_from(["craympich", "mpich", "openmpi"]),
)
def test_mana_transparent_for_generated_programs(step_kinds, n_iters,
                                                 n_ranks, mpi):
    factory = build_program(step_kinds, n_iters)
    cluster = make_cluster("prop", 2, interconnect="aries")

    engine = Engine()
    world = launch(engine, cluster, n_ranks,
                   ranks_per_node=-(-n_ranks // 2), mpi=mpi)
    native = NativeJob(engine, world,
                       [factory(r, n_ranks) for r in range(n_ranks)])
    native.run_to_completion()

    mana = launch_mana(cluster, factory, n_ranks=n_ranks,
                       ranks_per_node=-(-n_ranks // 2), mpi=mpi,
                       app_mem_bytes=1 << 20).start()
    mana.run_to_completion()

    for ns, ms in zip(native.states, mana.states):
        assert ns["out"] == ms["out"]
        assert np.array_equal(ns["v"], ms["v"])
