"""Coordinator abort path: a rank dies mid-protocol and the round must
abort cleanly — no hang, no misdirected-reply RuntimeError — with the
survivors resumed."""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana.coordinator import CheckpointAborted
from repro.mana.protocol import CkptMsg
from repro.mprog import Compute, Loop, Program, Seq

from tests.mana.conftest import allreduce_factory, launch_small


def _tick(s):
    s["steps"] = s.get("steps", 0) + 1


def compute_only_factory(n_iters=40, cost=0.1):
    """No communication: survivors can finish even with a peer dead."""

    def factory(rank, size):
        return Program(
            Seq(Loop(n_iters, Compute(_tick, cost=cost))), name="compute-only"
        )

    return factory


@pytest.fixture
def cluster():
    return make_cluster("abort", 4, interconnect="aries")


def _kill_and_notify(job, rank):
    job.runtimes[rank].kill()
    job.coordinator.notify_rank_failure(rank)


def test_abort_mid_round_resolves_completion(cluster):
    job = launch_small(cluster, compute_only_factory(), n_ranks=4)
    job.run_until(0.5)
    done = job.coordinator.request_checkpoint()
    # step into the protocol so replies are genuinely in flight
    for _ in range(3):
        job.engine.step()
    assert job.coordinator._phase == "collect-states"
    _kill_and_notify(job, 2)
    assert done.done
    err = done.value
    assert isinstance(err, CheckpointAborted)
    assert err.rank == 2 and err.phase == "collect-states"
    # in-flight stale replies drain without raising, survivors finish
    job.engine.run()
    for rank, rt in enumerate(job.runtimes):
        if rank == 2:
            assert rt.driver.parked_at == "dead"
        else:
            assert rt.driver.parked_at == "finished"
            assert rt.driver.interp.state["steps"] == 40


def test_abort_during_quiesced_phase_resumes_survivors(cluster):
    job = launch_small(cluster, compute_only_factory(), n_ranks=4)
    job.run_until(0.5)
    done = job.coordinator.request_checkpoint()
    while job.coordinator._phase != "drain":
        assert job.engine.step(), "protocol stalled before drain"
    _kill_and_notify(job, 1)
    assert isinstance(done.value, CheckpointAborted)
    assert done.value.phase == "drain"
    job.engine.run()
    survivors = [rt for r, rt in enumerate(job.runtimes) if r != 1]
    assert all(rt.driver.parked_at == "finished" for rt in survivors)


def test_job_checkpoint_raises_on_abort(cluster):
    job = launch_small(cluster, compute_only_factory(), n_ranks=4)
    job.run_until(0.5)
    job.engine.call_after(0.001, _kill_and_notify, job, 3)
    with pytest.raises(CheckpointAborted) as exc:
        job.checkpoint()
    assert exc.value.rank == 3


def test_new_checkpoint_refused_after_failure(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=6), n_ranks=4)
    job.run_until(0.5)
    job.coordinator.notify_rank_failure(0)
    with pytest.raises(RuntimeError, match="restart from the last checkpoint"):
        job.coordinator.request_checkpoint()


def test_notify_is_idempotent_and_safe_when_idle(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=6), n_ranks=4)
    job.coordinator.notify_rank_failure(1)
    job.coordinator.notify_rank_failure(1)  # no protocol in flight: no-op
    assert job.coordinator.failed_ranks == {1}


def test_stale_reply_after_abort_is_dropped(cluster):
    job = launch_small(cluster, compute_only_factory(), n_ranks=4)
    job.run_until(0.5)
    job.coordinator.request_checkpoint()
    for _ in range(3):
        job.engine.step()
    _kill_and_notify(job, 0)
    # a reply straggling in from any rank must be ignored, not a protocol
    # error — the round it belonged to no longer exists
    job.coordinator._on_reply(1, CkptMsg.STATE_REPLY, None)
    job.coordinator._on_reply(0, CkptMsg.BOOKMARKS, {})
