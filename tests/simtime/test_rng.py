"""RNG stream determinism and independence."""

import numpy as np

from repro.simtime import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7).stream("lustre").random(10)
    b = RngStreams(7).stream("lustre").random(10)
    assert np.array_equal(a, b)


def test_different_names_give_independent_streams():
    streams = RngStreams(7)
    a = streams.stream("lustre").random(10)
    b = streams.stream("net").random(10)
    assert not np.array_equal(a, b)


def test_stream_identity_does_not_depend_on_creation_order():
    s1 = RngStreams(3)
    s1.stream("aaa")
    first_order = s1.stream("zzz").random(5)

    s2 = RngStreams(3)
    reversed_order = s2.stream("zzz").random(5)
    assert np.array_equal(first_order, reversed_order)


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_fork_changes_streams_deterministically():
    base = RngStreams(5)
    f1 = base.fork("restart-1").stream("lustre").random(4)
    f2 = RngStreams(5).fork("restart-1").stream("lustre").random(4)
    assert np.array_equal(f1, f2)
    assert not np.array_equal(f1, RngStreams(5).stream("lustre").random(4))
