"""Engine.run(until=...) clock semantics.

Regression tests for the historical inconsistency where ``run(until=T)``
left ``now`` at the last event's time when the queue drained before ``T``,
but at exactly ``T`` when events remained — callers could not rely on the
clock landing on the deadline.  The contract now: a finite ``until`` always
advances the clock to ``until`` (never backwards)."""

import math

from repro.simtime import Engine


def test_run_until_advances_clock_to_deadline_past_last_event():
    eng = Engine()
    seen = []
    eng.call_after(1.0, seen.append, 1)
    t = eng.run(until=5.0)
    assert seen == [1]
    assert t == 5.0 and eng.now == 5.0


def test_run_until_on_empty_queue_advances_clock():
    eng = Engine()
    assert eng.run(until=2.0) == 2.0
    assert eng.now == 2.0


def test_run_until_in_the_past_never_rewinds():
    eng = Engine()
    eng.call_after(4.0, lambda: None)
    eng.run(until=5.0)
    assert eng.run(until=3.0) == 5.0
    assert eng.now == 5.0


def test_run_without_until_stops_at_last_event():
    eng = Engine()
    eng.call_after(1.5, lambda: None)
    assert eng.run() == 1.5
    assert eng.now == 1.5


def test_run_until_infinity_behaves_like_no_deadline():
    eng = Engine()
    eng.call_after(1.5, lambda: None)
    assert eng.run(until=math.inf) == 1.5


def test_deferred_events_beyond_deadline_survive():
    eng = Engine()
    seen = []
    eng.call_after(1.0, seen.append, "a")
    eng.call_after(7.0, seen.append, "b")
    eng.run(until=3.0)
    assert seen == ["a"] and eng.now == 3.0
    eng.run()
    assert seen == ["a", "b"] and eng.now == 7.0


def test_next_event_time_property():
    eng = Engine()
    assert eng.next_event_time is None
    h1 = eng.call_after(1.0, lambda: None)
    eng.call_after(2.0, lambda: None)
    assert eng.next_event_time == 1.0
    h1.cancel()
    assert eng.next_event_time == 2.0
    eng.run()
    assert eng.next_event_time is None
