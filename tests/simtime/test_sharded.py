"""Sharded event engine: determinism, sequential equivalence, and the
conservative cross-shard causality audit, across all three modes."""

import os
import time

import pytest

from repro.simtime import Engine
from repro.simtime.sharded import (
    CausalityError,
    RingWorld,
    ShardedEngine,
    ShardHost,
    ShardPlan,
    ShardSpec,
    ring_specs,
    run_sharded,
)

PLAN = ShardPlan(n_shards=2, shard_of_node=(0, 0, 1, 1), lookahead=1e-3)


def _two_chain_workload(engine, n=12):
    """Two independent tick chains (one per shard) plus cross-shard pings
    at exactly the lookahead; identical schedule on any engine."""
    fired = []

    def tick(shard, i):
        fired.append((round(engine.now, 9), shard, i))
        if i < n:
            engine.call_after(0.00025 * (shard + 1), tick, shard, i + 1,
                              label=f"tick{shard}:{i + 1}", shard=shard)
        if i == n // 2:
            other = 1 - shard
            engine.call_after(PLAN.lookahead, ping, other,
                              label=f"ping{shard}->{other}", shard=other)

    def ping(shard):
        fired.append((round(engine.now, 9), shard, "ping"))

    for shard in range(2):
        with engine.scheduling_shard(shard):
            engine.call_after(0.00025, tick, shard, 0,
                              label=f"tick{shard}:0")
    return fired


class TestMergedMode:
    def test_trace_byte_identical_to_sequential_engine(self):
        plain = Engine()
        plain.trace = []
        fired_plain = _two_chain_workload(plain)
        plain.run()

        sharded = ShardedEngine(PLAN, mode="merged")
        sharded.trace = []
        fired_sharded = _two_chain_workload(sharded)
        sharded.run()

        assert sharded.trace == plain.trace
        assert fired_sharded == fired_plain
        assert sharded.now == plain.now

    def test_events_land_on_their_shards(self):
        engine = ShardedEngine(PLAN, mode="merged")
        _two_chain_workload(engine)
        engine.run()
        assert engine.events_by_shard[0] > 0
        assert engine.events_by_shard[1] > 0
        assert engine.cross_shard_events == 2  # one ping each way
        assert engine.lookahead_violations == []

    def test_under_lookahead_edge_raises_in_strict_mode(self):
        engine = ShardedEngine(PLAN, mode="merged")

        def hop():
            engine.call_after(PLAN.lookahead / 2, lambda: None,
                              label="short-hop", shard=1)

        engine.call_after(0.001, hop, label="hop", shard=0)
        with pytest.raises(CausalityError, match="short-hop"):
            engine.run()

    def test_under_lookahead_edge_recorded_when_not_strict(self):
        engine = ShardedEngine(PLAN, mode="merged", strict=False)

        def hop():
            engine.call_after(PLAN.lookahead / 2, lambda: None,
                              label="short-hop", shard=1)

        engine.call_after(0.001, hop, label="hop", shard=0)
        engine.run()
        assert len(engine.lookahead_violations) == 1
        label, delta, lookahead = engine.lookahead_violations[0]
        assert label == "short-hop"
        assert delta < lookahead == PLAN.lookahead

    def test_shard_from_overrides_dispatching_shard(self):
        """Message provenance beats dispatch context: an edge tagged with
        its topological source shard is not audited as crossing when the
        source and target shards agree, whatever shard is executing."""
        engine = ShardedEngine(PLAN, mode="merged")

        def relay():
            # dispatching on shard 0, but the edge is shard 1 -> shard 1
            engine.call_after(1e-6, lambda: None, label="local-on-1",
                              shard=1, shard_from=1)

        engine.call_after(0.001, relay, label="relay", shard=0)
        engine.run()
        assert engine.cross_shard_events == 0
        assert engine.lookahead_violations == []

    def test_scheduling_shard_context(self):
        engine = ShardedEngine(PLAN, mode="merged")
        seen = []
        with engine.scheduling_shard(1):
            engine.call_after(0.001,
                              lambda: seen.append(engine.current_shard),
                              label="seeded")
        engine.run()
        assert seen == [1]
        assert engine.events_by_shard == [0, 1]

    def test_exact_lookahead_edge_is_not_a_violation(self):
        """now + α can round a few ulps below α; the audit must tolerate
        exact-lookahead edges at any magnitude of ``now``."""
        engine = ShardedEngine(PLAN, mode="merged", start_time=1000.0)

        def hop():
            engine.call_at(engine.now + PLAN.lookahead, lambda: None,
                           label="exact-hop", shard=1)

        engine.call_after(0.5, hop, label="hop", shard=0)
        engine.run()
        assert engine.lookahead_violations == []


class TestWindowedMode:
    def test_same_per_shard_streams_as_merged(self):
        merged = ShardedEngine(PLAN, mode="merged")
        merged.trace = []
        _two_chain_workload(merged)
        merged.run()

        windowed = ShardedEngine(PLAN, mode="windowed")
        windowed.trace = []
        _two_chain_workload(windowed)
        windowed.run()

        assert windowed.shard_traces == merged.shard_traces
        assert windowed.merged_shard_trace() == merged.merged_shard_trace()
        assert windowed.events_by_shard == merged.events_by_shard
        assert windowed.now == merged.now

    def test_run_until_respects_bound(self):
        engine = ShardedEngine(PLAN, mode="windowed")
        _two_chain_workload(engine, n=40)
        engine.run(until=0.002)
        assert engine.now == 0.002
        assert engine.next_event_time is not None


class TestProcessBackend:
    def test_parallel_matches_in_process_reference(self):
        specs = ring_specs(2, 400, tick=1e-6, ping_every=50)
        ref = run_sharded(specs, lookahead=1e-3, parallel=False,
                          collect_traces=True)
        par = run_sharded(specs, lookahead=1e-3, parallel=True,
                          collect_traces=True)
        assert par.results == ref.results
        assert par.trace == ref.trace
        assert (par.windows, par.messages) == (ref.windows, ref.messages)
        assert par.now == ref.now

    def test_parallel_runs_are_deterministic(self):
        specs = ring_specs(3, 300, tick=1e-6, ping_every=64)
        a = run_sharded(specs, lookahead=1e-3)
        b = run_sharded(specs, lookahead=1e-3)
        assert a.results == b.results
        assert a.results[0]["checksum"] == b.results[0]["checksum"]

    def test_all_events_fire_and_tokens_arrive(self):
        n_events, ping_every = 600, 100
        out = run_sharded(ring_specs(2, n_events, tick=1e-6,
                                     ping_every=ping_every),
                          lookahead=1e-3)
        assert [r["fired"] for r in out.results] == [n_events, n_events]
        expected = 2 * (n_events // ping_every)
        assert out.messages == expected
        assert sum(r["received"] for r in out.results) == expected

    def test_single_shard_world_runs(self):
        out = run_sharded(ring_specs(1, 200, tick=1e-6, ping_every=0),
                          lookahead=1e-3)
        assert out.results[0]["fired"] == 200
        assert out.messages == 0

    def test_send_below_lookahead_raises(self):
        host = ShardHost(0, 2, lookahead=1e-3)
        host.world = RingWorld(host, n_events=1, ping_every=0)
        with pytest.raises(CausalityError):
            host.send(1, ("x",), delay=1e-6)

    def test_worker_error_propagates_and_pool_closes(self):
        from repro.harness.parallel import CellError

        specs = [ShardSpec(_ExplodingWorld, (), label="boom:0"),
                 ShardSpec(_ExplodingWorld, (), label="boom:1")]
        with pytest.raises(CellError, match="deliberate shard failure"):
            run_sharded(specs, lookahead=1e-3, parallel=True)

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="speedup needs >= 2 cores")
    def test_parallel_beats_sequential_on_multicore(self):
        specs = ring_specs(2, 30_000, tick=1e-6, ping_every=500)
        t0 = time.perf_counter()
        run_sharded(specs, lookahead=1e-3, parallel=False)
        seq = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_sharded(specs, lookahead=1e-3, parallel=True)
        par = time.perf_counter() - t0
        assert par < seq


class _ExplodingWorld:
    def __init__(self, host):
        raise RuntimeError("deliberate shard failure")


class TestShardPlan:
    def test_rejects_bad_shard_assignment(self):
        with pytest.raises(ValueError, match="outside"):
            ShardPlan(n_shards=2, shard_of_node=(0, 2), lookahead=1e-3)

    def test_rejects_nonpositive_lookahead(self):
        with pytest.raises(ValueError, match="lookahead"):
            ShardPlan(n_shards=1, shard_of_node=(0,), lookahead=0.0)

    def test_rejects_control_shard_out_of_range(self):
        with pytest.raises(ValueError, match="control_shard"):
            ShardPlan(n_shards=2, shard_of_node=(0, 1), lookahead=1e-3,
                      control_shard=2)

    def test_rank_and_node_lookups(self):
        assert PLAN.n_nodes == 4
        assert PLAN.nodes_of(1) == (2, 3)
        assert PLAN.shard_of_rank([0, 1, 2, 3], 3) == 1
