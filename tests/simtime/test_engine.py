"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.simtime import Completion, Engine, SimulationError
from repro.simtime.engine import all_of


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_call_after_advances_clock():
    eng = Engine()
    seen = []
    eng.call_after(1.5, seen.append, "a")
    eng.run()
    assert seen == ["a"]
    assert eng.now == 1.5


def test_events_fire_in_time_order():
    eng = Engine()
    seen = []
    eng.call_after(2.0, seen.append, "late")
    eng.call_after(1.0, seen.append, "early")
    eng.run()
    assert seen == ["early", "late"]


def test_same_time_events_fire_in_scheduling_order():
    eng = Engine()
    seen = []
    for i in range(10):
        eng.call_at(1.0, seen.append, i)
    eng.run()
    assert seen == list(range(10))


def test_priority_breaks_ties_before_sequence():
    eng = Engine()
    seen = []
    eng.call_at(1.0, seen.append, "normal", priority=0)
    eng.call_at(1.0, seen.append, "urgent", priority=-1)
    eng.run()
    assert seen == ["urgent", "normal"]


def test_cannot_schedule_in_past():
    eng = Engine(start_time=10.0)
    with pytest.raises(SimulationError):
        eng.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.call_after(-1.0, lambda: None)


def test_nan_time_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.call_at(math.nan, lambda: None)


def test_cancel_prevents_firing():
    eng = Engine()
    seen = []
    h = eng.call_after(1.0, seen.append, "x")
    h.cancel()
    assert h.cancelled
    eng.run()
    assert seen == []


def test_cancel_is_idempotent():
    eng = Engine()
    h = eng.call_after(1.0, lambda: None)
    h.cancel()
    h.cancel()
    assert eng.pending_events == 0


def test_run_until_stops_clock_exactly():
    eng = Engine()
    seen = []
    eng.call_after(1.0, seen.append, 1)
    eng.call_after(3.0, seen.append, 3)
    t = eng.run(until=2.0)
    assert t == 2.0
    assert seen == [1]
    # the 3.0 event survives and fires on the next run
    eng.run()
    assert seen == [1, 3]


def test_run_until_includes_boundary_event():
    eng = Engine()
    seen = []
    eng.call_after(2.0, seen.append, "edge")
    eng.run(until=2.0)
    assert seen == ["edge"]


def test_events_can_schedule_events():
    eng = Engine()
    seen = []

    def first():
        seen.append(("first", eng.now))
        eng.call_after(1.0, second)

    def second():
        seen.append(("second", eng.now))

    eng.call_after(1.0, first)
    eng.run()
    assert seen == [("first", 1.0), ("second", 2.0)]


def test_max_events_guards_livelock():
    eng = Engine()

    def rearm():
        eng.call_after(0.0, rearm)

    eng.call_after(0.0, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=100)


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_pending_events_counts_live_only():
    eng = Engine()
    eng.call_after(1.0, lambda: None)
    h = eng.call_after(2.0, lambda: None)
    h.cancel()
    assert eng.pending_events == 1


class TestCompletion:
    def test_resolve_fires_callbacks_in_order(self):
        eng = Engine()
        c = Completion(eng)
        seen = []
        c.on_done(lambda v: seen.append(("a", v)))
        c.on_done(lambda v: seen.append(("b", v)))
        c.resolve(42)
        assert seen == [("a", 42), ("b", 42)]

    def test_late_callback_fires_immediately(self):
        eng = Engine()
        c = Completion(eng)
        c.resolve("v")
        seen = []
        c.on_done(seen.append)
        assert seen == ["v"]

    def test_double_resolve_raises(self):
        c = Completion(Engine())
        c.resolve(1)
        with pytest.raises(SimulationError):
            c.resolve(2)

    def test_value_before_done_raises(self):
        c = Completion(Engine())
        with pytest.raises(SimulationError):
            _ = c.value

    def test_resolve_after_uses_virtual_time(self):
        eng = Engine()
        c = Completion(eng)
        times = []
        c.on_done(lambda v: times.append(eng.now))
        c.resolve_after(2.5, "x")
        eng.run()
        assert times == [2.5]
        assert c.value == "x"

    def test_cancelled_completion_ignores_resolution(self):
        eng = Engine()
        c = Completion(eng)
        seen = []
        c.on_done(seen.append)
        c.cancel()
        c.resolve("late")  # no-op, no raise
        assert seen == []
        assert not c.done

    def test_all_of_collects_values_in_input_order(self):
        eng = Engine()
        cs = [Completion(eng) for _ in range(3)]
        combined = all_of(eng, cs)
        cs[2].resolve("c")
        cs[0].resolve("a")
        assert not combined.done
        cs[1].resolve("b")
        assert combined.done
        assert combined.value == ["a", "b", "c"]

    def test_all_of_empty_resolves_immediately(self):
        eng = Engine()
        assert all_of(eng, []).done


def test_trace_records_labels():
    eng = Engine()
    eng.trace = []
    eng.call_after(1.0, lambda: None, label="tick")
    eng.run()
    assert eng.trace == [(1.0, "tick")]


def test_determinism_of_interleaved_schedules():
    def build():
        eng = Engine()
        order = []
        for i in range(50):
            eng.call_after((i * 7919) % 13 * 0.1, order.append, i)
        eng.run()
        return order

    assert build() == build()


class TestMaxEventsBudget:
    """``max_events`` is a hard firing budget: exactly that many events fire."""

    def test_budget_is_exact(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.call_after(float(i), seen.append, i)
        with pytest.raises(SimulationError, match="max_events"):
            eng.run(max_events=3)
        # the budget-exceeding event did NOT fire (the old guard fired
        # max_events + 1 events before raising)
        assert seen == [0, 1, 2]
        assert eng.pending_events == 2

    def test_draining_exactly_at_budget_does_not_raise(self):
        eng = Engine()
        seen = []
        for i in range(3):
            eng.call_after(float(i), seen.append, i)
        eng.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_events_beyond_until_do_not_trip_budget(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.call_after(float(i), seen.append, i)
        eng.run(until=1.0, max_events=2)  # events at 2.0+ are out of range
        assert seen == [0, 1]


class TestPendingEventsCounter:
    """``pending_events`` is an O(1) incremental counter; it must stay exact
    through every schedule / cancel / fire / re-arm interleaving."""

    def test_counts_through_cancel_fire_rearm(self):
        eng = Engine()
        assert eng.pending_events == 0
        h1 = eng.call_after(1.0, lambda: None)
        h2 = eng.call_after(2.0, lambda: None)
        eng.call_after(3.0, lambda: None)
        assert eng.pending_events == 3
        h1.cancel()
        assert eng.pending_events == 2
        h1.cancel()  # idempotent: no double decrement
        assert eng.pending_events == 2
        eng.run(until=2.0)  # fires the 2.0 event, skips the cancelled one
        assert eng.pending_events == 1
        h2.cancel()  # cancelling an already-fired handle is a no-op
        assert eng.pending_events == 1
        eng.run()
        assert eng.pending_events == 0

    def test_rearming_event_keeps_counter_exact(self):
        eng = Engine()
        fired = []

        def rearm(k):
            fired.append(k)
            if k < 5:
                eng.call_after(1.0, rearm, k + 1)

        eng.call_after(1.0, rearm, 0)
        counts = []
        while True:
            counts.append(eng.pending_events)
            if not eng.step():
                break
        assert fired == list(range(6))
        # one live event pending before each firing, none at the end
        assert counts == [1, 1, 1, 1, 1, 1, 0]
        assert eng.pending_events == 0

    def test_cancel_after_fire_via_step(self):
        eng = Engine()
        h = eng.call_after(1.0, lambda: None)
        eng.call_after(2.0, lambda: None)
        assert eng.step()
        h.cancel()
        assert eng.pending_events == 1

    def test_matches_brute_force_scan(self):
        eng = Engine()
        handles = [eng.call_after(i * 0.1, lambda: None) for i in range(20)]
        for h in handles[::3]:
            h.cancel()
        assert eng.pending_events == sum(
            1 for e in eng._queue if isinstance(e[-1], tuple)
        )


class TestCompletionFastPath:
    """The single-callback fast path must preserve ordering semantics."""

    def test_three_callbacks_fire_in_order(self):
        eng = Engine()
        c = Completion(eng)
        seen = []
        for tag in ("a", "b", "c"):
            c.on_done(lambda v, t=tag: seen.append(t))
        c.resolve(0)
        assert seen == ["a", "b", "c"]

    def test_callback_registered_during_resolve_fires_immediately(self):
        eng = Engine()
        c = Completion(eng)
        seen = []

        def outer(v):
            seen.append("outer")
            c.on_done(lambda v2: seen.append("inner"))

        c.on_done(outer)
        c.resolve(None)
        assert seen == ["outer", "inner"]

    def test_cancel_drops_single_and_overflow_callbacks(self):
        eng = Engine()
        c = Completion(eng)
        seen = []
        c.on_done(seen.append)
        c.on_done(seen.append)
        c.cancel()
        c.resolve("late")
        assert seen == []
