"""Interpreter semantics: control flow, continuations, snapshot/restore."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mprog import (
    Call,
    Compute,
    If,
    Interpreter,
    Loop,
    Program,
    ProgramError,
    ProgramState,
    Seq,
    While,
)


def record(tag):
    """A Compute fn appending ``tag`` to state['log']."""

    def fn(state):
        state.setdefault("log", []).append(tag)

    fn.__name__ = f"record_{tag}"
    return fn


def run_all(program, state=None):
    """Drive an interpreter treating calls as immediate no-ops."""
    interp = Interpreter(program, state)
    while True:
        action = interp.next_action()
        if action.kind == "done":
            return interp
        if action.kind == "compute":
            action.node.fn(interp.state)
        else:  # call — execute the builder synchronously for these tests
            action.node.fn(interp.state, None)
        interp.leaf_done()


def test_seq_runs_in_order():
    p = Program(Seq(Compute(record("a")), Compute(record("b")), Compute(record("c"))))
    interp = run_all(p)
    assert interp.state["log"] == ["a", "b", "c"]
    assert interp.finished
    assert interp.leaves_done == 3


def test_empty_seq_rejected():
    with pytest.raises(ProgramError):
        Seq()


def test_loop_fixed_count():
    p = Program(Loop(3, Compute(record("x"))))
    assert run_all(p).state["log"] == ["x", "x", "x"]


def test_loop_zero_count_skips_body():
    p = Program(Seq(Loop(0, Compute(record("never"))), Compute(record("after"))))
    assert run_all(p).state["log"] == ["after"]


def test_loop_publishes_iteration_var():
    seen = []
    p = Program(Loop(4, Compute(lambda s: seen.append(s["i"])), var="i"))
    run_all(p)
    assert seen == [0, 1, 2, 3]


def test_loop_count_callable_evaluated_at_entry():
    p = Program(
        Seq(
            Compute(lambda s: s.__setitem__("n", 2)),
            Loop(lambda s: s["n"], Compute(record("x"))),
        )
    )
    assert run_all(p).state["log"] == ["x", "x"]


def test_loop_negative_count_raises():
    p = Program(Loop(lambda s: -1, Compute(record("x"))))
    with pytest.raises(ProgramError):
        run_all(p)


def test_nested_loops():
    p = Program(
        Loop(2, Loop(3, Compute(lambda s: s.setdefault("log", []).append(
            (s["i"], s["j"]))), var="j"), var="i")
    )
    assert run_all(p).state["log"] == [
        (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
    ]


def test_while_loop():
    p = Program(
        Seq(
            Compute(lambda s: s.__setitem__("n", 0)),
            While(lambda s: s["n"] < 3,
                  Compute(lambda s: s.__setitem__("n", s["n"] + 1))),
        )
    )
    assert run_all(p).state["n"] == 3


def test_while_false_immediately():
    p = Program(Seq(While(lambda s: False, Compute(record("no"))),
                    Compute(record("yes"))))
    assert run_all(p).state["log"] == ["yes"]


def test_if_then_branch():
    p = Program(If(lambda s: True, Compute(record("t")), Compute(record("f"))))
    assert run_all(p).state["log"] == ["t"]


def test_if_else_branch():
    p = Program(If(lambda s: False, Compute(record("t")), Compute(record("f"))))
    assert run_all(p).state["log"] == ["f"]


def test_if_without_else_skips():
    p = Program(Seq(If(lambda s: False, Compute(record("t"))), Compute(record("x"))))
    assert run_all(p).state["log"] == ["x"]


def test_if_cond_evaluated_once():
    calls = []

    def cond(s):
        calls.append(1)
        return True

    p = Program(If(cond, Seq(Compute(record("a")), Compute(record("b")))))
    run_all(p)
    assert len(calls) == 1


def test_call_store_result():
    # Calls in real drivers return Completions; here we bypass and test store
    # handling at the driver level, so just check fn invocation.
    seen = []
    p = Program(Call(lambda s, api: seen.append(api), store="out"))
    run_all(p)
    assert seen == [None]


def test_next_action_idempotent_until_leaf_done():
    p = Program(Seq(Compute(record("a")), Compute(record("b"))))
    interp = Interpreter(p)
    a1 = interp.next_action()
    a2 = interp.next_action()
    assert a1.node is a2.node
    a1.node.fn(interp.state)
    interp.leaf_done()
    a3 = interp.next_action()
    assert a3.node is not a1.node


def test_leaf_done_without_leaf_raises():
    p = Program(Seq(Compute(record("a")), Compute(record("b"))))
    interp = Interpreter(p)
    with pytest.raises(ProgramError):
        interp.leaf_done()  # next_action never selected a leaf


def test_done_action_after_finish():
    p = Program(Compute(record("a")))
    interp = Interpreter(p)
    interp.next_action()
    interp.leaf_done()
    assert interp.next_action().kind == "done"
    assert interp.finished


class TestSnapshotRestore:
    def build(self):
        return Program(
            Loop(3, Seq(Compute(record("a")), Compute(record("b"))), var="i"),
            name="snaptest",
        )

    def test_mid_program_round_trip(self):
        p = self.build()
        interp = Interpreter(p)
        # Execute 3 leaves: a b a — stop *before* the 4th (b of iter 1)
        for _ in range(3):
            action = interp.next_action()
            action.node.fn(interp.state)
            interp.leaf_done()
        interp.next_action()  # position on the 4th leaf
        snap = pickle.loads(pickle.dumps(interp.snapshot()))
        state = pickle.loads(pickle.dumps(dict(interp.state)))

        fresh = Interpreter(self.build(), ProgramState(state))
        fresh.restore(snap)
        while True:
            action = fresh.next_action()
            if action.kind == "done":
                break
            action.node.fn(fresh.state)
            fresh.leaf_done()
        assert fresh.state["log"] == ["a", "b", "a", "b", "a", "b"]

    def test_restore_validates_paths(self):
        p = self.build()
        interp = Interpreter(p)
        snap = interp.snapshot()
        snap["stack"] = [((9, 9, 9), "leaf", 0, 0, 0, -1)]
        with pytest.raises(ProgramError):
            interp.restore(snap)

    def test_snapshot_at_every_leaf_boundary_resumes_identically(self):
        """Exhaustive: snapshotting before each leaf reproduces the tail."""
        full = run_all(self.build()).state["log"]
        n_leaves = len(full)
        for stop in range(n_leaves):
            interp = Interpreter(self.build())
            for _ in range(stop):
                a = interp.next_action()
                a.node.fn(interp.state)
                interp.leaf_done()
            interp.next_action()
            snap = interp.snapshot()
            state = ProgramState(pickle.loads(pickle.dumps(dict(interp.state))))
            fresh = Interpreter(self.build(), state)
            fresh.restore(snap)
            while True:
                a = fresh.next_action()
                if a.kind == "done":
                    break
                a.node.fn(fresh.state)
                fresh.leaf_done()
            assert fresh.state.get("log", []) == full, f"stop={stop}"


@given(st.integers(0, 5), st.integers(0, 5))
def test_nested_loop_leaf_count(outer, inner):
    p = Program(Loop(outer, Loop(inner, Compute(lambda s: None))))
    interp = run_all(p)
    assert interp.leaves_done == outer * inner


def test_program_state_attribute_sugar():
    s = ProgramState()
    s.x = 5
    assert s["x"] == 5
    assert s.x == 5
    with pytest.raises(AttributeError):
        _ = s.missing


def test_program_node_at_and_count():
    body = Seq(Compute(record("a")), Compute(record("b")))
    p = Program(Loop(2, body))
    assert p.node_at(()) is p.root
    assert p.node_at((0,)) is body
    assert p.node_at((0, 1)) is body.children[1]
    assert p.count_nodes() == 4
    with pytest.raises(ProgramError):
        p.node_at((5,))
