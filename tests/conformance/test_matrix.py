"""Conformance matrix: cell identity, tier enumeration, source spreading."""

import pytest

from repro.conformance import (
    FULL_TIER,
    QUICK_TIER,
    ConfigCell,
    cluster_for,
    enumerate_cells,
    matrix_for,
    source_cells,
)
from repro.conformance.matrix import INTER_NODE_FABRICS


def test_cell_roundtrip_and_label():
    cell = ConfigCell("openmpi", "tcp", 4)
    assert ConfigCell.from_tuple(cell.as_tuple()) == cell
    assert cell.label == "openmpi/tcp/rpn4"


def test_cells_are_picklable_and_orderable():
    import pickle

    cells = matrix_for("quick")
    assert pickle.loads(pickle.dumps(cells)) == cells
    assert sorted(cells) == sorted(cells, key=lambda c: c.as_tuple())


@pytest.mark.parametrize("bad", [
    ConfigCell("no-such-mpi", "tcp", 2),
    ConfigCell("openmpi", "no-such-net", 2),
    ConfigCell("openmpi", "tcp", 0),
])
def test_validate_rejects_bad_cells(bad):
    with pytest.raises(ValueError):
        bad.validate()


def test_quick_tier_spans_the_acceptance_floor():
    """The quick matrix must cover >=2 impls x 2 fabrics x 2 layouts."""
    cells = matrix_for("quick")
    assert len({c.mpi for c in cells}) >= 2
    assert len({c.fabric for c in cells}) >= 2
    assert len({c.ranks_per_node for c in cells}) >= 2
    assert len(cells) == (
        len(QUICK_TIER["mpis"]) * len(QUICK_TIER["fabrics"])
        * len(QUICK_TIER["ranks_per_node"])
    )


def test_full_tier_covers_every_impl_and_internode_fabric():
    cells = matrix_for("full")
    assert {c.mpi for c in cells} == set(FULL_TIER["mpis"])
    assert {c.fabric for c in cells} == set(INTER_NODE_FABRICS)
    assert "shmem" not in {c.fabric for c in cells}


def test_unknown_tier_raises():
    with pytest.raises(ValueError, match="unknown conformance tier"):
        matrix_for("exhaustive")


def test_enumerate_cells_rejects_duplicates():
    with pytest.raises(ValueError, match="duplicate"):
        enumerate_cells(["openmpi", "openmpi"], ["tcp"], [2])


def test_source_cells_spread_across_the_matrix():
    cells = matrix_for("full")
    srcs = source_cells(cells, 3)
    assert len(srcs) == 3
    assert len({c.mpi for c in srcs}) > 1, \
        "sources should not cluster in one implementation"
    # degenerate requests clamp instead of failing
    assert source_cells(cells[:2], 5) == cells[:2]
    with pytest.raises(ValueError):
        source_cells(cells, 0)


def test_cluster_for_builds_the_cell_layout():
    cell = ConfigCell("mpich", "infiniband", 2)
    cluster = cluster_for(cell, n_ranks=8)
    assert len(cluster.nodes) == 4  # ceil(8 / 2)
    assert cluster.default_mpi == "mpich"
