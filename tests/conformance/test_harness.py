"""The differential harness end to end: a real sweep with zero divergences,
determinism across process-pool fan-out, seeded reproducibility of the
checkpoint fuzzer — and the proof the oracles have teeth: a deliberately
injected restore bug, caught with a repro recipe."""

import numpy as np
import pytest

from repro.conformance import (
    ConfigCell,
    differential_cycle,
    golden_run,
    matrix_for,
    run_conformance,
)
from repro.conformance.harness import (
    CKPT_FRACTION,
    REF_CELL,
    checkpoint_fraction,
)
from repro.mana.checkpoint_image import CheckpointImage

SRC = ConfigCell("craympich", "aries", 2)
DST = ConfigCell("openmpi", "tcp", 4)


# ------------------------------------------------------------- the sweep

def test_quick_sweep_has_zero_divergences():
    """The acceptance gate: >=2 impls x 2 fabrics x 2 layouts, fuzzed
    checkpoint times, every cycle bit-identical and conserving."""
    report = run_conformance(tier="quick", seed=0, jobs=1)
    assert report.ok, report.summary()
    cells = {ConfigCell.from_tuple(r.dst) for r in report.results}
    cells |= {ConfigCell.from_tuple(r.src) for r in report.results}
    assert len({c.mpi for c in cells}) >= 2
    assert len({c.fabric for c in cells}) >= 2
    assert len({c.ranks_per_node for c in cells}) >= 2
    assert "OK" in report.summary()


def test_sweep_is_deterministic_across_jobs():
    """jobs=1 and jobs=2 must produce identical rows (the run_cells
    determinism contract extends to conformance)."""
    kw = dict(tier="quick", seed=3, apps=("gromacs",), n_sources=1)
    seq = run_conformance(jobs=1, **kw)
    par = run_conformance(jobs=2, **kw)
    assert seq.results == par.results


def test_checkpoint_times_are_fuzzed_and_seed_reproducible():
    lo, hi = CKPT_FRACTION
    fracs = {
        checkpoint_fraction("gromacs", src, seed=0, k=k)
        for src in matrix_for("quick") for k in (0, 1)
    }
    assert len(fracs) > 1, "fuzzer produced a constant checkpoint time"
    assert all(lo <= f <= hi for f in fracs)
    # same (seed, identity) -> same draw; different seed -> different draw
    assert (checkpoint_fraction("hpcg", SRC, 5, 0)
            == checkpoint_fraction("hpcg", SRC, 5, 0))
    assert (checkpoint_fraction("hpcg", SRC, 5, 0)
            != checkpoint_fraction("hpcg", SRC, 6, 0))


def test_report_exit_contract_and_only_filter():
    rep = run_conformance(tier="quick", apps=("gromacs",), n_sources=1,
                          only=f"{SRC.label}->{DST.label}")
    assert len(rep.results) == 1
    assert rep.results[0].pair == f"{SRC.label}->{DST.label}"
    with pytest.raises(ValueError, match="no cycles"):
        run_conformance(tier="quick", only="nope->nope")


def test_golden_runs_agree_across_cells():
    """Uncheckpointed runs must already be cell-independent — the premise
    the differential oracle stands on."""
    ref = golden_run("gromacs", REF_CELL, n_ranks=4, n_steps=4)
    other = golden_run("gromacs", ConfigCell("intelmpi", "omnipath", 1),
                       n_ranks=4, n_steps=4)
    assert ref.fingerprint == other.fingerprint
    assert ref.totals == other.totals


# ----------------------------------------------------- injected-bug tests

def _perturb_first_array(state: dict) -> bool:
    """Flip the low-order bits of the first float array in app state."""
    for key in sorted(state["app_state"]):
        val = state["app_state"][key]
        if isinstance(val, np.ndarray) and val.dtype.kind == "f" and val.size:
            val.flat[0] = np.nextafter(val.flat[0], np.inf)
            return True
    return False


def test_injected_restore_bug_is_caught(monkeypatch):
    """A single-ULP corruption of one rank's restored state — the smallest
    possible replay/restore bug — must surface as a golden_state divergence
    carrying a runnable repro line."""
    clean = differential_cycle("gromacs", SRC, DST, seed=1)
    assert clean.ok

    fired = []
    real_restore = CheckpointImage.restore_state

    def corrupted(self):
        state = real_restore(self)
        if self.rank == 0 and _perturb_first_array(state):
            fired.append(True)
        return state

    monkeypatch.setattr(CheckpointImage, "restore_state", corrupted)
    buggy = differential_cycle("gromacs", SRC, DST, seed=1)
    assert fired, "the injected corruption never executed"
    assert not buggy.ok
    assert "golden_state" in {d.oracle for d in buggy.divergences}
    assert buggy.pair in buggy.repro("quick")
    assert f"--seed {buggy.seed}" in buggy.repro("quick")


def test_injected_lost_state_key_is_caught(monkeypatch):
    """Dropping a whole key from a restored rank's state (a restore-path
    bug losing data outright) is also caught."""
    real_restore = CheckpointImage.restore_state

    def lossy(self):
        state = real_restore(self)
        if self.rank == 1:
            for key in sorted(state["app_state"]):
                if isinstance(state["app_state"][key], np.ndarray):
                    del state["app_state"][key]
                    break
        return state

    monkeypatch.setattr(CheckpointImage, "restore_state", lossy)
    # dropping app arrays usually crashes the program text; either outcome
    # (divergence report or a raised failure) means the bug cannot land
    try:
        buggy = differential_cycle("hpcg", SRC, DST, seed=2)
    except Exception:
        return
    assert not buggy.ok


# ------------------------------------------------- chained cycles + lulesh

def test_chained_cycle_survives_two_migrations():
    """checkpoint -> restart -> checkpoint again -> restart, back on the
    source cell: state and conservation oracles hold across both hops."""
    res = differential_cycle("gromacs", SRC, DST, seed=4, k=1, chain=True)
    assert res.ok, res.divergences


def test_chain_second_cut_is_seeded_and_distinct():
    """The hop-1 fuzz draw is reproducible and independent of hop 0."""
    f0 = checkpoint_fraction("gromacs", SRC, seed=4, k=1)
    f1 = checkpoint_fraction("gromacs", SRC, seed=4, k=1, hop=1)
    assert f0 != f1
    assert f1 == checkpoint_fraction("gromacs", SRC, seed=4, k=1, hop=1)
    lo, hi = CKPT_FRACTION
    assert lo <= f1 <= hi


def test_ckpts_per_source_beyond_one_runs_chains():
    """k > 0 sweep cycles are the two-hop chains; the sweep stays green."""
    report = run_conformance(tier="quick", seed=2, apps=("gromacs",),
                             n_sources=1, ckpts_per_source=2, jobs=1)
    assert report.ok, report.summary()
    ks = {r.k for r in report.results}
    assert ks == {0, 1}


def test_lulesh_joins_the_mix_at_cube_rank_counts():
    """The rank-constrained app rides the matrix at 8 ranks (2^3), never
    collapsing to the useless single-rank cube."""
    from repro.conformance.harness import DEFAULT_APPS, effective_ranks

    assert "lulesh" in DEFAULT_APPS
    assert effective_ranks("lulesh", 4) == 8
    assert effective_ranks("gromacs", 4) == 4
    res = differential_cycle("lulesh", SRC, DST, seed=1)
    assert res.ok, res.divergences


# ------------------------------------------------- shard / protocol axes

def test_sharded_cycle_matches_sequential_fingerprint():
    """shards=2 reruns the identical cycle on merged sharded engines; the
    restart fingerprint must be bit-identical to the sequential cycle's."""
    seq = differential_cycle("gromacs", SRC, DST, seed=1)
    shd = differential_cycle("gromacs", SRC, DST, seed=1, shards=2)
    assert shd.ok, shd.divergences
    assert shd.shards == 2 and seq.shards == 1
    assert shd.fingerprint == seq.fingerprint
    assert shd.ckpt_time == seq.ckpt_time
    assert "--shards 2" in shd.repro()
    assert "--shards" not in seq.repro()


def test_shards_both_axis_runs_the_differential():
    """--shards both doubles every cycle (sequential + 2-shard) and
    cross-checks the fingerprints; the sweep stays green."""
    report = run_conformance(tier="quick", seed=0, apps=("gromacs",),
                             n_sources=1, shards="both", jobs=1)
    assert report.ok, report.summary()
    assert report.shards == "both"
    assert "shards=both" in report.summary()
    by_shards = {}
    for r in report.results:
        by_shards.setdefault((r.pair, r.k), set()).add(r.shards)
    assert all(s == {1, 2} for s in by_shards.values())


def test_alternate_protocol_chains_across_engines():
    """A chained cycle cut under alg2 -> topo -> alg2: a checkpoint taken
    by one protocol must restore cleanly under the other, with state and
    3-segment conservation oracles intact."""
    res = differential_cycle("gromacs", SRC, DST, seed=4, k=1, chain=True,
                             protocol="alternate")
    assert res.ok, res.divergences
    assert res.protocol == "alternate"

    report = run_conformance(tier="quick", seed=2, apps=("gromacs",),
                             n_sources=1, ckpts_per_source=2,
                             protocol="alternate", jobs=1)
    assert report.ok, report.summary()
    assert {r.k for r in report.results} == {0, 1}


def test_cross_shard_oracle_flags_fingerprint_drift():
    """The extra oracle behind --shards both: same cycle, different shard
    counts, different fingerprints => a cross_shard divergence pinned on
    the sharded run."""
    from dataclasses import replace

    from repro.conformance.harness import CycleResult, _cross_shard_check

    base = CycleResult(app="gromacs", src=SRC.as_tuple(),
                       dst=DST.as_tuple(), seed=0, k=0, ckpt_time=0.01,
                       divergences=(), fingerprint="aaaa", shards=1)
    agree = _cross_shard_check([base, replace(base, shards=2)])
    assert all(r.ok for r in agree)

    drifted = _cross_shard_check(
        [base, replace(base, shards=2, fingerprint="bbbb")])
    flagged = [r for r in drifted if not r.ok]
    assert len(flagged) == 1
    assert flagged[0].shards == 2
    assert flagged[0].divergences[0].oracle == "cross_shard"
    # the sequential side stays clean
    assert next(r for r in drifted if r.shards == 1).ok


def test_shards_axis_parsing_and_validation():
    from repro.conformance.harness import _parse_shards_axis

    assert _parse_shards_axis("both") == (1, 2)
    assert _parse_shards_axis("2") == (2,)
    assert _parse_shards_axis(3) == (3,)
    with pytest.raises(ValueError, match="shards"):
        _parse_shards_axis("0")
    with pytest.raises(ValueError, match="unknown protocol"):
        run_conformance(tier="quick", protocol="nope")
