"""Oracles: the fingerprint must be canonical and bit-sensitive, the
conservation check must flag every way traffic can go missing."""

import numpy as np

from repro.conformance import (
    ConservationTotals,
    check_conservation,
    check_golden_state,
    state_fingerprint,
)


def _state(**kw):
    base = {"rank": 0, "acc": 1.5, "halo": np.arange(8, dtype=float)}
    base.update(kw)
    return base


# ------------------------------------------------------------- fingerprint

def test_fingerprint_is_deterministic_and_order_insensitive():
    a = {"x": 1, "y": 2.0, "z": np.ones(4)}
    b = dict(reversed(list(a.items())))  # same mapping, different insertion
    assert state_fingerprint([a]) == state_fingerprint([b])
    assert state_fingerprint([a]) == state_fingerprint([dict(a)])


def test_fingerprint_is_bit_sensitive_to_floats_and_arrays():
    base = state_fingerprint([_state()])
    nudged = _state(acc=1.5 + 2**-50)
    assert state_fingerprint([nudged]) != base
    arr = _state()
    arr["halo"] = arr["halo"].copy()
    arr["halo"][3] = np.nextafter(arr["halo"][3], 9.0)
    assert state_fingerprint([arr]) != base


def test_fingerprint_distinguishes_types_and_shapes():
    assert state_fingerprint([{"v": 1}]) != state_fingerprint([{"v": 1.0}])
    assert state_fingerprint([{"v": True}]) != state_fingerprint([{"v": 1}])
    a = {"v": np.zeros(6)}
    b = {"v": np.zeros((2, 3))}
    assert state_fingerprint([a]) != state_fingerprint([b])
    assert (state_fingerprint([{"v": np.zeros(2, dtype=np.float32)}])
            != state_fingerprint([{"v": np.zeros(2, dtype=np.float64)}]))


def test_fingerprint_ignores_interpreter_scratch_keys():
    clean = _state()
    scratch = _state(_halo=[(np.ones(3), object())])
    assert state_fingerprint([clean]) == state_fingerprint([scratch])


def test_fingerprint_covers_every_rank_in_order():
    s0, s1 = _state(rank=0), _state(rank=1)
    assert state_fingerprint([s0, s1]) != state_fingerprint([s1, s0])


def test_fingerprint_handles_nested_containers():
    s = {"trace": [0, 1, (2, 3)], "tags": {"a": None, "b": b"\x00\x01"}}
    assert state_fingerprint([s]) == state_fingerprint([s])
    s2 = {"trace": [0, 1, [2, 3]], "tags": {"a": None, "b": b"\x00\x01"}}
    assert state_fingerprint([s]) != state_fingerprint([s2])


# ------------------------------------------------------------ conservation

def _totals(sm=10, rm=10, sb=640, rb=640):
    return ConservationTotals(sent_messages=sm, recv_messages=rm,
                              sent_bytes=sb, recv_bytes=rb)


def test_totals_add_fieldwise():
    merged = _totals(4, 3, 64, 48) + _totals(6, 7, 576, 592)
    assert merged == _totals(10, 10, 640, 640)


def test_balanced_totals_pass():
    assert check_conservation(_totals(), golden=_totals()) == []


def test_lost_message_is_flagged():
    divs = check_conservation(_totals(rm=9, rb=576))
    assert len(divs) == 2
    assert all(d.oracle == "conservation" for d in divs)


def test_duplicate_delivery_balancing_out_is_caught_by_golden_traffic():
    """A drained message replayed twice *and* re-sent once balances
    sent==recv on its own; only the golden totals expose it."""
    doubled = _totals(sm=11, rm=11, sb=704, rb=704)
    assert check_conservation(doubled) == []
    divs = check_conservation(doubled, golden=_totals())
    assert [d.oracle for d in divs] == ["golden_traffic"]


def test_golden_state_check_returns_divergence_with_both_sides():
    golden = state_fingerprint([_state()])
    assert check_golden_state(golden, [_state()]) is None
    div = check_golden_state(golden, [_state(acc=2.0)])
    assert div is not None and div.oracle == "golden_state"
    assert div.expected == golden and div.actual != golden
    assert "differs" in str(div)
