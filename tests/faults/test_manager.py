"""run_resilient: the automated checkpoint / detect / re-plan / restart loop."""

import pytest

from repro.faults import NodeCrashAt, run_resilient
from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana

from tests.mana.conftest import allreduce_factory

FACTORY = allreduce_factory(n_iters=8, cost=0.5)


def _reference():
    cluster = make_cluster("ref", 4, interconnect="aries")
    job = launch_mana(cluster, FACTORY, n_ranks=4).start()
    t = job.run_to_completion()
    return t, [s["hist"] for s in job.states]


def test_no_faults_completes_with_high_efficiency():
    ref_time, ref_hist = _reference()
    cluster = make_cluster("calm", 4, interconnect="aries")
    run = run_resilient(cluster, FACTORY, n_ranks=4, interval=1.0, seed=1)
    assert run.completed and run.stop_reason == "completed"
    assert run.recoveries == 0 and run.failures == []
    assert run.attempts == 1
    assert [s["hist"] for s in run.final_states] == ref_hist
    assert run.reference_time == pytest.approx(ref_time)
    # only checkpoint overhead separates the run from the reference
    assert 0.9 < run.efficiency <= 1.0


def test_survives_mid_compute_and_mid_checkpoint_crashes(tmp_path):
    """The subsystem's acceptance scenario: two node crashes in one run —
    one mid-compute, one in the middle of an Algorithm-2 round — and the
    final application state is identical to an uninterrupted run."""
    ref_time, ref_hist = _reference()
    crash1 = NodeCrashAt(1.7, node=2)

    # Pass 1: rehearse with only the mid-compute crash to learn when the
    # recovered attempt cuts its first checkpoint.  Determinism makes the
    # timing transfer exactly to the second pass.
    rehearsal = run_resilient(
        make_cluster("reh", 4, interconnect="aries"), FACTORY, n_ranks=4,
        interval=1.0, faults=[crash1], seed=1, out_dir=tmp_path / "reh",
        reference_time=ref_time,
    )
    assert rehearsal.completed
    assert [f.during for f in rehearsal.failures] == ["compute"]
    assert [s["hist"] for s in rehearsal.final_states] == ref_hist
    detect1 = rehearsal.failures[0].detected_at
    idx = next(i for i, t in enumerate(rehearsal.checkpoint_times)
               if t > detect1)
    t_end = rehearsal.checkpoint_times[idx]
    d = rehearsal.reports[idx].total_time
    crash2 = NodeCrashAt(t_end - d / 2, node=0)  # dead centre of the round

    # Pass 2: both crashes in one run.
    run = run_resilient(
        make_cluster("storm", 4, interconnect="aries"), FACTORY, n_ranks=4,
        interval=1.0, faults=[crash1, crash2], seed=1,
        out_dir=tmp_path / "storm", reference_time=ref_time,
    )
    assert run.completed, run.stop_reason
    assert [f.during for f in run.failures] == ["compute", "checkpoint"]
    assert run.recoveries == 2 and run.attempts == 3
    assert [s["hist"] for s in run.final_states] == ref_hist
    assert run.lost_work_total > 0
    assert all(f.lost_work >= 0 for f in run.failures)
    assert run.wallclock > ref_time
    assert 0 < run.efficiency < 1
    # checkpoint numbering continued across restarts, newest retained
    names = [p.name for p in run.saved_dirs]
    assert names == sorted(names) and len(names) == 2


def test_crash_before_first_checkpoint_relaunches_from_scratch():
    ref_time, ref_hist = _reference()
    cluster = make_cluster("early", 4, interconnect="aries")
    run = run_resilient(
        cluster, FACTORY, n_ranks=4, interval=2.0,
        faults=[NodeCrashAt(0.6, node=1)], seed=1, reference_time=ref_time,
    )
    assert run.completed
    assert run.checkpoint_times == [] or run.checkpoint_times[0] > 0.6
    assert [s["hist"] for s in run.final_states] == ref_hist
    # all pre-crash work was lost: nothing had been checkpointed
    assert run.failures[0].lost_work == pytest.approx(0.6)


def test_replans_onto_spare_cluster_when_primary_cannot_fit():
    ref_time, ref_hist = _reference()
    primary = make_cluster("prim", 2, interconnect="aries")
    spare = make_cluster("spare", 4, interconnect="tcp", default_mpi="mpich")
    run = run_resilient(
        primary, FACTORY, n_ranks=4, ranks_per_node=2, interval=1.0,
        faults=[NodeCrashAt(1.4, node=0)], spare_cluster=spare, seed=1,
        reference_time=ref_time,
    )
    assert run.completed
    # 4 ranks at 2/node need 2 nodes; the primary has 1 healthy left
    assert run.final_job.cluster is spare
    assert run.final_job.world.impl.name == "mpich"
    assert [s["hist"] for s in run.final_states] == ref_hist


def test_retry_budget_exhausted():
    run = run_resilient(
        make_cluster("budget", 4, interconnect="aries"), FACTORY, n_ranks=4,
        interval=1.0, faults=[NodeCrashAt(0.5, node=0)], max_restarts=0,
        seed=1, reference_time=1.0,
    )
    assert not run.completed
    assert run.stop_reason == "retry budget exhausted"
    assert len(run.failures) == 1


def test_no_viable_cluster_stops_cleanly():
    cluster = make_cluster("tiny", 1, interconnect="tcp")
    run = run_resilient(
        cluster, FACTORY, n_ranks=2, interval=1.0,
        faults=[NodeCrashAt(0.5, node=0)], seed=1, reference_time=1.0,
    )
    assert not run.completed
    assert run.stop_reason == "no viable cluster"


def test_rejects_bad_args():
    cluster = make_cluster("bad", 2, interconnect="tcp")
    with pytest.raises(ValueError):
        run_resilient(cluster, FACTORY, n_ranks=2, interval=0.0,
                      reference_time=1.0)
    with pytest.raises(ValueError):
        run_resilient(cluster, FACTORY, n_ranks=2, interval=1.0,
                      max_restarts=-1, reference_time=1.0)
