"""FailureDetector: heartbeat timeouts over rank helpers."""

import pytest

from repro.faults import FailureDetector, FaultInjector, NodeCrashAt, RankFailure
from repro.faults.models import ScriptedFaults
from repro.hardware.cluster import make_cluster

from tests.mana.conftest import allreduce_factory, launch_small


@pytest.fixture
def cluster():
    return make_cluster("det", 4, interconnect="aries")


def test_healthy_ranks_never_declared_failed(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=20), n_ranks=4)
    detector = FailureDetector(job.engine, job.runtimes, period=0.05)
    detector.start()
    job.run_until(5.0)
    assert detector.failed == set()
    detector.stop()


def test_dead_rank_detected_within_timeout(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=100), n_ranks=4)
    detector = FailureDetector(job.engine, job.runtimes, period=0.05)
    seen = []
    detector.on_failure.append(seen.append)
    detector.start()
    injector = FaultInjector(job.engine, cluster, job)
    injector.arm(ScriptedFaults([NodeCrashAt(2.0, node=1)]))
    job.run_until(6.0)
    dead = {r for r, nid in enumerate(job.world.placement) if nid == 1}
    assert detector.failed == dead
    assert sorted(seen) == sorted(dead)  # exactly once per dead rank
    # detection is prompt: within timeout plus ~two heartbeat periods
    for rank in dead:
        assert detector.last_seen[rank] <= 2.0 + detector.period
    detector.stop()


def test_stop_halts_heartbeats(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=3), n_ranks=4)
    detector = FailureDetector(job.engine, job.runtimes, period=0.05)
    detector.start()
    job.run_until(1.0)
    detector.stop()
    # once stopped (and the job done) the event queue drains completely
    job.run_to_completion()
    assert job.engine.pending_events == 0


def test_detector_rejects_bad_period(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=3), n_ranks=4)
    with pytest.raises(ValueError):
        FailureDetector(job.engine, job.runtimes, period=0.0)


def test_rank_failure_exception_carries_details():
    err = RankFailure(3, 1.25)
    assert err.rank == 3 and err.at == 1.25
    assert "rank 3" in str(err)
