"""Fault-model generators: scripted, exponential, correlated."""

import numpy as np
import pytest

from repro.faults import (
    CorrelatedFaults,
    ExponentialNodeFaults,
    NetworkDegradation,
    NodeCrash,
    NodeCrashAt,
    ScriptedFaults,
    SlowIO,
    node_crash_at,
)
from repro.simtime.rng import RngStreams


def test_node_crash_at_convenience():
    f = NodeCrashAt(2.5, node=3)
    assert isinstance(f, NodeCrash)
    assert f.time == 2.5 and f.nodes == (3,)
    assert node_crash_at(2.5, 3) == f


def test_scripted_faults_sorted_and_strictly_after():
    model = ScriptedFaults([
        NodeCrashAt(5.0, 1), NodeCrashAt(2.0, 0), SlowIO(time=3.0),
    ])
    first = model.next_fault(0.0)
    assert first.time == 2.0
    # strictly after: asking at exactly a fault's time skips it
    assert model.next_fault(2.0).time == 3.0
    assert model.next_fault(3.0).time == 5.0
    assert model.next_fault(5.0) is None


def test_exponential_determinism_and_monotonicity():
    a = ExponentialNodeFaults([0, 1, 2], mtbf_seconds=10.0, rng=RngStreams(4))
    b = ExponentialNodeFaults([0, 1, 2], mtbf_seconds=10.0, rng=RngStreams(4))
    t = 0.0
    seq_a, seq_b = [], []
    for _ in range(20):
        fa, fb = a.next_fault(t), b.next_fault(t)
        assert fa == fb
        assert fa.time > t
        seq_a.append(fa)
        seq_b.append(fb)
        t = fa.time
    assert seq_a == seq_b


def test_exponential_query_order_independent():
    a = ExponentialNodeFaults([0, 1], mtbf_seconds=5.0, rng=RngStreams(1))
    b = ExponentialNodeFaults([0, 1], mtbf_seconds=5.0, rng=RngStreams(1))
    # query far in the future first, then early: answers must match a
    # fresh instance queried in natural order
    late_a = a.next_fault(200.0)
    early_a = a.next_fault(0.0)
    early_b = b.next_fault(0.0)
    late_b = b.next_fault(200.0)
    assert early_a == early_b
    assert late_a == late_b


def test_exponential_mean_roughly_mtbf():
    model = ExponentialNodeFaults([7], mtbf_seconds=8.0, rng=RngStreams(0))
    times, t = [], 0.0
    for _ in range(400):
        f = model.next_fault(t)
        times.append(f.time - t)
        t = f.time
    assert 8.0 * 0.8 < np.mean(times) < 8.0 * 1.2


def test_exponential_rejects_bad_mtbf():
    with pytest.raises(ValueError):
        ExponentialNodeFaults([0], mtbf_seconds=0.0, rng=RngStreams(0))


def test_correlated_expands_to_rack():
    base = ScriptedFaults([NodeCrashAt(1.0, 2), NodeCrashAt(2.0, 5)])
    model = CorrelatedFaults(base, groups=[(0, 1, 2, 3), (4, 5, 6, 7)])
    f1 = model.next_fault(0.0)
    assert f1.nodes == (0, 1, 2, 3)
    f2 = model.next_fault(1.0)
    assert f2.nodes == (4, 5, 6, 7)


def test_correlated_passes_non_crash_faults_through():
    brownout = NetworkDegradation(time=1.0, duration=2.0, alpha_mult=3.0)
    model = CorrelatedFaults(ScriptedFaults([brownout]), groups=[(0, 1)])
    assert model.next_fault(0.0) == brownout
    assert model.next_fault(1.0) is None
