"""FaultInjector: applying faults to a live world."""

import pytest

from repro.faults import (
    FaultInjector,
    NetworkDegradation,
    NodeCrashAt,
    ScriptedFaults,
    SlowIO,
)
from repro.hardware.cluster import make_cluster

from tests.mana.conftest import allreduce_factory, launch_small


@pytest.fixture
def cluster():
    return make_cluster("inj", 4, interconnect="aries")


def test_crash_node_kills_resident_ranks(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=50), n_ranks=4)
    injector = FaultInjector(job.engine, cluster, job)
    injector.arm(ScriptedFaults([NodeCrashAt(1.3, node=1)]))
    job.run_until(5.0)

    node = cluster.node(1)
    assert node.failed and node.failed_at == 1.3
    dead = [r for r, nid in enumerate(job.world.placement) if nid == 1]
    assert dead
    for rank in dead:
        assert not job.runtimes[rank].alive
        assert job.runtimes[rank].driver.parked_at == "dead"
    # survivors stay alive; the joint completion can never resolve
    for rank in range(4):
        if rank not in dead:
            assert job.runtimes[rank].alive
    assert not job.finished.done
    assert [i.fault.nodes for i in injector.injected] == [(1,)]
    assert [i.local_time for i in injector.injected] == [1.3]


def test_crash_unknown_or_failed_node_is_ignored(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=4), n_ranks=4)
    injector = FaultInjector(job.engine, cluster, job)
    injector.crash_node(999)  # not a node of this cluster
    injector.crash_node(0)
    before = cluster.node(0).failed_at
    injector.crash_node(0)  # second crash of the same node: no-op
    assert cluster.node(0).failed_at == before
    assert len(cluster.failed_nodes) == 1


def test_offset_translates_global_to_local_time(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=50), n_ranks=4)
    injector = FaultInjector(job.engine, cluster, job, offset=10.0)
    injector.arm(ScriptedFaults([NodeCrashAt(11.5, node=0)]))
    job.run_until(3.0)
    assert cluster.node(0).failed
    assert injector.injected[0].local_time == pytest.approx(1.5)
    assert cluster.node(0).failed_at == pytest.approx(11.5)  # global


def test_network_degradation_is_transient(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=60), n_ranks=4)
    fabric = job.world.fabric
    alpha0, beta0 = fabric.alpha, fabric.beta
    injector = FaultInjector(job.engine, cluster, job)
    injector.arm(ScriptedFaults([
        NetworkDegradation(time=1.0, duration=2.0, alpha_mult=5.0,
                           beta_mult=3.0),
    ]))
    job.run_until(1.5)
    assert fabric.degraded
    assert fabric.alpha == pytest.approx(5.0 * alpha0)
    assert fabric.beta == pytest.approx(beta0 / 3.0)  # bandwidth divided
    job.run_until(4.0)
    assert not fabric.degraded
    assert fabric.alpha == pytest.approx(alpha0)
    assert fabric.beta == pytest.approx(beta0)


def test_slow_io_is_transient(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=60), n_ranks=4)
    injector = FaultInjector(job.engine, cluster, job)
    injector.arm(ScriptedFaults([SlowIO(time=1.0, duration=1.0, factor=8.0)]))
    job.run_until(1.5)
    assert cluster.storage.slowdown == 8.0
    job.run_until(3.0)
    assert cluster.storage.slowdown == 1.0


def test_slow_io_stretches_checkpoint_writes(cluster):
    factory = allreduce_factory(n_iters=30)
    fast = launch_small(cluster, factory, n_ranks=4)
    _, report_fast = fast.checkpoint_at(1.0)

    cluster2 = make_cluster("inj2", 4, interconnect="aries")
    slow = launch_small(cluster2, factory, n_ranks=4)
    FaultInjector(slow.engine, cluster2, slow).apply(
        SlowIO(time=0.0, duration=100.0, factor=8.0)
    )
    _, report_slow = slow.checkpoint_at(1.0)
    assert report_slow.write_time > 4 * report_fast.write_time


def test_disarm_cancels_pending_and_restores_storage(cluster):
    job = launch_small(cluster, allreduce_factory(n_iters=60), n_ranks=4)
    injector = FaultInjector(job.engine, cluster, job)
    injector.arm(ScriptedFaults([
        SlowIO(time=1.0, duration=50.0, factor=4.0),
        NodeCrashAt(2.0, node=0),
    ]))
    job.run_until(1.2)
    assert cluster.storage.slowdown == 4.0
    injector.disarm()
    assert cluster.storage.slowdown == 1.0  # transient undone immediately
    job.run_until(5.0)
    assert not cluster.node(0).failed  # the pending crash never fires
    assert len(injector.injected) == 1
