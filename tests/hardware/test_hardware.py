"""Kernel model, cluster placement, and Lustre storage model."""

import numpy as np
import pytest

from repro.hardware import Cluster, ClusterError, KernelModel, LustreModel
from repro.hardware.cluster import cori, local_cluster, make_cluster
from repro.hardware.kernelmodel import PATCHED, UNPATCHED


class TestKernelModel:
    def test_unpatched_uses_syscall_cost(self):
        k = KernelModel(fsgsbase_patched=False)
        assert k.fs_switch == k.fs_switch_syscall

    def test_patched_is_much_cheaper(self):
        assert PATCHED.fs_switch < UNPATCHED.fs_switch / 5

    def test_transition_is_two_switches(self):
        assert UNPATCHED.upper_lower_transition() == 2 * UNPATCHED.fs_switch


class TestClusterPlacement:
    def test_explicit_ranks_per_node(self):
        c = make_cluster("t", 4, cores_per_node=8)
        assert c.place_ranks(8, ranks_per_node=2) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_auto_placement_spreads_evenly(self):
        c = make_cluster("t", 4, cores_per_node=8)
        placement = c.place_ranks(6)
        counts = {n: placement.count(n) for n in set(placement)}
        assert max(counts.values()) - min(counts.values()) <= 1
        assert len(placement) == 6

    def test_auto_placement_more_nodes_than_ranks(self):
        c = make_cluster("t", 8)
        assert len(set(c.place_ranks(3))) == 3

    def test_too_many_ranks_raises(self):
        c = make_cluster("t", 2, cores_per_node=8)
        with pytest.raises(ClusterError, match="need"):
            c.place_ranks(32, ranks_per_node=8)

    def test_oversubscription_raises(self):
        c = make_cluster("t", 2, cores_per_node=8)
        with pytest.raises(ClusterError, match="oversubscribes"):
            c.place_ranks(16, ranks_per_node=16)

    def test_nonpositive_counts_raise(self):
        c = make_cluster("t", 2)
        with pytest.raises(ClusterError):
            c.place_ranks(0)
        with pytest.raises(ClusterError):
            c.place_ranks(4, ranks_per_node=0)

    def test_node_lookup(self):
        c = make_cluster("t", 2)
        assert c.node(1).node_id == 1
        with pytest.raises(ClusterError):
            c.node(99)

    def test_presets_describe_the_papers_testbeds(self):
        assert cori(4).interconnect == "aries"
        assert cori(4).default_mpi == "craympich"
        assert cori(4).nodes[0].cores == 32
        assert local_cluster(2).interconnect == "infiniband"
        assert local_cluster(2).default_mpi == "openmpi"


class TestLustreModel:
    def test_single_writer_exact_time(self):
        fs = LustreModel(per_node_bandwidth=1e9, per_file_overhead=0.0)
        rep = fs.burst([1_000_000_000], node_of=[0], rng=None)
        assert rep.max_time == pytest.approx(1.0)
        assert rep.total_bytes == 1_000_000_000

    def test_node_contention_halves_bandwidth(self):
        fs = LustreModel(per_node_bandwidth=1e9, per_file_overhead=0.0)
        solo = fs.burst([1 << 30], node_of=[0], rng=None).max_time
        shared = fs.burst([1 << 30, 1 << 30], node_of=[0, 0], rng=None).max_time
        assert shared == pytest.approx(2 * solo)

    def test_separate_nodes_do_not_contend(self):
        fs = LustreModel(per_node_bandwidth=1e9, aggregate_bandwidth=1e12,
                         per_file_overhead=0.0)
        solo = fs.burst([1 << 30], node_of=[0], rng=None).max_time
        spread = fs.burst([1 << 30, 1 << 30], node_of=[0, 1], rng=None).max_time
        assert spread == pytest.approx(solo)

    def test_aggregate_ceiling_applies(self):
        fs = LustreModel(per_node_bandwidth=1e9, aggregate_bandwidth=2e9,
                         per_file_overhead=0.0)
        rep = fs.burst([1 << 30] * 8, node_of=list(range(8)), rng=None)
        # 8 GiB through a 2 GB/s backend: ~4.3 s, not ~1.07 s
        assert rep.max_time > 4.0

    def test_stragglers_bounded_and_reproducible(self):
        fs = LustreModel()
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        a = fs.burst([1 << 28] * 64, node_of=[i // 8 for i in range(64)], rng=rng1)
        b = fs.burst([1 << 28] * 64, node_of=[i // 8 for i in range(64)], rng=rng2)
        assert np.array_equal(a.per_rank, b.per_rank)
        assert a.max_time <= fs.straggler_cap * a.p90_time + 1e-9
        assert a.max_time >= a.median_time

    def test_reads_cheaper_fixed_cost(self):
        fs = LustreModel(per_node_bandwidth=1e9, per_file_overhead=1.0)
        w = fs.burst([0x1000], node_of=[0], rng=None, read=False).max_time
        r = fs.burst([0x1000], node_of=[0], rng=None, read=True).max_time
        assert r < w

    def test_empty_burst(self):
        rep = LustreModel().burst([], node_of=[])
        assert rep.max_time == 0.0 and rep.total_bytes == 0

    def test_mismatched_inputs_raise(self):
        with pytest.raises(ValueError):
            LustreModel().burst([1], node_of=[])
