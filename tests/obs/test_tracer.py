"""Unit tests for the tracer, the event types and the metrics registry."""

import pytest

from repro.obs import (
    NULL_TRACER,
    Category,
    Counter,
    MetricsRegistry,
    NullTracer,
    Tracer,
    attach,
    disable_tracing,
    drain_tracers,
    enable_tracing,
    live_tracers,
    tracing_enabled,
)
from repro.simtime import Engine


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


# ------------------------------------------------------------- null tracer

def test_null_tracer_is_fully_inert():
    t = NullTracer()
    assert t.enabled is False
    assert t.begin("x", cat="mpi") is None
    t.end(None)                      # accepts the None begin() returned
    t.instant("x")
    t.dispatch(1.0, "label")
    assert list(t.events) == []
    assert t.dropped == 0


def test_null_tracer_singleton_attached_when_disabled():
    assert not tracing_enabled()
    eng = Engine()
    assert eng.tracer is NULL_TRACER


# ------------------------------------------------------------------ tracer

def test_span_records_virtual_times():
    clock = FakeClock(1.0)
    tr = Tracer(clock)
    span = tr.begin("allreduce", cat=Category.MPI, rank=3, bytes=64)
    clock.now = 2.5
    tr.end(span, result="ok")
    assert span.ts == 1.0 and span.dur == 1.5 and span.end_ts == 2.5
    assert span.closed
    assert span.rank == 3
    assert span.args == {"bytes": 64, "result": "ok"}


def test_end_is_idempotent_and_tolerates_none():
    clock = FakeClock()
    tr = Tracer(clock)
    span = tr.begin("s")
    clock.now = 1.0
    tr.end(span)
    clock.now = 9.0
    tr.end(span)            # second end does not move the duration
    assert span.dur == 1.0
    tr.end(None)            # filtered-out spans come back as None


def test_category_filter():
    tr = Tracer(FakeClock(), categories=Category.DEFAULT)
    assert tr.begin("dispatch", cat=Category.ENGINE) is None
    tr.dispatch(0.0, "ev")
    assert tr.begin("send", cat=Category.MPI) is not None
    assert len(tr.events) == 1


def test_event_cap_counts_drops():
    tr = Tracer(FakeClock(), max_events=2)
    tr.instant("a")
    tr.instant("b")
    tr.instant("c")
    tr.instant("d")
    assert len(tr.events) == 2
    assert tr.dropped == 2


def test_span_and_instant_queries():
    clock = FakeClock()
    tr = Tracer(clock)
    tr.end(tr.begin("send", cat=Category.MPI, rank=0))
    tr.end(tr.begin("recv", cat=Category.MPI, rank=1))
    tr.instant("fault:NodeCrash", cat=Category.FAULT)
    assert [s.name for s in tr.spans(cat=Category.MPI)] == ["send", "recv"]
    assert len(tr.spans(name="send")) == 1
    assert len(tr.instants(cat=Category.FAULT)) == 1
    assert tr.instants(cat=Category.MPI) == []


# -------------------------------------------------- process-wide switch

def test_attach_lifecycle():
    assert attach(FakeClock()) is NULL_TRACER
    enable_tracing(Category.DEFAULT)
    try:
        assert tracing_enabled()
        eng = Engine()
        assert isinstance(eng.tracer, Tracer)
        assert eng.tracer.categories == Category.DEFAULT
        assert eng.tracer in live_tracers()
    finally:
        collected = drain_tracers()
        disable_tracing()
    assert len(collected) == 1
    assert live_tracers() == []
    assert not tracing_enabled()
    assert Engine().tracer is NULL_TRACER


def test_engine_dispatch_spans_recorded_when_tracing_all():
    enable_tracing()          # no filter: engine dispatch included
    try:
        eng = Engine()
        eng.call_after(1.0, lambda: None, label="tick")
        eng.run()
        dispatches = eng.tracer.spans(cat=Category.ENGINE)
        assert [d.name for d in dispatches] == ["tick"]
        assert dispatches[0].ts == 1.0 and dispatches[0].dur == 0.0
    finally:
        drain_tracers()
        disable_tracing()


# ----------------------------------------------------------------- metrics

def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("mpi.p2p.sent_bytes", rank=0)
    c.inc(10)
    c.inc(5)
    assert reg.counter("mpi.p2p.sent_bytes", rank=0) is c
    assert reg.value("mpi.p2p.sent_bytes", rank=0) == 15
    with pytest.raises(ValueError):
        c.inc(-1)

    g = reg.gauge("queue.depth")
    g.set(7)
    g.set(3)
    assert reg.value("queue.depth") == 3

    h = reg.histogram("ckpt.drain_seconds")
    h.observe(0.5)
    h.observe(1.5)
    assert h.count == 2
    assert h.mean == pytest.approx(1.0)
    assert sum(h.counts) == 2


def test_total_sums_across_labels_and_rows_are_flat():
    reg = MetricsRegistry()
    reg.counter("x.bytes", rank=0).inc(3)
    reg.counter("x.bytes", rank=1).inc(4)
    assert reg.total("x.bytes") == 7
    assert reg.value("x.bytes", rank=2) is None
    rows = reg.rows()
    assert ("x.bytes", "rank=0", "counter", 3) in rows
    assert ("x.bytes", "rank=1", "counter", 4) in rows


def test_metric_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("m").inc()
    # corrupt the slot a counter lookup would hit, to exercise the guard
    key = ("Counter", "m", ())
    reg._instruments[key] = reg.gauge("other")
    with pytest.raises(TypeError):
        reg.counter("m")


def test_same_name_different_kinds_coexist():
    reg = MetricsRegistry()
    reg.counter("m").inc(2)
    reg.gauge("m").set(5)
    assert isinstance(reg.counter("m"), Counter)
    assert reg.counter("m").value == 2


def test_merged_adds_counters_only():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("sent", rank=0).inc(5)
    b.counter("sent", rank=0).inc(7)
    b.counter("sent", rank=1).inc(1)
    a.gauge("depth").set(9)
    merged = a.merged(b)
    assert merged.value("sent", rank=0) == 12
    assert merged.value("sent", rank=1) == 1
    assert merged.value("depth") is None        # gauges are engine-local
