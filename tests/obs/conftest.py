"""Shared observability fixtures: scoped process-wide tracing."""

import pytest

from repro.obs import disable_tracing, drain_tracers, enable_tracing


@pytest.fixture
def traced():
    """Enable process-wide tracing for one test, always cleaning up.

    Yields :func:`enable_tracing` so tests can re-enable with a category
    filter; tracers left behind are drained on teardown either way.
    """
    enable_tracing()
    try:
        yield enable_tracing
    finally:
        drain_tracers()
        disable_tracing()
