"""Protocol-phase invariants, checked from captured trace spans.

These tests use the observability subsystem as an *oracle* for Algorithm 2:
the captured spans must show that no rank wrote its checkpoint image before
the coordinator's drain phase closed, and that every checkpoint-intent span
is matched by exactly one resume or abort instant — including on the
:class:`~repro.mana.coordinator.CheckpointAborted` path.
"""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana.coordinator import CheckpointAborted
from repro.mana.protocol import PHASE_SPANS
from repro.obs import Category, drain_tracers

from tests.mana.conftest import launch_small, ring_factory
from tests.mana.test_coordinator_abort import (
    _kill_and_notify,
    compute_only_factory,
)


@pytest.fixture
def cluster():
    return make_cluster("inv", 2, interconnect="aries",
                        default_mpi="craympich")


def _coordinator_tracer():
    """The tracer of the job engine (the only engine the test created)."""
    tracers = drain_tracers()
    assert len(tracers) == 1
    return tracers[0]


def _intent_resume_abort(tracer):
    intents = tracer.spans(cat=Category.PROTOCOL, name="ckpt:intent")
    resumes = tracer.instants(cat=Category.PROTOCOL, name="ckpt:resume")
    aborts = tracer.instants(cat=Category.PROTOCOL, name="ckpt:abort")
    return intents, resumes, aborts


def test_no_rank_writes_before_drain_closes(cluster, traced):
    job = launch_small(cluster, ring_factory(n_steps=6, cost=0.2), n_ranks=4)
    job.checkpoint_at(0.55)
    job.run_to_completion()
    tracer = _coordinator_tracer()

    (drain,) = tracer.spans(cat=Category.PROTOCOL, name="ckpt:drain")
    assert drain.closed, "drain phase never completed"
    writes = tracer.spans(cat=Category.CHECKPOINT, name="rank:write")
    assert len(writes) == 4, "every rank must record a write span"
    for w in writes:
        assert w.ts >= drain.end_ts, (
            f"rank {w.rank} wrote its image at t={w.ts} before drain "
            f"closed at t={drain.end_ts}"
        )
    # drains themselves all happen inside the coordinator's drain phase
    rank_drains = tracer.spans(cat=Category.CHECKPOINT, name="rank:drain")
    assert len(rank_drains) == 4
    for d in rank_drains:
        assert d.closed and d.end_ts <= drain.end_ts


def test_completed_checkpoint_matches_intent_with_resume(cluster, traced):
    job = launch_small(cluster, ring_factory(n_steps=6, cost=0.2), n_ranks=4)
    job.checkpoint_at(0.55)
    job.run_to_completion()
    tracer = _coordinator_tracer()

    intents, resumes, aborts = _intent_resume_abort(tracer)
    assert len(intents) == 1
    assert len(resumes) == 1 and len(aborts) == 0
    assert intents[0].closed
    # the umbrella span closed too, and covers the resume instant
    (ckpt,) = tracer.spans(cat=Category.PROTOCOL, name="ckpt")
    assert ckpt.closed and ckpt.end_ts == resumes[0].ts
    # every protocol phase from the shared vocabulary appears, closed
    for span_name in PHASE_SPANS.values():
        (span,) = tracer.spans(cat=Category.PROTOCOL, name=span_name)
        assert span.closed, f"{span_name} never closed"


def test_aborted_checkpoint_matches_intent_with_abort(cluster, traced):
    job = launch_small(cluster, compute_only_factory(), n_ranks=4)
    job.run_until(0.5)
    done = job.coordinator.request_checkpoint()
    for _ in range(3):
        job.engine.step()
    _kill_and_notify(job, 2)
    assert isinstance(done.value, CheckpointAborted)
    job.engine.run()
    tracer = _coordinator_tracer()

    intents, resumes, aborts = _intent_resume_abort(tracer)
    assert len(intents) == 1
    assert len(resumes) == 0 and len(aborts) == 1
    assert aborts[0].rank == 2
    assert aborts[0].args["phase"] == "collect-states"
    # the round never completed: intent span is deliberately left open, and
    # no rank reached the write phase
    assert not intents[0].closed
    assert tracer.spans(cat=Category.CHECKPOINT, name="rank:write") == []


def test_every_intent_matched_across_multiple_rounds(cluster, traced):
    job = launch_small(cluster, ring_factory(n_steps=8, cost=0.2), n_ranks=4)
    job.checkpoint_at(0.45)
    job.checkpoint_at(0.95)
    job.run_to_completion()
    tracer = _coordinator_tracer()

    intents, resumes, aborts = _intent_resume_abort(tracer)
    assert len(intents) == 2
    assert len(resumes) + len(aborts) == len(intents)
