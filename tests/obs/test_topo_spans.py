"""Trace-span oracle for the topological-sort protocol.

Protocol v2 has its own span vocabulary (:data:`TOPO_PHASE_SPANS`), kept
disjoint from Algorithm 2's so alg2 traces stay byte-for-byte identical.
These tests pin both directions of that separation, plus the shared
umbrella: every checkpoint — either protocol — emits one closed ``ckpt``
span ending at its ``ckpt:resume`` instant.
"""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana.protocol import PHASE_SPANS, TOPO_PHASE_SPANS
from repro.obs import Category, drain_tracers

from tests.mana.conftest import launch_small, ring_factory


@pytest.fixture
def cluster():
    return make_cluster("topo-obs", 2, interconnect="aries",
                        default_mpi="craympich")


def _one_tracer():
    tracers = drain_tracers()
    assert len(tracers) == 1
    return tracers[0]


def _ckpt_cycle(cluster, protocol):
    job = launch_small(cluster, ring_factory(n_steps=6, cost=0.2),
                       n_ranks=4, protocol=protocol)
    job.checkpoint_at(0.55)
    job.run_to_completion()
    return _one_tracer()


def test_topo_checkpoint_emits_topo_spans_only(cluster, traced):
    tracer = _ckpt_cycle(cluster, "topo")
    for name in TOPO_PHASE_SPANS.values():
        (span,) = tracer.spans(cat=Category.PROTOCOL, name=name)
        assert span.closed, f"{name} never closed"
    # the alg2 vocabulary must be absent — the protocols never mix spans
    for name in PHASE_SPANS.values():
        assert tracer.spans(cat=Category.PROTOCOL, name=name) == []
    # shared umbrella: one ckpt span, closed at the resume instant
    (ckpt,) = tracer.spans(cat=Category.PROTOCOL, name="ckpt")
    (resume,) = tracer.instants(cat=Category.PROTOCOL, name="ckpt:resume")
    assert ckpt.closed and ckpt.end_ts == resume.ts


def test_alg2_checkpoint_emits_no_topo_spans(cluster, traced):
    tracer = _ckpt_cycle(cluster, "alg2")
    for name in TOPO_PHASE_SPANS.values():
        assert tracer.spans(cat=Category.PROTOCOL, name=name) == []
    for name in PHASE_SPANS.values():
        (span,) = tracer.spans(cat=Category.PROTOCOL, name=name)
        assert span.closed


def test_topo_intent_span_carries_classification(cluster, traced):
    """The intent span closes with the laggard/wave/fallback verdict —
    the trace is enough to reconstruct why each rank wrote when it did."""
    tracer = _ckpt_cycle(cluster, "topo")
    (intent,) = tracer.spans(cat=Category.PROTOCOL, name="ckpt:topo-intent")
    assert "laggards" in intent.args
    assert "waves" in intent.args
    assert "fallback" in intent.args
    # the ring keeps a message in flight to every rank: all-cycle fallback
    assert sorted(intent.args["fallback"]) == [0, 1, 2, 3]
