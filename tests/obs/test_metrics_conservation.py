"""Metrics conservation: every byte sent is a byte received.

The mpilib endpoints count p2p traffic at the send and the delivery sides
independently.  Across a full checkpoint/restart cycle — including the
drain phase absorbing in-flight messages into rank buffers, the journal
replaying them after restart, and the send-guard suppressing re-sends —
the two totals must agree exactly.  Metric registries from the source and
restarted engines are combined with :meth:`MetricsRegistry.merged`.
"""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mana import restart

from tests.mana.conftest import expected_ring_acc, launch_small, ring_factory


def _source_cluster():
    return make_cluster("src", 2, interconnect="aries",
                        default_mpi="craympich")


def _assert_conserved(metrics):
    sent_b = metrics.total("mpi.p2p.sent_bytes")
    recv_b = metrics.total("mpi.p2p.recv_bytes")
    sent_n = metrics.total("mpi.p2p.sent_messages")
    recv_n = metrics.total("mpi.p2p.recv_messages")
    assert sent_n > 0 and sent_b > 0, "workload exchanged no p2p traffic"
    assert sent_n == recv_n, f"lost/duplicated messages: {sent_n} != {recv_n}"
    assert sent_b == recv_b, f"lost/duplicated bytes: {sent_b} != {recv_b}"


@pytest.mark.parametrize("mpi2,net2", [
    ("mpich", "tcp"),
    ("openmpi", "infiniband"),
])
def test_bytes_conserved_across_checkpoint_restart(mpi2, net2):
    factory = ring_factory(n_steps=6)
    job = launch_small(_source_cluster(), factory)
    ckpt, _report = job.checkpoint_at(0.55)

    cluster2 = make_cluster("dst", 4, interconnect=net2)
    job2 = restart(ckpt, cluster2, factory, mpi=mpi2, ranks_per_node=1)
    job2.run_to_completion()

    # the restarted run still computes the right answer...
    for r, s in enumerate(job2.states):
        assert s["acc"] == expected_ring_acc(r, 4, 6)
    # ...and the cycle as a whole conserves messages and bytes
    merged = job.engine.metrics.merged(job2.engine.metrics)
    _assert_conserved(merged)


def test_bytes_conserved_without_restart():
    """Baseline: a single engine with a mid-run checkpoint also balances."""
    job = launch_small(_source_cluster(), ring_factory(n_steps=6))
    job.checkpoint_at(0.55)
    job.run_to_completion()
    _assert_conserved(job.engine.metrics)


def test_per_rank_receive_counters_populated():
    """Conservation must hold rank-by-rank too, not just in aggregate: in a
    symmetric ring every rank sends and receives the same message count."""
    job = launch_small(_source_cluster(), ring_factory(n_steps=6))
    job.run_to_completion()
    m = job.engine.metrics
    for rank in range(4):
        sent = m.value("mpi.p2p.sent_messages", rank=rank)
        recv = m.value("mpi.p2p.recv_messages", rank=rank)
        assert sent == recv == 6
