"""A/B determinism: tracing must be invisible to the simulation.

Every example is run twice — tracing disabled, then tracing fully enabled
(all categories, including engine dispatch) — and must produce byte-identical
stdout and identical final virtual clocks on every engine it created.  This
is the "zero cost when disabled / zero perturbation when enabled" guarantee:
the tracer only records; it never schedules events or consumes randomness.
"""

import contextlib
import io
import runpy
from pathlib import Path

import pytest

import repro.simtime.engine as engine_mod
from repro.obs import disable_tracing, drain_tracers, enable_tracing

EXAMPLES = sorted(
    p for p in (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def _run_example(path):
    """Run one example script; returns (stdout, sorted final engine clocks)."""
    engines = []
    original = engine_mod.Engine.__init__

    def recording_init(self, *a, **kw):
        original(self, *a, **kw)
        engines.append(self)

    engine_mod.Engine.__init__ = recording_init
    out = io.StringIO()
    try:
        with contextlib.redirect_stdout(out):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        engine_mod.Engine.__init__ = original
    return out.getvalue(), sorted(e.now for e in engines)


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_examples_identical_with_and_without_tracing(example):
    disable_tracing()
    out_off, clocks_off = _run_example(example)
    enable_tracing(categories=None)  # everything, engine dispatch included
    try:
        out_on, clocks_on = _run_example(example)
        tracers = drain_tracers()
    finally:
        drain_tracers()
        disable_tracing()

    assert out_on == out_off
    assert clocks_on == clocks_off
    assert out_off, "example printed nothing — harness is broken"
    if clocks_off:
        # the traced run actually recorded something, so the A/B comparison
        # is not vacuously passing with a dead tracer (verify_protocol is
        # model-checker-only and legitimately creates no engines)
        assert sum(len(t.events) for t in tracers) > 0
