"""Unit tests for the Chrome-trace exporter, its validator and the tables."""

import json

import pytest

from repro.obs import (
    Category,
    Tracer,
    TraceValidationError,
    chrome_trace,
    metrics_table,
    rank_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def _sample_tracer():
    clock = FakeClock(0.5)
    tr = Tracer(clock)
    span = tr.begin("allreduce", cat=Category.MPI, rank=2, node="n0", bytes=64)
    clock.now = 0.75
    tr.end(span)
    tr.begin("ckpt", cat=Category.PROTOCOL)          # left open (abort shape)
    tr.instant("ckpt:abort", cat=Category.PROTOCOL, rank=1, phase="drain")
    return tr


# ---------------------------------------------------------------- exporter

def test_chrome_trace_structure():
    doc = chrome_trace([_sample_tracer()], label="unit")
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["droppedEvents"] == 0
    evs = doc["traceEvents"]

    meta = [e for e in evs if e["ph"] == "M"]
    names = {(e["name"], e["tid"]): e["args"]["name"] for e in meta}
    assert names[("process_name", 0)] == "unit/engine-1"
    assert names[("thread_name", 0)] == "coordinator"
    assert names[("thread_name", 3)] == "rank 2"      # tid = rank + 1

    (x,) = [e for e in evs if e["ph"] == "X"]
    assert x["name"] == "allreduce" and x["cat"] == "mpi"
    assert x["ts"] == pytest.approx(0.5e6)            # virtual s -> us
    assert x["dur"] == pytest.approx(0.25e6)
    assert x["tid"] == 3 and x["pid"] == 1
    assert x["args"] == {"bytes": 64, "node": "n0"}

    (b,) = [e for e in evs if e["ph"] == "B"]         # open span survives
    assert b["name"] == "ckpt" and b["tid"] == 0

    (i,) = [e for e in evs if e["ph"] == "i"]
    assert i["s"] == "t" and i["args"]["phase"] == "drain"


def test_chrome_trace_multiple_tracers_get_distinct_pids():
    doc = chrome_trace([_sample_tracer(), _sample_tracer()])
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {1, 2}


def test_chrome_trace_surfaces_dropped_counts():
    tr = Tracer(FakeClock(), max_events=1)
    tr.instant("a")
    tr.instant("b")
    doc = chrome_trace([tr])
    assert doc["otherData"]["droppedEvents"] == 1


def test_write_chrome_trace_round_trips(tmp_path):
    path = tmp_path / "trace.json"
    doc = write_chrome_trace(str(path), [_sample_tracer()])
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(doc))
    validate_chrome_trace(loaded)


# --------------------------------------------------------------- validator

def _valid_doc():
    return chrome_trace([_sample_tracer()])


def test_validator_accepts_exporter_output():
    validate_chrome_trace(_valid_doc())     # must not raise


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.pop("traceEvents"), "traceEvents"),
    (lambda d: d["traceEvents"].append("nope"), "not an object"),
    (lambda d: d["traceEvents"].append({"ph": "Z", "name": "x"}), "bad phase"),
    (lambda d: d["traceEvents"].append(
        {"ph": "i", "name": "", "pid": 1, "tid": 0, "ts": 0, "s": "t"}),
     "missing name"),
    (lambda d: d["traceEvents"].append(
        {"ph": "i", "name": "x", "pid": "one", "tid": 0, "ts": 0, "s": "t"}),
     "integer pid"),
    (lambda d: d["traceEvents"].append(
        {"ph": "i", "name": "x", "pid": 1, "tid": 0, "s": "t"}),
     "numeric ts"),
    (lambda d: d["traceEvents"].append(
        {"ph": "i", "name": "x", "pid": 1, "tid": 0, "ts": 0, "cat": 3,
         "s": "t"}),
     "cat must be a string"),
    (lambda d: d["traceEvents"].append(
        {"ph": "i", "name": "x", "pid": 1, "tid": 0, "ts": 0, "s": "t",
         "args": [1]}),
     "args must be an object"),
    (lambda d: d["traceEvents"].append(
        {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0, "dur": -1}),
     "dur >= 0"),
    (lambda d: d["traceEvents"].append(
        {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0}),
     "dur >= 0"),
    (lambda d: d["traceEvents"].append(
        {"ph": "i", "name": "x", "pid": 1, "tid": 0, "ts": 0, "s": "q"}),
     "g/p/t"),
    (lambda d: d["traceEvents"].append(
        {"ph": "E", "name": "x", "pid": 9, "tid": 9, "ts": 0}),
     "E without matching B"),
])
def test_validator_rejections(mutate, fragment):
    doc = _valid_doc()
    mutate(doc)
    with pytest.raises(TraceValidationError) as exc:
        validate_chrome_trace(doc)
    assert any(fragment in e for e in exc.value.errors)


def test_validator_rejects_non_dict_document():
    with pytest.raises(TraceValidationError):
        validate_chrome_trace([{"ph": "i"}])


def test_validator_error_lists_every_violation():
    doc = _valid_doc()
    doc["traceEvents"].append({"ph": "Z"})
    doc["traceEvents"].append({"ph": "Y"})
    with pytest.raises(TraceValidationError) as exc:
        validate_chrome_trace(doc)
    assert len(exc.value.errors) == 2


# ------------------------------------------------------------------ tables

def test_metrics_table_shape():
    reg = MetricsRegistry()
    reg.counter("mpi.p2p.sent_bytes", rank=0).inc(128)
    reg.histogram("ckpt.drain_seconds").observe(0.25)
    table = metrics_table(reg, title="t")
    assert table.columns == ["metric", "labels", "kind", "value"]
    metrics = table.column("metric")
    assert "mpi.p2p.sent_bytes" in metrics
    assert "ckpt.drain_seconds" in metrics
    kinds = dict(zip(metrics, table.column("kind")))
    assert kinds["ckpt.drain_seconds"] == "histogram"


def test_rank_timeline_aggregates_spans():
    tr = _sample_tracer()
    table = rank_timeline([tr])
    assert table.columns == ["rank", "category", "spans", "busy_s"]
    rows = list(zip(table.column("rank"), table.column("category"),
                    table.column("spans"), table.column("busy_s")))
    assert (2, "mpi", 1, pytest.approx(0.25)) in [
        (r, c, s, b) for r, c, s, b in rows
    ]
    # the open coordinator span appears with zero accumulated duration
    assert ("coord", "protocol", 1, 0.0) in rows
