"""RankDriver scheduling and native job runs."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mpilib import SUM, launch
from repro.mprog import Call, Compute, Loop, Program, Seq, While
from repro.runtime import DriverError, NativeJob, RankDriver, run_native
from repro.simtime import Engine


def ring_program(n_steps=3):
    """Each rank sends its value around a ring and accumulates."""

    def init(s):
        s["acc"] = float(s["rank"])
        s["val"] = float(s["rank"])

    def do_send(s, api):
        dest = (s["rank"] + 1) % s["size"]
        return api.send(dest, np.array([s["val"]]), tag=7)

    def do_recv(s, api):
        src = (s["rank"] - 1) % s["size"]
        return api.recv(source=src, tag=7)

    def absorb(s):
        data, _status = s["got"]
        s["val"] = float(data[0])
        s["acc"] += s["val"]

    return Program(
        Seq(
            Compute(init),
            Loop(n_steps, Seq(
                Call(do_send),
                Call(do_recv, store="got"),
                Compute(absorb),
            )),
        ),
        name="ring",
    )


def allreduce_program(n_iters=4):
    def init(s):
        s["x"] = np.array([float(s["rank"] + 1)])
        s["history"] = []

    def do_allreduce(s, api):
        return api.allreduce(s["x"], SUM)

    def absorb(s):
        s["history"].append(float(s["sum"][0]))

    return Program(
        Seq(
            Compute(init),
            Loop(n_iters, Seq(Call(do_allreduce, store="sum"), Compute(absorb))),
        ),
        name="allreduce",
    )


def test_native_ring_results():
    cluster = make_cluster("t", 4, interconnect="aries")
    job = run_native(cluster, lambda r, n: ring_program(3), n_ranks=4,
                     ranks_per_node=1)
    # After 3 hops each rank accumulated the 3 upstream values.
    for r, state in enumerate(job.states):
        expected = r + sum((r - k) % 4 for k in range(1, 4))
        assert state["acc"] == expected


def test_native_allreduce_results():
    cluster = make_cluster("t", 2, interconnect="tcp")
    job = run_native(cluster, lambda r, n: allreduce_program(2), n_ranks=4,
                     ranks_per_node=2)
    for state in job.states:
        assert state["history"] == [10.0, 10.0]


def test_compute_cost_advances_clock():
    engine = Engine()
    cluster = make_cluster("t", 1)
    world = launch(engine, cluster, 1)
    prog = Program(Seq(Compute(lambda s: None, cost=2.5),
                       Compute(lambda s: None, cost=1.5)))
    job = NativeJob(engine, world, [prog])
    elapsed = job.run_to_completion()
    assert elapsed == pytest.approx(4.0)


def test_core_speed_scales_compute():
    def elapsed(speed):
        engine = Engine()
        cluster = make_cluster("t", 1, core_speed=speed)
        world = launch(engine, cluster, 1)
        prog = Program(Compute(lambda s: None, cost=4.0))
        return NativeJob(engine, world, [prog]).run_to_completion()

    assert elapsed(2.0) == pytest.approx(elapsed(1.0) / 2)


def test_compute_only_while_loop_does_not_starve():
    engine = Engine()
    cluster = make_cluster("t", 1)
    world = launch(engine, cluster, 1)

    def bump(s):
        s["n"] = s.get("n", 0) + 1

    prog = Program(Seq(
        Compute(lambda s: s.__setitem__("n", 0)),
        While(lambda s: s["n"] < 25_000, Compute(bump)),
    ))
    job = NativeJob(engine, world, [prog])
    job.run_to_completion()
    assert job.states[0]["n"] == 25_000


def test_driver_double_start_raises():
    engine = Engine()
    cluster = make_cluster("t", 1)
    world = launch(engine, cluster, 1)
    prog = Program(Compute(lambda s: None))
    job = NativeJob(engine, world, [prog])
    job.start()
    with pytest.raises(DriverError):
        job.drivers[0].start()


def test_bad_call_return_type_detected():
    engine = Engine()
    cluster = make_cluster("t", 1)
    world = launch(engine, cluster, 1)
    prog = Program(Call(lambda s, api: 42))
    job = NativeJob(engine, world, [prog])
    job.start()
    with pytest.raises(DriverError, match="expected a Completion"):
        engine.run()


def test_program_count_mismatch():
    engine = Engine()
    cluster = make_cluster("t", 2)
    world = launch(engine, cluster, 2, ranks_per_node=1)
    with pytest.raises(ValueError):
        NativeJob(engine, world, [Program(Compute(lambda s: None))])


def test_incomplete_job_reports_stuck_ranks():
    engine = Engine()
    cluster = make_cluster("t", 2)
    world = launch(engine, cluster, 2, ranks_per_node=1)
    # rank 0 waits for a message that never comes; rank 1 finishes.
    progs = [
        Program(Call(lambda s, api: api.recv(source=1, tag=9), label="stuck")),
        Program(Compute(lambda s: None)),
    ]
    job = NativeJob(engine, world, progs)
    with pytest.raises(RuntimeError, match="did not finish"):
        job.run_to_completion()


class TestQuiesceResume:
    def _job(self):
        engine = Engine()
        cluster = make_cluster("t", 1)
        world = launch(engine, cluster, 1)
        prog = Program(Loop(10, Seq(
            Compute(lambda s: s.__setitem__("n", s.get("n", 0) + 1), cost=1.0),
            Call(lambda s, api: api.barrier()),
        )))
        job = NativeJob(engine, world, [prog])
        return engine, job

    def test_quiesce_freezes_at_boundary(self):
        engine, job = self._job()
        job.start()
        engine.run(until=3.5)
        driver = job.drivers[0]
        driver.quiesce()
        engine.run()
        assert not driver.finished.done
        assert driver.parked_at in ("quiesce", "call")
        n_at_freeze = job.states[0]["n"]
        engine.run()  # no progress while quiesced
        assert job.states[0]["n"] == n_at_freeze

    def test_resume_completes(self):
        engine, job = self._job()
        job.start()
        engine.run(until=3.5)
        driver = job.drivers[0]
        driver.quiesce()
        engine.run()
        driver.resume()
        engine.run()
        assert driver.finished.done
        assert job.states[0]["n"] == 10

    def test_resume_without_quiesce_is_noop(self):
        engine, job = self._job()
        job.start()
        job.drivers[0].resume()
        engine.run()
        assert job.drivers[0].finished.done


def test_call_gate_parks_and_release_continues():
    engine = Engine()
    cluster = make_cluster("t", 1)
    world = launch(engine, cluster, 1)
    prog = Program(Seq(
        Call(lambda s, api: api.barrier(), label="gated"),
        Compute(lambda s: s.__setitem__("done", True)),
    ))
    job = NativeJob(engine, world, [prog])
    driver = job.drivers[0]
    gated = []
    driver.call_gate = lambda action: (gated.append(action.node.label), False)[1]
    job.start()
    engine.run()
    assert driver.parked_at == "gate"
    assert gated == ["gated"]
    driver.call_gate = None
    driver.release()
    engine.run()
    assert driver.finished.done
    assert job.states[0]["done"] is True


def test_finished_job_wall_time_includes_mpi_latency():
    cluster = make_cluster("t", 2, interconnect="tcp")
    engine = Engine()
    world = launch(engine, cluster, 2, ranks_per_node=1)
    progs = [Program(Call(lambda s, api: api.barrier())) for _ in range(2)]
    job = NativeJob(engine, world, progs)
    elapsed = job.run_to_completion()
    assert elapsed > 0
