"""Golden determinism regression: pinned per-app checksums.

These values were produced by the deterministic simulation at a fixed
configuration; any change to application numerics, the RNG streams, message
matching, or reduction ordering shows up here first.  If a change is
*intentional* (e.g. an app kernel edit), regenerate with:

    python -c "from tests.apps.test_golden_checksums import regenerate; regenerate()"
"""

import pytest

from repro.apps import APP_REGISTRY, get_app
from repro.hardware.cluster import cori
from repro.runtime.native import run_native

CONFIG = dict(n_ranks=8, n_steps=4)

#: app -> rank-0 checksum under CONFIG (8 ranks where the geometry allows,
#: LULESH drops to its nearest cube, which is also 8)
GOLDEN = {
    "clamr": 1175.133694546227,
    "commchurn": 0.17622592327426,
    "gromacs": 178.2975651501,
    "hpcg": 211.37589965079457,
    "lulesh": 0.09998036466099999,
    "minife": 507.0721075247329,
    "npbft": 499.76902151,
}


def _checksum(name):
    spec = get_app(name)
    cfg = spec.default_config.scaled(n_steps=CONFIG["n_steps"])
    n = spec.valid_ranks(CONFIG["n_ranks"])
    job = run_native(cori(1), spec.build(cfg), n_ranks=n, ranks_per_node=n)
    return job.states[0]["checksum"]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_checksum(name):
    assert _checksum(name) == pytest.approx(GOLDEN[name], rel=0, abs=0), \
        f"{name}: numerics changed — regenerate GOLDEN if intentional"


def test_golden_covers_every_registered_app():
    assert sorted(GOLDEN) == sorted(APP_REGISTRY)


def regenerate():
    """Print a fresh GOLDEN table."""
    for name in sorted(APP_REGISTRY):
        print(f'    "{name}": {_checksum(name)!r},')


if __name__ == "__main__":
    regenerate()
