"""The five mini-apps: registry, correctness, determinism, MANA-compat."""

import numpy as np
import pytest

from repro.apps import APP_REGISTRY, get_app
from repro.apps.lulesh import cube_ranks
from repro.hardware.cluster import cori, make_cluster
from repro.mana import launch_mana, restart
from repro.runtime.native import run_native

ALL_APPS = sorted(APP_REGISTRY)


def run_app_native(name, n_ranks=8, n_steps=4, cluster=None):
    spec = get_app(name)
    cfg = spec.default_config.scaled(n_steps=n_steps)
    cluster = cluster or cori(1)
    n = spec.valid_ranks(n_ranks)
    return run_native(cluster, spec.build(cfg), n_ranks=n, ranks_per_node=n)


def test_registry_has_the_papers_five_plus_extension():
    assert ALL_APPS == ["clamr", "commchurn", "gromacs", "hpcg", "lulesh",
                        "minife", "npbft"]


def test_unknown_app_raises():
    with pytest.raises(ValueError, match="unknown app"):
        get_app("namd")


@pytest.mark.parametrize("name", ALL_APPS)
def test_app_runs_and_produces_trace(name):
    job = run_app_native(name)
    for state in job.states:
        assert state["checksum"] != 0.0
        trace_keys = [k for k in state if k.endswith("_trace")]
        assert trace_keys, "every app records a per-step trace"
        assert all(len(state[k]) > 0 for k in trace_keys)


@pytest.mark.parametrize("name", ALL_APPS)
def test_app_deterministic(name):
    a = run_app_native(name)
    b = run_app_native(name)
    for sa, sb in zip(a.states, b.states):
        assert sa["checksum"] == sb["checksum"]
    assert a.engine.now == b.engine.now


@pytest.mark.parametrize("name", ALL_APPS)
def test_app_single_rank(name):
    job = run_app_native(name, n_ranks=1)
    assert job.states[0]["checksum"] != 0.0


@pytest.mark.parametrize("name", ALL_APPS)
def test_app_checkpoint_restart_exact(name):
    spec = get_app(name)
    cfg = spec.default_config.scaled(n_steps=5)
    cluster = cori(2)
    n = spec.valid_ranks(8)
    rpn = -(-n // 2)

    baseline = launch_mana(cluster, spec.build(cfg), n_ranks=n,
                           ranks_per_node=rpn, app_mem_bytes=1 << 20).start()
    baseline.run_to_completion()
    t_total = baseline.engine.now

    job = launch_mana(cluster, spec.build(cfg), n_ranks=n,
                      ranks_per_node=rpn, app_mem_bytes=1 << 20).start()
    ckpt, _ = job.checkpoint_at(t_total * 0.5)
    dst = make_cluster("dst", n, cores_per_node=8, interconnect="tcp")
    job2 = restart(ckpt, dst, spec.build(cfg), ranks_per_node=1, mpi="openmpi")
    job2.run_to_completion()
    for s2, sb in zip(job2.states, baseline.states):
        assert s2["checksum"] == sb["checksum"]


class TestCubeRanks:
    @pytest.mark.parametrize("n,expect", [
        (1, 1), (7, 1), (8, 8), (26, 8), (27, 27), (64, 64), (100, 64),
        (511, 343), (512, 512), (2048, 1728),
    ])
    def test_largest_cube(self, n, expect):
        assert cube_ranks(n) == expect


class TestMemoryModels:
    def test_gromacs_flat(self):
        spec = get_app("gromacs")
        cfg = spec.default_config
        assert spec.memory_bytes(cfg, 0, 64) == spec.memory_bytes(cfg, 0, 2048)
        assert 85 << 20 < spec.memory_bytes(cfg, 0, 64) < 100 << 20

    def test_hpcg_weak_scaling_2gb(self):
        spec = get_app("hpcg")
        assert spec.memory_bytes(spec.default_config, 0, 2048) == 2048 << 20

    def test_lulesh_strong_scaling_shrinks(self):
        spec = get_app("lulesh")
        cfg = spec.default_config
        assert spec.memory_bytes(cfg, 0, 64) > spec.memory_bytes(cfg, 0, 512)

    def test_minife_shrinks_with_nodes(self):
        spec = get_app("minife")
        cfg = spec.default_config
        assert spec.memory_bytes(cfg, 0, 64) > spec.memory_bytes(cfg, 0, 2048)


def test_clamr_imbalance_varies_by_rank_and_step():
    from repro.apps.clamr import _imbalance_factor

    factors = {
        (r, s): _imbalance_factor({"rank": r, "step": s})
        for r in range(4) for s in range(4)
    }
    assert len({round(v, 6) for v in factors.values()}) > 8
    assert all(0.6 <= v <= 1.4 for v in factors.values())


def test_gromacs_has_higher_call_density_than_hpcg():
    """The profile property behind Fig. 2's overhead ordering."""
    gj = run_app_native("gromacs", n_steps=3)
    hj = run_app_native("hpcg", n_steps=3)

    def calls_per_compute(job):
        calls = sum(ep.calls for ep in job.world.endpoints)
        compute = sum(d.compute_seconds for d in job.drivers)
        return calls / compute

    assert calls_per_compute(gj) > 5 * calls_per_compute(hj)
