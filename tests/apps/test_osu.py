"""OSU micro-benchmarks: sanity of shapes the figures rely on."""

import pytest

from repro.apps import osu
from repro.hardware.cluster import make_cluster
from repro.hardware.kernelmodel import PATCHED, UNPATCHED


@pytest.fixture(scope="module")
def cluster():
    return make_cluster("osu", 1, interconnect="aries", kernel=UNPATCHED)


def test_latency_grows_with_size(cluster):
    small = osu.measure_latency(cluster, 8, mana=False, n_iters=10)
    large = osu.measure_latency(cluster, 1 << 22, mana=False, n_iters=10)
    assert large > 10 * small


def test_latency_mana_close_to_native(cluster):
    """Fig. 5a: the MANA curve closely follows native."""
    for size, bound in ((8, 2.0), (1 << 16, 1.1), (1 << 22, 1.01)):
        native = osu.measure_latency(cluster, size, mana=False, n_iters=10)
        mana = osu.measure_latency(cluster, size, mana=True, n_iters=10)
        assert mana >= native
        # MANA adds a sub-microsecond constant per call: visible only at
        # tiny sizes, invisible at the scale Fig. 5 plots.
        assert mana / native < bound
        assert mana - native < 1e-6


def test_bandwidth_saturates_at_large_sizes(cluster):
    bw_small = osu.measure_bandwidth(cluster, 1 << 10, mana=False)
    bw_large = osu.measure_bandwidth(cluster, 4 << 20, mana=False)
    assert bw_large > bw_small
    # saturation: 4 MB within ~25% of the shmem link's beta
    from repro.net.fabrics import ShmemTransport

    assert bw_large > 0.7 * ShmemTransport.beta


def test_bandwidth_gap_small_messages_unpatched(cluster):
    """Fig. 4: MANA under an unpatched kernel loses bandwidth below ~1MB."""
    size = 4 << 10
    native = osu.measure_bandwidth(cluster, size, mana=False)
    mana = osu.measure_bandwidth(cluster, size, mana=True)
    assert mana < 0.97 * native


def test_kernel_patch_closes_bandwidth_gap():
    """Fig. 4's punchline: patched-kernel MANA ~ native."""
    size = 4 << 10
    unpatched = make_cluster("u", 1, interconnect="aries", kernel=UNPATCHED)
    patched = make_cluster("p", 1, interconnect="aries", kernel=PATCHED)
    native = osu.measure_bandwidth(patched, size, mana=False)
    mana_un = osu.measure_bandwidth(unpatched, size, mana=True)
    mana_pa = osu.measure_bandwidth(patched, size, mana=True)
    assert mana_pa > mana_un
    # the patch removes the syscall-based FS switches — the dominant share
    # of the gap (§3.3); virtualization/metadata costs remain
    assert (native - mana_pa) < 0.6 * (native - mana_un)


def test_bandwidth_gap_vanishes_at_large_sizes(cluster):
    size = 4 << 20
    native = osu.measure_bandwidth(cluster, size, mana=False)
    mana = osu.measure_bandwidth(cluster, size, mana=True)
    assert mana / native > 0.97


@pytest.mark.parametrize("op", ["gather", "allreduce"])
def test_collective_latency_mana_close_to_native(cluster, op):
    """Fig. 5b/5c."""
    for size in (1 << 10, 1 << 19):
        native = osu.measure_collective(cluster, op, size, mana=False,
                                        n_iters=10)
        mana = osu.measure_collective(cluster, op, size, mana=True,
                                      n_iters=10)
        assert mana >= native
        # the trivial barrier adds a bounded constant, small vs the work
        assert mana - native < 8e-6


def test_unknown_collective_op_raises(cluster):
    with pytest.raises(KeyError):
        osu.measure_collective(cluster, "alltoallw", 8, mana=False)
