"""UpperHeap allocation, growth-through-sbrk, and snapshot/restore."""

import numpy as np
import pytest

from repro.memory import AddressSpace, AllocationError, Half, RegionKind, UpperHeap


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def heap(space):
    return UpperHeap(space, base_capacity=1 << 16, growth_chunk=1 << 16)


def test_alloc_array_returns_live_array(heap):
    arr = heap.alloc_array("x", 10, dtype=np.float64, fill=1.5)
    assert np.all(arr == 1.5)
    assert heap.get("x") is arr


def test_double_alloc_raises(heap):
    heap.alloc_array("x", 4)
    with pytest.raises(AllocationError):
        heap.alloc_array("x", 4)


def test_free_releases_and_rejects_double_free(heap):
    heap.alloc_array("x", 4)
    used = heap.used
    heap.free("x")
    assert heap.used < used
    with pytest.raises(AllocationError):
        heap.free("x")
    with pytest.raises(KeyError):
        heap.get("x")


def test_set_requires_existing_buffer(heap):
    with pytest.raises(AllocationError):
        heap.set("missing", 1)
    heap.alloc_object("x", 1)
    heap.set("x", 2)
    assert heap.get("x") == 2


def test_growth_goes_through_sbrk(space, heap):
    """Allocating beyond base capacity triggers the address space's sbrk
    path — the hook MANA interposes on."""
    interposed = []

    def interposer(increment):
        r = space.mmap(increment, heap._regions[0].perm, Half.UPPER,
                       RegionKind.ANON, name=f"heap-ext-{len(interposed)}")
        interposed.append(r)
        return r

    space.sbrk_interposer = interposer
    heap.alloc_array("big", 1 << 18, dtype=np.uint8)  # 256 KiB > 64 KiB base
    assert interposed, "growth should have consulted the interposer"
    assert heap.capacity >= heap.used


def test_growth_without_interposer_moves_kernel_break(space, heap):
    brk0 = space.brk
    heap.alloc_array("big", 1 << 18, dtype=np.uint8)
    assert space.brk > brk0


def test_used_and_capacity_accounting(heap):
    assert heap.used == 0
    heap.alloc_array("a", 100, dtype=np.uint8)
    assert heap.used == 100
    heap.alloc_object("b", {"k": 1}, nbytes=50)
    assert heap.used == 150
    heap.free("a")
    assert heap.used == 50


def test_snapshot_restore_round_trip(space):
    h1 = UpperHeap(space, base_capacity=1 << 16)
    a = h1.alloc_array("state", 8, fill=3.0)
    h1.alloc_object("counter", 41, nbytes=8)
    a[0] = -1.0
    snap = h1.snapshot_payload()

    space2 = AddressSpace()
    h2 = UpperHeap(space2, base_capacity=1 << 16)
    h2.restore_payload(snap)
    restored = h2.get("state")
    assert restored[0] == -1.0
    assert np.array_equal(restored, a)
    assert h2.get("counter") == 41
    assert h2.used == h1.used


def test_restore_larger_than_base_grows(space):
    h1 = UpperHeap(space, base_capacity=1 << 20)
    h1.alloc_array("big", 1 << 18, dtype=np.uint8)
    snap = h1.snapshot_payload()

    space2 = AddressSpace()
    h2 = UpperHeap(space2, base_capacity=1 << 12, growth_chunk=1 << 12)
    h2.restore_payload(snap)
    assert h2.capacity >= h2.used
    assert h2.get("big").nbytes == 1 << 18


def test_names_sorted(heap):
    heap.alloc_object("z", 1)
    heap.alloc_object("a", 2)
    assert list(heap.names()) == ["a", "z"]
    assert "a" in heap and "q" not in heap
