"""MemoryRegion semantics."""

import pytest

from repro.memory import Half, MemoryRegion, Perm, RegionKind


def region(start=0x1000, size=0x1000, half=Half.UPPER, **kw):
    return MemoryRegion(start=start, size=size, perm=Perm.RW, half=half,
                        kind=RegionKind.ANON, **kw)


def test_end_is_exclusive():
    r = region(start=0x1000, size=0x1000)
    assert r.end == 0x2000
    assert r.contains(0x1FFF)
    assert not r.contains(0x2000)


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        region(size=0)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        region(start=-1)


@pytest.mark.parametrize(
    "a_start,a_size,b_start,b_size,expect",
    [
        (0x1000, 0x1000, 0x2000, 0x1000, False),  # adjacent
        (0x1000, 0x1000, 0x1800, 0x1000, True),   # partial
        (0x1000, 0x4000, 0x2000, 0x1000, True),   # contained
        (0x1000, 0x1000, 0x0000, 0x1000, False),  # adjacent below
        (0x1000, 0x1000, 0x1000, 0x1000, True),   # identical
    ],
)
def test_overlap(a_start, a_size, b_start, b_size, expect):
    a = region(start=a_start, size=a_size)
    b = region(start=b_start, size=b_size)
    assert a.overlaps(b) is expect
    assert b.overlaps(a) is expect


def test_describe_mentions_half_and_perms():
    r = region(half=Half.LOWER, name="libmpi.so")
    d = r.describe()
    assert "lower" in d
    assert "rw-" in d
    assert "libmpi.so" in d
