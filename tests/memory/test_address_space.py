"""AddressSpace mapping, sbrk hazard, and half-aware queries."""

import pytest

from repro.memory import AddressSpace, AddressSpaceError, Half, Perm, RegionKind
from repro.memory.address_space import PAGE


@pytest.fixture
def space():
    return AddressSpace()


def test_mmap_returns_page_aligned_region(space):
    r = space.mmap(100, Perm.RW, Half.UPPER, RegionKind.ANON, name="a")
    assert r.size == PAGE
    assert r.start % PAGE == 0


def test_mmap_regions_never_overlap(space):
    regions = [
        space.mmap(1 << 16, Perm.RW, Half.UPPER, RegionKind.ANON, name=f"r{i}")
        for i in range(20)
    ]
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert not a.overlaps(b)


def test_explicit_addr_overlap_raises(space):
    space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, addr=0x10000, name="a")
    with pytest.raises(AddressSpaceError, match="overlaps"):
        space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, addr=0x10000, name="b")


def test_munmap_removes_region(space):
    r = space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="a")
    space.munmap(r)
    assert space.regions() == []


def test_munmap_unknown_region_raises(space):
    r = space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="a")
    space.munmap(r)
    with pytest.raises(AddressSpaceError):
        space.munmap(r)


def test_unmap_half_only_touches_that_half(space):
    up = space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="up")
    low = space.mmap(PAGE, Perm.RW, Half.LOWER, RegionKind.TEXT, name="low")
    gone = space.unmap_half(Half.LOWER)
    assert gone == [low]
    assert space.regions() == [up]


def test_find_by_name(space):
    space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="a")
    assert space.find("a").name == "a"
    with pytest.raises(AddressSpaceError, match="no region"):
        space.find("nope")


def test_find_ambiguous_raises(space):
    space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="dup")
    space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="dup")
    with pytest.raises(AddressSpaceError, match="ambiguous"):
        space.find("dup")


def test_region_at(space):
    r = space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="a")
    assert space.region_at(r.start) is r
    assert space.region_at(r.end - 1) is r
    assert space.region_at(r.end) is None
    assert space.region_at(0) is None


def test_total_size_filters(space):
    space.mmap(2 * PAGE, Perm.RW, Half.UPPER, RegionKind.HEAP, name="h")
    space.mmap(3 * PAGE, Perm.RX, Half.LOWER, RegionKind.TEXT, name="t")
    assert space.total_size() == 5 * PAGE
    assert space.total_size(half=Half.UPPER) == 2 * PAGE
    assert space.total_size(half=Half.LOWER, kind=RegionKind.TEXT) == 3 * PAGE
    assert space.total_size(half=Half.LOWER, kind=RegionKind.HEAP) == 0


class TestSbrk:
    def test_plain_sbrk_extends_kernel_break(self, space):
        brk0 = space.brk
        r = space.sbrk(100, caller_half=Half.LOWER)
        assert r.start == brk0
        assert space.brk == brk0 + PAGE

    def test_sbrk_rejects_nonpositive(self, space):
        with pytest.raises(AddressSpaceError):
            space.sbrk(0, caller_half=Half.UPPER)

    def test_interposer_redirects_upper_half_sbrk(self, space):
        """The §2.1 hazard fix: upper-half sbrk becomes mmap, brk untouched."""
        calls = []

        def interposer(increment):
            calls.append(increment)
            return space.mmap(increment, Perm.RW, Half.UPPER, RegionKind.ANON,
                              name="interposed")

        space.sbrk_interposer = interposer
        brk0 = space.brk
        r = space.sbrk(100, caller_half=Half.UPPER)
        assert calls == [100]
        assert r.name == "interposed"
        assert space.brk == brk0  # kernel break never moved

    def test_interposer_not_consulted_for_lower_half(self, space):
        space.sbrk_interposer = lambda inc: pytest.fail("must not be called")
        space.sbrk(100, caller_half=Half.LOWER)

    def test_sbrk_hazard_without_interposition(self, space):
        """Demonstrates the hazard itself: without interposition, upper-half
        malloc growth lands adjacent to the kernel break — which after
        restart is lower-half territory."""
        low = space.sbrk(PAGE, caller_half=Half.LOWER)
        up = space.sbrk(PAGE, caller_half=Half.UPPER)  # no interposer set
        assert up.start == low.end  # contiguous with lower-half heap: bad


def test_maps_dump_contains_all_regions(space):
    space.mmap(PAGE, Perm.RW, Half.UPPER, RegionKind.ANON, name="one")
    space.mmap(PAGE, Perm.RX, Half.LOWER, RegionKind.TEXT, name="two")
    dump = space.maps()
    assert "one" in dump and "two" in dump
    assert len(dump.splitlines()) == 2
