"""Property-based tests on the address space and heap (DESIGN invariant 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import AddressSpace, AllocationError, Half, Perm, RegionKind, UpperHeap


@st.composite
def mmap_script(draw):
    """A random sequence of mmap/munmap/sbrk operations."""
    ops = []
    n = draw(st.integers(1, 30))
    for i in range(n):
        kind = draw(st.sampled_from(["mmap", "munmap", "sbrk_upper",
                                     "sbrk_lower", "unmap_half"]))
        if kind == "mmap":
            ops.append((kind, draw(st.integers(1, 1 << 20)),
                        draw(st.sampled_from([Half.UPPER, Half.LOWER]))))
        elif kind == "munmap":
            ops.append((kind, draw(st.integers(0, 100))))
        elif kind == "unmap_half":
            ops.append((kind, draw(st.sampled_from([Half.UPPER, Half.LOWER]))))
        else:
            ops.append((kind, draw(st.integers(1, 1 << 16))))
    return ops


@settings(max_examples=60, deadline=None)
@given(script=mmap_script())
def test_regions_never_overlap_and_accounting_balances(script):
    space = AddressSpace()
    live = []
    for op in script:
        if op[0] == "mmap":
            live.append(space.mmap(op[1], Perm.RW, op[2], RegionKind.ANON))
        elif op[0] == "munmap":
            if live:
                space.munmap(live.pop(op[1] % len(live)))
        elif op[0] == "unmap_half":
            gone = space.unmap_half(op[1])
            live = [r for r in live if r not in gone]
        elif op[0] == "sbrk_upper":
            live.append(space.sbrk(op[1], caller_half=Half.UPPER))
        elif op[0] == "sbrk_lower":
            live.append(space.sbrk(op[1], caller_half=Half.LOWER))
    regions = space.regions()
    # invariant: pairwise disjoint
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert not a.overlaps(b)
    # invariant: accounting matches the live set
    assert space.total_size() == sum(r.size for r in regions)
    # regions() returns address order
    assert sorted(r.start for r in regions) == [r.start for r in regions]


@st.composite
def heap_script(draw):
    """Random alloc/free/set sequences over named buffers."""
    ops = []
    for i in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["alloc", "free", "set"]))
        name = f"buf{draw(st.integers(0, 9))}"
        if kind == "alloc":
            ops.append((kind, name, draw(st.integers(1, 1 << 18))))
        else:
            ops.append((kind, name))
    return ops


@settings(max_examples=60, deadline=None)
@given(script=heap_script())
def test_heap_alloc_free_balanced(script):
    space = AddressSpace()
    heap = UpperHeap(space, base_capacity=1 << 14, growth_chunk=1 << 14)
    model = {}
    for op in script:
        if op[0] == "alloc":
            _, name, nbytes = op
            if name in model:
                with pytest.raises(AllocationError):
                    heap.alloc_object(name, 0, nbytes=nbytes)
            else:
                heap.alloc_object(name, name.encode(), nbytes=nbytes)
                model[name] = nbytes
        elif op[0] == "free":
            _, name = op
            if name in model:
                heap.free(name)
                del model[name]
            else:
                with pytest.raises(AllocationError):
                    heap.free(name)
        else:
            _, name = op
            if name in model:
                heap.set(name, b"updated")
            else:
                with pytest.raises(AllocationError):
                    heap.set(name, b"x")
    assert heap.used == sum(model.values())
    assert heap.capacity >= heap.used
    assert sorted(model) == list(heap.names())
    # all heap regions are UPPER-half (the sbrk interposition contract)
    # (growth regions came from the kernel path here, tagged by caller)
    for region in space.regions():
        assert region.half is Half.UPPER


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=10),
)
def test_heap_snapshot_restore_preserves_everything(sizes):
    space = AddressSpace()
    heap = UpperHeap(space, base_capacity=1 << 14, growth_chunk=1 << 14)
    arrays = {}
    for i, nbytes in enumerate(sizes):
        arrays[f"a{i}"] = heap.alloc_array(f"a{i}", nbytes // 8 + 1)
        arrays[f"a{i}"][:] = i
    snap = heap.snapshot_payload()

    heap2 = UpperHeap(AddressSpace(), base_capacity=1 << 12,
                      growth_chunk=1 << 12)
    heap2.restore_payload(snap)
    assert heap2.used == heap.used
    for name, arr in arrays.items():
        assert np.array_equal(heap2.get(name), arr)
