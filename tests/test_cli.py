"""The command-line interface, end to end (in-process)."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_apps_lists_the_five():
    code, text = run_cli("apps")
    assert code == 0
    for app in ("gromacs", "minife", "hpcg", "clamr", "lulesh"):
        assert app in text


def test_run_native():
    code, text = run_cli("run", "--app", "gromacs", "--ranks", "4",
                         "--nodes", "1", "--steps", "3", "--native")
    assert code == 0
    assert "native run: 4 ranks" in text


def test_run_mana():
    code, text = run_cli("run", "--app", "lulesh", "--ranks", "8",
                         "--nodes", "2", "--steps", "3")
    assert code == 0
    assert "MANA run: 8 ranks" in text


def test_run_adjusts_lulesh_ranks():
    code, text = run_cli("run", "--app", "lulesh", "--ranks", "10",
                         "--nodes", "2", "--steps", "2", "--native")
    assert code == 0
    assert "running 8 ranks" in text


def test_run_checkpoint_save_inspect_restart(tmp_path):
    ckpt_dir = str(tmp_path / "ckpt")
    code, text = run_cli(
        "run", "--app", "gromacs", "--ranks", "4", "--nodes", "2",
        "--steps", "6", "--checkpoint-at", "0.001", "--out", ckpt_dir,
    )
    assert code == 0
    assert "checkpoint at t=0.001" in text
    assert "saved to" in text

    code, text = run_cli("inspect", "--ckpt", ckpt_dir)
    assert code == 0
    info = json.loads(text)
    assert info["n_ranks"] == 4

    code, text = run_cli(
        "restart", "--ckpt", ckpt_dir, "--app", "gromacs", "--steps", "6",
        "--nodes", "4", "--net", "tcp", "--mpi", "openmpi",
        "--ranks-per-node", "1",
    )
    assert code == 0
    assert "restarted 4 ranks" in text
    assert "openmpi/tcp" in text


def test_verify_two_phase():
    code, text = run_cli("verify", "--ranks", "2", "--iters", "1")
    assert code == 0
    assert "OK" in text


def test_verify_naive_finds_violation():
    code, text = run_cli("verify", "--ranks", "2", "--iters", "1", "--naive")
    assert code == 0  # expected failure found => exit 0
    assert "no-rank-in-phase2-at-ckpt" in text
    assert "counterexample" in text


def test_bench_mem():
    code, text = run_cli("bench", "--figure", "mem")
    assert code == 0
    assert "26.000" in text


def test_bench_fig9():
    code, text = run_cli("bench", "--figure", "fig9")
    assert code == 0
    assert "OpenMPI/IB (2x4)" in text


def test_unknown_app_errors():
    with pytest.raises(ValueError):
        run_cli("run", "--app", "namd", "--native")


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        run_cli("frobnicate")


def test_trace_example_writes_valid_chrome_trace(tmp_path):
    from repro.obs import tracing_enabled, validate_chrome_trace

    out_path = tmp_path / "trace.json"
    code, text = run_cli("trace", "examples/quickstart.py",
                         "--out", str(out_path))
    assert code == 0
    assert "Perfetto" in text or "perfetto" in text
    doc = json.loads(out_path.read_text())
    validate_chrome_trace(doc)
    assert len(doc["traceEvents"]) > 0
    # the process-wide switch is restored even though the example ran
    assert not tracing_enabled()


def test_trace_app_with_checkpoint_and_metrics(tmp_path):
    from repro.obs import validate_chrome_trace

    out_path = tmp_path / "trace.json"
    code, text = run_cli("trace", "hpcg", "--ranks", "4", "--nodes", "2",
                         "--steps", "2", "--checkpoint-at", "0.05",
                         "--out", str(out_path), "--metrics")
    assert code == 0
    doc = json.loads(out_path.read_text())
    validate_chrome_trace(doc)
    names = {e["name"] for e in doc["traceEvents"]}
    assert "ckpt" in names and "ckpt:drain" in names
    assert "metrics: engine-1" in text
    assert "mpi.coll.ops" in text


def test_facility_run_and_json(tmp_path):
    report_path = tmp_path / "facility.json"
    code, text = run_cli("facility", "--mix", "tiny", "--n-jobs", "10",
                         "--nodes", "4", "--seed", "3",
                         "--show-jobs", "3", "--json", str(report_path))
    assert code == 0
    assert "facility summary" in text
    assert "node-hours lost" in text
    assert "job0000" in text  # the per-job table was printed
    doc = json.loads(report_path.read_text())
    assert doc["completed_jobs"] == 10
    assert doc["policy"] == "fifo"


def test_facility_sweep_table():
    code, text = run_cli("facility", "--sweep", "--n-jobs", "4",
                         "--nodes", "4", "--jobs", "1")
    assert code == 0
    assert "facility sweep" in text
    for token in ("backfill", "fifo", "tiny", "mixed", "priority"):
        assert token in text
