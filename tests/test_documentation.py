"""Documentation gates: every public module, class, and function in the
library carries a docstring (deliverable (e): doc comments on every public
item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their definition site
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = [
        name for name, obj in _public_members(module)
        if not (obj.__doc__ and obj.__doc__.strip())
    ]
    assert not undocumented, \
        f"{module.__name__}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    missing = []
    for cls_name, cls in _public_members(module):
        if not inspect.isclass(cls):
            continue
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            fn = member.fget if isinstance(member, property) else member
            if not (inspect.isfunction(fn) or isinstance(member, property)):
                continue
            if getattr(fn, "__name__", "") == "<lambda>":
                continue  # dataclass field defaults, documented at the field
            if not (fn.__doc__ and fn.__doc__.strip()):
                missing.append(f"{cls_name}.{name}")
    assert not missing, f"{module.__name__}: missing docstrings on {missing}"
