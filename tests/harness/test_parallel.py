"""Parallel sweep execution: determinism, crash surfacing, memoization.

The contract mirrors the obs A/B determinism suite: running a sweep with
``jobs=4`` must be *invisible* in the output — every figure/ablation/
resilience runner produces byte-identical tables (rows, notes, rendering)
to its ``jobs=1`` in-process execution; only the wall-clock may differ.
"""

import pytest

from repro.harness import render_table
from repro.harness import experiments as ex
from repro.harness.parallel import (
    CellError,
    SweepCell,
    clear_memo,
    memo,
    memo_stats,
    run_cells,
)

# ----------------------------------------------------------- cell plumbing


def _square(x):
    return x * x


def _fail(x):
    raise ValueError(f"cell exploded on {x}")


class TestRunCells:
    def test_results_in_cell_order(self):
        cells = [SweepCell(_square, (i,)) for i in range(10)]
        assert run_cells(cells, jobs=1) == [i * i for i in range(10)]

    def test_parallel_results_in_cell_order(self):
        cells = [SweepCell(_square, (i,)) for i in range(10)]
        assert run_cells(cells, jobs=4) == [i * i for i in range(10)]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells([SweepCell(_square, (1,))], jobs=0)

    def test_empty_cell_list(self):
        assert run_cells([], jobs=4) == []

    def test_cell_label_and_name(self):
        assert SweepCell(_square, (3,), label="sq:3").name() == "sq:3"
        assert "(_square" not in SweepCell(_square, (3,)).name()
        assert SweepCell(_square, (3,)).name() == "_square(3,)"

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_raising_cell_surfaces_as_cell_error(self, jobs):
        cells = [SweepCell(_square, (1,)),
                 SweepCell(_fail, (7,), label="boom:7"),
                 SweepCell(_square, (2,))]
        with pytest.raises(CellError) as err:
            run_cells(cells, jobs=jobs)
        # the error names the cell and carries the original message +
        # worker-side traceback — enough to diagnose without re-running
        assert "boom:7" in str(err.value)
        assert "cell exploded on 7" in str(err.value)
        assert err.value.exc_type == "ValueError"
        assert "ValueError" in err.value.worker_traceback

    def test_raising_cell_lands_in_report_errors_section(self):
        """A crashing cell inside a sweep must reach the report's
        ``## errors`` section (not hang the pool or kill the sweep)."""
        from repro.harness import report

        def broken_runner():
            return run_cells([SweepCell(_fail, (3,), label="boom")], jobs=4)

        def good_runner():
            from repro.harness.results import Table
            t = Table("ok", ["x"])
            t.add(1)
            return t

        import io

        text, errors = report.generate(
            runners=[("broken", broken_runner), ("good", good_runner)],
            log=io.StringIO(),
        )
        assert len(errors) == 1 and errors[0][0] == "broken"
        assert "## errors" in text
        assert "CellError" in text
        assert "## ok" in text, "later runners still execute"


# ------------------------------------------------------------- memo cache


class TestMemo:
    def setup_method(self):
        clear_memo()

    def teardown_method(self):
        clear_memo()

    def test_computes_once_per_key(self):
        calls = []
        out1 = memo(("k", 1), lambda: calls.append(1) or "v1")
        out2 = memo(("k", 1), lambda: calls.append(2) or "v2")
        assert out1 == out2 == "v1"
        assert calls == [1]
        stats = memo_stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.runs_by_key[("k", 1)] == 1

    def test_distinct_keys_compute_separately(self):
        memo(("k", 1), lambda: "a")
        memo(("k", 2), lambda: "b")
        assert memo_stats().misses == 2

    def test_clear_resets(self):
        memo(("k",), lambda: 1)
        clear_memo()
        assert memo_stats().misses == 0
        memo(("k",), lambda: 2)
        assert memo_stats().misses == 1


class TestCheckpointPreludeSharing:
    """fig6/fig7/fig8 share one checkpoint prelude per (app, nodes, cfg,
    ranks) key instead of re-simulating it per figure."""

    def setup_method(self):
        clear_memo()

    def teardown_method(self):
        clear_memo()

    def test_prelude_runs_once_per_key_across_figures(self):
        apps = ["gromacs"]
        ex.fig6_checkpoint_time(apps=apps)
        ex.fig7_restart_time(apps=apps)
        ex.fig8_ckpt_breakdown(apps=apps)
        stats = memo_stats()
        prelude_keys = [k for k in stats.runs_by_key if k[0] == "ckpt-prelude"]
        # fig6/fig7 sweep the small scale's 3 node counts; fig8 reuses the
        # largest.  Every key was simulated exactly once.
        assert len(prelude_keys) == 3
        assert all(stats.runs_by_key[k] == 1 for k in prelude_keys)
        # fig7 (3 nodes counts) + fig8 (1) hit the cache
        assert stats.hits == 4

    def test_shared_prelude_preserves_figure_outputs(self):
        apps = ["gromacs"]
        warm6 = ex.fig6_checkpoint_time(apps=apps)
        clear_memo()
        cold6 = ex.fig6_checkpoint_time(apps=apps)
        assert warm6.rows == cold6.rows


# --------------------------------------------- sequential/parallel A/B

RUNNERS = [
    ("fig2", lambda jobs: ex.fig2_single_node_overhead(
        apps=["gromacs"], jobs=jobs)),
    ("fig3", lambda jobs: ex.fig3_multi_node_overhead(
        apps=["gromacs"], jobs=jobs)),
    ("fig4", lambda jobs: ex.fig4_bandwidth_kernel_patch(jobs=jobs)),
    ("fig5", lambda jobs: ex.fig5_osu_latency(jobs=jobs)),
    ("fig6", lambda jobs: ex.fig6_checkpoint_time(
        apps=["gromacs"], jobs=jobs)),
    ("fig7", lambda jobs: ex.fig7_restart_time(
        apps=["gromacs"], jobs=jobs)),
    ("fig8", lambda jobs: ex.fig8_ckpt_breakdown(
        apps=["gromacs"], jobs=jobs)),
    ("mem", lambda jobs: ex.memory_overhead_analysis(jobs=jobs)),
    ("ablation", lambda jobs: ex.ablation_two_phase_cost(
        rank_counts=(4,), sizes=(64, 1 << 16), jobs=jobs)),
    ("resilience", lambda jobs: ex.resilience_efficiency_sweep(
        interval_factors=(0.5, 1.0), seeds=(0, 1), n_iters=20, jobs=jobs)),
]


@pytest.mark.parametrize("name,runner", RUNNERS,
                         ids=[name for name, _ in RUNNERS])
def test_parallel_matches_sequential(name, runner):
    clear_memo()
    seq = runner(1)
    clear_memo()
    par = runner(4)
    clear_memo()
    assert par.rows == seq.rows
    assert par.notes == seq.notes
    assert render_table(par) == render_table(seq), \
        f"{name}: jobs=4 must render byte-identically to jobs=1"


# ----------------------------------------------------------- worker pool


def _add(a, b):
    return a + b


class TestWorkerPool:
    """The persistent pool behind the sharded event backend: round-trip
    calls, strict submit/result pairing, error surfacing, idempotent
    shutdown."""

    def test_round_trip_and_worker_identity(self):
        from repro.harness.parallel import WorkerPool

        with WorkerPool(2) as pool:
            assert pool.call(0, _add, 1, 2) == 3
            assert pool.call(1, _add, 10, 20) == 30
            # workers are persistent: a second call reuses the process
            assert pool.call(0, _add, 2, 2) == 4

    def test_overlapping_submits_run_concurrently(self):
        from repro.harness.parallel import WorkerPool

        with WorkerPool(3) as pool:
            for k in range(3):
                pool.submit(k, _square, k)
            assert [pool.result(k) for k in range(3)] == [0, 1, 4]

    def test_double_submit_rejected(self):
        from repro.harness.parallel import WorkerPool

        with WorkerPool(1) as pool:
            pool.submit(0, _add, 1, 1)
            with pytest.raises(RuntimeError, match="in flight"):
                pool.submit(0, _add, 2, 2)
            assert pool.result(0) == 2

    def test_worker_exception_surfaces_as_cell_error(self):
        from repro.harness.parallel import WorkerPool

        with WorkerPool(1) as pool:
            with pytest.raises(CellError, match="cell exploded on 7"):
                pool.call(0, _fail, 7)
            # the worker survives its task's exception
            assert pool.call(0, _add, 3, 4) == 7

    def test_close_is_idempotent(self):
        from repro.harness.parallel import WorkerPool

        pool = WorkerPool(2)
        assert pool.call(1, _square, 5) == 25
        pool.close()
        pool.close()
