"""The report generator module (wiring only; figures have their own tests)."""



import repro.harness.report as report_mod
from repro.harness.results import Table


def test_runner_registry_covers_every_figure():
    names = [name for name, _fn in report_mod.RUNNERS]
    assert names == ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                     "fig8", "fig9", "mem", "modelcheck", "obs"]


def test_generate_surfaces_runner_errors(capsys):
    """A runner that raises mid-sweep must not kill the report, and its
    failure must appear in an ``## errors`` section (regression: failed
    experiments used to abort the sweep, silently dropping all later rows)."""
    ok = Table("Good figure", ["a"])
    ok.add(1)

    def boom():
        raise RuntimeError("sweep exploded")

    runners = [("good", lambda: ok),
               ("bad", boom),
               ("later", lambda: ok)]
    report, errors = report_mod.generate(runners=runners)
    assert [name for name, _exc in errors] == ["bad"]
    assert isinstance(errors[0][1], RuntimeError)
    # both surviving runners rendered, including the one AFTER the failure
    assert report.count("Good figure") == 2
    assert "## errors" in report
    assert "`bad`: RuntimeError: sweep exploded" in report
    # the traceback is included for debugging
    assert "boom" in report


def test_generate_no_errors_section_when_clean():
    ok = Table("Good figure", ["a"])
    ok.add(1)
    report, errors = report_mod.generate(runners=[("good", lambda: ok)])
    assert errors == []
    assert "## errors" not in report


def test_modelcheck_table_shape():
    table = report_mod.modelcheck_table()
    assert table.columns == ["model", "ranks", "collectives", "states",
                             "verdict"]
    verdicts = table.column("verdict")
    assert all("verified" in v for v in verdicts[:-1])
    assert "violation found" in verdicts[-1]


def test_main_writes_file(tmp_path, monkeypatch):
    fake = Table("Fake figure", ["a"])
    fake.add(1)
    monkeypatch.setattr(report_mod, "RUNNERS", [("fake", lambda: fake)])
    out = tmp_path / "report.md"
    report_mod.main(["report", str(out)])
    text = out.read_text()
    assert "Fake figure" in text
    assert "generated in" in text


def test_main_prints_to_stdout(capsys, monkeypatch):
    fake = Table("Fake figure", ["a"])
    fake.add(2)
    monkeypatch.setattr(report_mod, "RUNNERS", [("fake", lambda: fake)])
    report_mod.main(["report"])
    captured = capsys.readouterr()
    assert "Fake figure" in captured.out
