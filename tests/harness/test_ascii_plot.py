"""ASCII chart rendering."""

import pytest

from repro.harness.ascii_plot import bar_chart, line_chart, table_to_line_chart
from repro.harness.results import Series, Table


class TestLineChart:
    def test_renders_marks_and_legend(self):
        s1 = Series("native", [1, 2, 3], [10.0, 20.0, 30.0])
        s2 = Series("mana", [1, 2, 3], [12.0, 22.0, 33.0])
        out = line_chart([s1, s2], width=40, height=8, title="Latency")
        assert "Latency" in out
        assert "o native" in out
        assert "x mana" in out
        assert "o" in out and "x" in out

    def test_monotone_series_fills_diagonal(self):
        s = Series("s", list(range(10)), list(range(10)))
        out = line_chart([s], width=20, height=10)
        rows = [l for l in out.splitlines() if "|" in l]
        first_mark_rows = [i for i, r in enumerate(rows) if "o" in r]
        assert first_mark_rows == sorted(first_mark_rows)
        # highest y lands on the top canvas row, lowest on the bottom
        assert "o" in rows[0]
        assert "o" in rows[-2]  # last canvas row before the axis

    def test_log_x(self):
        s = Series("bw", [8, 1 << 10, 1 << 20], [1.0, 100.0, 10000.0])
        out = line_chart([s], log_x=True)
        assert "8" in out

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart([Series("s", [0, 1], [1, 2])], log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([])

    def test_axis_labels_show_range(self):
        s = Series("s", [1, 100], [5.0, 50.0])
        out = line_chart([s])
        assert "50" in out
        assert "5" in out


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=20)
        line_a, line_b = out.splitlines()
        assert line_b.count("#") == 20
        assert abs(line_a.count("#") - 10) <= 1

    def test_baseline_tick(self):
        out = bar_chart(["x"], [4.0], width=20, baseline=8.0)
        assert "|" in out

    def test_unit_suffix(self):
        out = bar_chart(["x"], [3.5], unit=" s")
        assert "3.5 s" in out

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])


def test_table_to_line_chart():
    t = Table("Fig", ["bench", "size", "us"])
    t.add("native", 8, 1.0)
    t.add("native", 64, 2.0)
    t.add("mana", 8, 1.5)
    t.add("mana", 64, 2.5)
    out = table_to_line_chart(t, x_col="size", y_col="us",
                              series_col="bench", log_x=True)
    assert "native" in out and "mana" in out
    assert "Fig" in out
