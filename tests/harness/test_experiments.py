"""The figure runners reproduce the paper's qualitative claims.

Each test runs a reduced sweep and asserts the *shape* the paper reports:
who wins, by roughly what factor, where the crossovers are.
"""

import pytest

from repro.harness import (
    fig2_single_node_overhead,
    fig3_multi_node_overhead,
    fig4_bandwidth_kernel_patch,
    fig5_osu_latency,
    fig6_checkpoint_time,
    fig7_restart_time,
    fig8_ckpt_breakdown,
    fig9_cross_cluster_migration,
    memory_overhead_analysis,
)

MB = 1 << 20


@pytest.fixture(scope="module")
def fig2():
    return fig2_single_node_overhead(apps=["gromacs", "hpcg"])


@pytest.fixture(scope="module")
def fig6():
    return fig6_checkpoint_time(apps=["gromacs", "hpcg"])


class TestFig2:
    def test_overhead_below_paper_bounds(self, fig2):
        for pct in fig2.column("normalized_pct"):
            assert 95.0 < pct <= 100.0, "overhead must stay in the <5% band"

    def test_gromacs_worst_case(self, fig2):
        rows = {(r[0], r[1]): r[4] for r in fig2.rows}
        gromacs16 = rows[("gromacs", 16)]
        hpcg16 = rows[("hpcg", 16)]
        assert gromacs16 < hpcg16, "GROMACS is the call-dense worst case"
        assert gromacs16 < 99.0, "GROMACS overhead is visible (~2%)"
        assert hpcg16 > 99.5, "HPCG overhead is ~0"


class TestFig3:
    def test_multi_node_overhead_bounded(self):
        t = fig3_multi_node_overhead(apps=["gromacs", "minife"])
        for pct in t.column("normalized_pct"):
            assert 94.0 < pct <= 100.0


class TestFig4:
    @pytest.fixture(scope="class")
    def table(self):
        return fig4_bandwidth_kernel_patch()

    def test_small_message_gap_and_patch(self, table):
        for row in table.rows:
            size, native, mana_u, mana_p = row
            assert mana_u <= native + 1e-9
            assert mana_u <= mana_p + 1e-9, "patched kernel at least as fast"
            if size <= 64 << 10:
                # visible gap below ~1MB on the unpatched kernel
                assert mana_u < 0.97 * native
                # the patch recovers most of it
                assert (native - mana_p) < 0.7 * (native - mana_u)

    def test_gap_vanishes_at_4mb(self, table):
        last = table.rows[-1]
        assert last[0] >= 4 << 20
        assert last[2] > 0.97 * last[1]


class TestFig5:
    def test_mana_follows_native(self):
        t = fig5_osu_latency()
        for bench, size, native_us, mana_us in t.rows:
            assert mana_us >= native_us - 1e-9
            assert mana_us - native_us < 10.0, (
                f"{bench}@{size}: MANA adds a small constant, not a regime"
            )


class TestFig6:
    def test_image_sizes_match_paper(self, fig6):
        by_app = {}
        for row in fig6.rows:
            by_app.setdefault(row[0], []).append(row)
        for row in by_app["gromacs"]:
            assert 85 <= row[4] <= 100      # ~93 MB/rank
        for row in by_app["hpcg"]:
            assert 1900 <= row[4] <= 2200   # ~2 GB/rank

    def test_ckpt_time_tracks_image_size(self, fig6):
        gromacs = [r for r in fig6.rows if r[0] == "gromacs"]
        hpcg = [r for r in fig6.rows if r[0] == "hpcg"]
        assert min(r[3] for r in hpcg) > 4 * max(r[3] for r in gromacs)


class TestFig7:
    def test_restart_read_dominated(self):
        t = fig7_restart_time(apps=["gromacs"])
        for row in t.rows:
            _app, _nodes, _ranks, total, read, replay = row
            assert read > 0.5 * total, "restart is dominated by image reads"
            assert replay < 0.1 * total, "opaque-id replay <10% (paper §3.4)"


class TestFig8:
    def test_write_dominates(self):
        t = fig8_ckpt_breakdown(apps=["gromacs", "hpcg"])
        for row in t.rows:
            app, ranks, write_pct, drain_pct, comm_pct, drain_s, comm_s = row
            assert write_pct > 50.0
            assert drain_s < 0.7, "paper: drain < 0.7 s"
            assert comm_s < 1.6, "paper: 2-phase comm overhead < 1.6 s"


class TestFig9:
    def test_migration_degradation_small(self):
        t = fig9_cross_cluster_migration()
        assert len(t.rows) == 3
        for row in t.rows:
            assert -1.0 < row[3] < 4.0, (
                f"{row[0]}: post-migration degradation should be a few "
                f"percent at most (paper: <1.8%)"
            )


class TestMemoryOverhead:
    def test_matches_paper_numbers(self):
        t = memory_overhead_analysis()
        rows = {r[0]: r for r in t.rows}
        assert rows[2][1] == 26.0           # duplicated Cray MPI text
        assert rows[2][2] == pytest.approx(2.0, abs=0.6)
        assert rows[64][2] == pytest.approx(40.0, abs=2.0)
        # monotone growth of driver shared memory with nodes
        shm = t.column("driver_shmem_MB")
        assert shm == sorted(shm)
