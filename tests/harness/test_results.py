"""Result containers and rendering."""

import pytest

from repro.harness.results import Series, Table, render_table


class TestSeries:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1])

    def test_as_rows(self):
        s = Series("s", [1, 2], [10, 20])
        assert s.as_rows() == [(1, 10), (2, 20)]


class TestTable:
    def test_add_and_column(self):
        t = Table("t", ["a", "b"])
        t.add(1, 2)
        t.add(3, 4)
        assert t.column("b") == [2, 4]

    def test_wrong_arity_rejected(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_render_contains_everything(self):
        t = Table("My Figure", ["app", "pct"])
        t.add("gromacs", 97.9)
        t.notes.append("paper: blah")
        out = render_table(t)
        assert "My Figure" in out
        assert "gromacs" in out
        assert "97.9" in out
        assert "paper: blah" in out

    def test_render_formats_floats(self):
        t = Table("t", ["v"])
        t.add(0.000123)
        t.add(123456.0)
        t.add(0)
        out = render_table(t)
        assert "0.000123" in out
        assert "1.23e+05" in out

    def test_str_is_render(self):
        t = Table("t", ["v"])
        t.add(1)
        assert str(t) == render_table(t)

    def test_empty_table_renders(self):
        assert "t" in render_table(Table("t", ["a"]))
