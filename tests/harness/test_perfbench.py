"""perfbench document handling: validation, regression math, and the
single-core gate on host-property metrics."""

import pytest

from repro.harness.perfbench import (
    BENCH_SCHEMA,
    CORE_METRICS,
    compare_bench,
    validate_bench_doc,
)


def _doc(**overrides):
    metrics = {
        "engine_events_per_s": {"value": 1000.0, "unit": "events/s",
                                "higher_is_better": True},
        "engine_events_per_s_sharded": {"value": 900.0, "unit": "events/s",
                                        "higher_is_better": True,
                                        "shards": 2, "windows": 3,
                                        "messages": 8,
                                        "informational": True},
        "p2p_msgs_per_s": {"value": 100.0, "unit": "msgs/s",
                           "higher_is_better": True},
        "allreduce_per_s": {"value": 50.0, "unit": "allreduces/s",
                            "higher_is_better": True},
        "ckpt_restart_cycle_s": {"value": 0.5, "unit": "s",
                                 "higher_is_better": False},
        "fig2_cell_s": {"value": 0.1, "unit": "s",
                        "higher_is_better": False},
        "sweep_speedup_j2": {"value": 0.85, "unit": "x",
                             "higher_is_better": True,
                             "informational": True},
        "facility_makespan_s": {"value": 0.5, "unit": "s",
                                "higher_is_better": False},
        "ckpt_quiesce_wait_s": {"value": 0.0017, "unit": "s",
                                "higher_is_better": False,
                                "alg2_s": 0.0034, "topo_s": 0.0017,
                                "simulated": True},
        "restart_replay_s_vs_log_len": {"value": 0.0002, "unit": "s",
                                        "higher_is_better": False,
                                        "compact_base_s": 0.0002,
                                        "full_base_s": 0.001,
                                        "full_x10_s": 0.01,
                                        "compact_ratio": 1.0,
                                        "full_ratio": 10.0,
                                        "simulated": True},
    }
    for key, m in overrides.items():
        metrics[key] = {**metrics[key], **m}
    return {
        "schema": BENCH_SCHEMA,
        "quick": True,
        "host": {"cpu_count": 1, "python": "3.11", "shards": 2},
        "metrics": metrics,
    }


def test_valid_doc_passes_and_covers_core_metrics():
    doc = _doc()
    validate_bench_doc(doc)
    assert set(CORE_METRICS) <= set(doc["metrics"])


@pytest.mark.parametrize("mutate", [
    lambda d: d.update(schema="other/9"),
    lambda d: d["host"].update(cpu_count=0),
    lambda d: d["metrics"].pop("sweep_speedup_j2"),
    lambda d: d["metrics"].pop("engine_events_per_s_sharded"),
    lambda d: d["metrics"].pop("ckpt_quiesce_wait_s"),
    lambda d: d["metrics"].pop("restart_replay_s_vs_log_len"),
    lambda d: d["metrics"]["fig2_cell_s"].update(value=float("nan")),
    lambda d: d["metrics"]["fig2_cell_s"].update(unit=""),
])
def test_invalid_docs_rejected(mutate):
    doc = _doc()
    mutate(doc)
    with pytest.raises(ValueError):
        validate_bench_doc(doc)


def test_regression_detected_in_both_directions():
    base = _doc()
    slow = _doc(engine_events_per_s={"value": 500.0})  # throughput halved
    assert compare_bench(slow, base)
    bloat = _doc(fig2_cell_s={"value": 0.2})  # wall time doubled
    assert compare_bench(bloat, base, keys=("fig2_cell_s",))
    assert compare_bench(base, base, keys=CORE_METRICS) == []


def test_within_budget_change_passes():
    base = _doc()
    ok = _doc(engine_events_per_s={"value": 800.0})  # -20% < 30% budget
    assert compare_bench(ok, base) == []


def test_informational_metrics_are_never_thresholded():
    """A single-core host's pool 'speedup' is a host property: even a
    collapse to 0.1x must not fail the perf gate, whichever side carries
    the flag."""
    base = _doc()
    crashed = _doc(sweep_speedup_j2={"value": 0.1})
    assert compare_bench(crashed, base, keys=("sweep_speedup_j2",)) == []

    multi_base = _doc(sweep_speedup_j2={"informational": False,
                                        "value": 1.8})
    assert compare_bench(crashed, multi_base,
                         keys=("sweep_speedup_j2",)) == []
    # ...but with the flag off on both sides it is a real regression
    multi_cur = _doc(sweep_speedup_j2={"informational": False,
                                       "value": 0.9})
    assert compare_bench(multi_cur, multi_base, keys=("sweep_speedup_j2",))


def test_run_suite_flags_speedup_on_single_core_hosts(monkeypatch):
    """The emitted document must carry the gate, derived from the host."""
    import repro.harness.perfbench as pb

    monkeypatch.setattr(pb.os, "cpu_count", lambda: 1)
    monkeypatch.setattr(pb, "bench_engine_events", lambda *a, **k: 1e6)
    monkeypatch.setattr(
        pb, "bench_engine_events_sharded",
        lambda *a, **k: {"events_per_s": 1.5e6, "windows": 3.0,
                         "messages": 8.0},
    )
    monkeypatch.setattr(pb, "bench_p2p_message_rate", lambda *a, **k: 1e4)
    monkeypatch.setattr(pb, "bench_allreduce_rate", lambda *a, **k: 1e3)
    monkeypatch.setattr(pb, "bench_ckpt_restart_cycle", lambda *a, **k: 0.02)
    monkeypatch.setattr(pb, "bench_fig2_cell", lambda *a, **k: 0.01)
    monkeypatch.setattr(
        pb, "bench_sweep_speedup",
        lambda jobs: {"seq_s": 1.0, "par_s": 1.2, "speedup": 1 / 1.2},
    )
    monkeypatch.setattr(
        pb, "bench_restart_replay_vs_log_len",
        lambda *a, **k: {
            "compact_base_s": 2e-4, "compact_x10_s": 2e-4,
            "full_base_s": 1e-3, "full_x10_s": 1e-2,
            "compact_base_entries": 8.0, "compact_x10_entries": 8.0,
            "full_base_entries": 100.0, "full_x10_entries": 1000.0,
            "compact_ratio": 1.0, "full_ratio": 10.0,
        },
    )
    doc = pb.run_suite(quick=True)
    validate_bench_doc(doc)
    assert doc["metrics"]["sweep_speedup_j2"]["informational"] is True
    assert doc["metrics"]["engine_events_per_s_sharded"]["informational"] is True
    assert doc["host"]["shards"] == pb.BENCH_SHARDS

    monkeypatch.setattr(pb.os, "cpu_count", lambda: 8)
    doc = pb.run_suite(quick=True)
    assert doc["metrics"]["sweep_speedup_j2"]["informational"] is False
    assert doc["metrics"]["engine_events_per_s_sharded"]["informational"] is False


def test_default_threshold_keys_cover_parallel_metrics():
    """compare_bench enforces the throughput/scaling trio by default; the
    parallel pair opts out only via the per-host informational flag."""
    from repro.harness.perfbench import THRESHOLDED_KEYS

    assert THRESHOLDED_KEYS == ("engine_events_per_s",
                                "engine_events_per_s_sharded",
                                "sweep_speedup_j2")
    base = _doc()
    cur = _doc(engine_events_per_s={"value": 500.0})  # halved, default keys
    assert compare_bench(cur, base)
    # sharded + sweep carry informational=True in the single-core doc:
    # collapsing them must not trip the default gate
    quiet = _doc(engine_events_per_s_sharded={"value": 1.0},
                 sweep_speedup_j2={"value": 0.1})
    assert compare_bench(quiet, base) == []
    # ...but on a multi-core doc (flag off both sides) the sharded
    # regression is caught without naming any keys explicitly
    fast = _doc(engine_events_per_s_sharded={"informational": False,
                                             "value": 2000.0})
    slow = _doc(engine_events_per_s_sharded={"informational": False,
                                             "value": 1000.0})
    failures = compare_bench(slow, fast)
    assert failures and "engine_events_per_s_sharded" in failures[0]


def test_restart_replay_bench_flat_under_compaction():
    """The acceptance criterion behind the metric: across 10x communicator
    churn the full log's replay grows with call history while the
    compacted restart stays O(live handles) — same entry count, flat
    simulated replay time (both deterministic)."""
    from repro.harness.perfbench import bench_restart_replay_vs_log_len

    rr = bench_restart_replay_vs_log_len(n_steps=3)
    assert rr["full_x10_entries"] >= 5 * rr["full_base_entries"]
    assert rr["compact_x10_entries"] == rr["compact_base_entries"]
    assert rr["compact_ratio"] <= 1.5
    assert rr["full_ratio"] >= 3.0
    assert rr["compact_x10_s"] < rr["full_x10_s"]


def test_quiesce_wait_bench_topo_at_most_alg2():
    """The acceptance criterion behind the metric: topo <= alg2 on the
    collective-heavy slice, both deterministic simulated times."""
    from repro.harness.perfbench import bench_ckpt_quiesce_wait

    qw = bench_ckpt_quiesce_wait(n_steps=2)
    assert 0 < qw["topo_s"] <= qw["alg2_s"]
