"""Partitioner properties: total node-aligned shard maps, fabric-derived
lookahead that lower-bounds every cross-shard edge, and the shards=1
byte-identical contract on a real MANA job."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.partition import (
    lookahead_for,
    make_sharded_engine,
    plan_for_cluster,
    plan_shards,
    shard_of_ranks,
)
from repro.net.fabrics import INTERCONNECTS

FABRICS = sorted(INTERCONNECTS)


@settings(max_examples=60, deadline=None)
@given(n_nodes=st.integers(1, 64), n_shards=st.integers(1, 16),
       fabric=st.sampled_from(FABRICS))
def test_every_node_in_exactly_one_shard(n_nodes, n_shards, fabric):
    plan = plan_shards(n_nodes, n_shards, fabric)
    # total map: one shard per node, every shard id used
    assert plan.n_nodes == n_nodes
    assert plan.n_shards == min(n_shards, n_nodes)
    assert set(plan.shard_of_node) == set(range(plan.n_shards))
    # contiguous balanced blocks (block placement locality)
    assert list(plan.shard_of_node) == sorted(plan.shard_of_node)
    counts = Counter(plan.shard_of_node)
    assert max(counts.values()) - min(counts.values()) <= 1


@settings(max_examples=60, deadline=None)
@given(n_nodes=st.integers(1, 16), n_shards=st.integers(1, 8),
       ranks_per_node=st.integers(1, 8))
def test_every_rank_in_exactly_one_shard_and_node_aligned(
        n_nodes, n_shards, ranks_per_node):
    plan = plan_shards(n_nodes, n_shards)
    n_ranks = n_nodes * ranks_per_node
    placement = [r // ranks_per_node for r in range(n_ranks)]
    shards = shard_of_ranks(plan, placement)
    assert len(shards) == n_ranks
    assert all(0 <= s < plan.n_shards for s in shards)
    # node alignment: co-resident ranks never straddle shards, so
    # shared-memory traffic (far below any fabric α) stays shard-local
    for rank, node in enumerate(placement):
        assert shards[rank] == plan.shard_of_node[node]
        assert shards[rank] == plan.shard_of_rank(placement, rank)


@given(fabric=st.sampled_from(FABRICS))
def test_lookahead_is_the_fabric_alpha(fabric):
    from repro.mana.coordinator import ControlPlaneModel

    lookahead = lookahead_for(fabric)
    assert lookahead == float(INTERCONNECTS[fabric].alpha) > 0.0
    # the coordinator's management network is slower than every fabric,
    # so control edges can never undercut a fabric-derived lookahead
    assert ControlPlaneModel.latency >= lookahead


@settings(max_examples=40, deadline=None)
@given(fabric=st.sampled_from(FABRICS),
       factor=st.floats(min_value=1.0, max_value=100.0,
                        allow_nan=False, allow_infinity=False),
       start=st.floats(min_value=0.0, max_value=1e6,
                       allow_nan=False, allow_infinity=False))
def test_edges_at_or_above_lookahead_always_pass_the_audit(
        fabric, factor, start):
    """Any cross-shard edge carrying >= the plan's lookahead is legal, at
    any magnitude of virtual time (the float-tolerance contract)."""
    from repro.simtime.sharded import ShardedEngine

    plan = plan_shards(4, 2, fabric)
    engine = ShardedEngine(plan, mode="merged", start_time=start)

    def hop():
        engine.call_at(engine.now + plan.lookahead * factor,
                       lambda: None, label="edge", shard=1)

    engine.call_after(1e-3, hop, label="hop", shard=0)
    engine.run()
    assert engine.cross_shard_events == 1
    assert engine.lookahead_violations == []


@settings(max_examples=40, deadline=None)
@given(fabric=st.sampled_from(FABRICS),
       factor=st.floats(min_value=0.01, max_value=0.9,
                        allow_nan=False, allow_infinity=False))
def test_edges_below_lookahead_always_fail_the_audit(fabric, factor):
    from repro.simtime.sharded import CausalityError, ShardedEngine

    plan = plan_shards(4, 2, fabric)
    engine = ShardedEngine(plan, mode="merged")

    def hop():
        engine.call_after(plan.lookahead * factor, lambda: None,
                          label="edge", shard=1)

    engine.call_after(1e-3, hop, label="hop", shard=0)
    with pytest.raises(CausalityError, match="edge"):
        engine.run()


def test_plan_for_cluster_matches_block_plan():
    from repro.hardware.cluster import make_cluster

    cluster = make_cluster("part-plan", 6, interconnect="infiniband")
    plan = plan_for_cluster(cluster, 3)
    assert plan.n_shards == 3
    assert plan.lookahead == lookahead_for("infiniband")
    assert plan.shard_of_node == (0, 0, 1, 1, 2, 2)


def test_unknown_interconnect_rejected():
    with pytest.raises(ValueError, match="unknown interconnect"):
        lookahead_for("carrier-pigeon")


def test_make_sharded_engine_degrades_to_plain_engine():
    from repro.hardware.cluster import make_cluster
    from repro.simtime import Engine
    from repro.simtime.sharded import ShardedEngine

    cluster = make_cluster("part-one", 2)
    for shards in (None, 0, 1):
        engine = make_sharded_engine(cluster, shards)
        assert type(engine) is Engine
    engine = make_sharded_engine(cluster, 2)
    assert isinstance(engine, ShardedEngine)
    assert engine.plan.n_shards == 2


def _job_trace(shards):
    from repro.apps import get_app
    from repro.hardware.cluster import make_cluster
    from repro.harness.experiments import _launch_mana_app

    spec = get_app("hpcg")
    cfg = spec.default_config.scaled(n_steps=2)
    cluster = make_cluster("part-eq", 2, interconnect="aries",
                           default_mpi="craympich")
    job = _launch_mana_app(cluster, spec, cfg, n_ranks=4,
                           ranks_per_node=2, shards=shards)
    job.engine.trace = []
    job.run_to_completion()
    return job


def test_sharded_mana_job_byte_identical_to_sequential():
    """The acceptance criterion: shards=1 is today's engine, and merged
    shards=2 replays the identical global event stream while proving the
    world decomposable (edges audited, none below lookahead)."""
    plain = _job_trace(None)
    one = _job_trace(1)
    two = _job_trace(2)
    assert one.engine.trace == plain.engine.trace
    assert two.engine.trace == plain.engine.trace
    assert two.engine.now == plain.engine.now
    assert two.engine.cross_shard_events > 0
    assert two.engine.lookahead_violations == []
    assert sum(two.engine.events_by_shard) == len(two.engine.trace)
