"""MPI-IO substrate: SimFilesystem, MpiFile, endpoint.file_open."""

import pytest

from repro.hardware.cluster import make_cluster
from repro.hardware.filesystem import FilesystemError, SimFile, SimFilesystem
from repro.mpilib import MpiError, launch
from repro.mpilib.io import IoError
from repro.simtime import Engine


class TestSimFile:
    def test_write_read_round_trip(self):
        f = SimFile("a")
        f.write(10, b"hello")
        assert f.read(10, 5) == b"hello"
        assert f.size == 15

    def test_holes_read_as_zeros(self):
        f = SimFile("a")
        f.write(4, b"xy")
        assert f.read(0, 8) == b"\x00\x00\x00\x00xy\x00\x00"

    def test_overlapping_reads(self):
        f = SimFile("a")
        f.write(0, b"abcd")
        f.write(8, b"efgh")
        assert f.read(2, 8) == b"cd\x00\x00\x00\x00ef"

    def test_negative_offset_rejected(self):
        with pytest.raises(FilesystemError):
            SimFile("a").write(-1, b"x")

    def test_checksum_changes_with_content(self):
        f = SimFile("a")
        f.write(0, b"abc")
        c1 = f.checksum()
        f.write(0, b"abd")
        assert f.checksum() != c1


class TestSimFilesystem:
    def test_open_creates(self):
        fs = SimFilesystem()
        f = fs.open("/out/data.bin")
        assert fs.exists("/out/data.bin")
        assert fs.open("/out/data.bin") is f

    def test_open_nocreate_missing(self):
        with pytest.raises(FilesystemError):
            SimFilesystem().open("/nope", create=False)

    def test_listing(self):
        fs = SimFilesystem()
        fs.open("/b")
        fs.open("/a")
        assert fs.listing() == ["/a", "/b"]


@pytest.fixture
def world2():
    engine = Engine()
    cluster = make_cluster("io", 2, interconnect="aries")
    return engine, launch(engine, cluster, 2, ranks_per_node=1), cluster


class TestEndpointFileOps:
    def test_file_open_is_collective(self, world2):
        engine, world, cluster = world2
        d0 = world.endpoints[0].file_open("/shared/out.dat")
        engine.run()
        assert not d0.done  # rank 1 has not opened yet
        d1 = world.endpoints[1].file_open("/shared/out.dat")
        engine.run()
        f0, f1 = d0.value, d1.value
        assert f0.file is f1.file       # same shared file
        assert f0.handle != f1.handle   # distinct per-rank handles
        assert cluster.fs.exists("/shared/out.dat")

    def test_file_open_path_mismatch(self, world2):
        engine, world, cluster = world2
        world.endpoints[0].file_open("/a")
        with pytest.raises(MpiError, match="mismatch"):
            world.endpoints[1].file_open("/b")
            engine.run()

    def _open(self, world2):
        engine, world, cluster = world2
        dones = [ep.file_open("/f", "rw") for ep in world.endpoints]
        engine.run()
        return engine, cluster, [d.value for d in dones]

    def test_write_at_and_read_at(self, world2):
        engine, cluster, files = self._open(world2)
        files[0].write_at(0, b"rank0-data")
        engine.run()
        r = files[1].read_at(0, 10)
        engine.run()
        assert r.value == b"rank0-data"

    def test_write_at_takes_modeled_time(self, world2):
        engine, cluster, files = self._open(world2)
        t0 = engine.now
        files[0].write_at(0, b"x", size=1 << 30)  # model a 1 GiB write
        engine.run()
        assert engine.now - t0 > 0.05

    def test_write_at_all_synchronizes(self, world2):
        engine, cluster, files = self._open(world2)
        d0 = files[0].write_at_all(0, b"A" * 8)
        engine.run()
        assert not d0.done  # collective: waits for rank 1
        d1 = files[1].write_at_all(8, b"B" * 8)
        engine.run()
        assert d0.done and d1.done
        assert cluster.fs.open("/f").read(0, 16) == b"A" * 8 + b"B" * 8

    def test_read_only_mode_enforced(self, world2):
        engine, world, cluster = world2
        dones = [ep.file_open("/ro", "r") for ep in world.endpoints]
        engine.run()
        with pytest.raises(IoError, match="read-only"):
            dones[0].value.write_at(0, b"x")

    def test_closed_handle_rejected(self, world2):
        engine, cluster, files = self._open(world2)
        files[0].close()
        with pytest.raises(IoError, match="closed"):
            files[0].write_at(0, b"x")
