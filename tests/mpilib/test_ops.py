"""Reduction operations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.mpilib import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM


def test_sum_arrays():
    out = SUM.reduce_all([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
    assert np.array_equal(out, [4.0, 6.0])


def test_prod_scalar():
    assert PROD.reduce_all([2, 3, 4]) == 24


def test_max_min():
    vals = [np.array([1, 9]), np.array([5, 2])]
    assert np.array_equal(MAX.reduce_all(vals), [5, 9])
    assert np.array_equal(MIN.reduce_all(vals), [1, 2])


def test_logical_ops():
    assert LAND.reduce_all([1, 1, 0]) == False  # noqa: E712
    assert LOR.reduce_all([0, 0, 1]) == True    # noqa: E712


def test_bitwise_ops():
    assert BAND.reduce_all([0b1100, 0b1010]) == 0b1000
    assert BOR.reduce_all([0b1100, 0b1010]) == 0b1110


def test_maxloc_picks_value_and_lowest_index():
    pairs = [np.array([[3.0, 0.0]]), np.array([[7.0, 1.0]]), np.array([[7.0, 2.0]])]
    out = MAXLOC.reduce_all(pairs)
    assert out[0, 0] == 7.0
    assert out[0, 1] == 1.0  # ties broken by lowest rank index


def test_minloc():
    pairs = [np.array([[3.0, 0.0]]), np.array([[1.0, 1.0]]), np.array([[1.0, 2.0]])]
    out = MINLOC.reduce_all(pairs)
    assert out[0, 0] == 1.0
    assert out[0, 1] == 1.0


def test_empty_reduce_raises():
    with pytest.raises(ValueError):
        SUM.reduce_all([])


def test_reduce_does_not_mutate_inputs():
    a = np.array([1.0, 2.0])
    b = np.array([3.0, 4.0])
    SUM.reduce_all([a, b])
    assert np.array_equal(a, [1.0, 2.0])
    assert np.array_equal(b, [3.0, 4.0])


@given(
    contributions=st.lists(
        arrays(np.float64, 4, elements=st.floats(-1e6, 1e6)), min_size=1, max_size=8
    )
)
def test_sum_matches_numpy(contributions):
    out = SUM.reduce_all(contributions)
    expected = np.sum(np.stack(contributions), axis=0)
    assert np.allclose(out, expected)


@given(
    contributions=st.lists(
        arrays(np.int64, 3, elements=st.integers(-1000, 1000)), min_size=1, max_size=8
    )
)
def test_max_is_order_independent(contributions):
    fwd = MAX.reduce_all(contributions)
    rev = MAX.reduce_all(list(reversed(contributions)))
    assert np.array_equal(fwd, rev)
