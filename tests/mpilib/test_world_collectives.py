"""Collective semantics and timing of the simulated MPI world."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mpilib import MAX, SUM, Group, MpiError, launch
from repro.mpilib.collectives import collective_duration
from repro.simtime import Engine


def make_world(n_ranks=4, n_nodes=4, ranks_per_node=1, mpi="mpich"):
    engine = Engine()
    cluster = make_cluster("t", n_nodes, cores_per_node=32, interconnect="aries")
    world = launch(engine, cluster, n_ranks, ranks_per_node=ranks_per_node, mpi=mpi)
    return engine, world


def run_collective(engine, world, fn):
    """Apply fn(endpoint) on every rank, run, return list of values."""
    dones = [fn(ep) for ep in world.endpoints]
    engine.run()
    assert all(d.done for d in dones), "collective did not complete"
    return [d.value for d in dones]


def test_barrier_completes_for_all():
    engine, world = make_world()
    values = run_collective(engine, world, lambda ep: ep.barrier())
    assert values == [None] * 4


def test_barrier_waits_for_last_arrival():
    engine, world = make_world(n_ranks=2, n_nodes=2)
    d0 = world.endpoints[0].barrier()
    engine.run()
    assert not d0.done  # rank 1 has not arrived
    world.endpoints[1].barrier()
    engine.run()
    assert d0.done


def test_bcast_from_root():
    engine, world = make_world()
    payload = np.arange(5.0)
    values = run_collective(
        engine, world,
        lambda ep: ep.bcast(payload if ep.rank == 2 else None, root=2),
    )
    for v in values:
        assert np.array_equal(v, payload)


def test_bcast_results_are_independent_copies():
    engine, world = make_world(n_ranks=2, n_nodes=2)
    payload = np.zeros(3)
    values = run_collective(
        engine, world,
        lambda ep: ep.bcast(payload if ep.rank == 0 else None, root=0),
    )
    values[0][0] = 99.0
    assert values[1][0] == 0.0


def test_reduce_to_root_only():
    engine, world = make_world()
    values = run_collective(
        engine, world,
        lambda ep: ep.reduce(np.array([float(ep.rank)]), SUM, root=1),
    )
    assert values[1][0] == 0 + 1 + 2 + 3
    assert values[0] is None and values[2] is None and values[3] is None


def test_allreduce_sum_and_max():
    engine, world = make_world()
    sums = run_collective(
        engine, world, lambda ep: ep.allreduce(np.array([ep.rank + 1.0]), SUM)
    )
    assert all(v[0] == 10.0 for v in sums)
    engine2, world2 = make_world()
    maxes = run_collective(
        engine2, world2, lambda ep: ep.allreduce(np.array([float(ep.rank)]), MAX)
    )
    assert all(v[0] == 3.0 for v in maxes)


def test_gather_order_at_root():
    engine, world = make_world()
    values = run_collective(
        engine, world, lambda ep: ep.gather(np.array([float(ep.rank)]), root=0)
    )
    gathered = values[0]
    assert [g[0] for g in gathered] == [0.0, 1.0, 2.0, 3.0]
    assert values[1] is None


def test_allgather():
    engine, world = make_world()
    values = run_collective(
        engine, world, lambda ep: ep.allgather(np.array([ep.rank * 2.0]))
    )
    for v in values:
        assert [g[0] for g in v] == [0.0, 2.0, 4.0, 6.0]


def test_scatter():
    engine, world = make_world()
    chunks = [np.array([float(i) * 10]) for i in range(4)]
    values = run_collective(
        engine, world,
        lambda ep: ep.scatter(chunks if ep.rank == 0 else None, root=0),
    )
    assert [v[0] for v in values] == [0.0, 10.0, 20.0, 30.0]


def test_scatter_wrong_chunk_count():
    engine, world = make_world()
    bad = [np.zeros(1)] * 3
    with pytest.raises(MpiError, match="scatter root"):
        for ep in world.endpoints:
            ep.scatter(bad if ep.rank == 0 else None, root=0)
        engine.run()


def test_alltoall_transposes():
    engine, world = make_world()
    values = run_collective(
        engine, world,
        lambda ep: ep.alltoall([np.array([ep.rank * 10.0 + j]) for j in range(4)]),
    )
    for r, v in enumerate(values):
        assert [x[0] for x in v] == [s * 10.0 + r for s in range(4)]


def test_reduce_scatter():
    engine, world = make_world()
    values = run_collective(
        engine, world,
        lambda ep: ep.reduce_scatter(np.arange(8.0) + ep.rank, SUM),
    )
    full = sum(np.arange(8.0) + r for r in range(4))
    for r, v in enumerate(values):
        assert np.array_equal(v, full[2 * r: 2 * r + 2])


def test_scan_prefix_sums():
    engine, world = make_world()
    values = run_collective(
        engine, world, lambda ep: ep.scan(np.array([1.0]), SUM)
    )
    assert [v[0] for v in values] == [1.0, 2.0, 3.0, 4.0]


def test_mismatched_collective_ops_raise():
    engine, world = make_world(n_ranks=2, n_nodes=2)
    world.endpoints[0].barrier()
    with pytest.raises(MpiError, match="mismatch"):
        world.endpoints[1].allreduce(np.ones(1), SUM)


def test_mismatched_roots_raise():
    engine, world = make_world(n_ranks=2, n_nodes=2)
    world.endpoints[0].bcast(np.ones(1), root=0)
    with pytest.raises(MpiError, match="root mismatch"):
        world.endpoints[1].bcast(None, root=1)


def test_non_member_rank_raises():
    engine, world = make_world()
    done = world.endpoints[0].comm_create(Group((0, 1)))
    for r in (1, 2, 3):
        world.endpoints[r].comm_create(Group((0, 1)))
    engine.run()
    sub = done.value
    with pytest.raises(MpiError, match="does not belong"):
        world.endpoints[2].barrier(sub)


def test_successive_collectives_match_in_order():
    engine, world = make_world(n_ranks=2, n_nodes=2)
    a0 = world.endpoints[0].allreduce(np.array([1.0]), SUM)
    b0 = world.endpoints[0].allreduce(np.array([10.0]), SUM)
    a1 = world.endpoints[1].allreduce(np.array([2.0]), SUM)
    b1 = world.endpoints[1].allreduce(np.array([20.0]), SUM)
    engine.run()
    assert a0.value[0] == 3.0 and a1.value[0] == 3.0
    assert b0.value[0] == 30.0 and b1.value[0] == 30.0


def test_open_collectives_counter():
    engine, world = make_world(n_ranks=2, n_nodes=2)
    world.endpoints[0].barrier()
    assert world.open_collectives == 1
    world.endpoints[1].barrier()
    engine.run()
    assert world.open_collectives == 0


class TestCommManagement:
    def test_comm_dup_shares_group_new_context(self):
        engine, world = make_world()
        dones = [ep.comm_dup() for ep in world.endpoints]
        engine.run()
        dups = [d.value for d in dones]
        ctxs = {c.context_id for c in dups}
        assert len(ctxs) == 1
        assert ctxs != {world.endpoints[0].comm_world.context_id}
        assert dups[0].group == world.endpoints[0].comm_world.group

    def test_comm_split_by_parity(self):
        engine, world = make_world()
        dones = [ep.comm_split(color=ep.rank % 2, key=ep.rank)
                 for ep in world.endpoints]
        engine.run()
        comms = [d.value for d in dones]
        assert comms[0].group.world_ranks == (0, 2)
        assert comms[1].group.world_ranks == (1, 3)
        assert comms[0].context_id == comms[2].context_id
        assert comms[0].context_id != comms[1].context_id

    def test_comm_split_key_orders_ranks(self):
        engine, world = make_world()
        dones = [ep.comm_split(color=0, key=-ep.rank) for ep in world.endpoints]
        engine.run()
        assert dones[0].value.group.world_ranks == (3, 2, 1, 0)

    def test_comm_split_undefined_color(self):
        engine, world = make_world()
        dones = [ep.comm_split(color=(-1 if ep.rank == 3 else 0), key=0)
                 for ep in world.endpoints]
        engine.run()
        assert dones[3].value is None
        assert dones[0].value.size == 3

    def test_split_comm_is_usable(self):
        engine, world = make_world()
        dones = [ep.comm_split(color=ep.rank % 2, key=ep.rank)
                 for ep in world.endpoints]
        engine.run()
        comms = {ep.rank: d.value for ep, d in zip(world.endpoints, dones)}
        results = [
            world.endpoints[r].allreduce(np.array([1.0]), SUM, comm=comms[r])
            for r in range(4)
        ]
        engine.run()
        assert all(r.value[0] == 2.0 for r in results)

    def test_comm_create_non_member_gets_none(self):
        engine, world = make_world()
        grp = Group((1, 2))
        dones = [ep.comm_create(grp) for ep in world.endpoints]
        engine.run()
        assert dones[0].value is None
        assert dones[1].value.size == 2

    def test_successive_dups_get_distinct_contexts(self):
        engine, world = make_world(n_ranks=2, n_nodes=2)
        first = [ep.comm_dup() for ep in world.endpoints]
        engine.run()
        second = [ep.comm_dup() for ep in world.endpoints]
        engine.run()
        assert first[0].value.context_id != second[0].value.context_id
        assert second[0].value.context_id == second[1].value.context_id


class TestTopologyComms:
    def test_cart_create_attaches_topology(self):
        engine, world = make_world()
        dones = [ep.cart_create([2, 2], [True, False]) for ep in world.endpoints]
        engine.run()
        cart = dones[0].value
        assert cart.topology.dims == (2, 2)
        assert cart.context_id == dones[3].value.context_id

    def test_cart_create_size_mismatch(self):
        engine, world = make_world()
        with pytest.raises(MpiError, match="need"):
            world.endpoints[0].cart_create([3, 2], [False, False])

    def test_graph_create(self):
        engine, world = make_world()
        edges = [(1,), (0, 2), (1, 3), (2,)]
        dones = [ep.graph_create(edges) for ep in world.endpoints]
        engine.run()
        assert dones[0].value.topology.neighbors(1) == (0, 2)


class TestCollectiveTiming:
    def test_duration_models_positive_and_monotone_in_size(self):
        engine, world = make_world()
        net, impl = world.fabric, world.impl
        for op in ("barrier", "bcast", "allreduce", "gather", "alltoall"):
            small = collective_duration(op, 1 << 10, 8, net, impl)
            large = collective_duration(op, 1 << 22, 8, net, impl)
            assert small > 0
            assert large >= small

    def test_unknown_op_raises(self):
        engine, world = make_world()
        with pytest.raises(ValueError):
            collective_duration("fft", 1, 2, world.fabric, world.impl)

    def test_allreduce_algorithm_switch_is_continuousish(self):
        """Ring beats recursive doubling for big payloads at scale."""
        engine, world = make_world()
        net, impl = world.fabric, world.impl
        big = 8 << 20
        ring = collective_duration("allreduce", big, 64, net, impl)
        # recursive doubling estimate for same size
        from repro.mpilib.collectives import _log2ceil
        rd = _log2ceil(64) * (net.alpha + big / net.beta + 0.25e-9 * big)
        assert ring < rd

    def test_cray_collectives_faster_than_debug_mpich(self):
        def bench(mpi):
            engine, world = make_world(mpi=mpi)
            [ep.allreduce(np.zeros(1 << 14), SUM) for ep in world.endpoints]
            t0 = engine.now
            engine.run()
            return engine.now - t0

        assert bench("craympich") < bench("mpich-debug")


def test_ibarrier_returns_request():
    engine, world = make_world(n_ranks=2, n_nodes=2)
    req = world.endpoints[0].ibarrier()
    assert not req.done
    world.endpoints[1].ibarrier()
    engine.run()
    assert req.done
