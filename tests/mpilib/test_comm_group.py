"""Group algebra, communicators, and topologies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpilib import Communicator, Group, MpiError
from repro.mpilib.comm import ANY_SOURCE
from repro.mpilib.topology import CartTopology, GraphTopology, dims_create


class TestGroup:
    def test_duplicate_ranks_rejected(self):
        with pytest.raises(MpiError):
            Group((0, 1, 1))

    def test_rank_of_and_translate(self):
        g = Group((4, 2, 7))
        assert g.size == 3
        assert g.rank_of(2) == 1
        assert g.rank_of(99) is None
        assert g.translate(2) == 7
        with pytest.raises(MpiError):
            g.translate(3)

    def test_incl_preserves_order(self):
        g = Group((10, 11, 12, 13))
        assert g.incl([3, 0]).world_ranks == (13, 10)

    def test_excl(self):
        g = Group((10, 11, 12, 13))
        assert g.excl([1, 2]).world_ranks == (10, 13)

    def test_excl_validates(self):
        with pytest.raises(MpiError):
            Group((0, 1)).excl([5])

    def test_union_intersection_difference(self):
        a = Group((0, 1, 2))
        b = Group((2, 3))
        assert a.union(b).world_ranks == (0, 1, 2, 3)
        assert a.intersection(b).world_ranks == (2,)
        assert a.difference(b).world_ranks == (0, 1)

    @given(st.lists(st.integers(0, 31), unique=True, min_size=1, max_size=16))
    def test_rank_of_translate_inverse(self, ranks):
        g = Group(tuple(ranks))
        for i, w in enumerate(ranks):
            assert g.rank_of(w) == i
            assert g.translate(i) == w


class TestCommunicator:
    def _comm(self, ranks=(0, 1, 2, 3)):
        return Communicator(handle=1, context_id=7, group=Group(ranks))

    def test_size_and_mapping(self):
        c = self._comm((5, 6))
        assert c.size == 2
        assert c.rank_of_world(6) == 1
        assert c.world_of_rank(0) == 5

    def test_validate_rank(self):
        c = self._comm()
        c.validate_rank(3)
        c.validate_rank(ANY_SOURCE, allow_any=True)
        with pytest.raises(MpiError):
            c.validate_rank(4)
        with pytest.raises(MpiError):
            c.validate_rank(ANY_SOURCE)


class TestDimsCreate:
    @pytest.mark.parametrize("n,nd,expected", [
        (8, 2, [4, 2]),
        (8, 3, [2, 2, 2]),
        (12, 2, [4, 3]),
        (7, 1, [7]),
        (1, 3, [1, 1, 1]),
    ])
    def test_balanced(self, n, nd, expected):
        assert dims_create(n, nd) == expected

    @given(st.integers(1, 256), st.integers(1, 4))
    def test_product_invariant(self, n, nd):
        dims = dims_create(n, nd)
        prod = 1
        for d in dims:
            prod *= d
        assert prod == n
        assert dims == sorted(dims, reverse=True)

    def test_invalid_args(self):
        with pytest.raises(MpiError):
            dims_create(0, 2)


class TestCartTopology:
    def test_coords_rank_round_trip(self):
        t = CartTopology((3, 4), (False, True))
        for r in range(t.size):
            assert t.rank(t.coords(r)) == r

    def test_row_major_layout(self):
        t = CartTopology((2, 3), (False, False))
        assert t.coords(0) == (0, 0)
        assert t.coords(1) == (0, 1)
        assert t.coords(3) == (1, 0)

    def test_periodic_wrap(self):
        t = CartTopology((4,), (True,))
        assert t.rank((5,)) == 1
        assert t.rank((-1,)) == 3

    def test_aperiodic_out_of_range(self):
        t = CartTopology((4,), (False,))
        with pytest.raises(MpiError):
            t.rank((4,))

    def test_shift_interior(self):
        t = CartTopology((4,), (False,))
        src, dst = t.shift(rank=1, dim=0, disp=1)
        assert (src, dst) == (0, 2)

    def test_shift_boundary_aperiodic_gives_proc_null(self):
        t = CartTopology((4,), (False,))
        src, dst = t.shift(rank=0, dim=0, disp=1)
        assert src is None
        assert dst == 1

    def test_shift_boundary_periodic_wraps(self):
        t = CartTopology((4,), (True,))
        src, dst = t.shift(rank=0, dim=0, disp=1)
        assert (src, dst) == (3, 1)

    def test_2d_shift(self):
        t = CartTopology((3, 3), (False, True))
        src, dst = t.shift(rank=4, dim=1, disp=1)  # center, periodic dim
        assert (src, dst) == (3, 5)

    def test_mismatched_periods(self):
        with pytest.raises(MpiError):
            CartTopology((2, 2), (True,))


class TestGraphTopology:
    def test_neighbors(self):
        t = GraphTopology(((1,), (0, 2), (1,)))
        assert t.size == 3
        assert t.neighbors(1) == (0, 2)
        with pytest.raises(MpiError):
            t.neighbors(3)
