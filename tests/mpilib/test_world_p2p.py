"""Point-to-point semantics of the simulated MPI world."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mpilib import MpiError, launch
from repro.mpilib.comm import ANY_SOURCE, ANY_TAG
from repro.simtime import Engine


def make_world(n_ranks=2, n_nodes=2, ranks_per_node=1, mpi="mpich",
               interconnect="tcp"):
    engine = Engine()
    cluster = make_cluster("t", n_nodes, cores_per_node=32,
                           interconnect=interconnect)
    world = launch(engine, cluster, n_ranks, ranks_per_node=ranks_per_node,
                   mpi=mpi)
    return engine, world


def test_eager_send_recv_delivers_payload():
    engine, world = make_world()
    data = np.arange(10.0)
    world.endpoints[0].send(1, data, tag=5)
    recv = world.endpoints[1].recv(source=0, tag=5)
    engine.run()
    got, status = recv.value
    assert np.array_equal(got, data)
    assert status.source == 0 and status.tag == 5


def test_send_buffer_has_value_semantics():
    engine, world = make_world()
    data = np.arange(4.0)
    world.endpoints[0].send(1, data)
    data[:] = -1  # mutate after send: receiver must see the original
    recv = world.endpoints[1].recv(source=0)
    engine.run()
    got, _ = recv.value
    assert np.array_equal(got, [0, 1, 2, 3])


def test_recv_before_send():
    engine, world = make_world()
    recv = world.endpoints[1].recv(source=0)
    engine.run()
    assert not recv.done  # nothing sent yet
    world.endpoints[0].send(1, np.ones(3))
    engine.run()
    assert recv.done


def test_unexpected_message_queued_then_matched():
    engine, world = make_world()
    world.endpoints[0].send(1, np.array([7.0]))
    engine.run()
    assert world.endpoints[1].unexpected_count == 1
    recv = world.endpoints[1].recv(source=0)
    engine.run()
    assert recv.done
    assert world.endpoints[1].unexpected_count == 0


def test_tag_matching_is_selective():
    engine, world = make_world()
    world.endpoints[0].send(1, np.array([1.0]), tag=1)
    world.endpoints[0].send(1, np.array([2.0]), tag=2)
    recv2 = world.endpoints[1].recv(source=0, tag=2)
    recv1 = world.endpoints[1].recv(source=0, tag=1)
    engine.run()
    assert recv2.value[0][0] == 2.0
    assert recv1.value[0][0] == 1.0


def test_wildcard_source_and_tag():
    engine, world = make_world(n_ranks=3, n_nodes=3)
    world.endpoints[2].send(0, np.array([9.0]), tag=42)
    recv = world.endpoints[0].recv(source=ANY_SOURCE, tag=ANY_TAG)
    engine.run()
    got, status = recv.value
    assert got[0] == 9.0
    assert status.source == 2 and status.tag == 42


def test_fifo_non_overtaking_same_tag():
    """A small message sent after a large one must not overtake it."""
    engine, world = make_world(mpi="mpich")
    big = np.zeros(1 << 10, dtype=np.uint8)       # still eager but slower
    world.endpoints[0].send(1, big, tag=0, size=1 << 10)
    world.endpoints[0].send(1, np.array([1.0]), tag=0, size=8)
    r1 = world.endpoints[1].recv(source=0, tag=0)
    r2 = world.endpoints[1].recv(source=0, tag=0)
    engine.run()
    first, _ = r1.value
    second, _ = r2.value
    assert first.nbytes == 1 << 10
    assert second[0] == 1.0


def test_rendezvous_used_above_eager_threshold():
    engine, world = make_world(mpi="mpich")  # eager threshold 16 KiB
    payload = np.zeros(1 << 20, dtype=np.uint8)
    send = world.endpoints[0].send(1, payload)
    engine.run()
    # No receiver posted: RTS parked, data NOT transferred, send incomplete.
    assert not send.done
    assert world.endpoints[1].unexpected_count == 1
    recv = world.endpoints[1].recv(source=0)
    engine.run()
    assert send.done
    assert recv.done
    assert recv.value[0].nbytes == 1 << 20


def test_rendezvous_recv_posted_first():
    engine, world = make_world(mpi="mpich")
    recv = world.endpoints[1].recv(source=0)
    engine.run()
    send = world.endpoints[0].send(1, np.zeros(1 << 20, dtype=np.uint8))
    engine.run()
    assert send.done and recv.done


def test_eager_send_completes_locally_without_receiver():
    engine, world = make_world(mpi="mpich")
    send = world.endpoints[0].send(1, np.array([1.0]))
    engine.run()
    assert send.done  # buffered at receiver, sender free


def test_self_send():
    engine, world = make_world(n_ranks=2, n_nodes=1, ranks_per_node=2)
    world.endpoints[0].send(0, np.array([5.0]), tag=3)
    recv = world.endpoints[0].recv(source=0, tag=3)
    engine.run()
    assert recv.value[0][0] == 5.0


def test_invalid_dest_raises():
    _, world = make_world()
    with pytest.raises(MpiError):
        world.endpoints[0].send(5, np.ones(1))


def test_intranode_uses_shmem_transport():
    engine, world = make_world(n_ranks=2, n_nodes=1, ranks_per_node=2)
    world.endpoints[0].send(1, np.ones(4))
    world.endpoints[1].recv(source=0)
    engine.run()
    assert world.shmem.messages_sent > 0
    assert world.fabric.messages_sent == 0


def test_internode_uses_fabric():
    engine, world = make_world(n_ranks=2, n_nodes=2, ranks_per_node=1)
    world.endpoints[0].send(1, np.ones(4))
    world.endpoints[1].recv(source=0)
    engine.run()
    assert world.fabric.messages_sent > 0


def test_intranode_faster_than_internode():
    def elapsed(n_nodes, ranks_per_node):
        engine, world = make_world(n_ranks=2, n_nodes=n_nodes,
                                   ranks_per_node=ranks_per_node)
        world.endpoints[0].send(1, np.zeros(1 << 12, dtype=np.uint8))
        world.endpoints[1].recv(source=0)
        engine.run()
        return engine.now

    assert elapsed(1, 2) < elapsed(2, 1)


def test_cancel_recv_removes_posting():
    engine, world = make_world()
    req = world.endpoints[1].irecv(source=0)
    assert world.endpoints[1].posted_recv_count == 1
    world.endpoints[1].cancel_recv(req)
    assert world.endpoints[1].posted_recv_count == 0
    # A message sent afterwards becomes unexpected rather than matching.
    world.endpoints[0].send(1, np.ones(1))
    engine.run()
    assert world.endpoints[1].unexpected_count == 1
    assert not req.completion.done


def test_cancel_recv_wrong_kind_raises():
    _, world = make_world()
    req = world.endpoints[0].isend(1, np.ones(1))
    with pytest.raises(MpiError):
        world.endpoints[0].cancel_recv(req)


def test_waitall():
    engine, world = make_world()
    for i in range(3):
        world.endpoints[0].isend(1, np.array([float(i)]))
    rreqs = [world.endpoints[1].irecv(source=0) for _ in range(3)]
    done = world.endpoints[1].waitall(rreqs)
    engine.run()
    assert done.done
    values = [v[0][0] for v in done.value]
    assert values == [0.0, 1.0, 2.0]


def test_in_flight_tracking_drains_to_zero():
    engine, world = make_world()
    world.endpoints[0].send(1, np.ones(8))
    assert world.in_flight_p2p > 0
    world.endpoints[1].recv(source=0)
    engine.run()
    assert world.in_flight_p2p == 0


def test_drain_sink_intercepts_arrivals():
    engine, world = make_world()
    sunk = []
    world.endpoints[1].drain_sink = sunk.append
    world.endpoints[0].send(1, np.array([3.0]), tag=9)
    engine.run()
    assert len(sunk) == 1
    assert sunk[0].tag == 9
    assert world.endpoints[1].unexpected_count == 0


def test_drain_sink_pulls_rendezvous_data():
    engine, world = make_world(mpi="mpich")
    send = world.endpoints[0].send(1, np.zeros(1 << 20, dtype=np.uint8))
    engine.run()
    assert not send.done
    sunk = []
    world.endpoints[1].drain_sink = sunk.append
    harvested = world.endpoints[1].harvest_unexpected()
    engine.run()
    assert harvested == []           # the RTS stub is not a data message
    assert len(sunk) == 1            # ...but its payload got pulled
    assert sunk[0].size == 1 << 20
    assert send.done                 # and the sender completed


def test_harvest_unexpected_returns_queued_eager():
    engine, world = make_world()
    world.endpoints[0].send(1, np.array([1.0]), tag=4)
    engine.run()
    got = world.endpoints[1].harvest_unexpected()
    assert len(got) == 1 and got[0].tag == 4
    assert world.endpoints[1].unexpected_count == 0


def test_p2p_statistics():
    engine, world = make_world()
    world.endpoints[0].send(1, np.zeros(128, dtype=np.uint8), size=128)
    world.endpoints[1].recv(source=0)
    engine.run()
    assert world.p2p_messages == 1
    assert world.p2p_bytes == 128
