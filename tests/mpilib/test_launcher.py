"""The mpiexec-equivalent launcher."""

import pytest

from repro.hardware.cluster import make_cluster
from repro.mpilib import launch
from repro.mpilib.impls import get_implementation
from repro.mpilib.launcher import init_time
from repro.simtime import Engine


@pytest.fixture
def cluster():
    return make_cluster("l", 4, interconnect="aries", default_mpi="craympich")


def test_default_mpi_is_cluster_recommendation(cluster):
    world = launch(Engine(), cluster, 4, ranks_per_node=1)
    assert world.impl.name == "craympich"


def test_explicit_mpi_override(cluster):
    world = launch(Engine(), cluster, 4, ranks_per_node=1, mpi="openmpi")
    assert world.impl.name == "openmpi"


def test_unknown_mpi_raises(cluster):
    with pytest.raises(ValueError, match="unknown MPI implementation"):
        launch(Engine(), cluster, 4, ranks_per_node=1, mpi="lam")


def test_each_launch_gets_fresh_impl_instance(cluster):
    w1 = launch(Engine(), cluster, 2, ranks_per_node=1)
    w2 = launch(Engine(), cluster, 2, ranks_per_node=1)
    assert w1.impl is not w2.impl
    # fresh handle counters: same values minted in the same order
    assert w1.endpoints[0].comm_world.handle == w2.endpoints[0].comm_world.handle


def test_explicit_placement(cluster):
    world = launch(Engine(), cluster, 4, placement=[3, 3, 0, 0])
    assert world.placement == [3, 3, 0, 0]
    assert world.node_of(0) == 3


def test_placement_length_mismatch(cluster):
    with pytest.raises(ValueError, match="placement covers"):
        launch(Engine(), cluster, 4, placement=[0, 1])


def test_init_time_grows_logarithmically():
    impl = get_implementation("mpich")
    t2 = init_time(impl, 2)
    t2048 = init_time(impl, 2048)
    assert t2 < t2048 < 3 * t2


def test_world_size_and_endpoints(cluster):
    world = launch(Engine(), cluster, 8, ranks_per_node=2)
    assert world.size == 8
    assert len(world.endpoints) == 8
    assert [ep.rank for ep in world.endpoints] == list(range(8))
    assert world.fabric.name == "aries"
