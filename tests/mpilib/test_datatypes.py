"""MPI datatypes: basic, derived, wire sizes, record-replay rebuild."""

import numpy as np
import pytest

from repro.mpilib import BYTE, DOUBLE, FLOAT, INT, LONG, contiguous, struct, vector
from repro.mpilib.datatypes import rebuild, wire_size


def test_basic_extents_match_c():
    assert BYTE.extent == 1
    assert INT.extent == 4
    assert LONG.extent == 8
    assert FLOAT.extent == 4
    assert DOUBLE.extent == 8


def test_basic_types_are_not_derived():
    assert not DOUBLE.is_derived
    assert DOUBLE.numpy() == np.dtype("f8")


def test_nbytes():
    assert DOUBLE.nbytes(100) == 800


def test_contiguous():
    t = contiguous(10, DOUBLE)
    assert t.extent == 80
    assert t.is_derived
    with pytest.raises(ValueError):
        contiguous(0, DOUBLE)


def test_derived_has_no_numpy_mapping():
    with pytest.raises(TypeError):
        contiguous(2, INT).numpy()


def test_vector_extent_spans_strides():
    # 3 blocks of 2 ints strided 5 apart: extent covers (2*5+2)*4 bytes
    t = vector(3, 2, 5, INT)
    assert t.extent == (2 * 5 + 2) * 4
    with pytest.raises(ValueError):
        vector(3, 4, 2, INT)  # stride < blocklength


def test_vector_wire_size_skips_holes():
    t = vector(3, 2, 5, INT)
    assert wire_size(t, 1) == 3 * 2 * 4
    assert wire_size(t, 2) == 2 * 3 * 2 * 4


def test_struct_extent_packs_fields():
    t = struct([(2, INT), (1, DOUBLE)])
    assert t.extent == 2 * 4 + 8
    with pytest.raises(ValueError):
        struct([])


def test_wire_size_dense_default():
    assert wire_size(DOUBLE, 10) == 80
    assert wire_size(contiguous(4, INT), 2) == 32


@pytest.mark.parametrize("make", [
    lambda: contiguous(7, DOUBLE),
    lambda: vector(4, 2, 3, INT),
    lambda: struct([(1, INT), (3, FLOAT)]),
])
def test_rebuild_round_trips(make):
    original = make()
    clone = rebuild(original.recipe)
    assert clone == original


def test_rebuild_unknown_recipe():
    with pytest.raises(ValueError):
        rebuild(("mystery", 1))
