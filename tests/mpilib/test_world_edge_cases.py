"""Edge cases of the p2p engine and the wire model."""

import numpy as np
import pytest

from repro.hardware.cluster import make_cluster
from repro.mpilib import MpiError, launch
from repro.simtime import Engine


def make_world(n_ranks=2, n_nodes=2, mpi="mpich", interconnect="tcp"):
    engine = Engine()
    cluster = make_cluster("e", n_nodes, interconnect=interconnect)
    world = launch(engine, cluster, n_ranks,
                   ranks_per_node=-(-n_ranks // n_nodes), mpi=mpi)
    return engine, world


def test_wire_serialization_back_to_back():
    """Two large messages on one channel arrive at least one wire-occupancy
    apart (the link is a serial resource)."""
    engine, world = make_world(mpi="intelmpi")  # 32 KiB eager threshold
    size = 16 << 10
    arrivals = []
    for _ in range(2):
        world.endpoints[0].send(1, np.zeros(4), size=size)
    for _ in range(2):
        r = world.endpoints[1].recv(source=0)
        r.on_done(lambda v: arrivals.append(engine.now))
    engine.run()
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] >= size / world.fabric.beta * 0.99


def test_many_unexpected_messages_matched_in_order():
    engine, world = make_world()
    for i in range(20):
        world.endpoints[0].send(1, np.array([float(i)]), tag=4)
    engine.run()
    values = []
    for _ in range(20):
        r = world.endpoints[1].recv(source=0, tag=4)
        r.on_done(lambda v: values.append(float(v[0][0])))
    engine.run()
    assert values == [float(i) for i in range(20)]


def test_interleaved_tags_from_same_source():
    engine, world = make_world()
    for i in range(6):
        world.endpoints[0].send(1, np.array([float(i)]), tag=i % 2)
    odd = [world.endpoints[1].recv(source=0, tag=1) for _ in range(3)]
    even = [world.endpoints[1].recv(source=0, tag=0) for _ in range(3)]
    engine.run()
    assert [float(r.value[0][0]) for r in odd] == [1.0, 3.0, 5.0]
    assert [float(r.value[0][0]) for r in even] == [0.0, 2.0, 4.0]


def test_rendezvous_multiple_pending_same_pair():
    """Several rendezvous sends queued to one receiver complete in order."""
    engine, world = make_world(mpi="mpich")
    sends = [world.endpoints[0].send(1, np.array([float(i)]), size=1 << 20)
             for i in range(3)]
    engine.run()
    assert not any(s.done for s in sends)
    got = []
    for _ in range(3):
        r = world.endpoints[1].recv(source=0)
        r.on_done(lambda v: got.append(float(v[0][0])))
    engine.run()
    assert got == [0.0, 1.0, 2.0]
    assert all(s.done for s in sends)


def test_recv_any_source_multiple_senders():
    engine, world = make_world(n_ranks=4, n_nodes=4)
    for src in (1, 2, 3):
        world.endpoints[src].send(0, np.array([float(src)]), tag=7)
    results = [world.endpoints[0].recv(tag=7) for _ in range(3)]
    engine.run()
    sources = sorted(r.value[1].source for r in results)
    assert sources == [1, 2, 3]


def test_send_to_self_rendezvous():
    engine, world = make_world(n_ranks=1, n_nodes=1)
    send = world.endpoints[0].send(0, np.zeros(4), size=1 << 20)
    recv = world.endpoints[0].recv(source=0)
    engine.run()
    assert send.done and recv.done


def test_mixed_eager_rendezvous_ordering_same_channel():
    """A small eager message sent after a big rendezvous one must not be
    matched first when both match the same recv (non-overtaking)."""
    engine, world = make_world(mpi="mpich")
    world.endpoints[0].send(1, np.array([1.0]), tag=0, size=1 << 20)  # rdv
    world.endpoints[0].send(1, np.array([2.0]), tag=0, size=8)        # eager
    r1 = world.endpoints[1].recv(source=0, tag=0)
    r2 = world.endpoints[1].recv(source=0, tag=0)
    engine.run()
    assert float(r1.value[0][0]) == 1.0
    assert float(r2.value[0][0]) == 2.0


def test_communicator_isolation_of_matching():
    """Messages on a duplicated communicator never match world receives."""
    engine, world = make_world(n_ranks=2, n_nodes=2)
    dones = [ep.comm_dup() for ep in world.endpoints]
    engine.run()
    dup0, dup1 = dones[0].value, dones[1].value
    world.endpoints[0].send(1, np.array([9.0]), tag=3, comm=dup0)
    world_recv = world.endpoints[1].recv(source=0, tag=3)  # COMM_WORLD
    engine.run()
    assert not world_recv.done
    dup_recv = world.endpoints[1].recv(source=0, tag=3, comm=dup1)
    engine.run()
    assert dup_recv.done


def test_validate_rank_on_derived_comm():
    engine, world = make_world(n_ranks=4, n_nodes=4)
    dones = [ep.comm_split(color=ep.rank % 2, key=ep.rank)
             for ep in world.endpoints]
    engine.run()
    sub = dones[0].value  # ranks {0, 2}, size 2
    with pytest.raises(MpiError):
        world.endpoints[0].send(2, np.ones(1), comm=sub)
