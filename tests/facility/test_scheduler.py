"""Scheduler policies: admission order, backfill holes, preemption plans."""

from repro.facility.scheduler import (
    BackfillScheduler,
    FifoScheduler,
    make_scheduler,
    queue_order,
)
from repro.facility.spec import JobRecord, JobSpec


def rec(job_id, n_nodes, priority=0, submit=0.0):
    return JobRecord(spec=JobSpec(
        job_id=job_id, app="gromacs", n_ranks=max(n_nodes, 2),
        n_nodes=n_nodes, n_steps=2, priority=priority, submit_time=submit,
    ))


def ids(records):
    return [r.spec.job_id for r in records]


class TestQueueOrder:
    def test_priority_dominates_then_submission_order(self):
        q = [rec(0, 1, priority=0, submit=0.0),
             rec(1, 1, priority=1, submit=5.0),
             rec(2, 1, priority=0, submit=1.0)]
        assert ids(queue_order(q)) == [1, 0, 2]

    def test_job_id_breaks_ties(self):
        q = [rec(3, 1), rec(1, 1), rec(2, 1)]
        assert ids(queue_order(q)) == [1, 2, 3]


class TestFifo:
    def test_admits_in_order_until_full(self):
        q = [rec(0, 2), rec(1, 2), rec(2, 1)]
        assert ids(FifoScheduler().select(q, free_nodes=4)) == [0, 1]

    def test_head_of_line_blocks(self):
        """A too-wide head stops everything behind it, even jobs that fit."""
        q = [rec(0, 8), rec(1, 1), rec(2, 1)]
        assert FifoScheduler().select(q, free_nodes=4) == []


class TestBackfill:
    def test_skips_blocked_head_and_fills_holes(self):
        q = [rec(0, 8), rec(1, 3), rec(2, 2), rec(3, 1)]
        # head needs 8 > 4 free; backfill takes 3 + 1
        assert ids(BackfillScheduler().select(q, free_nodes=4)) == [1, 3]

    def test_same_result_as_fifo_when_everything_fits(self):
        q = [rec(0, 1), rec(1, 2), rec(2, 1)]
        assert (ids(BackfillScheduler().select(q, 8))
                == ids(FifoScheduler().select(q, 8)))


class TestPreemptionPlan:
    def plan(self, policy, pending, running, free=0, incoming=0):
        return policy.preemption_plan(pending, running, free, incoming)

    def test_picks_cheapest_lower_priority_victims(self):
        policy = FifoScheduler()
        head = rec(9, 3, priority=1)
        old = rec(0, 2, priority=0)
        young = rec(1, 2, priority=0)
        plan = self.plan(policy, [head], [(old, 2, 1.0), (young, 2, 5.0)])
        assert plan is not None
        beneficiary, victims = plan
        assert beneficiary is head
        # most recently started first (least sunk work), then the older one
        assert ids(victims) == [1, 0]

    def test_no_plan_when_head_fits_or_capacity_incoming(self):
        policy = BackfillScheduler()
        head = rec(9, 2, priority=1)
        victim = rec(0, 2, priority=0)
        assert self.plan(policy, [head], [(victim, 2, 0.0)], free=2) is None
        assert self.plan(policy, [head], [(victim, 2, 0.0)], incoming=2) is None

    def test_never_preempts_equal_or_higher_priority(self):
        policy = FifoScheduler()
        head = rec(9, 2, priority=1)
        peer = rec(0, 2, priority=1)
        boss = rec(1, 2, priority=2)
        assert self.plan(policy, [head], [(peer, 2, 0.0), (boss, 2, 0.0)]) is None

    def test_gives_up_when_eviction_cannot_free_enough(self):
        policy = FifoScheduler()
        head = rec(9, 6, priority=1)
        victim = rec(0, 2, priority=0)
        assert self.plan(policy, [head], [(victim, 2, 0.0)], free=1) is None

    def test_highest_priority_pending_is_the_beneficiary(self):
        policy = FifoScheduler()
        lo = rec(5, 1, priority=0, submit=0.0)
        hi = rec(9, 2, priority=1, submit=9.0)
        victim = rec(0, 2, priority=0)
        plan = self.plan(policy, [lo, hi], [(victim, 2, 0.0)])
        assert plan is not None and plan[0] is hi


def test_make_scheduler_names():
    assert make_scheduler("fifo").name == "fifo"
    assert make_scheduler("backfill").name == "backfill"
    try:
        make_scheduler("srtf")
    except ValueError as e:
        assert "srtf" in str(e)
    else:
        raise AssertionError("unknown policy must raise")
