"""StorageArbiter: bandwidth division across drain windows + traffic ledger."""

from repro.facility.sharedfs import StorageArbiter
from repro.hardware.storage import LustreModel
from repro.simtime import Engine

GB = 10**9


def make_storage(engine):
    """A model where the aggregate ceiling always binds (exact arithmetic)."""
    storage = LustreModel(
        per_node_bandwidth=1.0 * GB,
        aggregate_bandwidth=1.0 * GB,
        per_file_overhead=0.0,
    )
    storage.arbiter = StorageArbiter(engine)
    return storage


def test_single_burst_unchanged_by_arbiter():
    """One tenant draining alone sees the full backend bandwidth."""
    engine = Engine()
    shared = make_storage(engine)
    solo = LustreModel(per_node_bandwidth=1.0 * GB,
                       aggregate_bandwidth=1.0 * GB, per_file_overhead=0.0)
    sizes, nodes = [GB, GB], [0, 1]
    assert shared.burst(sizes, nodes).max_time == solo.burst(sizes, nodes).max_time
    assert shared.arbiter.peak_streams == 1


def test_overlapping_bursts_halve_backend_bandwidth():
    engine = Engine()
    storage = make_storage(engine)
    sizes, nodes = [GB, GB], [0, 1]
    # 2 GB over a 1 GB/s ceiling, split evenly: 2 s
    first = storage.burst(sizes, nodes)
    assert first.max_time == 2.0
    # second burst admitted while the first window [0, 2) is open -> the
    # backend is halved, the same burst takes twice as long
    second = storage.burst([GB, GB], [2, 3])
    assert second.max_time == 4.0
    assert storage.arbiter.peak_streams == 2
    assert storage.arbiter.active_streams == 2


def test_windows_expire_with_virtual_time():
    engine = Engine()
    storage = make_storage(engine)
    storage.burst([GB, GB], [0, 1])  # window [0, 2)
    engine.call_at(10.0, lambda: None, label="advance")
    engine.run()
    assert storage.arbiter.active_streams == 0
    # a fresh burst after the storm is back to full bandwidth
    assert storage.burst([GB, GB], [0, 1]).max_time == 2.0
    assert storage.arbiter.peak_streams == 1  # the bursts never overlapped


def test_traffic_ledger_separates_reads_and_writes():
    engine = Engine()
    storage = make_storage(engine)
    storage.burst([GB], [0])
    storage.burst([2 * GB], [1], read=True)
    arb = storage.arbiter
    assert arb.bytes_written == GB
    assert arb.bytes_read == 2 * GB
    assert arb.total_bytes == 3 * GB
    assert arb.write_bursts == 1 and arb.read_bursts == 1
    m = engine.metrics
    assert m.counter("facility.storage.write_bytes").value == GB
    assert m.counter("facility.storage.read_bytes").value == 2 * GB


def test_per_node_injection_bandwidth_unaffected():
    """Tenants never share a node: contention only shrinks the aggregate."""
    engine = Engine()
    storage = LustreModel(per_node_bandwidth=1.0 * GB,
                          aggregate_bandwidth=100.0 * GB,
                          per_file_overhead=0.0)
    storage.arbiter = StorageArbiter(engine)
    storage.burst([GB], [0])  # opens a window
    # aggregate/2 = 50 GB/s still far above the 1 GB/s NIC: same 1 s
    assert storage.burst([GB], [1]).max_time == 1.0
