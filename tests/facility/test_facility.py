"""End-to-end facility runs: preemption round trips, crashes, determinism.

The load-bearing oracle is :func:`repro.conformance.oracles.state_fingerprint`:
a job that was checkpoint-preempted (or crash-recovered) and resumed must
finish with *exactly* the state of an unpreempted solo run — that is the
paper's transparency claim applied at the facility level.
"""

import pytest

from repro.apps.base import get_app
from repro.conformance.oracles import state_fingerprint
from repro.facility.facility import Facility, FacilityError
from repro.facility.spec import JobSpec, JobState
from repro.facility.sweep import facility_sweep
from repro.facility.workload import generate_jobs
from repro.faults.models import NodeCrash, ScriptedFaults
from repro.hardware.cluster import make_cluster
from repro.mana.job import launch_mana
from repro.mana.split_process import fixed_upper_bytes
from repro.simtime import Engine
from repro.simtime.engine import SimulationError

MB = 1 << 20


def _cluster(name, n_nodes):
    return make_cluster(name, n_nodes, cores_per_node=16,
                        interconnect="aries", default_mpi="craympich")


def _solo_fingerprint(spec: JobSpec) -> str:
    """Golden: the same app/config run alone, never preempted."""
    cluster = _cluster("solo", spec.n_nodes)
    engine = Engine()
    app = get_app(spec.app)
    overrides = {"n_steps": spec.n_steps}
    if spec.mem_bytes is not None:
        overrides["mem_bytes"] = spec.mem_bytes
    cfg = app.default_config.scaled(**overrides)
    fixed = fixed_upper_bytes()

    def app_data(rank):
        return max(MB, app.memory_bytes(cfg, rank, spec.n_ranks) - fixed)

    job = launch_mana(cluster, app.build(cfg), spec.n_ranks,
                      ranks_per_node=None, engine=engine,
                      app_mem_bytes=app_data, seed=99)
    job.start()
    engine.run()
    return state_fingerprint(job.states)


LONG_JOB = JobSpec(job_id=0, app="gromacs", n_ranks=4, n_nodes=2,
                   n_steps=30, mem_bytes=64 * MB)
URGENT_JOB = JobSpec(job_id=1, app="gromacs", n_ranks=2, n_nodes=2,
                     n_steps=5, priority=1, submit_time=0.004,
                     mem_bytes=64 * MB)


def test_preempt_checkpoint_requeue_preserves_fingerprint():
    """SIGTERM-style preemption is loss-free: the resumed job's final state
    equals the unpreempted golden run, bit for bit."""
    fac = Facility(_cluster("preempt", 2), scheduler="fifo", seed=5)
    lo, hi = fac.submit_all([LONG_JOB, URGENT_JOB])
    rep = fac.run()
    assert rep.completed_jobs == 2
    assert lo.preemptions >= 1 and lo.restarts >= 1 and lo.checkpoints >= 1
    assert hi.preemptions == 0
    assert lo.fingerprint == _solo_fingerprint(LONG_JOB)
    assert lo.node_seconds_lost > 0  # the preemption was not free
    assert rep.ckpt_traffic_bytes > 0


def test_crash_recovery_from_periodic_checkpoint():
    """A node crash requeues the tenant; it restarts from the last periodic
    image and still matches the golden fingerprint."""
    wide = JobSpec(job_id=0, app="gromacs", n_ranks=6, n_nodes=3,
                   n_steps=30, mem_bytes=64 * MB)
    # the first periodic image lands around t=0.31 (the 64 MB x 6 rank
    # write dominates, not the 0.004 arming interval); crash well after it
    faults = ScriptedFaults(faults=(NodeCrash(time=0.6, nodes=(0,)),))
    fac = Facility(_cluster("crashy", 4), scheduler="fifo", seed=5,
                   checkpoint_interval=0.004, faults=faults)
    rec = fac.submit(wide)
    rep = fac.run()
    assert rec.state is JobState.COMPLETED
    assert rec.crashes == 1 and rec.restarts >= 1 and rec.checkpoints >= 1
    assert rec.fingerprint == _solo_fingerprint(wide)
    assert rep.crashes == 1


def test_crash_during_preemption_falls_back_to_saved_checkpoint():
    """A crash aborting the in-flight preemption checkpoint must not lose
    the job: it requeues from the last *saved* image and completes clean."""
    lo = JobSpec(job_id=0, app="gromacs", n_ranks=6, n_nodes=3,
                 n_steps=40, mem_bytes=64 * MB)
    hi = JobSpec(job_id=1, app="gromacs", n_ranks=2, n_nodes=2,
                 n_steps=4, priority=1, submit_time=0.6, mem_bytes=64 * MB)
    fac = Facility(_cluster("race", 4), scheduler="fifo", seed=5,
                   checkpoint_interval=0.004)
    rec_lo, rec_hi = fac.submit_all([lo, hi])
    engine = fac.engine

    # step the engine until the low job is mid-preemption with a coordinated
    # checkpoint actually in flight, then crash one of its nodes
    crashed_at = None
    while engine.pending_events:
        try:
            engine.run(max_events=1)  # single-step; the budget error is the
        except SimulationError:       # "more events remain" signal
            pass
        tenant = fac._tenants.get(0)
        if (rec_lo.state is JobState.PREEMPTING and tenant is not None
                and tenant.ckpt_busy):
            assert rec_lo.ckpt_saved_at is not None, \
                "scenario needs a periodic image saved before the crash"
            saved_at = rec_lo.ckpt_saved_at
            fac.apply_fault(NodeCrash(time=engine.now, nodes=(tenant.nodes[0],)))
            crashed_at = engine.now
            break
    assert crashed_at is not None, "preemption checkpoint never went in flight"
    assert saved_at < crashed_at

    engine.run()
    assert rec_lo.state is JobState.COMPLETED
    assert rec_hi.state is JobState.COMPLETED
    assert rec_lo.crashes == 1
    # recovery reused the image saved *before* the aborted preemption ckpt
    assert rec_lo.fingerprint == _solo_fingerprint(lo)


@pytest.mark.parametrize("policy", ["fifo", "backfill"])
def test_queue_flush_hundred_plus_jobs(policy):
    """The acceptance scenario: >= 100 queued jobs drain to completion."""
    specs = generate_jobs("tiny", 120, seed=11)
    fac = Facility(_cluster("flood", 8), scheduler=policy, seed=11)
    fac.submit_all(specs)
    rep = fac.run()
    assert rep.completed_jobs == 120 and rep.failed_jobs == 0
    assert rep.makespan > 0
    assert 0.0 < rep.utilization <= 1.0


def test_facility_run_is_deterministic():
    """Same seed + workload -> byte-identical report dict, twice over."""
    def one_run():
        fac = Facility(_cluster("det", 4), scheduler="backfill", seed=21,
                       checkpoint_interval=0.01)
        fac.submit_all(generate_jobs("mixed", 20, seed=21))
        return fac.run().as_dict()

    assert one_run() == one_run()


def test_priority_mix_forces_preemptions_under_backfill():
    specs = generate_jobs("priority", 40, seed=7)
    fac = Facility(_cluster("prio", 8), scheduler="backfill", seed=7)
    fac.submit_all(specs)
    rep = fac.run()
    assert rep.completed_jobs == 40
    assert rep.preemptions >= 1
    assert rep.peak_drain_streams >= 2  # checkpoint storms overlapped
    assert rep.ckpt_traffic_bytes > 0
    # every preempted-and-resumed job still matches its solo golden run
    preempted = [r for r in rep.records if r.preemptions > 0]
    assert preempted
    assert all(r.fingerprint == _solo_fingerprint(r.spec) for r in preempted[:2])


def test_report_carries_headline_metrics():
    fac = Facility(_cluster("rep", 2), scheduler="fifo", seed=0)
    fac.submit_all(generate_jobs("tiny", 8, seed=0))
    rep = fac.run()
    d = rep.as_dict()
    for key in ("policy", "makespan_s", "node_hours_lost", "utilization",
                "mean_queue_wait_s", "ckpt_bytes_written", "ckpt_bytes_read"):
        assert key in d
    text = rep.summary()
    assert "node-hours lost" in text and "queue wait" in text


def test_unschedulable_job_fails_cleanly():
    """A job wider than the machine fails instead of wedging the queue."""
    fac = Facility(_cluster("small", 2), scheduler="fifo", seed=0)
    rec = fac.submit(JobSpec(job_id=0, app="gromacs", n_ranks=8, n_nodes=4,
                             n_steps=2))
    rep = fac.run()
    assert rec.state is JobState.FAILED
    assert "nodes" in rec.failure_reason
    assert rep.failed_jobs == 1


def test_duplicate_job_id_rejected():
    fac = Facility(_cluster("dup", 2), scheduler="fifo", seed=0)
    fac.submit(JobSpec(job_id=0, app="gromacs", n_ranks=2, n_nodes=1, n_steps=2))
    with pytest.raises(FacilityError):
        fac.submit(JobSpec(job_id=0, app="hpcg", n_ranks=2, n_nodes=1, n_steps=2))


def test_sweep_parallelism_is_invisible():
    """-j 1 and -j 2 sweep runs return byte-identical tables."""
    kwargs = dict(policies=("fifo", "backfill"), mixes=("tiny",),
                  n_jobs=8, n_nodes=4, seed=2)
    serial = facility_sweep(jobs=1, **kwargs)
    threaded = facility_sweep(jobs=2, **kwargs)
    assert serial.rows == threaded.rows
    assert serial.columns == threaded.columns


def test_preempt_requeue_preserves_fingerprint_under_topo_protocol():
    """The alg2 preemption round trip, re-run under ``protocol=topo``: the
    induced checkpoint uses the topological-sort engine, and the resumed
    job must still finish bit-identical to its unpreempted solo golden
    (which is protocol-independent — it never checkpoints)."""
    fac = Facility(_cluster("preempt-topo", 2), scheduler="fifo", seed=5,
                   protocol="topo")
    lo, hi = fac.submit_all([LONG_JOB, URGENT_JOB])
    rep = fac.run()
    assert rep.completed_jobs == 2
    assert lo.preemptions >= 1 and lo.restarts >= 1 and lo.checkpoints >= 1
    assert hi.preemptions == 0
    assert lo.fingerprint == _solo_fingerprint(LONG_JOB)
    assert rep.ckpt_traffic_bytes > 0
