"""Workload generators: determinism, app rank constraints, mix shapes."""

import pytest

from repro.apps.base import get_app
from repro.facility.workload import MIXES, generate_jobs


def test_same_triple_same_specs():
    """(mix, n_jobs, seed) fully determines the workload."""
    for mix in MIXES:
        a = generate_jobs(mix, 25, seed=4)
        b = generate_jobs(mix, 25, seed=4)
        assert a == b


def test_seed_changes_workload():
    assert generate_jobs("mixed", 25, seed=1) != generate_jobs("mixed", 25, seed=2)


def test_tiny_mix_is_a_queue_flush():
    specs = generate_jobs("tiny", 30, seed=0)
    assert all(s.submit_time == 0.0 for s in specs)
    assert all(s.n_nodes == 1 for s in specs)
    assert all(s.priority == 0 for s in specs)


def test_mixed_arrivals_are_monotone():
    specs = generate_jobs("mixed", 40, seed=3)
    submits = [s.submit_time for s in specs]
    assert submits == sorted(submits)
    assert submits[-1] > 0.0


def test_priority_mix_contains_high_priority_wide_jobs():
    specs = generate_jobs("priority", 40, seed=7, max_nodes=4)
    urgent = [s for s in specs if s.priority > 0]
    assert urgent, "priority mix must produce high-priority jobs"
    assert all(s.n_nodes == 4 for s in urgent)


def test_lulesh_jobs_respect_cubic_valid_ranks():
    """The non-power-of-two app gets cube rank counts covering its nodes."""
    specs = [s for mix in MIXES
             for s in generate_jobs(mix, 60, seed=9) if s.app == "lulesh"]
    assert specs, "default app set must include lulesh"
    lulesh = get_app("lulesh")
    for s in specs:
        assert s.n_ranks == lulesh.valid_ranks(s.n_ranks)  # a fixed point
        side = round(s.n_ranks ** (1 / 3))
        assert side**3 == s.n_ranks
        assert s.n_ranks >= s.n_nodes


def test_mem_cap_is_applied():
    capped = generate_jobs("tiny", 10, seed=0, mem_cap_mb=8)
    assert all(s.mem_bytes == 8 * (1 << 20) for s in capped)
    uncapped = generate_jobs("tiny", 10, seed=0, mem_cap_mb=None)
    assert all(s.mem_bytes is None for s in uncapped)


def test_bad_arguments_raise():
    with pytest.raises(ValueError):
        generate_jobs("nope", 5)
    with pytest.raises(ValueError):
        generate_jobs("tiny", 0)
