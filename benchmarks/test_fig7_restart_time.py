"""Figure 7: restart time across node counts."""

from benchmarks.conftest import run_once
from repro.harness import fig7_restart_time


def test_fig7_restart_time(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, fig7_restart_time, scale=scale, jobs=jobs)
    record_table(table, "fig7_restart_time")
    for row in table.rows:
        app, nodes, ranks, total, read, replay = row
        assert read > 0.5 * total, "read-dominated (paper §3.4)"
        assert replay < 0.1 * total, "opaque-id recreation <10% of restart"
    by_app = {}
    for row in table.rows:
        by_app.setdefault(row[0], []).append(row[3])
    # restart time tracks image volume: HPCG slowest of the five
    assert min(by_app["hpcg"]) >= max(by_app["gromacs"])
