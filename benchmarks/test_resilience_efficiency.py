"""Resilience: efficiency vs. checkpoint interval under node failures.

Not a figure of the paper, but the experiment its checkpointing exists
for: sweep the checkpoint interval around the Young/Daly period under
exponential node failures and confirm the efficiency curve peaks near
the optimum — too-frequent checkpointing pays protocol overhead,
too-rare pays lost work.
"""

from benchmarks.conftest import run_once
from repro.harness import resilience_efficiency_sweep


def test_resilience_efficiency(benchmark, record_table, jobs):
    table = run_once(benchmark, resilience_efficiency_sweep, jobs=jobs)
    record_table(table, "resilience_efficiency")
    eff = dict(zip(table.column("interval/YD"), table.column("efficiency")))
    near_optimal = max(eff[0.5], eff[1.0], eff[2.0])
    # the Young/Daly region beats both extremes of the sweep
    assert near_optimal > eff[0.25]
    assert near_optimal > eff[4.0]
    # and the whole curve reflects real progress, not thrashing
    assert all(0.0 < e <= 1.0 for e in eff.values())
