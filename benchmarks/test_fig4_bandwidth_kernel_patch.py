"""Figure 4: p2p bandwidth — native vs MANA, unpatched vs patched kernel."""

from benchmarks.conftest import run_once
from repro.harness import fig4_bandwidth_kernel_patch


def test_fig4_bandwidth_kernel_patch(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, fig4_bandwidth_kernel_patch, scale=scale,
                     jobs=jobs)
    record_table(table, "fig4_bandwidth_kernel_patch")
    small = [r for r in table.rows if r[0] <= 64 << 10]
    large = [r for r in table.rows if r[0] >= 4 << 20]
    assert small and large
    for size, native, mana_u, mana_p in small:
        assert mana_u < 0.97 * native, "unpatched gap below ~1MB"
        assert mana_p > mana_u, "the FSGSBASE patch recovers bandwidth"
    for size, native, mana_u, mana_p in large:
        assert mana_u > 0.97 * native, "gap vanishes at large sizes"
