"""Figure 6: checkpoint time and per-rank image sizes."""

from benchmarks.conftest import run_once
from repro.harness import fig6_checkpoint_time


def test_fig6_checkpoint_time(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, fig6_checkpoint_time, scale=scale, jobs=jobs)
    record_table(table, "fig6_checkpoint_time")
    by_app = {}
    for row in table.rows:
        by_app.setdefault(row[0], []).append(row)
    # per-rank image sizes in the paper's bands
    for row in by_app["gromacs"]:
        assert 85 <= row[4] <= 100
    for row in by_app["hpcg"]:
        assert 1900 <= row[4] <= 2200
    for row in by_app["lulesh"]:
        assert 60 <= row[4] <= 300
    # checkpoint time tracks bytes written: HPCG ≫ GROMACS
    assert min(r[3] for r in by_app["hpcg"]) > \
        4 * max(r[3] for r in by_app["gromacs"])
