"""Figure 3: multi-node runtime overhead under MANA, five apps."""

from benchmarks.conftest import run_once
from repro.harness import fig3_multi_node_overhead


def test_fig3_multi_node_overhead(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, fig3_multi_node_overhead, scale=scale,
                     jobs=jobs)
    record_table(table, "fig3_multi_node_overhead")
    # paper: typically <2%, worst 4.5% (GROMACS at 512 ranks)
    for pct in table.column("normalized_pct"):
        assert pct > 94.0
    by_app = {}
    for row in table.rows:
        by_app.setdefault(row[0], []).append(row[5])
    assert min(by_app["gromacs"]) <= min(by_app["hpcg"]), \
        "GROMACS shows the most overhead, HPCG the least"
