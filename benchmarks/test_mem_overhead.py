"""§3.2.2: memory overhead of the split process."""

from benchmarks.conftest import run_once
from repro.harness import memory_overhead_analysis


def test_mem_overhead(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, memory_overhead_analysis, scale=scale,
                     jobs=jobs)
    record_table(table, "mem_overhead")
    rows = {r[0]: r for r in table.rows}
    assert rows[2][1] == 26.0, "26 MB duplicated MPI text (paper's figure)"
    assert abs(rows[2][2] - 2.0) < 0.7, "~2 MB driver shmem at 2 nodes"
    assert abs(rows[64][2] - 40.0) < 2.0, "~40 MB driver shmem at 64 nodes"
