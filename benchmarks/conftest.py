"""Benchmark plumbing.

Every benchmark regenerates one figure of the paper through the harness,
records the run time through pytest-benchmark, prints the reproduced table,
and archives it under ``benchmarks/results/``.

Scale: set ``REPRO_BENCH_SCALE=paper`` for the full 2–64-node sweeps
(minutes); the default ``small`` keeps each figure to seconds.

Parallelism: set ``REPRO_BENCH_JOBS=N`` to fan each figure's sweep cells
out over N worker processes (``repro.harness.parallel``); the default 1
runs in-process.  The emitted tables are identical either way — only the
wall-clock changes.
"""

import os
import pathlib

import pytest

from repro.harness.results import Table, render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture
def scale() -> str:
    return bench_scale()


def bench_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture
def jobs() -> int:
    return bench_jobs()


@pytest.fixture
def record_table(request):
    """Print a reproduced figure and archive it to benchmarks/results/."""

    def _record(table: Table, name: str = None) -> Table:
        text = render_table(table)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        fname = name or request.node.name.replace("[", "_").replace("]", "")
        (RESULTS_DIR / f"{fname}.txt").write_text(text + "\n")
        return table

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
