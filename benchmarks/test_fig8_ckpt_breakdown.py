"""Figure 8: checkpoint-time breakdown (write / drain / protocol comm)."""

from benchmarks.conftest import run_once
from repro.harness import fig8_ckpt_breakdown


def test_fig8_ckpt_breakdown(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, fig8_ckpt_breakdown, scale=scale, jobs=jobs)
    record_table(table, "fig8_ckpt_breakdown")
    for row in table.rows:
        app, ranks, write_pct, drain_pct, comm_pct, drain_s, comm_s = row
        assert write_pct > 50.0, f"{app}: write time dominates"
        assert drain_s < 0.7, f"{app}: drain under the paper's 0.7 s"
        assert comm_s < 1.6, f"{app}: 2-phase comm under the paper's 1.6 s"
