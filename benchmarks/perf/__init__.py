"""Wall-clock performance microbenchmarks (the ``BENCH_perf.json`` suite).

Unlike the figure benchmarks one directory up — which reproduce the
paper's *simulated* results — these measure how fast the simulator itself
runs on the host: event throughput, message rates, checkpoint/restart
cycle time, end-to-end sweep cells, and the sequential-vs-parallel sweep
speedup.  The suite logic lives in :mod:`repro.harness.perfbench` so the
``repro bench`` CLI can run it without importing the test tree; the tests
here exercise the same entry points and pin the output schema.
"""
