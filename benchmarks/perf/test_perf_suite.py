"""The perf suite produces sane, schema-valid measurements."""

import json

import pytest

from benchmarks.conftest import run_once
from repro.harness import perfbench


@pytest.fixture(scope="module")
def doc():
    return perfbench.run_suite(quick=True)


def test_suite_is_schema_valid(doc):
    perfbench.validate_bench_doc(doc)


def test_suite_round_trips_through_json(doc, tmp_path):
    path = tmp_path / "BENCH_perf.json"
    perfbench.write_bench_doc(doc, str(path))
    loaded = perfbench.load_bench_doc(str(path))
    assert loaded == json.loads(path.read_text())
    assert set(perfbench.CORE_METRICS) <= set(loaded["metrics"])


def test_metric_values_are_plausible(doc):
    m = doc["metrics"]
    # a laptop-class host clears 100k events/s with huge margin; anything
    # below means the kernel hot path broke
    assert m["engine_events_per_s"]["value"] > 100_000
    assert m["engine_events_per_s_sharded"]["value"] > 1_000
    assert m["engine_events_per_s_sharded"]["shards"] == doc["host"]["shards"]
    assert m["p2p_msgs_per_s"]["value"] > 100
    assert m["allreduce_per_s"]["value"] > 10
    assert 0 < m["ckpt_restart_cycle_s"]["value"] < 60
    assert 0 < m["fig2_cell_s"]["value"] < 60
    assert m["sweep_speedup_j2"]["value"] > 0
    assert 0 < m["facility_makespan_s"]["value"] < 120


def test_sharded_throughput_beats_single_shard_on_multicore(doc):
    """The tentpole claim, enforced where the host can actually overlap
    work; single-core hosts carry the informational flag instead."""
    import os

    m = doc["metrics"]
    if (os.cpu_count() or 1) < 2:
        assert m["engine_events_per_s_sharded"]["informational"] is True
    else:
        assert m["engine_events_per_s_sharded"]["informational"] is False
        assert (m["engine_events_per_s_sharded"]["value"]
                > m["engine_events_per_s"]["value"])


def test_facility_makespan_benchmark(benchmark):
    wall = run_once(benchmark, perfbench.bench_facility_makespan, 10)
    assert wall < 120


def test_event_throughput_benchmark(benchmark):
    events_per_s = run_once(benchmark, perfbench.bench_engine_events, 60_000)
    assert events_per_s > 100_000


def test_ckpt_restart_cycle_benchmark(benchmark):
    cycle = run_once(benchmark, perfbench.bench_ckpt_restart_cycle, 2)
    assert cycle < 60
