"""Schema validation and regression comparison for BENCH_perf.json docs."""

import copy

import pytest

from repro.harness.perfbench import (
    BENCH_SCHEMA,
    CORE_METRICS,
    compare_bench,
    validate_bench_doc,
)


def _valid_doc(events=500_000.0):
    metrics = {
        "engine_events_per_s": {"value": events, "unit": "events/s",
                                "higher_is_better": True},
        "engine_events_per_s_sharded": {"value": events, "unit": "events/s",
                                        "higher_is_better": True,
                                        "shards": 2, "informational": True},
        "p2p_msgs_per_s": {"value": 9000.0, "unit": "msgs/s",
                           "higher_is_better": True},
        "allreduce_per_s": {"value": 4000.0, "unit": "allreduces/s",
                            "higher_is_better": True},
        "ckpt_restart_cycle_s": {"value": 0.02, "unit": "s",
                                 "higher_is_better": False},
        "fig2_cell_s": {"value": 0.01, "unit": "s",
                        "higher_is_better": False},
        "sweep_speedup_j2": {"value": 1.0, "unit": "x",
                             "higher_is_better": True},
        "facility_makespan_s": {"value": 0.5, "unit": "s",
                                "higher_is_better": False},
        "ckpt_quiesce_wait_s": {"value": 0.0017, "unit": "s",
                                "higher_is_better": False,
                                "alg2_s": 0.0034, "topo_s": 0.0017,
                                "simulated": True},
    }
    return {"schema": BENCH_SCHEMA, "quick": False,
            "host": {"cpu_count": 4, "python": "3.11.0", "shards": 2},
            "metrics": metrics}


def test_valid_doc_passes():
    validate_bench_doc(_valid_doc())


@pytest.mark.parametrize("mutate,msg", [
    (lambda d: d.update(schema="bogus/9"), "schema"),
    (lambda d: d.pop("host"), "cpu_count"),
    (lambda d: d["host"].update(cpu_count=0), "cpu_count"),
    (lambda d: d.pop("metrics"), "metrics"),
    (lambda d: d["metrics"].pop("engine_events_per_s"), "core metric"),
    (lambda d: d["metrics"].pop("engine_events_per_s_sharded"), "core metric"),
    (lambda d: d["metrics"].pop("facility_makespan_s"), "core metric"),
    (lambda d: d["metrics"]["fig2_cell_s"].update(value="fast"), "finite"),
    (lambda d: d["metrics"]["fig2_cell_s"].update(value=float("nan")), "finite"),
    (lambda d: d["metrics"]["fig2_cell_s"].update(value=float("inf")), "finite"),
    (lambda d: d["metrics"]["fig2_cell_s"].update(unit=""), "unit"),
    (lambda d: d["metrics"]["fig2_cell_s"].update(higher_is_better=1),
     "higher_is_better"),
])
def test_invalid_docs_rejected(mutate, msg):
    doc = _valid_doc()
    mutate(doc)
    with pytest.raises(ValueError, match=msg):
        validate_bench_doc(doc)


def test_five_metric_floor():
    doc = _valid_doc()
    doc["metrics"] = dict(list(doc["metrics"].items())[:4])
    with pytest.raises(ValueError, match=">= 5"):
        validate_bench_doc(doc)


class TestCompare:
    def test_within_budget_passes(self):
        base = _valid_doc(events=500_000.0)
        cur = _valid_doc(events=400_000.0)  # -20% < 30% budget
        assert compare_bench(cur, base) == []

    def test_throughput_regression_fails(self):
        base = _valid_doc(events=500_000.0)
        cur = _valid_doc(events=300_000.0)  # -40%
        failures = compare_bench(cur, base)
        assert len(failures) == 1
        assert "engine_events_per_s" in failures[0]

    def test_lower_is_better_direction(self):
        base = _valid_doc()
        cur = copy.deepcopy(base)
        cur["metrics"]["ckpt_restart_cycle_s"]["value"] = 0.05  # 2.5x slower
        failures = compare_bench(cur, base, keys=("ckpt_restart_cycle_s",))
        assert failures and "grew" in failures[0]

    def test_improvement_never_fails(self):
        base = _valid_doc(events=500_000.0)
        cur = _valid_doc(events=5_000_000.0)
        assert compare_bench(cur, base, keys=tuple(CORE_METRICS)) == []

    def test_new_metric_missing_from_baseline_is_skipped(self):
        base = _valid_doc()
        cur = _valid_doc()
        assert compare_bench(cur, base, keys=("brand_new_metric",)) == []

    def test_default_keys_threshold_sharded_throughput(self):
        """Once both sides drop the informational flag (≥2-core hosts),
        the sharded metric is enforced by the *default* key set."""
        base = _valid_doc()
        cur = _valid_doc()
        for d in (base, cur):
            d["metrics"]["engine_events_per_s_sharded"]["informational"] = False
        cur["metrics"]["engine_events_per_s_sharded"]["value"] *= 0.5
        failures = compare_bench(cur, base)
        assert failures and "engine_events_per_s_sharded" in failures[0]
