"""Figure 9 (and §3.5): cross-cluster, cross-MPI migration of GROMACS."""

from benchmarks.conftest import run_once
from repro.harness import fig9_cross_cluster_migration


def test_fig9_cross_cluster_migration(benchmark, scale, record_table):
    table = run_once(benchmark, fig9_cross_cluster_migration)
    record_table(table, "fig9_cross_cluster_migration")
    assert [r[0] for r in table.rows] == [
        "OpenMPI/IB (2x4)", "MPICH/TCP (2x4)", "MPICH (8x1)",
    ]
    for row in table.rows:
        assert -1.0 < row[3] < 4.0, \
            f"{row[0]}: degradation a few percent at most (paper <1.8%)"


def test_sec35_switch_to_debug_mpich(benchmark, record_table):
    """§3.5: checkpoint under production Cray MPI, restart under a
    custom-compiled debug MPICH — it works, and the debug build is slower."""
    from repro.apps import get_app
    from repro.hardware.cluster import cori
    from repro.harness.experiments import _launch_mana_app, _run_native
    from repro.harness.results import Table
    from repro.mana.job import restart

    def experiment():
        spec = get_app("gromacs")
        cfg = spec.default_config.scaled(n_steps=12)
        src = cori(4)
        t_full = _run_native(src, spec, cfg, 8, 2)
        job = _launch_mana_app(src, spec, cfg, 8, 2)
        ckpt, _ = job.checkpoint_at(t_full / 2)
        out = Table("§3.5: transparent switch to debug MPICH",
                    ["config", "impl", "remaining_runtime_s"])
        for label, mpi in (("production", "craympich"), ("debug", "mpich-debug")):
            job2 = restart(ckpt, cori(4), spec.build(cfg), mpi=mpi,
                           ranks_per_node=2)
            job2.run_to_completion()
            out.add(label, job2.world.impl.name,
                    job2.engine.now - job2.restart_report.total_time)
        return out

    table = run_once(benchmark, experiment)
    record_table(table, "sec35_switch_to_debug_mpich")
    prod, debug = table.rows
    assert debug[1] == "mpich-debug"
    assert debug[2] > prod[2], "the debug build runs slower, as expected"
