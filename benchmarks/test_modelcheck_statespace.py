"""§2.6: model-checking throughput and coverage (the TLC-equivalent run)."""

from benchmarks.conftest import run_once
from repro.harness.results import Table
from repro.modelcheck import ModelChecker, NaiveModel, TwoPhaseModel


def test_modelcheck_statespace(benchmark, record_table):
    def explore():
        out = Table("§2.6: exhaustive verification of the two-phase protocol",
                    ["model", "ranks", "iters", "states", "transitions",
                     "verdict"])
        for n, k in ((2, 1), (2, 2), (3, 1), (3, 2), (4, 1)):
            res = ModelChecker(TwoPhaseModel(n, k)).run()
            out.add("two-phase", n, k, res.states_explored, res.transitions,
                    "OK" if res.ok else res.failure)
        res = ModelChecker(NaiveModel(2, 1)).run(check_liveness=False)
        out.add("naive", 2, 1, res.states_explored, res.transitions,
                res.failure or "OK")
        return out

    table = run_once(benchmark, explore)
    record_table(table, "modelcheck_statespace")
    verdicts = table.column("verdict")
    assert verdicts[:-1] == ["OK"] * (len(verdicts) - 1)
    assert verdicts[-1] == "no-rank-in-phase2-at-ckpt"
