"""Ablation benchmarks for the design choices DESIGN.md calls out.

* two-phase wrapper ON vs OFF — what the trivial barrier costs at runtime
  (Challenge II's price), next to what it buys (checkpointability, shown by
  the model checker);
* eager threshold vs drain volume — how much in-flight data the bookmark
  exchange must absorb under different p2p protocols;
* stragglers ON vs OFF — how much of the checkpoint time is the long tail
  of the parallel write (§3.4).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.apps import get_app
from repro.harness.results import Table
from repro.hardware.cluster import cori, make_cluster
from repro.mana.job import launch_mana


def test_ablation_two_phase_wrapper_cost(benchmark, record_table, jobs):
    """Runtime price of Algorithm 1's trivial barrier, by size and ranks.

    The sweep itself lives in :func:`repro.harness.experiments.
    ablation_two_phase_cost` (cell-decomposed, parallelizable via
    ``REPRO_BENCH_JOBS``); this benchmark times and validates it.
    """
    from repro.harness import ablation_two_phase_cost

    table = run_once(benchmark, ablation_two_phase_cost, jobs=jobs)
    record_table(table, "ablation_two_phase")
    for ranks, size, bare, two_phase, added in table.rows:
        assert two_phase >= bare
        # the paper's claim: registering twice is tiny in practice — and it
        # shrinks as the collective's real work grows
        if size >= 1 << 21:
            assert added < 5.0
    small = [r for r in table.rows if r[1] == 64]
    large = [r for r in table.rows if r[1] == 1 << 21]
    assert min(r[4] for r in small) >= max(0.0, max(r[4] for r in large) - 1e-9)


def test_ablation_eager_threshold_vs_drain(benchmark, record_table):
    """Drain behaviour under different eager/rendezvous regimes."""

    def experiment():
        from tests.mana.conftest import ring_factory

        out = Table(
            "Ablation: eager threshold vs checkpoint drain",
            ["mpi", "eager_threshold", "drained_msgs", "drain_s"],
        )
        for mpi in ("craympich", "mpich", "intelmpi"):
            cluster = make_cluster("abl", 2, interconnect="aries")
            job = launch_mana(cluster, ring_factory(n_steps=8, cost=0.01),
                              n_ranks=8, ranks_per_node=4, mpi=mpi,
                              app_mem_bytes=1 << 20).start()
            _ckpt, report = job.checkpoint_at(0.02)
            drained = sum(rt.stats.drained_messages for rt in job.runtimes)
            out.add(mpi, job.world.impl.eager_threshold, drained,
                    report.drain_time)
            job.run_to_completion()
        return out

    table = run_once(benchmark, experiment)
    record_table(table, "ablation_eager_threshold")
    for row in table.rows:
        assert row[3] < 0.7, "drain stays under the paper's bound"


def test_ablation_stragglers(benchmark, record_table):
    """Checkpoint time with and without write stragglers (§3.4)."""

    def experiment():
        out = Table(
            "Ablation: Lustre write stragglers vs checkpoint time",
            ["stragglers", "ckpt_time_s", "p90_over_median"],
        )
        spec = get_app("hpcg")
        cfg = spec.default_config.scaled(n_steps=3)
        for stragglers in (False, True):
            cluster = cori(4)
            job = launch_mana(
                cluster, spec.build(cfg), n_ranks=32, ranks_per_node=8,
                app_mem_bytes=256 << 20, stragglers=stragglers,
            ).start()
            job.run_until(0.03)
            _ckpt, report = job.checkpoint()
            burst = cluster.storage.burst(
                [256 << 20] * 32, [i // 8 for i in range(32)],
                rng=np.random.default_rng(0) if stragglers else None,
            )
            out.add(str(stragglers), report.total_time,
                    burst.p90_time / burst.median_time)
        return out

    table = run_once(benchmark, experiment)
    record_table(table, "ablation_stragglers")
    off, on = table.rows
    assert on[1] > off[1], "stragglers lengthen the overall checkpoint"
