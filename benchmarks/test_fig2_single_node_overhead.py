"""Figure 2: single-node runtime overhead under MANA, five apps."""

from benchmarks.conftest import run_once
from repro.harness import fig2_single_node_overhead


def test_fig2_single_node_overhead(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, fig2_single_node_overhead, scale=scale,
                     jobs=jobs)
    record_table(table, "fig2_single_node_overhead")
    # paper: overhead mostly <2%, worst 2.1% (GROMACS/16) — allow the
    # qualitative band
    for pct in table.column("normalized_pct"):
        assert pct > 95.0
    gromacs = [r for r in table.rows if r[0] == "gromacs" and r[1] >= 16]
    assert gromacs and min(r[4] for r in gromacs) < 99.2, \
        "GROMACS should show visible (~1-3%) overhead at 16+ ranks"
