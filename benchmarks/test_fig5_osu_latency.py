"""Figure 5: OSU latency micro-benchmarks (p2p, Gather, Allreduce)."""

from benchmarks.conftest import run_once
from repro.harness import fig5_osu_latency


def test_fig5_osu_latency(benchmark, scale, record_table, jobs):
    table = run_once(benchmark, fig5_osu_latency, scale=scale, jobs=jobs)
    record_table(table, "fig5_osu_latency")
    benches = {r[0] for r in table.rows}
    assert benches == {"p2p-latency", "gather", "allreduce"}
    for bench, size, native_us, mana_us in table.rows:
        assert mana_us >= native_us - 1e-9
        assert mana_us - native_us < 10.0, \
            f"{bench}@{size}: MANA latency must closely follow native"
