"""Kernel cost model: FS-register switching and syscalls.

Section 3.3 of the paper identifies the dominant source of MANA's runtime
overhead: every transfer of control between the upper and the lower half must
repoint the x86-64 ``FS`` segment register at the other program's thread-local
storage block.  On an unpatched kernel this requires the privileged
``arch_prctl(ARCH_SET_FS)`` syscall; with the (then pending, since merged)
FSGSBASE patch it is a single unprivileged ``WRFSBASE`` instruction.

The constants below are calibrated to typical measurements on Haswell-class
hardware (syscall round-trip ≈ 100–150 ns; WRFSBASE ≈ 10–20 ns) — the same
class of machine as Cori's compute nodes.  What matters for reproducing
Fig. 4 is the *ratio* and the fact that two switches happen per MPI call.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelModel:
    """Timing model for the simulated node's Linux kernel."""

    #: Whether the FSGSBASE patch (LWN 769355) is applied.
    fsgsbase_patched: bool = False
    #: Cost of a syscall-based FS switch (seconds).
    fs_switch_syscall: float = 130e-9
    #: Cost of an unprivileged WRFSBASE-based FS switch (seconds).
    fs_switch_fsgsbase: float = 14e-9
    #: Generic syscall round-trip (used by sbrk/mmap accounting).
    syscall: float = 120e-9

    @property
    def fs_switch(self) -> float:
        """Cost of one FS-register switch under this kernel."""
        return self.fs_switch_fsgsbase if self.fsgsbase_patched else self.fs_switch_syscall

    def upper_lower_transition(self) -> float:
        """Cost of one upper→lower→upper round trip (two FS switches).

        This is charged by MANA's wrapper layer on *every* interposed MPI
        call; it is the per-call constant that shows up as percentage
        overhead for small-message workloads and vanishes for large ones.
        """
        return 2.0 * self.fs_switch


#: The kernels the paper evaluates.
UNPATCHED = KernelModel(fsgsbase_patched=False)
PATCHED = KernelModel(fsgsbase_patched=True)
