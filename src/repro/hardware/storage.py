"""Lustre-like parallel filesystem model with stragglers.

Checkpoint time in the paper (Fig. 6, Fig. 8) is dominated by the time to
write each rank's image to the Lustre backend, and the *overall* checkpoint
time is the time of the slowest writer: the paper observes per-rank write
times up to 4× the 90th-percentile rank ("stragglers", §3.4, citing Xie et
al. SC'12).  Restart (Fig. 7) is symmetric, dominated by reads.

The model:

* each node owns an injection bandwidth into the filesystem
  (``per_node_bandwidth``), shared by the ranks on that node;
* the filesystem has a global aggregate bandwidth ceiling
  (``aggregate_bandwidth``) across all nodes;
* each concurrent writer draws a straggler multiplier ≥ 1 from a heavy-tailed
  distribution, reproducing the observed long tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class WriteReport:
    """Outcome of a parallel write/read burst."""

    #: Seconds until the *slowest* rank finished (bounds checkpoint time).
    max_time: float
    #: Seconds of the median rank.
    median_time: float
    #: 90th-percentile rank time (the straggler paper's reference point).
    p90_time: float
    #: Per-rank times, index = position in the submitted burst.
    per_rank: np.ndarray
    #: Total bytes moved.
    total_bytes: int


@dataclass
class LustreModel:
    """Parallel filesystem bandwidth/straggler model."""

    #: Sustained injection bandwidth per compute node (bytes/s).
    per_node_bandwidth: float = 1.0e9
    #: Global backend ceiling across all writers (bytes/s).
    aggregate_bandwidth: float = 700e9
    #: Per-file open/close/fsync fixed cost (seconds).
    per_file_overhead: float = 0.05
    #: Pareto tail index for straggler multipliers; smaller = heavier tail.
    straggler_alpha: float = 6.0
    #: Cap on the straggler multiplier (paper observes up to ~4x the p90).
    straggler_cap: float = 5.0
    #: Transient slow-I/O state (OST congestion, failover rebuild): all
    #: bandwidths are divided by this factor while it is > 1.  Set through
    #: :meth:`degrade` / :meth:`restore` by the fault injector.
    slowdown: float = 1.0
    #: Optional multi-tenant bandwidth arbiter (duck-typed; see
    #: :class:`repro.facility.sharedfs.StorageArbiter`).  When set, each
    #: burst asks it how many drain streams currently share the backend and
    #: divides the aggregate ceiling accordingly, then reports the finished
    #: burst back for traffic accounting.  Per-node injection bandwidth is
    #: unaffected: tenants never share a compute node.
    arbiter: Optional[object] = None

    def degrade(self, factor: float) -> None:
        """Enter a slow-I/O window: divide all bandwidths by ``factor``."""
        if factor < 1.0:
            raise ValueError(f"slow-I/O factor must be >= 1, got {factor}")
        self.slowdown = factor

    def restore(self) -> None:
        """Leave the slow-I/O window (back to nominal bandwidth)."""
        self.slowdown = 1.0

    def burst(
        self,
        sizes: list[int],
        node_of: list[int],
        rng: Optional[np.random.Generator] = None,
        read: bool = False,
    ) -> WriteReport:
        """Time a parallel burst of per-rank file writes (or reads).

        Parameters
        ----------
        sizes:
            Bytes moved by each rank.
        node_of:
            Node id hosting each rank (shapes per-node contention).
        rng:
            Straggler randomness; ``None`` disables stragglers (used by unit
            tests that want exact arithmetic).
        read:
            Reads skip the fsync part of the fixed overhead (half cost) —
            restart is read-dominated but slightly cheaper per file.
        """
        if len(sizes) != len(node_of):
            raise ValueError("sizes and node_of must align")
        n = len(sizes)
        if n == 0:
            return WriteReport(0.0, 0.0, 0.0, np.zeros(0), 0)
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        nodes_arr = np.asarray(node_of)

        # Transient slow-I/O events scale every bandwidth down uniformly.
        node_bw = self.per_node_bandwidth / self.slowdown
        backend_bw = self.aggregate_bandwidth / self.slowdown

        # Multi-tenant contention: concurrently draining jobs split the
        # backend evenly (fair-share QoS, what Lustre TBF policies enforce).
        if self.arbiter is not None:
            streams = self.arbiter.begin_burst(
                total_bytes=int(sizes_arr.sum()), read=read
            )
            backend_bw /= max(1, int(streams))

        # Node-level contention: ranks on one node share its injection band.
        writers_per_node = {nid: int(c) for nid, c in
                            zip(*np.unique(nodes_arr, return_counts=True))}
        share = np.array(
            [node_bw / writers_per_node[nid] for nid in nodes_arr]
        )

        # Global ceiling: if the sum of shares exceeds the backend, scale down.
        total_share = float(share.sum())
        if total_share > backend_bw:
            share *= backend_bw / total_share

        times = self.per_file_overhead * (0.5 if read else 1.0) + sizes_arr / share

        if rng is not None:
            # Lomax(alpha) + 1 gives multipliers >= 1 with a heavy tail.
            mult = 1.0 + rng.pareto(self.straggler_alpha, size=n)
            np.minimum(mult, self.straggler_cap, out=mult)
            times = times * mult

        report = WriteReport(
            max_time=float(times.max()),
            median_time=float(np.median(times)),
            p90_time=float(np.percentile(times, 90)),
            per_rank=times,
            total_bytes=int(sizes_arr.sum()),
        )
        if self.arbiter is not None:
            self.arbiter.end_burst(report, read=read)
        return report
