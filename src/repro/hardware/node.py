"""A compute node: cores, memory, and its kernel."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.kernelmodel import KernelModel


@dataclass
class ComputeNode:
    """One host of a simulated cluster.

    The default values describe a Cori Haswell node: dual-socket 16-core
    Xeon E5-2698 v3 (32 cores total), 128 GB of memory.
    """

    node_id: int
    hostname: str
    cores: int = 32
    mem_bytes: int = 128 << 30
    kernel: KernelModel = field(default_factory=KernelModel)
    #: Relative compute speed (1.0 = Cori Haswell); lets a "local cluster"
    #: differ from Cori in per-core throughput for the Fig. 9 experiment.
    core_speed: float = 1.0
    #: True once the node has crashed (set by the fault injector).  A failed
    #: node hosts no new placements; its in-flight ranks are dead.
    failed: bool = False
    #: Virtual time of the crash, for post-mortem reports.
    failed_at: float = 0.0

    def compute_time(self, work_seconds: float) -> float:
        """Wall time this node needs for ``work_seconds`` of reference work."""
        return work_seconds / self.core_speed

    def fail(self, at: float = 0.0) -> None:
        """Mark the node crashed at virtual time ``at`` (idempotent)."""
        if not self.failed:
            self.failed = True
            self.failed_at = at

    def repair(self) -> None:
        """Return a failed node to service (a replaced blade)."""
        self.failed = False
        self.failed_at = 0.0
