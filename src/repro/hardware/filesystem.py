"""The site's shared parallel-filesystem namespace (application files).

Checkpoint images travel through :class:`~repro.hardware.storage.LustreModel`
(timing); this module holds the *contents* side: named files with real
(sparse) bytes, shared by every job that runs against the same filesystem
instance.  Cross-cluster migration of an application that holds open files
assumes site-shared or pre-staged storage — model it by passing one
:class:`SimFilesystem` to both clusters.
"""

from __future__ import annotations


class FilesystemError(RuntimeError):
    """Missing files, bad offsets."""


class SimFile:
    """One file: sparse byte contents plus a modeled size."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._chunks: dict[int, bytes] = {}
        self.size = 0

    def write(self, offset: int, data: bytes) -> None:
        """Write bytes at an offset (sparse)."""
        if offset < 0:
            raise FilesystemError(f"negative offset {offset} in {self.path}")
        self._chunks[offset] = bytes(data)
        self.size = max(self.size, offset + len(data))

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes; unwritten holes read as zeros."""
        out = bytearray(length)
        for start, chunk in self._chunks.items():
            lo = max(start, offset)
            hi = min(start + len(chunk), offset + length)
            if lo < hi:
                out[lo - offset:hi - offset] = chunk[lo - start:hi - start]
        return bytes(out)

    def checksum(self) -> int:
        """Content digest over all written chunks."""
        import zlib

        acc = 0
        for offset in sorted(self._chunks):
            acc = zlib.crc32(self._chunks[offset], acc ^ offset & 0xFFFFFFFF)
        return acc


class SimFilesystem:
    """A shared namespace of :class:`SimFile` objects.

    One instance stands for a site's parallel filesystem; pass the same
    instance to the source and target clusters of a migration to model
    shared (or pre-staged) storage.
    """

    def __init__(self, name: str = "lustre") -> None:
        self.name = name
        self._files: dict[str, SimFile] = {}

    def open(self, path: str, create: bool = True) -> SimFile:
        """Get (or create) the file at ``path``."""
        f = self._files.get(path)
        if f is None:
            if not create:
                raise FilesystemError(f"no such file {path!r} on {self.name}")
            f = self._files[path] = SimFile(path)
        return f

    def exists(self, path: str) -> bool:
        """True if ``path`` has been created."""
        return path in self._files

    def listing(self) -> list[str]:
        """All known paths, sorted."""
        return sorted(self._files)
