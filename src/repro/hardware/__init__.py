"""Simulated cluster hardware: nodes, clusters, kernel, parallel storage.

This package models exactly the pieces of Cori (and of the paper's local
cluster) that MANA's evaluation depends on:

* :class:`KernelModel` — the cost of switching the x86-64 ``FS`` register
  between the upper- and lower-half TLS blocks, with and without the
  FSGSBASE kernel patch the paper benchmarks (§3.3, Fig. 4);
* :class:`ComputeNode` / :class:`Cluster` — hosts, cores per node, and the
  interconnect the cluster is wired with;
* :class:`LustreModel` — a parallel filesystem with per-node bandwidth,
  global contention, and the straggler behaviour (§3.4) that makes overall
  checkpoint time track the slowest rank.
"""

from repro.hardware.kernelmodel import KernelModel
from repro.hardware.node import ComputeNode
from repro.hardware.cluster import Cluster, ClusterError
from repro.hardware.storage import LustreModel, WriteReport

__all__ = [
    "Cluster",
    "ClusterError",
    "ComputeNode",
    "KernelModel",
    "LustreModel",
    "WriteReport",
]
