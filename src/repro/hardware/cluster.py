"""A cluster: a set of nodes wired with one interconnect and one filesystem.

Clusters are cheap value objects; jobs are *launched onto* a cluster by the
MPI launcher (:mod:`repro.mpilib.launcher`) or by MANA.  Two pre-canned
configurations mirror the paper's testbeds: :func:`cori` (Haswell nodes,
Aries interconnect, Lustre backend) and :func:`local_cluster` (the authors'
InfiniBand cluster used for migration and kernel-patch experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.kernelmodel import KernelModel
from repro.hardware.node import ComputeNode
from repro.hardware.storage import LustreModel
from repro.hardware.filesystem import SimFilesystem


class ClusterError(RuntimeError):
    """Raised on impossible placements (more ranks than cores, etc.)."""


@dataclass
class Cluster:
    """A named cluster with homogeneous nodes."""

    name: str
    nodes: list[ComputeNode]
    interconnect: str = "tcp"
    storage: LustreModel = field(default_factory=LustreModel)
    #: the site's shared parallel-filesystem namespace (application files);
    #: pass one instance to several clusters to model shared/staged storage
    fs: SimFilesystem = field(default_factory=SimFilesystem)
    #: The site's recommended MPI implementation (what `module load` gives you).
    default_mpi: str = "mpich"

    @property
    def node_count(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def alive_nodes(self) -> list[ComputeNode]:
        """Nodes currently in service (not crashed)."""
        return [n for n in self.nodes if not n.failed]

    @property
    def failed_nodes(self) -> list[ComputeNode]:
        """Nodes currently marked crashed."""
        return [n for n in self.nodes if n.failed]

    @property
    def kernel(self) -> KernelModel:
        """The (homogeneous) node kernel model."""
        return self.nodes[0].kernel

    def place_ranks(self, n_ranks: int, ranks_per_node: Optional[int] = None) -> list[int]:
        """Block-place ``n_ranks`` MPI ranks; returns rank→node_id.

        Placement only ever uses healthy nodes — a crashed node (see
        :meth:`ComputeNode.fail`) is invisible to the scheduler, which is
        what lets a restart re-plan onto the survivors for free.

        With ``ranks_per_node`` unset, ranks are spread as evenly as possible
        across all healthy nodes (what a fresh ``MPI_Init`` discovers — the
        paper's point about restart re-optimising rank-to-host bindings).
        """
        if n_ranks <= 0:
            raise ClusterError(f"need a positive rank count, got {n_ranks}")
        alive = self.alive_nodes
        if not alive:
            raise ClusterError(f"cluster {self.name!r} has no healthy nodes")
        if ranks_per_node is None:
            n_nodes = min(len(alive), n_ranks)
            base, extra = divmod(n_ranks, n_nodes)
            placement: list[int] = []
            for node_idx in range(n_nodes):
                count = base + (1 if node_idx < extra else 0)
                placement.extend([alive[node_idx].node_id] * count)
            return placement
        if ranks_per_node <= 0:
            raise ClusterError(f"ranks_per_node must be positive, got {ranks_per_node}")
        needed_nodes = -(-n_ranks // ranks_per_node)
        if needed_nodes > len(alive):
            raise ClusterError(
                f"{n_ranks} ranks at {ranks_per_node}/node need {needed_nodes} nodes; "
                f"cluster {self.name!r} has {len(alive)} healthy of {self.node_count}"
            )
        if ranks_per_node > alive[0].cores:
            raise ClusterError(
                f"{ranks_per_node} ranks/node oversubscribes {alive[0].cores} cores"
            )
        return [alive[r // ranks_per_node].node_id for r in range(n_ranks)]

    def node(self, node_id: int) -> ComputeNode:
        """Look up a node by id; raises ClusterError if unknown."""
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise ClusterError(f"no node {node_id} in cluster {self.name!r}")

    def rack_groups(self, rack_size: int) -> list[tuple[int, ...]]:
        """Node ids grouped by rack: consecutive blocks of ``rack_size``.

        Node numbering follows physical placement (as hostnames do on real
        systems), so consecutive ids share a rack/PSU — the failure-
        correlation domain used by :class:`repro.faults.CorrelatedFaults`.
        """
        if rack_size <= 0:
            raise ClusterError(f"rack_size must be positive, got {rack_size}")
        ids = [n.node_id for n in self.nodes]
        return [tuple(ids[i:i + rack_size]) for i in range(0, len(ids), rack_size)]


def make_cluster(
    name: str,
    n_nodes: int,
    cores_per_node: int = 32,
    interconnect: str = "tcp",
    kernel: Optional[KernelModel] = None,
    storage: Optional[LustreModel] = None,
    core_speed: float = 1.0,
    default_mpi: str = "mpich",
    fs: Optional[SimFilesystem] = None,
) -> Cluster:
    """Build a homogeneous cluster.  Pass a shared ``fs`` to model several
    clusters mounting the same parallel filesystem."""
    kern = kernel if kernel is not None else KernelModel()
    nodes = [
        ComputeNode(
            node_id=i, hostname=f"{name}-n{i:04d}", cores=cores_per_node,
            kernel=kern, core_speed=core_speed,
        )
        for i in range(n_nodes)
    ]
    return Cluster(
        name=name, nodes=nodes, interconnect=interconnect,
        storage=storage if storage is not None else LustreModel(),
        default_mpi=default_mpi,
        fs=fs if fs is not None else SimFilesystem(f"{name}-fs"),
    )


def cori(n_nodes: int, kernel: Optional[KernelModel] = None) -> Cluster:
    """Cori-like: Haswell nodes, Aries interconnect, Cray MPICH, Lustre."""
    return make_cluster(
        "cori", n_nodes, cores_per_node=32, interconnect="aries",
        kernel=kernel, default_mpi="craympich",
        # Calibrated to the paper's Fig. 6: the overall checkpoint time is
        # the *slowest* rank's write (stragglers up to ~4x the p90, §3.4),
        # so hitting HPCG's ~35-40 s for 4 TB at 64 nodes implies a base
        # per-node injection of ~6.5 GB/s with the straggler tail on top.
        storage=LustreModel(per_node_bandwidth=6.5e9, aggregate_bandwidth=700e9),
    )


def local_cluster(
    n_nodes: int,
    interconnect: str = "infiniband",
    kernel: Optional[KernelModel] = None,
) -> Cluster:
    """The authors' local cluster: InfiniBand, Open MPI recommended."""
    return make_cluster(
        "local", n_nodes, cores_per_node=16, interconnect=interconnect,
        kernel=kernel, default_mpi="openmpi", core_speed=1.0,
        storage=LustreModel(per_node_bandwidth=0.8e9, aggregate_bandwidth=20e9),
    )
