"""Command-line interface: ``python -m repro <command>``.

The operational surface of the reproduction, mirroring how MANA is driven
in production (``mana_launch`` / ``mana_restart`` / coordinator status):

* ``repro apps`` — list the available workload applications;
* ``repro run`` — run an app natively or under MANA on a synthetic cluster,
  optionally cutting a checkpoint to disk mid-run;
* ``repro restart`` — restart a saved checkpoint on a (possibly different)
  cluster, MPI implementation, interconnect and rank layout;
* ``repro inspect`` — describe a saved checkpoint directory;
* ``repro verify`` — model-check the two-phase protocol (§2.6);
* ``repro bench`` — regenerate one of the paper's figures;
* ``repro conformance`` — differential restart conformance across the
  (MPI implementation × fabric × ranks-per-node) matrix with fuzzed
  checkpoint times;
* ``repro trace`` — run an app or example with structured tracing on and
  write a Chrome trace-event JSON (loadable in Perfetto / chrome://tracing);
* ``repro facility`` — host a whole queued workload on one shared cluster:
  preemptive scheduling via induced checkpoints, shared-Lustre contention,
  crash-requeue, and the facility operations report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.net import INTERCONNECTS
from repro.mpilib.impls import IMPLEMENTATIONS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MANA for MPI (HPDC'19), reproduced on a simulated "
                    "HPC substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list available workload applications")

    run = sub.add_parser("run", help="run an application")
    _cluster_args(run)
    run.add_argument("--app", required=True, help="application name")
    run.add_argument("--ranks", type=int, default=8)
    run.add_argument("--steps", type=int, default=None,
                     help="override the app's step count")
    run.add_argument("--native", action="store_true",
                     help="run without MANA (baseline)")
    run.add_argument("--checkpoint-at", type=float, default=None,
                     metavar="T", help="cut a checkpoint at virtual time T")
    run.add_argument("--protocol", default="alg2",
                     choices=["alg2", "topo"],
                     help="checkpoint protocol engine (docs/protocols.md)")
    run.add_argument("--shards", type=int, default=1, metavar="N",
                     help="event shards for the simulation engine (merged "
                          "deterministic mode; docs/performance.md)")
    run.add_argument("--compact", action="store_true",
                     help="compact the record-replay log at checkpoint time "
                          "(docs/record_replay.md)")
    run.add_argument("--out", default=None, metavar="DIR",
                     help="directory to save the checkpoint to")

    rst = sub.add_parser("restart", help="restart a saved checkpoint")
    _cluster_args(rst)
    rst.add_argument("--ckpt", required=True, metavar="DIR")
    rst.add_argument("--app", required=True,
                     help="application name (the program text)")
    rst.add_argument("--steps", type=int, default=None)
    rst.add_argument("--ranks-per-node", type=int, default=None)
    rst.add_argument("--protocol", default="alg2",
                     choices=["alg2", "topo"],
                     help="protocol for any later checkpoints of the "
                          "restarted job")
    rst.add_argument("--compact", action="store_true",
                     help="compact the record-replay log in any later "
                          "checkpoints of the restarted job")

    ins = sub.add_parser("inspect", help="describe a saved checkpoint")
    ins.add_argument("--ckpt", required=True, metavar="DIR")

    ver = sub.add_parser("verify", help="model-check the two-phase protocol")
    ver.add_argument("--ranks", type=int, default=3)
    ver.add_argument("--iters", type=int, default=2)
    ver.add_argument("--model", default="alg2",
                     choices=["alg2", "topo"],
                     help="which protocol's state space to explore "
                          "(alg2: two-phase; topo: topological-sort)")
    ver.add_argument("--naive", action="store_true",
                     help="check the strawman protocol instead (finds the "
                          "violation)")

    bench = sub.add_parser(
        "bench",
        help="regenerate a figure of the paper, or (without --figure) run "
             "the wall-clock perf suite and write BENCH_perf.json",
    )
    bench.add_argument("--figure", default=None,
                       choices=["fig2", "fig3", "fig4", "fig5", "fig6",
                                "fig7", "fig8", "fig9", "mem",
                                "resilience", "ablation"])
    bench.add_argument("--scale", default="small",
                       choices=["small", "medium", "paper"])
    bench.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                       help="worker processes for sweep cells (default: "
                            "CPU count; 1 = in-process)")
    bench.add_argument("--quick", action="store_true",
                       help="perf suite only: shrink iteration counts "
                            "(CI smoke mode)")
    bench.add_argument("--out", default="BENCH_perf.json", metavar="FILE",
                       help="perf suite only: output path "
                            "(default: BENCH_perf.json)")
    bench.add_argument("--check-against", default=None, metavar="FILE",
                       help="perf suite only: fail if event throughput "
                            "regresses >30%% vs this baseline document")

    conf = sub.add_parser(
        "conformance",
        help="cross-matrix restart conformance: golden runs, fuzzed "
             "checkpoints, restarts onto every other (MPI × fabric × "
             "ranks-per-node) cell, equivalence oracles",
    )
    tier = conf.add_mutually_exclusive_group()
    tier.add_argument("--quick", dest="tier", action="store_const",
                      const="quick",
                      help="the CI smoke matrix: 2 impls × 2 fabrics × "
                           "2 layouts (default)")
    tier.add_argument("--full", dest="tier", action="store_const",
                      const="full",
                      help="every implementation × every inter-node fabric "
                           "× 3 layouts")
    conf.set_defaults(tier="quick")
    conf.add_argument("--seed", type=int, default=0,
                      help="root seed of the checkpoint-time fuzzer")
    conf.add_argument("--apps", default=None, metavar="A,B",
                      help="comma-separated app names (default: "
                           "gromacs,hpcg)")
    conf.add_argument("--ranks", type=int, default=4)
    conf.add_argument("--steps", type=int, default=4)
    conf.add_argument("--sources", type=int, default=2, metavar="N",
                      help="checkpoint-origin cells, spread over the matrix")
    conf.add_argument("--ckpts-per-source", type=int, default=1, metavar="K",
                      help="fuzzed checkpoint times per source cell")
    conf.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                      help="worker processes for matrix cells "
                           "(1 = in-process)")
    conf.add_argument("--only", default=None, metavar="SRC->DST",
                      help="run a single src-label->dst-label pair (the "
                           "syntax divergence repro lines use)")
    conf.add_argument("--protocol", default="alg2",
                      choices=["alg2", "topo", "both", "alternate"],
                      help="checkpoint protocol axis; 'both' runs every "
                           "cycle under each engine and cross-checks the "
                           "restart fingerprints between them; 'alternate' "
                           "cuts chained cycles under alg2 then topo")
    conf.add_argument("--shards", default="1",
                      choices=["1", "2", "4", "both"],
                      help="event-shard axis; 'both' runs every cycle "
                           "sequentially and 2-sharded and cross-checks "
                           "the restart fingerprints (the shard "
                           "differential)")
    conf.add_argument("--compact", default="off",
                      choices=["off", "on", "both"],
                      help="checkpoint-time log-compaction axis; 'both' "
                           "runs every cycle with and without compaction "
                           "and cross-checks the restart fingerprints "
                           "(the compaction differential)")
    conf.add_argument("--report", default=None, metavar="FILE",
                      help="also write the full cycle-by-cycle report as "
                           "JSON (the scheduled-CI artifact)")

    fac = sub.add_parser(
        "facility",
        help="multi-tenant checkpoint facility: queue a job mix on one "
             "shared cluster, preempt via induced checkpoints, report "
             "node-hours lost / queue waits / checkpoint traffic",
    )
    fac.add_argument("--policy", default="fifo",
                     choices=["backfill", "fifo"])
    fac.add_argument("--mix", default="tiny",
                     choices=["tiny", "mixed", "priority"])
    fac.add_argument("--n-jobs", type=int, default=40, metavar="N",
                     help="jobs in the generated workload (default: 40)")
    fac.add_argument("--nodes", type=int, default=8)
    fac.add_argument("--cores-per-node", type=int, default=16)
    fac.add_argument("--net", default="aries",
                     choices=sorted(INTERCONNECTS))
    fac.add_argument("--mpi", default=None, choices=list(IMPLEMENTATIONS))
    fac.add_argument("--seed", type=int, default=0,
                     help="workload + straggler seed (runs are "
                          "deterministic per seed)")
    fac.add_argument("--protocol", default="alg2",
                     choices=["alg2", "topo"],
                     help="checkpoint protocol for induced checkpoints")
    fac.add_argument("--shards", type=int, default=1, metavar="N",
                     help="event shards for the facility's shared engine "
                          "(merged deterministic mode)")
    fac.add_argument("--compact", action="store_true",
                     help="compact every tenant's record-replay log at "
                          "induced checkpoints")
    fac.add_argument("--ckpt-interval", type=float, default=None,
                     metavar="T", help="periodic checkpoint interval in "
                                       "virtual seconds (default: off)")
    fac.add_argument("--sweep", action="store_true",
                     help="run the full policy x mix sweep instead of a "
                          "single facility")
    fac.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                     help="sweep only: worker processes for sweep cells "
                          "(1 = in-process)")
    fac.add_argument("--show-jobs", type=int, default=None, metavar="N",
                     help="also print the first N per-job rows")
    fac.add_argument("--json", default=None, metavar="FILE",
                     help="write the aggregate report as JSON")

    trace = sub.add_parser(
        "trace",
        help="run a workload with tracing enabled and write a Chrome trace",
    )
    trace.add_argument("target",
                       help="an application name (see `repro apps`) or the "
                            "path of an examples/*.py script")
    _cluster_args(trace)
    trace.add_argument("--ranks", type=int, default=8)
    trace.add_argument("--steps", type=int, default=None,
                       help="override the app's step count")
    trace.add_argument("--checkpoint-at", type=float, default=None,
                       metavar="T", help="cut a checkpoint at virtual time T "
                                         "(app targets only)")
    trace.add_argument("--out", default="trace.json", metavar="FILE",
                       help="trace output path (default: trace.json)")
    trace.add_argument("--engine-events", action="store_true",
                       help="also record per-dispatch engine spans "
                            "(high volume)")
    trace.add_argument("--metrics", action="store_true",
                       help="print the flat metrics table after the run")
    return parser


def _cluster_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--cores-per-node", type=int, default=32)
    p.add_argument("--net", default="aries", choices=sorted(INTERCONNECTS))
    p.add_argument("--mpi", default=None, choices=list(IMPLEMENTATIONS))
    p.add_argument("--patched-kernel", action="store_true",
                   help="model the FSGSBASE-patched Linux kernel")


def _make_cluster(args):
    from repro.hardware.cluster import make_cluster
    from repro.hardware.kernelmodel import PATCHED, UNPATCHED

    return make_cluster(
        "cli", args.nodes, cores_per_node=args.cores_per_node,
        interconnect=args.net,
        kernel=PATCHED if args.patched_kernel else UNPATCHED,
        default_mpi=args.mpi or "mpich",
    )


def _app_factory(name: str, steps: Optional[int]):
    from repro.apps import get_app

    spec = get_app(name)
    cfg = spec.default_config
    if steps is not None:
        cfg = cfg.scaled(n_steps=steps)
    return spec, cfg, spec.build(cfg)


# ------------------------------------------------------------------ commands

def cmd_apps(_args, out) -> int:
    """``repro apps``: list workloads."""
    from repro.apps import APP_REGISTRY

    for name in sorted(APP_REGISTRY):
        spec = APP_REGISTRY[name]
        cfg = spec.default_config
        print(f"{name:10s} steps={cfg.n_steps:<4d} "
              f"mem/rank={cfg.mem_bytes >> 20} MB "
              f"compute/step={cfg.compute_per_step * 1e3:.2f} ms", file=out)
    return 0


def cmd_run(args, out) -> int:
    """``repro run``: run an application (optionally checkpointing)."""
    from repro.harness.experiments import _launch_mana_app, _run_native
    from repro.mana.storage import save_checkpoint

    spec, cfg, factory = _app_factory(args.app, args.steps)
    n_ranks = spec.valid_ranks(args.ranks)
    if n_ranks != args.ranks:
        print(f"note: {args.app} requires rank counts of a specific shape; "
              f"running {n_ranks} ranks", file=out)
    cluster = _make_cluster(args)
    rpn = -(-n_ranks // args.nodes)

    if args.native:
        elapsed = _run_native(cluster, spec, cfg, n_ranks, rpn)
        print(f"native run: {n_ranks} ranks, {elapsed:.4f} simulated s",
              file=out)
        return 0

    job = _launch_mana_app(cluster, spec, cfg, n_ranks, rpn,
                           protocol=args.protocol,
                           shards=args.shards if args.shards > 1 else None,
                           compact=args.compact)
    if args.checkpoint_at is not None:
        ckpt, report = job.checkpoint_at(args.checkpoint_at)
        print(f"checkpoint at t={args.checkpoint_at}: "
              f"{report.total_time:.3f} s "
              f"(drain {report.drain_time * 1e3:.2f} ms, "
              f"write {report.write_time:.3f} s, rounds {report.rounds}), "
              f"{ckpt.total_bytes / (1 << 30):.2f} GB", file=out)
        if args.out:
            path = save_checkpoint(ckpt, args.out)
            print(f"saved to {path.parent}", file=out)
    elapsed = job.run_to_completion()
    total = job.engine.now
    print(f"MANA run: {n_ranks} ranks over {args.nodes} nodes "
          f"({job.world.impl.name}/{job.world.fabric.name}), "
          f"{total:.4f} simulated s", file=out)
    return 0


def cmd_restart(args, out) -> int:
    """``repro restart``: restart a saved checkpoint."""
    from repro.mana import restart
    from repro.mana.storage import load_checkpoint

    _spec, _cfg, factory = _app_factory(args.app, args.steps)
    ckpt = load_checkpoint(args.ckpt)
    cluster = _make_cluster(args)
    job = restart(ckpt, cluster, factory, mpi=args.mpi,
                  ranks_per_node=args.ranks_per_node,
                  protocol=args.protocol, compact=args.compact)
    job.run_to_completion()
    rep = job.restart_report
    print(f"restarted {ckpt.n_ranks} ranks from {args.ckpt} on "
          f"{args.nodes} nodes ({job.world.impl.name}/{job.world.fabric.name})",
          file=out)
    print(f"restart: {rep.total_time:.3f} s (read {rep.read_time:.3f} s, "
          f"replay {rep.replay_time:.4f} s, {rep.replayed_entries} entries"
          + (f" + {rep.restored_bindings} snapshot bindings"
             if rep.restored_bindings else "")
          + f"); run finished at {job.engine.now:.4f} s", file=out)
    return 0


def cmd_inspect(args, out) -> int:
    """``repro inspect``: describe a checkpoint directory."""
    from repro.mana.storage import describe_checkpoint

    info = describe_checkpoint(args.ckpt)
    print(json.dumps(info, indent=2, default=str), file=out)
    return 0


def cmd_verify(args, out) -> int:
    """``repro verify``: model-check the protocol."""
    from repro.modelcheck import (
        ModelChecker,
        NaiveModel,
        TopoSortModel,
        TwoPhaseModel,
    )

    if args.naive:
        cls = NaiveModel
    elif args.model == "topo":
        cls = TopoSortModel
    else:
        cls = TwoPhaseModel
    model = cls(n_ranks=args.ranks, n_iters=args.iters)
    result = ModelChecker(model).run(check_liveness=not args.naive)
    print(result, file=out)
    if not result.ok:
        print("counterexample trace:", file=out)
        for step in result.trace:
            print(f"  {step}", file=out)
    # the naive model is *supposed* to fail; exit 0 when the outcome matches
    expected_ok = not args.naive
    return 0 if result.ok == expected_ok else 1


def cmd_bench(args, out) -> int:
    """``repro bench``: regenerate one figure, or run the perf suite.

    With ``--figure`` the named sweep is regenerated (``--jobs`` fans its
    cells over a process pool).  Without it, the wall-clock performance
    suite runs and writes a schema-validated ``BENCH_perf.json``; with
    ``--check-against BASELINE`` the run fails (exit 1) if event throughput
    regressed more than 30% against the baseline document.
    """
    if args.figure is None:
        return _cmd_bench_perf(args, out)

    from repro import harness
    from repro.harness import render_table

    scale, jobs = args.scale, args.jobs
    runners = {
        "fig2": lambda: harness.fig2_single_node_overhead(scale=scale,
                                                          jobs=jobs),
        "fig3": lambda: harness.fig3_multi_node_overhead(scale=scale,
                                                         jobs=jobs),
        "fig4": lambda: harness.fig4_bandwidth_kernel_patch(scale=scale,
                                                            jobs=jobs),
        "fig5": lambda: harness.fig5_osu_latency(scale=scale, jobs=jobs),
        "fig6": lambda: harness.fig6_checkpoint_time(scale=scale, jobs=jobs),
        "fig7": lambda: harness.fig7_restart_time(scale=scale, jobs=jobs),
        "fig8": lambda: harness.fig8_ckpt_breakdown(scale=scale, jobs=jobs),
        "fig9": harness.fig9_cross_cluster_migration,
        "mem": lambda: harness.memory_overhead_analysis(scale=scale,
                                                        jobs=jobs),
        "resilience": lambda: harness.resilience_efficiency_sweep(jobs=jobs),
        "ablation": lambda: harness.ablation_two_phase_cost(jobs=jobs),
    }
    print(render_table(runners[args.figure]()), file=out)
    return 0


def _cmd_bench_perf(args, out) -> int:
    """The perf-suite leg of ``repro bench`` (no ``--figure``)."""
    from repro.harness.perfbench import (
        compare_bench,
        load_bench_doc,
        run_suite,
        write_bench_doc,
    )

    doc = run_suite(quick=args.quick, jobs=args.jobs,
                    log=lambda msg: print(msg, file=out))
    write_bench_doc(doc, args.out)
    print(f"wrote {args.out} ({len(doc['metrics'])} metrics, "
          f"schema {doc['schema']})", file=out)

    if args.check_against:
        baseline = load_bench_doc(args.check_against)
        failures = compare_bench(doc, baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=out)
            return 1
        print(f"perf check vs {args.check_against}: within budget", file=out)
    return 0


def cmd_conformance(args, out) -> int:
    """``repro conformance``: the cross-matrix restart conformance sweep.

    Exit code 0 only when every cycle passed every oracle; any divergence
    prints with a one-line repro recipe and exits 1.
    """
    from repro.conformance import run_conformance

    apps = tuple(a for a in (args.apps or "").split(",") if a) or None
    report = run_conformance(
        tier=args.tier, seed=args.seed, apps=apps,
        n_ranks=args.ranks, n_steps=args.steps,
        n_sources=args.sources, ckpts_per_source=args.ckpts_per_source,
        jobs=args.jobs, only=args.only, protocol=args.protocol,
        shards=args.shards, compact=args.compact,
    )
    print(report.summary(), file=out)
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report.as_dict(), f, indent=2, sort_keys=True)
        print(f"wrote {args.report}", file=out)
    return 0 if report.ok else 1


def cmd_facility(args, out) -> int:
    """``repro facility``: run a queued workload through the facility.

    One facility per invocation (or, with ``--sweep``, every policy × mix
    cell in parallel).  Exit code 0 when every job completed; 1 if any job
    was unschedulable.
    """
    from repro.facility import Facility, facility_sweep, generate_jobs
    from repro.harness import render_table
    from repro.hardware.cluster import make_cluster

    if args.sweep:
        table = facility_sweep(
            n_jobs=args.n_jobs, n_nodes=args.nodes, seed=args.seed,
            ckpt_interval=args.ckpt_interval, jobs=args.jobs,
        )
        print(render_table(table), file=out)
        return 0

    cluster = make_cluster(
        "facility-cli", args.nodes, cores_per_node=args.cores_per_node,
        interconnect=args.net, default_mpi=args.mpi or "craympich",
    )
    fac = Facility(cluster, scheduler=args.policy, seed=args.seed,
                   checkpoint_interval=args.ckpt_interval,
                   protocol=args.protocol,
                   shards=args.shards if args.shards > 1 else None,
                   compact=args.compact)
    fac.submit_all(generate_jobs(args.mix, args.n_jobs, seed=args.seed))
    rep = fac.run()
    print(rep.summary(), file=out)
    if args.show_jobs:
        print(file=out)
        print(render_table(rep.job_table(limit=args.show_jobs)), file=out)
    if args.json:
        with open(args.json, "w") as f:
            f.write(rep.to_json())
        print(f"wrote {args.json}", file=out)
    return 0 if rep.failed_jobs == 0 else 1


def cmd_trace(args, out) -> int:
    """``repro trace``: run a workload with tracing on, write a Chrome trace.

    The target is either an application name (run under MANA exactly like
    ``repro run``) or the path of a Python example script, executed with
    process-wide tracing enabled so every engine it creates is captured.
    """
    import contextlib
    import runpy

    from repro.obs import (
        Category,
        disable_tracing,
        drain_tracers,
        enable_tracing,
        metrics_table,
        write_chrome_trace,
    )

    categories = None if args.engine_events else Category.DEFAULT
    enable_tracing(categories)
    try:
        if args.target.endswith(".py"):
            label = args.target.rsplit("/", 1)[-1].removesuffix(".py")
            with contextlib.redirect_stdout(out):
                runpy.run_path(args.target, run_name="__main__")
        else:
            from repro.harness.experiments import _launch_mana_app

            label = args.target
            spec, cfg, _factory = _app_factory(args.target, args.steps)
            n_ranks = spec.valid_ranks(args.ranks)
            cluster = _make_cluster(args)
            job = _launch_mana_app(cluster, spec, cfg, n_ranks,
                                   -(-n_ranks // args.nodes))
            if args.checkpoint_at is not None:
                job.checkpoint_at(args.checkpoint_at)
            job.run_to_completion()
    finally:
        tracers = drain_tracers()
        disable_tracing()

    doc = write_chrome_trace(args.out, tracers, label=label)
    n_events = sum(len(t.events) for t in tracers)
    dropped = sum(t.dropped for t in tracers)
    print(f"trace: {len(tracers)} engine(s), {n_events} events"
          + (f" ({dropped} dropped)" if dropped else "")
          + f", {len(doc['traceEvents'])} trace entries -> {args.out}",
          file=out)
    print("open it at https://ui.perfetto.dev (or chrome://tracing)",
          file=out)
    if args.metrics:
        for i, tracer in enumerate(tracers, start=1):
            print(file=out)
            print(metrics_table(tracer.engine.metrics,
                                title=f"metrics: engine-{i}"), file=out)
    return 0


_COMMANDS = {
    "apps": cmd_apps,
    "run": cmd_run,
    "restart": cmd_restart,
    "inspect": cmd_inspect,
    "verify": cmd_verify,
    "bench": cmd_bench,
    "conformance": cmd_conformance,
    "facility": cmd_facility,
    "trace": cmd_trace,
}


def main(argv: Optional[list[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out if out is not None else sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
