"""RankDriver: executes one rank's program on the simulation engine.

Scheduling policy:

* consecutive :class:`Compute` leaves run inline, accumulating modeled cost
  (scaled by the owning node's speed) — one engine event then covers the
  whole batch, which keeps large iteration counts cheap to simulate;
* a :class:`Call` leaf is issued after the accumulated compute delay, and
  the driver parks until the call's completion resolves;
* between any two leaves the driver consults its gates —
  :attr:`quiesced` (MANA's do-ckpt freeze) and the optional
  :attr:`call_gate` hook (MANA's "wait before next collective call" /
  wrapper-entry hold) — so a checkpoint helper can stop the rank exactly at
  the boundaries the paper's protocol reasons about.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.mprog.ast import Call, Compute
from repro.mprog.interp import Action, Interpreter
from repro.simtime import Completion, Engine


class DriverError(RuntimeError):
    """Driver misuse (starting twice, resuming a running driver, ...)."""


#: Re-schedule through the event queue after this many inline zero-time
#: compute leaves, so a compute-only While loop cannot starve the engine.
_MAX_INLINE = 10_000


class RankDriver:
    """Drives one rank's interpreter against an :class:`MpiApi`."""

    def __init__(
        self,
        engine: Engine,
        interpreter: Interpreter,
        api: Any,
        core_speed: float = 1.0,
        label: str = "rank",
    ) -> None:
        self.engine = engine
        self.interp = interpreter
        self.api = api
        self.core_speed = core_speed
        self.label = label
        self.finished = Completion(engine, label=f"{label}:finished")
        self._started = False
        #: True once the rank was killed by a fault (node crash).  A dead
        #: driver never advances again; late completions are ignored.
        self.dead = False
        #: True between do-ckpt quiesce and resume; freezes leaf boundaries.
        self.quiesced = False
        #: Optional hook consulted before issuing a Call leaf.  Returning
        #: False parks the driver; the gate owner must later call
        #: :meth:`release` to continue.  MANA uses this for the
        #: wrapper-entry hold of Algorithm 2 line 28.
        self.call_gate: Optional[Callable[[Action], bool]] = None
        #: where the rank is parked: "running" | "gate" | "call" | "quiesce"
        #:  | "finished"
        self.parked_at = "running"
        #: invoked with the finished leaf's instance key just before the
        #: interpreter advances past it; MANA clears per-leaf guard and
        #: journal state here.
        self.leaf_done_hook: Optional[Callable[[tuple], None]] = None
        self._pending: Optional[Callable[[], None]] = None
        #: outstanding call action while blocked in the lower half
        self.current_call: Optional[Action] = None
        #: cumulative modeled compute seconds (diagnostics)
        self.compute_seconds = 0.0

    # --------------------------------------------------------------- control

    def start(self) -> None:
        """Begin execution (schedules the first event)."""
        if self._started:
            raise DriverError(f"driver {self.label} started twice")
        self._started = True
        self.engine.call_after(0.0, self._advance, label=f"{self.label}:start")

    def quiesce(self) -> None:
        """Freeze the rank at its next leaf boundary (or where it is parked)."""
        self.quiesced = True

    def kill(self) -> None:
        """Terminate the rank permanently (its node crashed).

        The stored continuation is dropped, the pending-state machinery is
        disabled, and the ``finished`` completion is cancelled so a joint
        ``all_of`` over a job's ranks can never resolve once a rank is lost.
        Idempotent; there is no way back — recovery means restarting a fresh
        driver from a checkpoint.
        """
        self.dead = True
        self.quiesced = False
        self._pending = None
        self.parked_at = "dead"
        if not self.finished.done:
            self.finished.cancel()

    def resume(self) -> None:
        """Undo :meth:`quiesce`; continue from the stored continuation."""
        if self.dead or not self.quiesced:
            return
        self.quiesced = False
        self._fire_pending()

    def release(self) -> None:
        """Release a driver parked on its :attr:`call_gate`."""
        if self.parked_at == "gate":
            self._fire_pending()

    def _fire_pending(self) -> None:
        if self._pending is not None:
            pending, self._pending = self._pending, None
            self.parked_at = "running"
            self.engine.call_after(0.0, pending, label=f"{self.label}:resume")

    def _park(self, where: str, continuation: Callable[[], None]) -> None:
        self.parked_at = where
        self._pending = continuation

    @property
    def is_parked(self) -> bool:
        """True while the driver holds a stored continuation."""
        return self._pending is not None

    def current_call_key(self) -> Optional[tuple]:
        """Identity of the in-progress call leaf's dynamic instance:
        (node path, leaves completed so far).  Stable across checkpoint and
        restart — the interpreter continuation restores both components —
        so wrappers can make side-effecting call bodies exactly-once even
        though restart re-executes the leaf."""
        if self.current_call is None:
            return None
        return (tuple(self.current_call.path), self.interp.leaves_done)

    # ------------------------------------------------------------- main loop

    def _advance(self) -> None:
        if self.dead:
            return
        if self.quiesced:
            self._park("quiesce", self._advance)
            return
        acc_cost = 0.0
        inline = 0
        while True:
            action = self.interp.next_action()
            if action.kind == "done":
                self.parked_at = "finished"
                if acc_cost > 0:
                    self.finished.resolve_after(acc_cost, None)
                else:
                    self.finished.resolve(None)
                return
            if action.kind == "compute":
                node: Compute = action.node
                cost = node.eval_cost(self.interp.state) / self.core_speed
                node.fn(self.interp.state)
                self.interp.leaf_done()
                acc_cost += cost
                self.compute_seconds += cost
                inline += 1
                if inline >= _MAX_INLINE:
                    self.engine.call_after(
                        acc_cost, self._advance, label=f"{self.label}:batch"
                    )
                    return
                if self.quiesced:
                    # freeze after charging the compute we already ran
                    self.engine.call_after(
                        acc_cost, self._advance, label=f"{self.label}:quiesce-tail"
                    )
                    return
                continue
            # call leaf: charge accumulated compute first, then issue
            if acc_cost > 0:
                self.engine.call_after(
                    acc_cost, self._maybe_issue, action,
                    label=f"{self.label}:pre-call"
                )
            else:
                self._maybe_issue(action)
            return

    def _maybe_issue(self, action: Action) -> None:
        if self.dead:
            return
        if self.quiesced:
            self._park("quiesce", lambda: self._maybe_issue(action))
            return
        if self.call_gate is not None and not self.call_gate(action):
            self._park("gate", lambda: self._maybe_issue(action))
            return
        self._issue(action)

    def _issue(self, action: Action) -> None:
        node: Call = action.node
        self.current_call = action
        self.parked_at = "call"
        completion = node.fn(self.interp.state, self.api)
        if not isinstance(completion, Completion):
            raise DriverError(
                f"call leaf {node.label!r} returned {type(completion).__name__}, "
                "expected a Completion"
            )
        completion.on_done(lambda value: self._call_finished(node, value))

    def _call_finished(self, node: Call, value: Any) -> None:
        if self.dead:
            return  # the call outlived its rank (e.g. a zombie collective)
        if node.store is not None:
            self.interp.state[node.store] = value
        if self.leaf_done_hook is not None:
            key = self.current_call_key()
            if key is not None:
                self.leaf_done_hook(key)
        self.current_call = None
        self.parked_at = "running"
        self.interp.leaf_done()
        if self.quiesced:
            # The call completed while frozen (e.g. a send finishing during
            # drain): the continuation pointer has advanced, execution resumes
            # only after the helper releases us.
            self._park("quiesce", self._advance)
            return
        self._advance()
