"""The MPI API surface application programs are written against.

Programs call these methods from :class:`~repro.mprog.ast.Call` builders.
Two implementations exist:

* :class:`NativeApi` — a thin pass-through to the raw
  :class:`~repro.mpilib.world.MpiEndpoint` (the paper's native baseline);
* :class:`~repro.mana.wrappers.ManaApi` — MANA's interposition layer, which
  virtualizes handles, records persistent calls, counts p2p traffic for
  draining, applies the two-phase collective wrapper, and charges the
  FS-register switch cost on every call.

Communicator arguments and results are *opaque values*: real
:class:`Communicator` objects natively, small integer virtual handles under
MANA.  Programs must treat them as tokens, which keeps one program text
valid in both modes — and picklable under MANA.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.mpilib.comm import ANY_SOURCE, ANY_TAG, Communicator, Group
from repro.mpilib.datatypes import Datatype, contiguous, vector
from repro.mpilib.datatypes import struct as struct_type
from repro.mpilib.ops import ReduceOp
from repro.mpilib.world import MpiEndpoint
from repro.simtime import Completion


class MpiApi:
    """Abstract API; see module docstring.  All methods return Completions
    except the purely local ones (``rank``/``size``/group algebra/topology
    queries)."""

    # subclasses define: rank, size, comm_world, and all operations

    def topology(self, comm: Any):
        """The CartTopology/GraphTopology attached to ``comm`` (or None)."""
        raise NotImplementedError


class NativeApi(MpiApi):
    """Direct pass-through to a raw endpoint (no interposition)."""

    def __init__(self, endpoint: MpiEndpoint) -> None:
        self.endpoint = endpoint

    @property
    def rank(self) -> int:
        """This rank's index in MPI_COMM_WORLD."""
        return self.endpoint.rank

    @property
    def size(self) -> int:
        """Number of ranks in MPI_COMM_WORLD."""
        return self.endpoint.world.size

    @property
    def comm_world(self) -> Communicator:
        """The world communicator handle."""
        return self.endpoint.comm_world

    # ------------------------------------------------------------------ p2p

    def send(self, dest: int, data: Any, tag: int = 0,
             comm: Optional[Communicator] = None,
             size: Optional[int] = None) -> Completion:
        """MPI_Send (blocking; resolves when the buffer is reusable)."""
        return self.endpoint.send(dest, data, tag=tag, comm=comm, size=size)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Optional[Communicator] = None) -> Completion:
        """MPI_Recv; resolves with (data, Status)."""
        return self.endpoint.recv(source=source, tag=tag, comm=comm)

    def sendrecv(self, dest: int, data: Any, source: int,
                 tag: int = 0, comm: Optional[Communicator] = None,
                 size: Optional[int] = None) -> Completion:
        """Combined send+recv (halo-exchange workhorse); resolves with the
        received (data, status)."""
        self.endpoint.send(dest, data, tag=tag, comm=comm, size=size)
        return self.endpoint.recv(source=source, tag=tag, comm=comm)

    def exchange(self, sends: list, recvs: list,
                 comm: Optional[Communicator] = None) -> Completion:
        """Batched neighbour exchange (isend/irecv + waitall): posts all
        ``(dest, data, tag, size)`` sends and ``(source, tag)`` receives;
        resolves with the list of (data, status) results in recvs order."""
        from repro.simtime.engine import all_of

        for dest, data, tag, size in sends:
            self.endpoint.isend(dest, data, tag=tag, comm=comm, size=size)
        outs = [self.endpoint.recv(source=src, tag=tag, comm=comm)
                for src, tag in recvs]
        return all_of(self.endpoint.engine, outs, label="native-exchange")

    # ----------------------------------------------------------- collectives

    def barrier(self, comm: Optional[Communicator] = None) -> Completion:
        """MPI_Barrier."""
        return self.endpoint.barrier(comm)

    def bcast(self, data: Any, root: int, comm: Optional[Communicator] = None,
              size: Optional[int] = None) -> Completion:
        """MPI_Bcast from ``root``."""
        return self.endpoint.bcast(data, root, comm=comm, size=size)

    def reduce(self, data: Any, op: ReduceOp, root: int,
               comm: Optional[Communicator] = None,
               size: Optional[int] = None) -> Completion:
        """MPI_Reduce to ``root``."""
        return self.endpoint.reduce(data, op, root, comm=comm, size=size)

    def allreduce(self, data: Any, op: ReduceOp,
                  comm: Optional[Communicator] = None,
                  size: Optional[int] = None) -> Completion:
        """MPI_Allreduce."""
        return self.endpoint.allreduce(data, op, comm=comm, size=size)

    def gather(self, data: Any, root: int,
               comm: Optional[Communicator] = None,
               size: Optional[int] = None) -> Completion:
        """MPI_Gather to ``root``."""
        return self.endpoint.gather(data, root, comm=comm, size=size)

    def allgather(self, data: Any, comm: Optional[Communicator] = None,
                  size: Optional[int] = None) -> Completion:
        """MPI_Allgather."""
        return self.endpoint.allgather(data, comm=comm, size=size)

    def scatter(self, chunks: Any, root: int,
                comm: Optional[Communicator] = None,
                size: Optional[int] = None) -> Completion:
        """MPI_Scatter from ``root``."""
        return self.endpoint.scatter(chunks, root, comm=comm, size=size)

    def alltoall(self, chunks: list, comm: Optional[Communicator] = None,
                 size: Optional[int] = None) -> Completion:
        """MPI_Alltoall."""
        return self.endpoint.alltoall(chunks, comm=comm, size=size)

    def reduce_scatter(self, data: Any, op: ReduceOp,
                       comm: Optional[Communicator] = None,
                       size: Optional[int] = None) -> Completion:
        """MPI_Reduce_scatter (equal blocks)."""
        return self.endpoint.reduce_scatter(data, op, comm=comm, size=size)

    def scan(self, data: Any, op: ReduceOp,
             comm: Optional[Communicator] = None,
             size: Optional[int] = None) -> Completion:
        """MPI_Scan (inclusive prefix reduction)."""
        return self.endpoint.scan(data, op, comm=comm, size=size)

    # --------------------------------------------------------- communicators

    def comm_dup(self, comm: Optional[Communicator] = None) -> Completion:
        """MPI_Comm_dup (collective)."""
        return self.endpoint.comm_dup(comm)

    def comm_split(self, color: int, key: int,
                   comm: Optional[Communicator] = None) -> Completion:
        """MPI_Comm_split (collective); resolves with the new communicator or None."""
        return self.endpoint.comm_split(color, key, comm=comm)

    def comm_create(self, group: Group,
                    comm: Optional[Communicator] = None) -> Completion:
        """MPI_Comm_create over a group (collective)."""
        return self.endpoint.comm_create(group, comm=comm)

    def cart_create(self, dims: list[int], periods: list[bool],
                    comm: Optional[Communicator] = None) -> Completion:
        """MPI_Cart_create (collective); the result carries a CartTopology."""
        return self.endpoint.cart_create(dims, periods, comm=comm)

    def graph_create(self, edges: list,
                     comm: Optional[Communicator] = None) -> Completion:
        """MPI_Graph_create (collective)."""
        return self.endpoint.graph_create(edges, comm=comm)

    def comm_free(self, comm: Communicator) -> None:
        """MPI_Comm_free: release the communicator's lower-half handle."""
        self.endpoint.comm_free(comm)

    # ------------------------------------------------- groups and datatypes
    #
    # Natively the opaque tokens ARE the value objects (Group/Datatype), so
    # the algebra is direct and the frees are no-ops (Python owns the
    # memory).  Under MANA the same calls mint virtual ids and append to
    # the record log — the program text cannot tell the difference.

    def comm_group(self, comm: Optional[Communicator] = None) -> Group:
        """MPI_Comm_group: the group of a communicator's members."""
        return (comm or self.comm_world).group

    def group_incl(self, group: Group, ranks: list[int]) -> Group:
        """MPI_Group_incl."""
        return group.incl(ranks)

    def group_excl(self, group: Group, ranks: list[int]) -> Group:
        """MPI_Group_excl."""
        return group.excl(ranks)

    def group_union(self, a: Group, b: Group) -> Group:
        """MPI_Group_union."""
        return a.union(b)

    def group_intersection(self, a: Group, b: Group) -> Group:
        """MPI_Group_intersection."""
        return a.intersection(b)

    def group_free(self, group: Group) -> None:
        """MPI_Group_free (a no-op natively)."""

    def group_size(self, group: Group) -> int:
        """MPI_Group_size."""
        return group.size

    def group_rank(self, group: Group) -> Optional[int]:
        """MPI_Group_rank (None for non-members)."""
        return group.rank_of(self.rank)

    def type_contiguous(self, count: int, base: Datatype) -> Datatype:
        """MPI_Type_contiguous."""
        return contiguous(count, base)

    def type_vector(self, count: int, blocklength: int, stride: int,
                    base: Datatype) -> Datatype:
        """MPI_Type_vector."""
        return vector(count, blocklength, stride, base)

    def type_struct(self, fields: list) -> Datatype:
        """MPI_Type_create_struct."""
        return struct_type(fields)

    def type_free(self, dtype: Datatype) -> None:
        """MPI_Type_free (a no-op natively)."""

    def resolve_type(self, dtype: Datatype) -> Datatype:
        """The Datatype behind an opaque token (identity natively)."""
        return dtype

    # ------------------------------------------------------------- local ops

    def comm_size(self, comm: Any) -> int:
        """MPI_Comm_size."""
        return (comm or self.comm_world).size

    def comm_rank(self, comm: Any) -> Optional[int]:
        """MPI_Comm_rank (None for non-members)."""
        return (comm or self.comm_world).rank_of_world(self.rank)

    def topology(self, comm: Any):
        """The topology attached to a communicator, if any."""
        return (comm or self.comm_world).topology
