"""Native job runner: programs on raw MPI, no MANA, no interposition.

This is the paper's baseline configuration.  Figures 2 and 3 are ratios of
MANA-run wall time to the wall time produced here.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware.cluster import Cluster
from repro.mpilib.launcher import launch
from repro.mpilib.world import MpiWorld
from repro.mprog.ast import Program
from repro.mprog.interp import Interpreter, ProgramState
from repro.runtime.api import NativeApi
from repro.runtime.driver import RankDriver
from repro.simtime import Engine
from repro.simtime.engine import all_of


class NativeJob:
    """An MPI job running programs directly on endpoints."""

    def __init__(
        self,
        engine: Engine,
        world: MpiWorld,
        programs: list[Program],
        states: Optional[list[ProgramState]] = None,
    ) -> None:
        if len(programs) != world.size:
            raise ValueError(
                f"{len(programs)} programs for a world of {world.size} ranks"
            )
        self.engine = engine
        self.world = world
        self.drivers: list[RankDriver] = []
        for rank, program in enumerate(programs):
            state = states[rank] if states else ProgramState()
            state.setdefault("rank", rank)
            state.setdefault("size", world.size)
            node = world.cluster.node(world.node_of(rank))
            driver = RankDriver(
                engine,
                Interpreter(program, state),
                NativeApi(world.endpoints[rank]),
                core_speed=node.core_speed,
                label=f"native-r{rank}",
            )
            self.drivers.append(driver)
        self.finished = all_of(
            engine, [d.finished for d in self.drivers], label="native-job"
        )

    def start(self) -> "NativeJob":
        """Begin execution (schedules the first event)."""
        for d in self.drivers:
            d.start()
        return self

    def run_to_completion(self) -> float:
        """Start (if needed), run the engine until every rank finishes, and
        return the job's wall time (excluding whatever preceded start)."""
        t0 = self.engine.now
        if not any(d._started for d in self.drivers):
            self.start()
        self.engine.run()
        if not self.finished.done:
            raise RuntimeError(
                "native job did not finish: "
                + ", ".join(f"{d.label}@{d.parked_at}" for d in self.drivers
                            if d.parked_at != "finished")
            )
        return self.engine.now - t0

    @property
    def states(self) -> list[ProgramState]:
        """Each rank's live ProgramState, by rank."""
        return [d.interp.state for d in self.drivers]


def run_native(
    cluster: Cluster,
    program_factory: Callable[[int, int], Program],
    n_ranks: int,
    ranks_per_node: Optional[int] = None,
    mpi: Optional[str] = None,
    engine: Optional[Engine] = None,
) -> NativeJob:
    """Launch and run a native job; ``program_factory(rank, size)`` builds
    each rank's program.  Returns the finished job (inspect ``states``)."""
    engine = engine if engine is not None else Engine()
    world = launch(engine, cluster, n_ranks, ranks_per_node=ranks_per_node, mpi=mpi)
    programs = [program_factory(r, n_ranks) for r in range(n_ranks)]
    job = NativeJob(engine, world, programs)
    job.run_to_completion()
    return job
