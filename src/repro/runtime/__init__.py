"""Rank execution: program drivers and the native (non-MANA) job runner.

A :class:`RankDriver` marries one rank's :class:`~repro.mprog.Interpreter`
to the simulation engine: it executes compute leaves (charging their modeled
cost at the owning node's speed), issues MPI call leaves through an
:class:`MpiApi`, and parks while calls are outstanding.  Drivers expose the
pause/resume hooks MANA's checkpoint helper thread uses to quiesce a rank at
leaf boundaries.

:class:`NativeJob` runs programs directly against raw MPI endpoints — the
paper's "native" baseline, with zero interposition overhead.
"""

from repro.runtime.api import MpiApi, NativeApi
from repro.runtime.driver import DriverError, RankDriver
from repro.runtime.native import NativeJob, run_native

__all__ = [
    "DriverError",
    "MpiApi",
    "NativeApi",
    "NativeJob",
    "RankDriver",
    "run_native",
]
