"""Algorithm 2's vocabulary and the rank-side state machine.

Messages (coordinator → rank): ``intend-to-checkpoint``, ``extra-iteration``,
``do-ckpt``; rank states reported back: ``ready``, ``in-phase-1``,
``exit-phase-2`` (§2.5).

One disambiguation of the published pseudocode, recorded here and in
DESIGN.md: the *commit point* of a collective is the completion of its
trivial barrier.  Once every rank of the communicator has entered phase 1,
the barrier completes and all of them flow into phase 2 regardless of a
pending checkpoint intent — this is what makes a rank already inside the
real collective (Lemma 2 case b) able to finish, which Theorem 2's liveness
argument requires.  Conversely, under a pending intent no rank may *enter*
the wrapper (Algorithm 2 line 28, "wait before next coll. comm. call"), so
any trivial barrier that is incomplete when the last ack is collected can
never complete during the checkpoint window — which is what makes
``in-phase-1`` a safe state to checkpoint (the trivial barrier is the one
interruptible collective).  The coordinator loops extra iterations while any
rank reports ``exit-phase-2``, exactly as printed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CkptMsg(enum.Enum):
    """Control-plane message types (coordinator ↔ rank helper)."""

    INTEND_TO_CKPT = "intend-to-ckpt"
    EXTRA_ITERATION = "extra-iteration"
    DO_CKPT = "do-ckpt"
    # checkpoint pipeline (DMTCP-style, after do-ckpt)
    BOOKMARKS = "bookmarks"            # rank -> coord: per-peer send counts
    DRAIN = "drain"                    # coord -> rank: expected recv totals
    DRAINED = "drained"                # rank -> coord: drain complete + size
    WRITE = "write"                    # coord -> rank: write your image
    WRITE_DONE = "write-done"          # rank -> coord
    RESUME = "resume"                  # coord -> rank: continue computing
    # rank replies to intend/extra-iteration
    STATE_REPLY = "state-reply"
    #: unsolicited rank -> coordinator: "my in-phase-1 reply went stale —
    #: the trivial barrier completed and I am committing into phase 2; wait
    #: for my exit-phase-2".  Discovered necessary by the model checker: a
    #: reply can be overtaken by the barrier completion (Challenge I).
    REVISE_IN_PHASE_1 = "revise-in-phase-1"
    #: coordinator -> rank: revision processed; proceed into phase 2
    REVISE_ACK = "revise-ack"
    # topological-sort protocol (protocol v2; see docs/protocols.md)
    #: coordinator -> rank: freeze now and report state + counters in one
    #: round (the topo protocol has no extra iterations)
    TOPO_INTENT = "topo-intent"
    #: rank -> coordinator: state + collective info + send/receive bookmarks
    TOPO_STATE = "topo-state"


#: coordinator phase -> the name of the trace span covering it
#: (``repro.obs`` vocabulary; see docs/observability.md).  The coordinator
#: opens/closes these spans as the protocol advances; ``harness`` tests use
#: the same mapping to locate phases in a captured trace.
PHASE_SPANS = {
    "collect-states": "ckpt:intent",
    "bookmarks": "ckpt:quiesce",
    "drain": "ckpt:drain",
    "write": "ckpt:write",
}

#: the same mapping for the topological-sort protocol.  Kept separate from
#: :data:`PHASE_SPANS` on purpose: Algorithm-2 traces must stay byte-for-byte
#: identical whether or not the topo engine exists, and the topo drain/write
#: spans may overlap (per-wave writes start while later ranks still drain),
#: which the alg2 vocabulary never allows.
TOPO_PHASE_SPANS = {
    "topo-intent": "ckpt:topo-intent",
    "topo-drain": "ckpt:topo-drain",
    "topo-write": "ckpt:topo-write",
}

#: checkpoint protocols selectable via the ``protocol=`` knob
PROTOCOLS = ("alg2", "topo")


def ctrl_instant_name(msg: "CkptMsg") -> str:
    """Trace-instant name for a control-plane message arriving at a rank."""
    return f"ctrl:{msg.value}"


class RankCkptState(enum.Enum):
    """What a rank reports to the coordinator (Algorithm 2)."""

    READY = "ready"
    IN_PHASE_1 = "in-phase-1"
    EXIT_PHASE_2 = "exit-phase-2"


class WrapperPhase(enum.Enum):
    """Where a rank currently is relative to the collective wrapper."""

    NONE = "none"              # not inside any collective wrapper
    ENTRY_HELD = "entry-held"  # at wrapper entry, held by a pending intent
    PHASE_1 = "phase-1"        # inside the trivial barrier
    #: barrier completed after an in-phase-1 reply: the rank has sent a
    #: revision and parks here until the coordinator acknowledges it
    COMMIT_PENDING = "commit-pending"
    PHASE_2 = "phase-2"        # inside the real collective (committed)


class ProtocolMode(enum.Enum):
    """Where a rank stands in the checkpoint protocol."""
    NORMAL = "normal"
    PRE_CKPT = "pre-ckpt"      # intend acked; wrapper entry gated
    QUIESCED = "quiesced"      # do-ckpt received; rank frozen


@dataclass
class RankProtocol:
    """Per-rank protocol bookkeeping, owned by the rank runtime.

    The runtime consults :meth:`may_enter_wrapper` at wrapper entry and
    reports through :meth:`classify` when an intend/extra-iteration message
    arrives.  ``pending_reply`` is set while the rank is in phase 2 and owes
    the coordinator a deferred ``exit-phase-2`` answer.
    """

    mode: ProtocolMode = ProtocolMode.NORMAL
    phase: WrapperPhase = WrapperPhase.NONE
    #: a reply owed to the coordinator once the rank exits phase 2
    pending_reply: bool = False
    #: set when the rank exited phase 2 during the current intent window
    exited_phase2: bool = False
    #: last reply was in-phase-1 and has not been revised — committing into
    #: phase 2 while this is set requires sending REVISE_IN_PHASE_1
    replied_in_phase1: bool = False

    def may_enter_wrapper(self) -> bool:
        """Algorithm 2 line 28: under a pending intent, hold at entry."""
        return self.mode is ProtocolMode.NORMAL

    def classify(self) -> Optional[RankCkptState]:
        """State to report for an intend/extra-iteration message, or None if
        the reply must wait until the rank leaves phase 2."""
        if self.phase in (WrapperPhase.PHASE_2, WrapperPhase.COMMIT_PENDING):
            return None
        if self.exited_phase2:
            # exited a collective since the last round: report it (once)
            self.exited_phase2 = False
            return RankCkptState.EXIT_PHASE_2
        if self.phase is WrapperPhase.PHASE_1:
            return RankCkptState.IN_PHASE_1
        return RankCkptState.READY

    def note_phase2_exit(self) -> bool:
        """Called by the wrapper when the real collective finishes.

        Returns True if a deferred reply is owed (the coordinator asked
        while we were inside).
        """
        self.phase = WrapperPhase.NONE
        if self.pending_reply:
            # The deferred reply itself reports exit-phase-2; don't also
            # flag it for the next round.
            self.pending_reply = False
            return True
        if self.mode is not ProtocolMode.NORMAL:
            self.exited_phase2 = True
        return False
