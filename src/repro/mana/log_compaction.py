"""Checkpoint-time compaction of the record-replay log.

MANA's record log grows with *call history*: a job that churns
communicators, datatypes or files for a month replays every one of those
calls at restart, even though almost all of them created handles that were
freed long ago.  The implementation-oblivious line of work (PAPERS.md,
arXiv:2309.14996) prunes the log at checkpoint time so restart cost tracks
*live* handles instead.  This module is that pass.

Three mechanisms, applied per rank over the rank-local log:

**Dead-handle elimination.**  A create whose result handle was freed again
before the checkpoint — and whose handle is not referenced by any entry the
compactor keeps — cancels together with its free.  Liveness flows backward
through the handle-dependency DAG: a kept entry pins the creates of every
virtual id it references (a live sub-sub-communicator pins its parent's
split, which pins the grandparent's dup, ...).

**Cross-rank-consistent collective cancellation.**  Communicator-management
entries are genuine collectives at replay: every member of the parent
communicator must replay the entry or none may, or the survivors block in
:meth:`~repro.mpilib.world.MpiWorld.collective_arrive` forever.  Each rank
compacts alone, so cancellation is restricted to predicates that are
provably *symmetric* across the participants under MPI semantics (frees of
collectively-created handles are themselves collective, MPI-2.2 §6.4.3):

* ``comm_dup`` / ``cart_create`` / ``graph_create`` / ``file_open``
  preserve the parent's membership — every participant holds a pair-freed
  create exactly when this rank does, so a pair-freed, unreferenced entry
  cancels everywhere.
* ``comm_split`` cancels only when the *recorded result membership* equals
  the parent's membership (single colour, nobody undefined): then the
  participant set saw identical histories.  Proper-subset splits and
  non-member entries (``result_vid is None``) are always kept — the
  non-members cannot observe the members' liveness, so nobody cancels.
* ``comm_create`` cancels only when the recorded target group equals the
  parent's membership, by the same argument.

Membership is tracked symbolically while walking the log (the world
communicator seeds it; results inherit or record their groups), and the
:func:`check_collective_consistency` oracle re-derives the global replay
schedule from all ranks' compacted logs to verify that no rank is left
waiting on a cancelled participant — the conformance harness runs it on
every compacted checkpoint.

**Local-entry elision (the snapshot fast path).**  Datatype and
group-algebra entries are local in MPI: nothing in a kept collective entry
ever references them (``comm_create`` records resolved world ranks, not
group vids), so *all* of them leave the log.  Live GROUP/DATATYPE handles
are instead captured as value snapshots straight from the virtual-handle
table (a group is its world-rank tuple, a datatype its constructor recipe)
and restored by direct table binding at replay start — no re-execution,
and dead chains of ``group_incl``/``group_union``/... vanish entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.mana.virtualize import VCOMM_WORLD, HandleKind

if TYPE_CHECKING:  # pragma: no cover - import cycle (record_replay imports us)
    from repro.mana.record_replay import LogEntry


#: Collective creates: replaying one is a real collective over the parent
#: communicator's membership in the fresh lower half.
COLLECTIVE_CREATE_OPS = frozenset({
    "comm_dup", "comm_split", "comm_create", "cart_create", "graph_create",
    "file_open",
})

#: Collective creates that provably preserve the parent's membership (and
#: whose frees are collective over that same membership): pair-freed,
#: unreferenced instances cancel symmetrically on every participant.
_MEMBERSHIP_PRESERVING = frozenset({
    "comm_dup", "cart_create", "graph_create", "file_open",
})

#: Purely local creates: elided wholesale by the snapshot fast path.
LOCAL_CREATE_OPS = frozenset({
    "type_create", "comm_group", "group_incl", "group_excl",
    "group_union", "group_intersection",
})

#: Free/retire ops, with the handle namespace they operate on.  A free's
#: keep/cancel decision is always the same as its create's.
FREE_OPS = {
    "comm_free": HandleKind.COMM,
    "file_close": HandleKind.FILE,
    "group_free": HandleKind.GROUP,
    "type_free": HandleKind.DATATYPE,
}


def entry_refs(entry: "LogEntry") -> tuple:
    """(kind, vid) pairs this entry's replay resolves (excluding its result)."""
    op = entry.op
    if op in ("comm_dup", "comm_group", "comm_split", "comm_create",
              "cart_create", "graph_create", "file_open"):
        return ((HandleKind.COMM, entry.args[0]),)
    if op in ("group_incl", "group_excl"):
        return ((HandleKind.GROUP, entry.args[0]),)
    if op in ("group_union", "group_intersection"):
        return ((HandleKind.GROUP, entry.args[0]),
                (HandleKind.GROUP, entry.args[1]))
    if op in FREE_OPS:
        return ((FREE_OPS[op], entry.args[0]),)
    return ()


@dataclass
class CompactionStats:
    """What one rank's compaction pass did (stored in the image)."""

    examined: int = 0
    kept: int = 0
    #: create+free pairs of collective handles cancelled together
    cancelled_pairs: int = 0
    #: local (datatype / group-algebra) entries elided by the fast path
    elided_local: int = 0
    #: live GROUP/DATATYPE handles captured as direct table bindings
    snapshot_bindings: int = 0

    def as_dict(self) -> dict:
        """Plain-dict form, as stored in the checkpoint image."""
        return {
            "examined": self.examined,
            "kept": self.kept,
            "cancelled_pairs": self.cancelled_pairs,
            "elided_local": self.elided_local,
            "snapshot_bindings": self.snapshot_bindings,
        }


@dataclass
class CompactionResult:
    """Kept entries (original order preserved) plus the pass statistics."""

    entries: list = field(default_factory=list)
    stats: CompactionStats = field(default_factory=CompactionStats)


def comm_membership(entries: list, n_ranks: Optional[int]) -> dict:
    """Symbolic comm-vid -> frozenset(world ranks), walking the log forward.

    ``None`` values mean *unknown* (an old-shape image without recorded
    result groups); unknown membership disables every cancellation that
    needs it — correctness degrades to keeping more, never to pruning more.
    """
    members: dict = {
        VCOMM_WORLD: frozenset(range(n_ranks)) if n_ranks else None,
    }
    for e in entries:
        if e.op not in COLLECTIVE_CREATE_OPS or e.op == "file_open":
            continue
        if e.result_vid is None:
            continue
        group = getattr(e, "group", None)
        if group is not None:
            members[e.result_vid] = frozenset(group)
        elif e.op == "comm_create":
            members[e.result_vid] = frozenset(e.args[1])
        elif e.op in ("comm_dup", "cart_create", "graph_create"):
            members[e.result_vid] = members.get(e.args[0])
        else:  # comm_split from an old image: membership unrecorded
            members[e.result_vid] = None
    return members


def _cancellable(entry: "LogEntry", members: dict) -> bool:
    """May this dead, unreferenced, pair-freed collective create cancel?

    Only when every replay participant provably reaches the same decision
    from its own rank-local log (see the module docstring).
    """
    op = entry.op
    if op in _MEMBERSHIP_PRESERVING:
        return True
    parent = members.get(entry.args[0])
    if parent is None:
        return False
    if op == "comm_split":
        result = members.get(entry.result_vid)
        return result is not None and result == parent
    if op == "comm_create":
        return frozenset(entry.args[1]) == parent
    return False


def compact_log(
    entries: list,
    live: dict,
    n_ranks: Optional[int] = None,
) -> CompactionResult:
    """One rank's compaction pass.

    ``entries`` is the full recorded log; ``live`` maps each
    :class:`HandleKind` to the set of virtual ids still bound when the
    image is cut (the virtual-handle table's bound sets).  Entries are only
    ever *deleted*, never reordered — replay's collective-matching order is
    exactly the surviving subsequence.
    """
    stats = CompactionStats(examined=len(entries))
    created_at: dict = {}
    freed_at: dict = {}
    for i, e in enumerate(entries):
        if e.op in FREE_OPS:
            freed_at[(FREE_OPS[e.op], e.args[0])] = i
        elif e.result_vid is not None:
            created_at[(e.result_kind, e.result_vid)] = i

    members = comm_membership(entries, n_ranks)
    live_set = {
        (kind, vid) for kind, vids in live.items() for vid in vids
    }

    keep = [False] * len(entries)
    needed: set = set()

    def pin(e: "LogEntry") -> None:
        for ref in entry_refs(e):
            needed.add(ref)

    # Reverse walk: every reference points backward (vids are minted in
    # order), so by the time a create is visited every entry that could
    # reference it has already been decided.
    for i in range(len(entries) - 1, -1, -1):
        e = entries[i]
        if e.op in FREE_OPS:
            continue  # a free's fate is decided with its create, below
        if e.op in LOCAL_CREATE_OPS:
            continue  # elided: the snapshot fast path restores live ones
        if e.op in COLLECTIVE_CREATE_OPS:
            if e.result_vid is None:
                # Non-member participation (comm_split undefined colour,
                # comm_create outsider): always kept, so member ranks —
                # which cannot see our liveness — keep theirs too.
                keep[i] = True
                pin(e)
                continue
            key = (e.result_kind, e.result_vid)
            free_idx = freed_at.get(key)
            if key in live_set or key in needed:
                keep[i] = True
                if free_idx is not None:
                    # Kept only as a dependency: replay must still retire
                    # the vid so the table converges to the snapshot.
                    keep[free_idx] = True
                pin(e)
            elif free_idx is not None and _cancellable(e, members):
                stats.cancelled_pairs += 1
            else:
                keep[i] = True
                if free_idx is not None:
                    keep[free_idx] = True
                pin(e)
            continue
        # Unknown op: keep conservatively (forward compatibility).
        keep[i] = True
        pin(e)

    kept_entries = [e for i, e in enumerate(entries) if keep[i]]
    stats.kept = len(kept_entries)
    stats.elided_local = sum(
        1 for i, e in enumerate(entries)
        if not keep[i]
        and (e.op in LOCAL_CREATE_OPS
             or (e.op in FREE_OPS
                 and FREE_OPS[e.op] in (HandleKind.GROUP,
                                        HandleKind.DATATYPE)))
    )
    return CompactionResult(entries=kept_entries, stats=stats)


# --------------------------------------------------------------- oracle

def check_collective_consistency(
    logs: list, n_ranks: int
) -> list[str]:
    """Verify that all ranks' (compacted) logs admit a deadlock-free replay.

    Re-derives the global collective schedule: repeatedly finds a
    communicator-management instance whose *every* participant has it as
    their next collective entry, and advances them together — exactly what
    :meth:`MpiWorld.collective_arrive` requires at replay.  If no instance
    can advance while entries remain, some rank cancelled an entry its
    peers kept (or vice versa); the stuck ranks are reported.

    Returns a list of human-readable problems (empty = consistent).
    """
    queues = [
        [e for e in log if e.op in COLLECTIVE_CREATE_OPS] for log in logs
    ]
    ptr = [0] * len(logs)
    gid: list[dict] = [{VCOMM_WORLD: ("W",)} for _ in logs]
    members_of: dict = {("W",): frozenset(range(n_ranks))}
    seq: dict = {}

    def advance_instance(r: int) -> bool:
        e = queues[r][ptr[r]]
        pg = gid[r].get(e.args[0])
        if pg is None:
            return False  # parent never materialized here: stuck
        part = members_of.get(pg)
        if part is None:
            # Membership unknown (old image): unverifiable — advance this
            # rank alone rather than report a false deadlock.
            ptr[r] += 1
            return True
        for q in part:
            if ptr[q] >= len(queues[q]):
                return False
            eq = queues[q][ptr[q]]
            if eq.op != e.op or gid[q].get(eq.args[0]) != pg:
                return False
        k = seq.get((pg, e.op), 0)
        seq[(pg, e.op)] = k + 1
        for q in part:
            eq = queues[q][ptr[q]]
            if eq.result_vid is not None and eq.result_kind is HandleKind.COMM:
                if e.op == "comm_split":
                    child = (pg, "split", k, eq.args[1])
                else:
                    child = (pg, e.op, k)
                gid[q][eq.result_vid] = child
                group = getattr(eq, "group", None)
                if group is not None:
                    members_of[child] = frozenset(group)
                elif e.op in ("comm_dup", "cart_create", "graph_create"):
                    members_of[child] = part
                elif e.op == "comm_create":
                    members_of[child] = frozenset(eq.args[1])
            ptr[q] += 1
        return True

    progress = True
    while progress:
        progress = False
        for r in range(len(logs)):
            if ptr[r] < len(queues[r]) and advance_instance(r):
                progress = True
                break

    problems = []
    for r in range(len(logs)):
        if ptr[r] < len(queues[r]):
            e = queues[r][ptr[r]]
            problems.append(
                f"rank {r} stuck at collective entry {ptr[r]} "
                f"({e.op} on comm vid {e.args[0]}): some participant "
                "pruned it or never reaches it"
            )
    return problems
