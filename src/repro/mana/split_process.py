"""The split process (§2.1): two programs, one address space.

A :class:`SplitProcess` is one MPI rank's simulated Linux process.  Its
address space holds:

* the **upper half** — the application: text (never saved; it is the binary
  on disk), data/heap (the interpreter state and the named-buffer heap),
  stack (the interpreter continuation), environment — everything the
  checkpoint must capture;
* the **lower half** — the ephemeral MPI library: its text/data/TLS plus
  every region the network driver maps (pinned DMA, driver mmio, SysV
  shared-memory segments).  Discarded at checkpoint, rebuilt by the
  bootstrap program at restart.

The upper half's libc is interposed: ``sbrk`` growth of the upper heap is
redirected to anonymous ``mmap`` regions so the kernel break (which the
restarted bootstrap program owns) is never disturbed — the exact hazard and
fix described in §2.1.

FS-register accounting: every wrapper call pays two FS switches (upper→lower
and back); :meth:`fs_transition_cost` exposes the node kernel's price.
"""

from __future__ import annotations


from repro.hardware.kernelmodel import KernelModel
from repro.memory import AddressSpace, Half, MemoryRegion, Perm, RegionKind, UpperHeap
from repro.net.base import DriverRegionSpec, Interconnect
from repro.mpilib.impls import MpiImplementation

MB = 1 << 20

#: Modeled upper-half fixed regions (text/stack/environ) — small next to app
#: data; the duplicated upper-half copy of the MPI library text (built with
#: mpicc but never initialized, §3.2.2) is added separately.
_UPPER_TEXT = 2 * MB
_UPPER_STACK = 8 * MB
_UPPER_ENVIRON = 64 * 1024


def fixed_upper_bytes(upper_mpi_copy_bytes: int = 26 * MB,
                      heap_base: int = 1 << 20) -> int:
    """Upper-half bytes that exist regardless of application data: app text,
    the duplicated MPI library copy, stack, environ, TLS and the base heap.
    Workload memory models subtract this to hit a target image size."""
    return (_UPPER_TEXT + upper_mpi_copy_bytes + _UPPER_STACK
            + _UPPER_ENVIRON + (64 << 10) + heap_base)


class SplitProcess:
    """One rank's address space with tagged halves."""

    def __init__(
        self,
        rank: int,
        kernel: KernelModel,
        app_mem_bytes: int = 16 * MB,
        upper_mpi_copy_bytes: int = 26 * MB,
    ) -> None:
        self.rank = rank
        self.kernel = kernel
        self.space = AddressSpace()
        self.fs_switches = 0

        # ----- upper half: the application program
        self.space.mmap(_UPPER_TEXT, Perm.RX, Half.UPPER, RegionKind.TEXT,
                        name="app-text")
        # The application was linked with mpicc: it carries its own (never
        # initialized) copy of the MPI library text in the upper half.
        self.space.mmap(upper_mpi_copy_bytes, Perm.RX, Half.UPPER,
                        RegionKind.TEXT, name="app-mpi-copy")
        self.space.mmap(_UPPER_STACK, Perm.RW, Half.UPPER, RegionKind.STACK,
                        name="app-stack")
        self.space.mmap(_UPPER_ENVIRON, Perm.RW, Half.UPPER,
                        RegionKind.ENVIRON, name="app-environ")
        self.space.mmap(64 * 1024, Perm.RW, Half.UPPER, RegionKind.TLS,
                        name="app-tls")
        #: the application data region: its modeled size dominates the
        #: checkpoint image (the paper's per-rank image sizes).
        self.app_data = self.space.mmap(
            app_mem_bytes, Perm.RW, Half.UPPER, RegionKind.DATA, name="app-data"
        )
        self.heap = UpperHeap(self.space)
        self._install_sbrk_interposer()
        self._lower_bootstrapped = False

    # ----------------------------------------------------------- sbrk (§2.1)

    def _install_sbrk_interposer(self) -> None:
        counter = {"n": 0}

        def interposer(increment: int) -> MemoryRegion:
            counter["n"] += 1
            return self.space.mmap(
                increment, Perm.RW, Half.UPPER, RegionKind.ANON,
                name=f"upper-sbrk-mmap-{counter['n']}",
            )

        self.space.sbrk_interposer = interposer

    # -------------------------------------------------------- lower half

    def bootstrap_lower_half(
        self,
        impl: MpiImplementation,
        fabric: Interconnect,
        shmem: Interconnect,
        n_nodes: int,
        ranks_per_node: int,
    ) -> None:
        """Map the MPI library and network-driver regions (MPI_Init's work).

        Called at job start and again — against a *fresh* implementation —
        at restart.
        """
        if self._lower_bootstrapped:
            raise RuntimeError(f"rank {self.rank}: lower half already present")
        specs: list[DriverRegionSpec] = []
        specs.extend(impl.lower_half_regions())
        specs.extend(fabric.driver_regions(n_nodes, ranks_per_node))
        specs.extend(shmem.driver_regions(n_nodes, ranks_per_node))
        for spec in specs:
            perm = Perm.RX if spec.kind is RegionKind.TEXT else Perm.RW
            self.space.mmap(spec.size, perm, Half.LOWER, spec.kind,
                            name=spec.name, ephemeral=True)
        # The bootstrap program's own stack, never used after control
        # transfers back to the upper half.
        self.space.mmap(1 * MB, Perm.RW, Half.LOWER, RegionKind.STACK,
                        name="bootstrap-stack")
        self._lower_bootstrapped = True

    def discard_lower_half(self) -> int:
        """Unmap every lower-half region; returns the bytes discarded.

        This is what "the lower half is ephemeral" means: at restart the old
        library, its buffers, and all its network state simply vanish.
        """
        doomed = self.space.unmap_half(Half.LOWER)
        self._lower_bootstrapped = False
        return sum(r.size for r in doomed)

    # ----------------------------------------------------------- accounting

    def fs_transition_cost(self) -> float:
        """Charge (and count) one upper→lower→upper control transfer."""
        self.fs_switches += 2
        return self.kernel.upper_lower_transition()

    def upper_bytes(self) -> int:
        """Modeled size of the checkpoint payload (upper half only)."""
        return self.space.total_size(half=Half.UPPER)

    def lower_bytes(self) -> int:
        """Modeled size of what checkpointing *avoids* writing."""
        return self.space.total_size(half=Half.LOWER)

    def upper_regions(self) -> list[MemoryRegion]:
        """The regions a checkpoint image captures."""
        return self.space.regions(half=Half.UPPER)

    def set_app_mem_bytes(self, nbytes: int) -> None:
        """Resize the modeled application data region (workload growth)."""
        self.space.munmap(self.app_data)
        self.app_data = self.space.mmap(
            nbytes, Perm.RW, Half.UPPER, RegionKind.DATA, name="app-data"
        )
