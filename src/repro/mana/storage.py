"""On-disk checkpoint sets.

The simulation times writes through the Lustre model, but a reproduction a
user can adopt also needs *actual* persistence: save a coordinated
checkpoint to a directory, exit the process, and restart it later (or on
another machine) — MANA's ``ckpt_rank_*`` image files and coordinator
manifest, in miniature.

Layout::

    <dir>/
      manifest.json        job metadata + per-image index and digests
      rank_00000.img       pickled restore payload of rank 0
      rank_00001.img       ...

Each image file carries its own header (magic, version, rank, modeled size,
region table) followed by the pickled payload, and the manifest records a
SHA-256 of every file so corruption is detected at load time.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import pickle
import struct
from typing import Union

from repro.mana.checkpoint_image import (
    CheckpointError,
    CheckpointImage,
    CheckpointSet,
    RegionDescriptor,
)

_MAGIC = b"MANAIMG1"
_HEADER = struct.Struct("<8sIQd")   # magic, rank, modeled size, taken_at


def _image_bytes(image: CheckpointImage) -> bytes:
    header = _HEADER.pack(_MAGIC, image.rank, image.size_bytes, image.taken_at)
    regions = pickle.dumps(
        [(d.name, d.kind, d.perm, d.size) for d in image.regions],
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return header + struct.pack("<Q", len(regions)) + regions + image.payload


def _image_from_bytes(blob: bytes) -> CheckpointImage:
    magic, rank, size_bytes, taken_at = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise CheckpointError("not a MANA image file (bad magic)")
    off = _HEADER.size
    (rlen,) = struct.unpack_from("<Q", blob, off)
    off += 8
    regions = tuple(
        RegionDescriptor(*row) for row in pickle.loads(blob[off:off + rlen])
    )
    payload = blob[off + rlen:]
    return CheckpointImage(rank=rank, size_bytes=size_bytes, regions=regions,
                           payload=payload, taken_at=taken_at)


def save_checkpoint(ckpt: CheckpointSet, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a checkpoint set to ``directory`` (created if needed).

    Returns the manifest path.  Refuses to overwrite a directory that
    already holds a manifest for a different rank count.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / "manifest.json"
    entries = []
    for image in ckpt.images:
        blob = _image_bytes(image)
        fname = f"rank_{image.rank:05d}.img"
        (directory / fname).write_bytes(blob)
        entries.append({
            "rank": image.rank,
            "file": fname,
            "bytes_on_disk": len(blob),
            "modeled_bytes": image.size_bytes,
            "sha256": hashlib.sha256(blob).hexdigest(),
        })
    manifest = {
        "format": "mana-checkpoint/1",
        "n_ranks": ckpt.n_ranks,
        "total_modeled_bytes": ckpt.total_bytes,
        "meta": _jsonable(ckpt.meta),
        "images": entries,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return manifest_path


def load_checkpoint(directory: Union[str, pathlib.Path]) -> CheckpointSet:
    """Load a checkpoint set saved by :func:`save_checkpoint`, verifying
    file digests."""
    directory = pathlib.Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != "mana-checkpoint/1":
        raise CheckpointError(
            f"unsupported checkpoint format {manifest.get('format')!r}"
        )
    images = []
    for entry in sorted(manifest["images"], key=lambda e: e["rank"]):
        blob = (directory / entry["file"]).read_bytes()
        digest = hashlib.sha256(blob).hexdigest()
        if digest != entry["sha256"]:
            raise CheckpointError(
                f"checkpoint file {entry['file']} is corrupt "
                f"(digest mismatch)"
            )
        images.append(_image_from_bytes(blob))
    return CheckpointSet(images=images, meta=dict(manifest.get("meta", {})))


def describe_checkpoint(directory: Union[str, pathlib.Path]) -> dict:
    """Inspection summary (what ``mana_coordinator --status`` would show)."""
    ckpt = load_checkpoint(directory)
    per_rank = [img.size_bytes for img in ckpt.images]
    return {
        "n_ranks": ckpt.n_ranks,
        "total_modeled_bytes": ckpt.total_bytes,
        "per_rank_modeled_bytes": per_rank,
        "taken_at": ckpt.images[0].taken_at if ckpt.images else None,
        "meta": dict(ckpt.meta),
        "regions_rank0": [
            (d.name, d.size) for d in ckpt.images[0].regions
        ] if ckpt.images else [],
    }


def _jsonable(obj):
    """Best-effort conversion of checkpoint meta to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)
