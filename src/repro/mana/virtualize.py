"""Virtual MPI handles (§2.2).

The application only ever sees *virtual* handles: small integers minted by
MANA, one namespace per handle kind.  Each rank's table maps virtual ids to
the current lower half's *real* objects (whose raw handle values are
implementation-specific).  Across a restart the real side is rebuilt by
record-replay while the virtual ids — the only thing stored in application
state — remain unchanged.

Every translation models the cost the paper attributes to virtualization
(§3.3: "a hash table lookup and locks for thread safety"); the wrapper layer
charges :data:`LOOKUP_COST` per translated handle.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

#: Modeled cost of one virtual-handle table lookup (hash + lock), seconds.
LOOKUP_COST = 40e-9


class VirtualizationError(RuntimeError):
    """Dangling or foreign virtual handles."""


class HandleKind(enum.Enum):
    """The opaque-handle namespaces MANA virtualizes."""
    COMM = "comm"
    GROUP = "group"
    DATATYPE = "datatype"
    REQUEST = "request"
    FILE = "file"


#: The application-visible handle for MPI_COMM_WORLD, fixed by convention
#: (real MPI fixes its predefined handles too).
VCOMM_WORLD = 1


class VirtualHandleTable:
    """One rank's virtual↔real mapping for every handle kind."""

    def __init__(self) -> None:
        # virtual ids start above the predefined range
        self._counters = {kind: itertools.count(1000) for kind in HandleKind}
        self._real: dict[HandleKind, dict[int, Any]] = {k: {} for k in HandleKind}
        #: vids whose real side was discarded (restore / clear_reals) and
        #: that replay is therefore entitled to rebind
        self._expected: dict[HandleKind, set[int]] = {k: set() for k in HandleKind}
        #: cumulative lookup count (drives the modeled overhead and tests)
        self.lookups = 0

    # ------------------------------------------------------------- minting

    def register(self, kind: HandleKind, real: Any,
                 virtual: Optional[int] = None) -> int:
        """Bind ``real`` to a (new or given) virtual id; returns the id."""
        vid = next(self._counters[kind]) if virtual is None else int(virtual)
        if vid in self._real[kind]:
            raise VirtualizationError(
                f"virtual {kind.value} handle {vid} already bound"
            )
        self._real[kind][vid] = real
        return vid

    def rebind(self, kind: HandleKind, virtual: int, real: Any) -> None:
        """Point an existing virtual id at a fresh real object (restart path).

        Strict: the vid must either be live (re-pointing a current binding)
        or be owed a real object from the restored snapshot's bound set /
        :meth:`clear_reals`.  Rebinding a vid the table has never known is a
        replay bug — raising here surfaces it instead of silently minting a
        binding nothing else is accounting for.
        """
        vid = int(virtual)
        if vid not in self._real[kind] and vid not in self._expected[kind]:
            raise VirtualizationError(
                f"virtual {kind.value} handle {vid} was never bound; "
                "refusing to rebind a dangling handle"
            )
        self._expected[kind].discard(vid)
        self._real[kind][vid] = real

    def expects_rebind(self, kind: HandleKind, virtual: int) -> bool:
        """True if ``virtual`` is owed a real object by replay (it was bound
        when the snapshot was cut / the lower half was discarded)."""
        return int(virtual) in self._expected[kind]

    def unregister(self, kind: HandleKind, virtual: int) -> None:
        """Drop a binding (e.g. MPI_Comm_free)."""
        try:
            del self._real[kind][int(virtual)]
        except KeyError:
            raise VirtualizationError(
                f"virtual {kind.value} handle {virtual} is not bound"
            ) from None

    # ------------------------------------------------------------ lookups

    def resolve(self, kind: HandleKind, virtual: int) -> Any:
        """Virtual id -> current real object (counts as one modeled lookup)."""
        self.lookups += 1
        try:
            return self._real[kind][int(virtual)]
        except KeyError:
            raise VirtualizationError(
                f"dangling virtual {kind.value} handle {virtual}"
            ) from None

    def reverse(self, kind: HandleKind, real: Any) -> Optional[int]:
        """Real object -> virtual id (identity comparison), or None."""
        for vid, obj in self._real[kind].items():
            if obj is real:
                return vid
        return None

    def bound(self, kind: HandleKind) -> dict[int, Any]:
        """Snapshot of the current bindings of one kind."""
        return dict(self._real[kind])

    # -------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Picklable descriptor side: per-kind next-id and bound vid lists.

        Real objects are *not* captured — they belong to the lower half and
        are rebuilt by record-replay at restart.
        """
        # Peek each counter without consuming a value.
        nexts = {}
        for kind, counter in self._counters.items():
            probe = next(counter)
            nexts[kind.value] = probe
            self._counters[kind] = itertools.chain([probe], counter)
        return {
            "next": nexts,
            "bound": {k.value: sorted(self._real[k]) for k in HandleKind},
        }

    def restore(self, snap: dict) -> None:
        """Install counters from a snapshot; bindings start empty (real
        objects are supplied by :meth:`rebind` during replay).  The
        snapshot's bound-vid sets become the rebind entitlement."""
        for kind in HandleKind:
            self._counters[kind] = itertools.count(snap["next"].get(kind.value, 1000))
            self._real[kind].clear()
            self._expected[kind] = set(
                int(v) for v in snap["bound"].get(kind.value, ())
            )

    def clear_reals(self) -> list[tuple[HandleKind, int]]:
        """Forget every real object (the lower half is being discarded);
        returns the (kind, virtual) pairs that must be rebuilt by replay."""
        dangling = [
            (kind, vid) for kind in HandleKind for vid in self._real[kind]
        ]
        for kind in HandleKind:
            self._expected[kind].update(self._real[kind])
            self._real[kind].clear()
        return dangling
