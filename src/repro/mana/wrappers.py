"""MANA's interposed MPI API (the virtualized MPI of §2.2–§2.5).

Every method here is what the application's MPI call resolves to under MANA.
Each call:

1. charges two FS-register switches (upper→lower→upper, §3.3) at the node
   kernel's price, plus one modeled hash lookup per translated handle and a
   metadata-recording cost for p2p calls;
2. translates virtual handles to the current lower half's real objects;
3. for p2p — updates the send/receive counters the drain protocol uses, and
   consults the upper-half drained-message buffer before touching the lower
   half (messages saved across a checkpoint are delivered from the buffer);
4. for collectives — runs the **two-phase wrapper** of Algorithm 1:
   a trivial barrier (interruptible, lower-half-only, re-issued after
   restart) and then the real collective, with the entry gate of
   Algorithm 2 line 28 applied while a checkpoint intent is pending;
5. for persistent calls (communicator/topology/datatype creation) — records
   the call in the replay log and registers the result under a fresh
   virtual handle.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.mana.protocol import ProtocolMode, WrapperPhase
from repro.mana.virtualize import (
    LOOKUP_COST,
    VCOMM_WORLD,
    HandleKind,
    VirtualizationError,
)
from repro.mpilib.comm import ANY_SOURCE, ANY_TAG, Communicator, Group
from repro.mpilib.datatypes import Datatype, contiguous, struct, vector
from repro.mpilib.ops import ReduceOp
from repro.mpilib.world import Status
from repro.obs.events import Category
from repro.runtime.api import MpiApi
from repro.simtime import Completion

#: Modeled cost of recording send/recv metadata (§3.3's second overhead).
P2P_METADATA_COST = 60e-9


from dataclasses import dataclass


@dataclass
class FileBinding:
    """Wrapper-side record behind a virtual file handle: the live lower-half
    :class:`~repro.mpilib.io.MpiFile` plus the facts replay needs."""

    real: Any
    vcomm: int
    path: str
    mode: str


class ManaApi(MpiApi):
    """The application's view of MPI under MANA."""

    def __init__(self, runtime: "repro.mana.rank_runtime.ManaRankRuntime") -> None:
        self.rt = runtime
        # Interposition-mechanism counters (§3.3), memoized for the hot path.
        metrics = runtime.engine.metrics
        self._m_fs = metrics.counter("mana.fs_switches", rank=runtime.rank)
        self._m_lookups = metrics.counter(
            "mana.vhandle_lookups", rank=runtime.rank
        )

    # ----------------------------------------------------------- properties

    @property
    def rank(self) -> int:
        """This rank's index in MPI_COMM_WORLD."""
        return self.rt.rank

    @property
    def size(self) -> int:
        """Number of ranks in MPI_COMM_WORLD."""
        return self.rt.n_ranks

    @property
    def comm_world(self) -> int:
        """The world communicator handle."""
        return VCOMM_WORLD

    # ------------------------------------------------------------- plumbing

    def _resolve_comm(self, vcomm: Optional[int]) -> Communicator:
        return self.rt.table.resolve(
            HandleKind.COMM, VCOMM_WORLD if vcomm is None else vcomm
        )

    def _overhead(self, handles: int = 1, p2p: bool = False) -> float:
        # One interposed call = upper->lower->upper (two FS-register
        # switches) plus one table lookup per translated handle.
        self._m_fs.inc(2)
        self._m_lookups.inc(handles)
        cost = self.rt.proc.fs_transition_cost() + handles * LOOKUP_COST
        if p2p:
            cost += P2P_METADATA_COST
        return cost

    def _trace_call(self, name: str, out: Completion) -> None:
        """Record an MPI-call span from now until ``out`` resolves."""
        tr = self.rt.engine.tracer
        if tr.enabled:
            span = tr.begin(name, cat=Category.MPI, rank=self.rank)
            out.on_done(lambda _v: tr.end(span))

    def _after_overhead(self, cost: float, fn: Callable[[], None]) -> None:
        """Charge interposition cost *serially* on this rank's CPU.

        Back-to-back wrapper calls issued from one leaf (e.g. the sends and
        receives of an exchange) each occupy the CPU for their FS switches
        and table lookups one after another, exactly as the real wrapper
        does — this is what makes call-dense workloads (GROMACS) show
        percentage overhead while batched transfers still overlap on the
        wire.
        """
        engine = self.rt.engine
        start = max(engine.now, self.rt.cpu_busy_until)
        fire_at = start + cost
        self.rt.cpu_busy_until = fire_at
        engine.call_at(fire_at, fn, label=f"mana-r{self.rank}:wrapper")

    # ------------------------------------------------------------------ p2p

    def send(self, dest: int, data: Any, tag: int = 0,
             comm: Optional[int] = None, size: Optional[int] = None) -> Completion:
        """MPI_Send (blocking; resolves when the buffer is reusable)."""
        real = self._resolve_comm(comm)
        real.validate_rank(dest)
        dst_world = real.world_of_rank(dest)
        # Metadata recorded at call time: this is the sender-side bookmark.
        self.rt.counters.count_send(dst_world)
        self.rt.profile_op("send", size if size is not None else 0)
        out = Completion(self.rt.engine, label=f"mana-send-r{self.rank}")
        self._trace_call("send", out)

        def issue() -> None:
            self.rt.endpoint.send(
                dest, data, tag=tag, comm=real, size=size
            ).on_done(out.resolve)

        self._after_overhead(self._overhead(p2p=True), issue)
        return out

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Optional[int] = None) -> Completion:
        """MPI_Recv; resolves with (data, Status)."""
        vcomm = VCOMM_WORLD if comm is None else comm
        real = self._resolve_comm(comm)
        real.validate_rank(source, allow_any=True)
        src_world = (
            ANY_SOURCE if source == ANY_SOURCE else real.world_of_rank(source)
        )
        self.rt.profile_op("recv")
        out = Completion(self.rt.engine, label=f"mana-recv-r{self.rank}")
        self._trace_call("recv", out)
        pend = self.rt.add_pending_recv(vcomm, src_world, tag, out)

        def attempt() -> None:
            self.rt.attempt_recv(pend)

        pend.attempt = attempt
        self._after_overhead(self._overhead(p2p=True), attempt)
        return out

    def sendrecv(self, dest: int, data: Any, source: int,
                 tag: int = 0, comm: Optional[int] = None,
                 size: Optional[int] = None) -> Completion:
        """Combined send+recv, checkpoint-safe: the send half is guarded to
        happen exactly once per dynamic call-leaf instance, so a restart
        that re-executes the leaf (after the original send was drained into
        the peer's buffer) does not duplicate the message."""
        self.rt.guarded_send(
            lambda: self.send(dest, data, tag=tag, comm=comm, size=size)
        )
        return self.recv(source=source, tag=tag, comm=comm)

    def exchange(self, sends: list, recvs: list,
                 comm: Optional[int] = None) -> Completion:
        """Batched neighbour exchange: post all sends (exactly once per
        dynamic leaf instance) and all receives; resolves with the list of
        (data, status) results in ``recvs`` order.  This is the idiomatic
        halo-exchange call — all transfers proceed concurrently, like
        isend/irecv + waitall in real MPI.

        ``sends``: (dest, data, tag, size) tuples; ``recvs``: (source, tag)
        tuples.
        """
        from repro.simtime.engine import all_of

        for dest, data, tag, size in sends:
            self.rt.guarded_send(
                lambda d=dest, x=data, t=tag, z=size:
                    self.send(d, x, tag=t, comm=comm, size=z)
            )
        outs = [self.recv(source=src, tag=tag, comm=comm)
                for src, tag in recvs]
        return all_of(self.rt.engine, outs,
                      label=f"mana-exchange-r{self.rank}")

    # -------------------------------------------------- nonblocking p2p
    #
    # Requests are opaque handles (§2.2): the application holds small
    # integers, the wrapper holds the persistent record.  A request posted
    # before a checkpoint and waited after a restart works: completed
    # results travel in the image; pending receives are re-posted into the
    # fresh lower half by finish_restore.

    def isend(self, dest: int, data: Any, tag: int = 0,
              comm: Optional[int] = None, size: Optional[int] = None) -> int:
        """MPI_Isend: returns a virtual request handle immediately."""
        rec, fresh = self.rt.vreq_at_site("send")
        if fresh:
            self.send(dest, data, tag=tag, comm=comm, size=size).on_done(
                lambda _v: self.rt.vreq_resolve(rec, None)
            )
        return rec.vreq

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Optional[int] = None) -> int:
        """MPI_Irecv: returns a virtual request handle immediately."""
        rec, fresh = self.rt.vreq_at_site("recv")
        if fresh:
            vcomm = VCOMM_WORLD if comm is None else comm
            real = self._resolve_comm(comm)
            real.validate_rank(source, allow_any=True)
            rec.vcomm = vcomm
            rec.tag = tag
            rec.src_world = (
                ANY_SOURCE if source == ANY_SOURCE
                else real.world_of_rank(source)
            )
            attempt = self.rt.attach_irecv(rec)
            self._after_overhead(self._overhead(p2p=True), attempt)
        return rec.vreq

    def _wait_p2p(self, rec) -> Completion:
        rt = self.rt
        out = Completion(rt.engine, label=f"mana-wait-p2p-r{self.rank}")

        def finish(value: Any) -> None:
            rec.done = True
            rec.value = value
            rt.defer_free("p2p", rec.vreq)
            out.resolve(value)

        def enter() -> None:
            if rec.done:
                finish(rec.value)
            elif rec.completion is not None:
                rec.completion.on_done(finish)
            else:  # restored-but-unwaited send records resolve to None
                finish(rec.value)

        self._after_overhead(self._overhead(), enter)
        return out

    def waitall(self, vreqs: list[int], comm: Optional[int] = None) -> Completion:
        """MPI_Waitall over p2p/collective requests; resolves with the list
        of values in request order."""
        from repro.simtime.engine import all_of

        return all_of(self.rt.engine, [self.wait(v) for v in vreqs],
                      label=f"mana-waitall-r{self.rank}")

    # ------------------------------------------ collectives (Algorithm 1)

    def _collective(
        self,
        label: str,
        vcomm: Optional[int],
        issue: Callable[[Communicator], Completion],
    ) -> Completion:
        """The two-phase wrapper: trivial barrier, then the real call."""
        rt = self.rt
        real = self._resolve_comm(vcomm)
        rt.profile_op(label)
        out = Completion(rt.engine, label=f"mana-{label}-r{self.rank}")
        self._trace_call(label, out)

        if not rt.two_phase_enabled:
            # Ablation: bare interposition, no Algorithm-1 wrapper.
            self._after_overhead(
                self._overhead(), lambda: issue(real).on_done(out.resolve)
            )
            return out

        def enter() -> None:
            if not rt.protocol.may_enter_wrapper():
                # Algorithm 2 line 28: hold before the collective call.
                rt.hold_at_wrapper_entry(enter)
                return
            rt.protocol.phase = WrapperPhase.PHASE_1
            rt.current_wrapper_comm = real
            rt.stats.trivial_barriers += 1
            barrier = rt.endpoint.barrier(real)
            rt.current_trivial_barrier = barrier

            def enter_phase2() -> None:
                rt.protocol.phase = WrapperPhase.PHASE_2

                def finished(value: Any) -> None:
                    rt.current_wrapper_comm = None
                    if rt.protocol.note_phase2_exit():
                        rt.send_deferred_exit_reply()
                    out.resolve(value)

                issue(real).on_done(finished)

            def committed(_value: Any) -> None:
                # Barrier completion is the commit point: flow into phase 2
                # even under a pending intent (see protocol.py docstring).
                rt.current_trivial_barrier = None
                if rt.protocol.replied_in_phase1 and \
                        rt.protocol.mode is ProtocolMode.PRE_CKPT:
                    # Synchronous revision rule (found by the model checker):
                    # our in-phase-1 reply is stale; tell the coordinator
                    # and park until it acknowledges, so no round can ever
                    # complete against the stale reply.
                    rt.protocol.replied_in_phase1 = False
                    rt.protocol.pending_reply = True
                    rt.protocol.phase = WrapperPhase.COMMIT_PENDING
                    rt.await_revision_ack(enter_phase2)
                else:
                    # QUIESCED commits happen only after every image is on
                    # disk (the barrier needs all members, and held members
                    # are released by resume): the round is over, no
                    # revision is owed.
                    rt.protocol.replied_in_phase1 = False
                    enter_phase2()

            barrier.on_done(committed)

        self._after_overhead(self._overhead(), enter)
        return out

    def barrier(self, comm: Optional[int] = None) -> Completion:
        """MPI_Barrier."""
        return self._collective("barrier", comm, lambda c: self.rt.endpoint.barrier(c))

    def bcast(self, data: Any, root: int, comm: Optional[int] = None,
              size: Optional[int] = None) -> Completion:
        """MPI_Bcast from ``root``."""
        return self._collective(
            "bcast", comm,
            lambda c: self.rt.endpoint.bcast(data, root, comm=c, size=size),
        )

    def reduce(self, data: Any, op: ReduceOp, root: int,
               comm: Optional[int] = None, size: Optional[int] = None) -> Completion:
        """MPI_Reduce to ``root``."""
        return self._collective(
            "reduce", comm,
            lambda c: self.rt.endpoint.reduce(data, op, root, comm=c, size=size),
        )

    def allreduce(self, data: Any, op: ReduceOp, comm: Optional[int] = None,
                  size: Optional[int] = None) -> Completion:
        """MPI_Allreduce."""
        return self._collective(
            "allreduce", comm,
            lambda c: self.rt.endpoint.allreduce(data, op, comm=c, size=size),
        )

    def gather(self, data: Any, root: int, comm: Optional[int] = None,
               size: Optional[int] = None) -> Completion:
        """MPI_Gather to ``root``."""
        return self._collective(
            "gather", comm,
            lambda c: self.rt.endpoint.gather(data, root, comm=c, size=size),
        )

    def allgather(self, data: Any, comm: Optional[int] = None,
                  size: Optional[int] = None) -> Completion:
        """MPI_Allgather."""
        return self._collective(
            "allgather", comm,
            lambda c: self.rt.endpoint.allgather(data, comm=c, size=size),
        )

    def scatter(self, chunks: Any, root: int, comm: Optional[int] = None,
                size: Optional[int] = None) -> Completion:
        """MPI_Scatter from ``root``."""
        return self._collective(
            "scatter", comm,
            lambda c: self.rt.endpoint.scatter(chunks, root, comm=c, size=size),
        )

    def alltoall(self, chunks: list, comm: Optional[int] = None,
                 size: Optional[int] = None) -> Completion:
        """MPI_Alltoall."""
        return self._collective(
            "alltoall", comm,
            lambda c: self.rt.endpoint.alltoall(chunks, comm=c, size=size),
        )

    def reduce_scatter(self, data: Any, op: ReduceOp, comm: Optional[int] = None,
                       size: Optional[int] = None) -> Completion:
        """MPI_Reduce_scatter (equal blocks)."""
        return self._collective(
            "reduce_scatter", comm,
            lambda c: self.rt.endpoint.reduce_scatter(data, op, comm=c, size=size),
        )

    def scan(self, data: Any, op: ReduceOp, comm: Optional[int] = None,
             size: Optional[int] = None) -> Completion:
        """MPI_Scan (inclusive prefix reduction)."""
        return self._collective(
            "scan", comm,
            lambda c: self.rt.endpoint.scan(data, op, comm=c, size=size),
        )

    # ----------------- nonblocking collectives (§4.2 future-work extension)
    #
    # The paper proposes: phase 1 becomes a nonblocking trivial barrier
    # (MPI_Ibarrier) posted when the application posts the collective; the
    # Wait/Test wrapper, once the Ibarrier has completed, runs the *actual*
    # collective synchronously as phase 2.  Under a pending checkpoint
    # intent the Ibarrier posting itself is deferred (it would otherwise
    # register the rank in a barrier the protocol believes untouched), and
    # across a restart the upper-half request record re-posts a fresh
    # Ibarrier into the new lower half.

    def _icollective(self, op: str, vcomm: Optional[int], args: tuple) -> Completion:
        rt = self.rt
        self._resolve_comm(vcomm)  # validates (and charges a lookup)
        rec = rt.new_icoll(op, VCOMM_WORLD if vcomm is None else vcomm, args)
        out = Completion(rt.engine, label=f"mana-i{op}-r{self.rank}")
        self._after_overhead(self._overhead(), lambda: out.resolve(rec.vreq))
        return out

    def iallreduce(self, data: Any, op: ReduceOp, comm: Optional[int] = None,
                   size: Optional[int] = None) -> Completion:
        """Nonblocking allreduce; resolves with a virtual request handle."""
        return self._icollective(
            "allreduce", comm, (data, op.name, size)
        )

    def ibcast(self, data: Any, root: int, comm: Optional[int] = None,
               size: Optional[int] = None) -> Completion:
        """Nonblocking MPI_Ibcast; returns a virtual request handle."""
        return self._icollective("bcast", comm, (data, root, size))

    def ibarrier(self, comm: Optional[int] = None) -> Completion:
        """Nonblocking MPI_Ibarrier; returns a request."""
        return self._icollective("barrier", comm, ())

    def _issue_phase2(self, rec) -> Completion:
        from repro.mpilib.ops import ALL_OPS

        real = self._resolve_comm(rec.vcomm)
        ep = self.rt.endpoint
        if rec.op == "allreduce":
            data, op_name, size = rec.args
            return ep.allreduce(data, ALL_OPS[op_name], comm=real, size=size)
        if rec.op == "bcast":
            data, root, size = rec.args
            return ep.bcast(data, root, comm=real, size=size)
        if rec.op == "barrier":
            return ep.barrier(real)
        raise ValueError(f"unknown nonblocking collective {rec.op!r}")

    def wait(self, vreq: int) -> Completion:
        """MPI_Wait on a nonblocking request — p2p or collective.

        For collectives: completes phase 1 (the Ibarrier), commits, runs
        phase 2 synchronously, resolves with the collective's result.  For
        p2p: resolves with None (sends) or (data, status) (receives)."""
        rt = self.rt
        p2p = rt.vrequests.get(vreq)
        if p2p is not None:
            return self._wait_p2p(p2p)
        rec = rt.icolls.get(vreq)
        if rec is None:
            raise VirtualizationError(f"unknown request handle {vreq}")
        out = Completion(rt.engine, label=f"mana-wait-r{self.rank}")
        self._trace_call("wait", out)
        real = self._resolve_comm(rec.vcomm)

        def enter() -> None:
            if rec.done:
                rt.defer_free("icoll", rec.vreq)
                out.resolve(rec.value)
                return
            if not rt.protocol.may_enter_wrapper():
                rt.hold_at_wrapper_entry(enter)
                return
            if not rec.posted:
                rt._post_icoll_barrier(rec)
            rt.protocol.phase = WrapperPhase.PHASE_1
            rt.current_wrapper_comm = real
            rt.current_trivial_barrier = rec.barrier

            def enter_phase2() -> None:
                rt.protocol.phase = WrapperPhase.PHASE_2

                def finished(value: Any) -> None:
                    rt.current_wrapper_comm = None
                    if rt.protocol.note_phase2_exit():
                        rt.send_deferred_exit_reply()
                    rec.done = True
                    rec.value = value
                    rt.defer_free("icoll", rec.vreq)
                    out.resolve(value)

                self._issue_phase2(rec).on_done(finished)

            def committed(_value: Any) -> None:
                rt.current_trivial_barrier = None
                if rt.protocol.replied_in_phase1 and \
                        rt.protocol.mode is ProtocolMode.PRE_CKPT:
                    rt.protocol.replied_in_phase1 = False
                    rt.protocol.pending_reply = True
                    rt.protocol.phase = WrapperPhase.COMMIT_PENDING
                    rt.await_revision_ack(enter_phase2)
                else:
                    rt.protocol.replied_in_phase1 = False
                    enter_phase2()

            rec.barrier.on_done(committed)

        self._after_overhead(self._overhead(), enter)
        return out

    def test(self, vreq: int) -> Completion:
        """MPI_Test: resolves with True if the request's phase-1 Ibarrier
        has completed (the collective will then run at the next wait), else
        False.  Purely local plus the interposition overhead."""
        rt = self.rt
        p2p = rt.vrequests.get(vreq)
        if p2p is not None:
            out = Completion(rt.engine, label=f"mana-test-r{self.rank}")
            self._after_overhead(self._overhead(),
                                 lambda: out.resolve(bool(p2p.done)))
            return out
        rec = rt.icolls.get(vreq)
        if rec is None:
            raise VirtualizationError(f"unknown request handle {vreq}")
        out = Completion(rt.engine, label=f"mana-test-r{self.rank}")
        self._after_overhead(
            self._overhead(),
            lambda: out.resolve(
                rec.done or (rec.posted and rec.barrier is not None
                             and rec.barrier.done)
            ),
        )
        return out

    # ----------------------- persistent calls: record, virtualize, replay

    def _persistent(
        self,
        label: str,
        vparent: Optional[int],
        issue: Callable[[Communicator], Completion],
        log_args: Callable[[int], tuple],
    ) -> Completion:
        """A communicator-management collective: two-phase wrapped AND
        recorded.  Resolves with the new *virtual* handle (or None)."""
        rt = self.rt
        parent_vid = VCOMM_WORLD if vparent is None else vparent
        out = Completion(rt.engine, label=f"mana-{label}-r{self.rank}")

        def register(real_result: Any) -> None:
            if real_result is None:
                rt.log.record(label, log_args(parent_vid), None)
                out.resolve(None)
                return
            vid = rt.register_comm(real_result)
            # Record the result membership too: checkpoint-time compaction
            # may only cancel a dead comm_split when its result covered the
            # whole parent (docs/record_replay.md); replay itself never
            # reads it.
            rt.log.record(label, log_args(parent_vid), vid,
                          group=tuple(real_result.group.world_ranks))
            out.resolve(vid)

        self._collective(label, vparent, issue).on_done(register)
        return out

    def comm_dup(self, comm: Optional[int] = None) -> Completion:
        """MPI_Comm_dup (collective)."""
        return self._persistent(
            "comm_dup", comm,
            lambda c: self.rt.endpoint.comm_dup(c),
            lambda pv: (pv,),
        )

    def comm_split(self, color: int, key: int,
                   comm: Optional[int] = None) -> Completion:
        """MPI_Comm_split (collective); resolves with the new communicator or None."""
        return self._persistent(
            "comm_split", comm,
            lambda c: self.rt.endpoint.comm_split(color, key, c),
            lambda pv: (pv, color, key),
        )

    def comm_create(self, group, comm: Optional[int] = None) -> Completion:
        """``group`` may be a Group value or a virtual group handle."""
        if isinstance(group, int):
            group = self._resolve_group(group)
        return self._persistent(
            "comm_create", comm,
            lambda c: self.rt.endpoint.comm_create(group, c),
            lambda pv: (pv, tuple(group.world_ranks)),
        )

    def cart_create(self, dims: list[int], periods: list[bool],
                    comm: Optional[int] = None) -> Completion:
        """MPI_Cart_create (collective); the result carries a CartTopology."""
        return self._persistent(
            "cart_create", comm,
            lambda c: self.rt.endpoint.cart_create(dims, periods, c),
            lambda pv: (pv, tuple(dims), tuple(bool(p) for p in periods)),
        )

    def graph_create(self, edges: list, comm: Optional[int] = None) -> Completion:
        """MPI_Graph_create (collective)."""
        return self._persistent(
            "graph_create", comm,
            lambda c: self.rt.endpoint.graph_create(edges, c),
            lambda pv: (pv, tuple(tuple(e) for e in edges)),
        )

    def comm_free(self, vcomm: int) -> None:
        """Retire the virtual handle, release the real one, log the free."""
        real = self.rt.table.resolve(HandleKind.COMM, vcomm)
        self.rt.unregister_comm(vcomm)
        self.rt.endpoint.comm_free(real)
        self.rt.log.record("comm_free", (vcomm,), None)

    # --------------------------------------------------------------- files
    #
    # MPI-IO handles are opaque objects like communicators: virtualized,
    # recorded, replayed.  Collective file operations go through the
    # two-phase wrapper — a rank blocked in the synchronizing part of
    # write_at_all is protected by the same invariant as any collective.

    def file_open(self, path: str, mode: str = "rw",
                  comm: Optional[int] = None) -> Completion:
        """MPI_File_open (collective); resolves with a virtual file handle."""
        rt = self.rt
        vcomm = VCOMM_WORLD if comm is None else comm
        out = Completion(rt.engine, label=f"mana-fopen-r{self.rank}")

        def register(real: Any) -> None:
            binding = FileBinding(real=real, vcomm=vcomm, path=path, mode=mode)
            vid = rt.table.register(HandleKind.FILE, binding)
            rt.log.record("file_open", (vcomm, path, mode), vid,
                          result_kind=HandleKind.FILE)
            out.resolve(vid)

        self._collective(
            "file_open", comm,
            lambda c: rt.endpoint.file_open(path, mode, c),
        ).on_done(register)
        return out

    def _resolve_file(self, vfile: int) -> "FileBinding":
        return self.rt.table.resolve(HandleKind.FILE, vfile)

    def file_write_at(self, vfile: int, offset: int, data: bytes,
                      size: Optional[int] = None) -> Completion:
        """Independent write at an explicit offset."""
        binding = self._resolve_file(vfile)
        out = Completion(self.rt.engine, label=f"mana-fwrite-r{self.rank}")
        self._after_overhead(
            self._overhead(),
            lambda: binding.real.write_at(offset, data, size=size)
                            .on_done(out.resolve),
        )
        return out

    def file_read_at(self, vfile: int, offset: int, length: int,
                     size: Optional[int] = None) -> Completion:
        """Independent read; resolves with the bytes."""
        binding = self._resolve_file(vfile)
        out = Completion(self.rt.engine, label=f"mana-fread-r{self.rank}")
        self._after_overhead(
            self._overhead(),
            lambda: binding.real.read_at(offset, length, size=size)
                            .on_done(out.resolve),
        )
        return out

    def file_write_at_all(self, vfile: int, offset: int, data: bytes,
                          size: Optional[int] = None) -> Completion:
        """Collective write (two-phase wrapped)."""
        binding = self._resolve_file(vfile)
        return self._collective(
            "file_write_at_all", binding.vcomm,
            lambda _c: binding.real.write_at_all(offset, data, size=size),
        )

    def file_read_at_all(self, vfile: int, offset: int, length: int,
                         size: Optional[int] = None) -> Completion:
        """Collective read (two-phase wrapped)."""
        binding = self._resolve_file(vfile)
        return self._collective(
            "file_read_at_all", binding.vcomm,
            lambda _c: binding.real.read_at_all(offset, length, size=size),
        )

    def file_close(self, vfile: int) -> None:
        """Close and retire the handle; recorded for replay."""
        binding = self._resolve_file(vfile)
        binding.real.close()
        self.rt.table.unregister(HandleKind.FILE, vfile)
        self.rt.log.record("file_close", (vfile,), None,
                           result_kind=HandleKind.FILE)

    # --------------------------------------------------------------- groups
    #
    # Group operations are local in MPI, but groups are opaque handles and
    # therefore recorded and replayed like every other persistent object
    # (§2.2): an application that holds a group handle across a restart
    # resolves it against the rebuilt table.

    def comm_group(self, comm: Optional[int] = None) -> int:
        """MPI_Comm_group: returns a virtual group handle."""
        parent_vid = VCOMM_WORLD if comm is None else comm
        group = self._resolve_comm(comm).group
        vid = self.rt.table.register(HandleKind.GROUP, group)
        self.rt.log.record("comm_group", (parent_vid,), vid,
                           result_kind=HandleKind.GROUP)
        return vid

    def _resolve_group(self, vgroup: int) -> Group:
        return self.rt.table.resolve(HandleKind.GROUP, vgroup)

    def _derive_group(self, op: str, vgroup: int, arg, derived: Group) -> int:
        vid = self.rt.table.register(HandleKind.GROUP, derived)
        self.rt.log.record(op, (vgroup, arg), vid,
                           result_kind=HandleKind.GROUP)
        return vid

    def group_incl(self, vgroup: int, ranks: list[int]) -> int:
        """MPI_Group_incl."""
        g = self._resolve_group(vgroup)
        return self._derive_group("group_incl", vgroup, tuple(ranks),
                                  g.incl(ranks))

    def group_excl(self, vgroup: int, ranks: list[int]) -> int:
        """MPI_Group_excl."""
        g = self._resolve_group(vgroup)
        return self._derive_group("group_excl", vgroup, tuple(ranks),
                                  g.excl(ranks))

    def group_union(self, va: int, vb: int) -> int:
        """MPI_Group_union."""
        g = self._resolve_group(va).union(self._resolve_group(vb))
        return self._derive_group("group_union", va, vb, g)

    def group_intersection(self, va: int, vb: int) -> int:
        """MPI_Group_intersection."""
        g = self._resolve_group(va).intersection(self._resolve_group(vb))
        return self._derive_group("group_intersection", va, vb, g)

    def group_free(self, vgroup: int) -> None:
        """MPI_Group_free: retire the handle (recorded for replay)."""
        self.rt.table.unregister(HandleKind.GROUP, vgroup)
        self.rt.log.record("group_free", (vgroup,), None,
                           result_kind=HandleKind.GROUP)

    def group_size(self, vgroup: int) -> int:
        """Number of ranks in the group."""
        return self._resolve_group(vgroup).size

    def group_rank(self, vgroup: int) -> Optional[int]:
        """This rank's position in the group (None = MPI_UNDEFINED)."""
        return self._resolve_group(vgroup).rank_of(self.rank)

    # ------------------------------------------------------------ datatypes

    def _new_type(self, dtype: Datatype) -> int:
        vid = self.rt.table.register(HandleKind.DATATYPE, dtype)
        self.rt.log.record("type_create", (dtype.recipe,), vid,
                           result_kind=HandleKind.DATATYPE)
        return vid

    def type_free(self, vid: int) -> None:
        """MPI_Type_free: retire the handle (recorded for replay)."""
        self.rt.table.unregister(HandleKind.DATATYPE, vid)
        self.rt.log.record("type_free", (vid,), None,
                           result_kind=HandleKind.DATATYPE)

    def type_contiguous(self, count: int, base: Datatype) -> int:
        """MPI_Type_contiguous; returns a virtual datatype handle."""
        return self._new_type(contiguous(count, base))

    def type_vector(self, count: int, blocklength: int, stride: int,
                    base: Datatype) -> int:
        """MPI_Type_vector; returns a virtual datatype handle."""
        return self._new_type(vector(count, blocklength, stride, base))

    def type_struct(self, fields: list) -> int:
        """MPI_Type_create_struct; returns a virtual datatype handle."""
        return self._new_type(struct(fields))

    def resolve_type(self, vid: int) -> Datatype:
        """Virtual datatype handle -> Datatype (for size computations)."""
        return self.rt.table.resolve(HandleKind.DATATYPE, vid)

    # ------------------------------------------------------------ local ops

    def comm_size(self, comm: Any) -> int:
        """MPI_Comm_size."""
        return self._resolve_comm(comm).size

    def comm_rank(self, comm: Any) -> Optional[int]:
        """MPI_Comm_rank (None for non-members)."""
        return self._resolve_comm(comm).rank_of_world(self.rank)

    def topology(self, comm: Any):
        """The topology attached to a communicator, if any."""
        return self._resolve_comm(comm).topology
