"""Per-rank MANA runtime: wrapper state plus the checkpoint helper thread.

One :class:`ManaRankRuntime` exists per MPI rank.  It owns the rank's

* :class:`~repro.mana.split_process.SplitProcess` (the tagged address space),
* :class:`~repro.runtime.driver.RankDriver` running the application program
  through the interposed :class:`~repro.mana.wrappers.ManaApi`,
* virtual handle table, record-replay log, p2p counters and the upper-half
  drained-message buffer,
* and the *helper thread* of §2.6: :meth:`on_ctrl` receives checkpoint
  control messages, answers with the rank's Algorithm-2 state, quiesces the
  application threads at do-ckpt, runs the local drain, captures the image
  and resumes execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.mana.checkpoint_image import CheckpointImage
from repro.mana.protocol import (
    CkptMsg,
    ProtocolMode,
    RankCkptState,
    RankProtocol,
    WrapperPhase,
    ctrl_instant_name,
)
from repro.mana.record_replay import RecordLog, ReplayEngine
from repro.mana.split_process import SplitProcess
from repro.mana.virtualize import VCOMM_WORLD, HandleKind, VirtualHandleTable
from repro.mana.wrappers import ManaApi
from repro.obs.events import Category
from repro.mpilib.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpilib.world import MpiEndpoint, MsgRecord, Request, Status
from repro.mprog.ast import Program
from repro.mprog.interp import Interpreter, ProgramState
from repro.runtime.driver import RankDriver
from repro.simtime import Completion, Engine


@dataclass
class P2pCounters:
    """Wrapper-level send/receive bookmarks (§2.3)."""

    sent: dict[int, int] = field(default_factory=dict)   # dst world -> count
    sent_total: int = 0
    received_total: int = 0
    #: per-source receive bookmarks (src world -> count) — the topo
    #: protocol's in-flight dependency DAG is ``sent[j][i] - received[i][j]``
    received: dict[int, int] = field(default_factory=dict)

    def count_send(self, dst_world: int) -> None:
        """Bookmark one outgoing message to ``dst_world``."""
        self.sent[dst_world] = self.sent.get(dst_world, 0) + 1
        self.sent_total += 1

    def count_receive(self, src_world: Optional[int] = None) -> None:
        """Bookmark one message delivered to the upper half."""
        self.received_total += 1
        if src_world is not None:
            self.received[src_world] = self.received.get(src_world, 0) + 1

    def snapshot(self) -> dict:
        """Picklable representation for the checkpoint image."""
        return {
            "sent": dict(self.sent),
            "sent_total": self.sent_total,
            "received_total": self.received_total,
            "received": dict(self.received),
        }

    def restore(self, snap: dict) -> None:
        """Install state captured by :meth:`snapshot`."""
        self.sent = dict(snap["sent"])
        self.sent_total = int(snap["sent_total"])
        self.received_total = int(snap["received_total"])
        # images taken before the per-source bookmarks existed restore to an
        # empty map — the topo DAG then over-approximates in-flight traffic
        # (extra edges / cycle fallback), which is conservative but correct
        self.received = dict(snap.get("received", {}))


@dataclass
class BufferedMsg:
    """One drained message, stored in the upper half (checkpointed)."""

    vcomm: int
    src_world: int
    tag: int
    data: Any
    size: int
    seq: int


class DrainBuffer:
    """Arrival-ordered store of drained messages (per-channel FIFO holds
    because drain harvests in arrival order)."""

    def __init__(self) -> None:
        self.entries: list[BufferedMsg] = []

    def add(self, msg: BufferedMsg) -> None:
        """Buffer one drained message (arrival order preserved)."""
        self.entries.append(msg)

    def take(self, vcomm: int, src_world: int, tag: int) -> Optional[BufferedMsg]:
        """Remove and return the first matching entry, or None."""
        for i, e in enumerate(self.entries):
            if (
                e.vcomm == vcomm
                and (src_world == ANY_SOURCE or e.src_world == src_world)
                and (tag == ANY_TAG or e.tag == tag)
            ):
                del self.entries[i]
                return e
        return None

    def __len__(self) -> int:
        return len(self.entries)

    def snapshot(self) -> list[tuple]:
        """Picklable representation for the checkpoint image."""
        return [
            (e.vcomm, e.src_world, e.tag, e.data, e.size, e.seq)
            for e in self.entries
        ]

    def restore(self, snap: list[tuple]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self.entries = [BufferedMsg(*row) for row in snap]


@dataclass
class PendingRecv:
    """A wrapper-level receive that has not yet returned data to the app."""

    vcomm: int
    src_world: int                 # world rank or ANY_SOURCE
    tag: int
    out: Completion
    req: Optional[Request] = None  # lower-half request, if posted
    attempt: Optional[Callable[[], None]] = None
    active: bool = True
    #: owning call-leaf instance (for the receive journal), if any
    journal_key: Optional[tuple] = None
    #: this receive's position among the leaf's receives
    journal_pos: int = 0


@dataclass
class VRequest:
    """A virtualized nonblocking p2p request (MPI_Isend / MPI_Irecv).

    Requests outlive the call leaf that posted them (posted in one leaf,
    waited in another), so — unlike the leaf-scoped receive journal — their
    state persists as first-class wrapper data: a completed request carries
    its value; a pending receive carries its envelope and is re-posted into
    the fresh lower half after restart.  Pending *sends* never reach an
    image: the drain phase completes every posted send before the image is
    cut.
    """

    vreq: int
    kind: str                      # "send" | "recv"
    vcomm: int = 0
    src_world: int = 0
    tag: int = 0
    done: bool = False
    value: Any = None
    #: live completion the app's wait() chains on (never serialized)
    completion: Any = None

    def snapshot(self) -> tuple:
        """Picklable representation for the checkpoint image."""
        if not self.done and self.kind == "send":
            raise RuntimeError(
                f"isend request {self.vreq} still pending at image time — "
                "the drain phase should have completed it"
            )
        return (self.vreq, self.kind, self.vcomm, self.src_world, self.tag,
                self.done, self.value)


@dataclass
class IColl:
    """Wrapper state of one nonblocking collective (§4.2 extension).

    The upper half owns everything: which collective was requested (op +
    args with virtual handles) and whether the phase-1 Ibarrier has been
    posted to the current lower half.  The lower-half barrier itself is
    ephemeral — discarded with the world and re-posted after restart.
    """

    vreq: int
    op: str
    vcomm: int
    args: tuple
    posted: bool = False
    #: live lower-half barrier completion (never serialized)
    barrier: Any = None
    #: set once phase 2 ran (via test); wait then returns it immediately
    done: bool = False
    value: Any = None

    def snapshot(self) -> tuple:
        """Picklable representation for the checkpoint image."""
        return (self.vreq, self.op, self.vcomm, self.args, self.done,
                self.value)


@dataclass
class RankStats:
    """Per-rank diagnostics used by experiments and tests."""

    trivial_barriers: int = 0
    drained_messages: int = 0
    checkpoints: int = 0


class ManaRankRuntime:
    """Everything MANA keeps for one rank (see module docstring)."""

    def __init__(
        self,
        engine: Engine,
        rank: int,
        n_ranks: int,
        proc: SplitProcess,
        endpoint: MpiEndpoint,
        program: Program,
        state: Optional[ProgramState] = None,
        core_speed: float = 1.0,
        compact: bool = False,
    ) -> None:
        self.engine = engine
        self.rank = rank
        self.n_ranks = n_ranks
        self.proc = proc
        self.endpoint = endpoint
        self.program = program
        #: compact the record log at checkpoint time (docs/record_replay.md)
        self.compact = compact
        #: stats dict of the most recent checkpoint's compaction pass
        self.last_compaction: Optional[dict] = None
        #: False once the rank's node crashed: the helper thread is gone (it
        #: stops answering the coordinator and the failure detector) and the
        #: driver is dead.  Set by :meth:`kill`.
        self.alive = True
        self.table = VirtualHandleTable()
        self.log = RecordLog()
        self.counters = P2pCounters()
        self.buffer = DrainBuffer()
        self.protocol = RankProtocol()
        self.stats = RankStats()
        self.pending_recvs: list[PendingRecv] = []
        self.held_entries: list[Callable[[], None]] = []
        self.ctx_to_vcomm: dict[int, int] = {}
        self.current_trivial_barrier: Optional[Completion] = None
        #: the real communicator of the wrapper this rank is inside, if any
        self.current_wrapper_comm: Optional[Communicator] = None
        #: set by the coordinator: fn(rank, msg, payload) sends a reply
        self.reply_fn: Optional[Callable[[int, CkptMsg, Any], None]] = None
        self._drain_expected: Optional[int] = None
        self._revision_cont: Optional[Callable[[], None]] = None
        #: Ablation switch: with the two-phase wrapper disabled, collectives
        #: are issued bare (no trivial barrier, no entry gate).  Checkpoints
        #: are then UNSAFE (see the NaiveModel counterexample); only for
        #: overhead ablations on checkpoint-free runs.
        self.two_phase_enabled = True
        #: outstanding nonblocking collectives (§4.2), vreq -> IColl
        self.icolls: dict[int, IColl] = {}
        self._icoll_ids = 5000
        #: Exactly-once send accounting for call leaves that both send and
        #: receive (sendrecv/exchange): counts sends already performed per
        #: dynamic leaf instance.  Persisted in the image — at restart the
        #: re-executed leaf skips sends that already reached (or were
        #: drained at) the receiver, instead of duplicating them.
        self.sends_done: dict[tuple, int] = {}
        #: per-execution send cursor (transient; fresh runtimes start empty)
        self._send_seq: dict[tuple, int] = {}
        #: Receive journal: (data, Status) results already delivered to a
        #: still-incomplete call leaf, in delivery-position order.
        #: Persisted in the image — a restart re-executes the leaf, and its
        #: receives replay positionally from here before touching the drain
        #: buffer or the new lower half (otherwise messages consumed just
        #: before the checkpoint would be lost forever).
        self.recv_journal: dict[tuple, dict] = {}
        #: per-execution receive cursor (transient)
        self._recv_seq: dict[tuple, int] = {}
        #: when this rank's CPU finishes its queued wrapper overheads
        self.cpu_busy_until = 0.0
        #: PMPI-style tracing (§4.2): when set (a dict), every interposed
        #: call records (count, bytes) per operation name — enable it on a
        #: restarted job to profile a production run mid-flight without
        #: having launched it with instrumentation.
        self.profile: Optional[dict] = None
        #: virtualized nonblocking p2p requests (MPI_Isend/Irecv), vreq -> rec
        self.vrequests: dict[int, VRequest] = {}
        self._vreq_ids = 9000
        #: call-site map: (leaf instance key, position) -> vreq, so a
        #: re-executed leaf returns the SAME request instead of re-posting
        self.vreq_sites: dict[tuple, list[int]] = {}
        self._vreq_seq: dict[tuple, int] = {}
        #: requests waited inside the current leaf; actually freed only when
        #: the leaf completes (a checkpoint mid-leaf re-executes the leaf,
        #: which must find the records again) — transient by design
        self._waited_by_leaf: dict[tuple, list[tuple[str, int]]] = {}

        #: open per-rank checkpoint spans (tracing only)
        self._drain_span = None
        #: drained-message counter (memoized; metrics are always on)
        self._m_drained = engine.metrics.counter(
            "mana.drained_messages", rank=rank
        )

        self.table.register(HandleKind.COMM, endpoint.comm_world,
                            virtual=VCOMM_WORLD)
        self.ctx_to_vcomm[endpoint.comm_world.context_id] = VCOMM_WORLD

        self.api = ManaApi(self)
        app_state = state if state is not None else ProgramState()
        app_state.setdefault("rank", rank)
        app_state.setdefault("size", n_ranks)
        self.driver = RankDriver(
            engine, Interpreter(program, app_state), self.api,
            core_speed=core_speed, label=f"mana-r{rank}",
        )
        self.driver.leaf_done_hook = self._on_leaf_done

    # ------------------------------------------------------ wrapper support

    def register_comm(self, real: Communicator) -> int:
        """Bind a freshly created communicator under a new virtual id."""
        vid = self.table.register(HandleKind.COMM, real)
        self.ctx_to_vcomm[real.context_id] = vid
        return vid

    def unregister_comm(self, vid: int) -> None:
        """Retire a communicator's virtual id (MPI_Comm_free)."""
        real = self.table.resolve(HandleKind.COMM, vid)
        self.ctx_to_vcomm.pop(real.context_id, None)
        self.table.unregister(HandleKind.COMM, vid)

    def hold_at_wrapper_entry(self, closure: Callable[[], None]) -> None:
        """Algorithm 2 line 28: park a wrapper entry until after checkpoint."""
        self.protocol.phase = WrapperPhase.ENTRY_HELD
        self.held_entries.append(closure)

    def _release_held(self) -> None:
        held, self.held_entries = self.held_entries, []
        if held and self.protocol.phase is WrapperPhase.ENTRY_HELD:
            self.protocol.phase = WrapperPhase.NONE
        for closure in held:
            self.engine.call_after(0.0, closure,
                                   label=f"mana-r{self.rank}:release-entry")

    # --------------------------------------------- exactly-once send guard

    def profile_op(self, op: str, nbytes: int = 0) -> None:
        """Record one interposed call when PMPI-style tracing is enabled."""
        if self.profile is not None:
            count, total = self.profile.get(op, (0, 0))
            self.profile[op] = (count + 1, total + nbytes)

    def guarded_send(self, post_fn: Callable[[], Any]) -> None:
        """Perform a send inside a multi-op call leaf exactly once per
        dynamic leaf instance, across restarts.  ``post_fn`` is invoked only
        if this position's send has not already happened."""
        key = self.driver.current_call_key()
        if key is None:
            post_fn()
            return
        pos = self._send_seq.get(key, 0)
        self._send_seq[key] = pos + 1
        if pos < self.sends_done.get(key, 0):
            return  # already sent before the checkpoint; do not duplicate
        post_fn()
        self.sends_done[key] = pos + 1

    def _on_leaf_done(self, key: tuple) -> None:
        """Driver hook: the leaf finished; its guard/journal state retires."""
        self.sends_done.pop(key, None)
        self._send_seq.pop(key, None)
        self.recv_journal.pop(key, None)
        self._recv_seq.pop(key, None)
        self.vreq_sites.pop(key, None)
        self._vreq_seq.pop(key, None)
        for kind, vreq in self._waited_by_leaf.pop(key, ()):
            if kind == "p2p":
                self.vrequests.pop(vreq, None)
            else:
                self.icolls.pop(vreq, None)

    # ------------------------------------- nonblocking p2p (virtual requests)

    def vreq_at_site(self, kind: str) -> tuple[VRequest, bool]:
        """The request for the current call-site position.

        Returns ``(record, fresh)``: on first execution a new record is
        minted and remembered under (leaf instance, position); a re-executed
        leaf (restart) gets the original record back and must not re-post.
        """
        key = self.driver.current_call_key()
        if key is not None:
            pos = self._vreq_seq.get(key, 0)
            self._vreq_seq[key] = pos + 1
            sites = self.vreq_sites.setdefault(key, [])
            if pos < len(sites):
                return self.vrequests[sites[pos]], False
        self._vreq_ids += 1
        rec = VRequest(vreq=self._vreq_ids, kind=kind)
        self.vrequests[rec.vreq] = rec
        if key is not None:
            self.vreq_sites[key].append(rec.vreq)
        return rec, True

    def defer_free(self, kind: str, vreq: int) -> None:
        """MPI_Wait frees the request — but only once the waiting leaf has
        completed, so that a restart-driven re-execution still finds it."""
        key = self.driver.current_call_key()
        if key is None:
            if kind == "p2p":
                self.vrequests.pop(vreq, None)
            else:
                self.icolls.pop(vreq, None)
            return
        self._waited_by_leaf.setdefault(key, []).append((kind, vreq))

    def vreq_resolve(self, rec: VRequest, value: Any) -> None:
        """Mark a request complete and wake any waiter."""
        rec.done = True
        rec.value = value
        if rec.completion is not None and not rec.completion.done:
            rec.completion.resolve(value)

    def attach_irecv(self, rec: VRequest) -> None:
        """Post (or re-post, after restart) the receive behind ``rec``."""
        out = Completion(self.engine, label=f"mana-irecv-r{self.rank}")
        rec.completion = out
        pend = self.add_pending_recv(rec.vcomm, rec.src_world, rec.tag, out)
        # request persistence supersedes the leaf-scoped journal
        pend.journal_key = None
        out.on_done(lambda value: self.vreq_resolve(rec, value))
        api_attempt = lambda: self.attempt_recv(pend)
        pend.attempt = api_attempt
        return api_attempt

    def _repost_pending_irecvs(self) -> None:
        for rec in self.vrequests.values():
            if rec.kind == "recv" and not rec.done:
                attempt = self.attach_irecv(rec)
                attempt()

    # ------------------------------------- nonblocking collectives (§4.2)

    def new_icoll(self, op: str, vcomm: int, args: tuple) -> IColl:
        """Register a nonblocking collective; posts its phase-1 Ibarrier
        immediately unless a checkpoint intent is pending."""
        self._icoll_ids += 1
        rec = IColl(vreq=self._icoll_ids, op=op, vcomm=vcomm, args=args)
        self.icolls[rec.vreq] = rec
        if self.protocol.mode is ProtocolMode.NORMAL:
            self._post_icoll_barrier(rec)
        return rec

    def _post_icoll_barrier(self, rec: IColl) -> None:
        if rec.posted or rec.done:
            return
        real = self.table.resolve(HandleKind.COMM, rec.vcomm)
        rec.barrier = self.endpoint.ibarrier(real).completion
        rec.posted = True
        self.stats.trivial_barriers += 1

    def _post_pending_icolls(self) -> None:
        for rec in self.icolls.values():
            self._post_icoll_barrier(rec)

    def send_deferred_exit_reply(self) -> None:
        """Send the exit-phase-2 reply owed from a deferred round."""
        if self.alive and self.reply_fn is not None:
            self.reply_fn(self.rank, CkptMsg.STATE_REPLY,
                          RankCkptState.EXIT_PHASE_2)

    def await_revision_ack(self, continuation: Callable[[], None]) -> None:
        """Send a revision and park the wrapper until the coordinator acks."""
        if self.reply_fn is None:
            # No coordinator attached (pure-wrapper unit tests): proceed.
            continuation()
            return
        self._revision_cont = continuation
        self.reply_fn(self.rank, CkptMsg.REVISE_IN_PHASE_1, None)

    # --------------------------------------------------------- pending recvs

    def add_pending_recv(self, vcomm: int, src_world: int, tag: int,
                         out: Completion) -> PendingRecv:
        """Track a wrapper-level receive until data reaches the app."""
        pend = PendingRecv(vcomm=vcomm, src_world=src_world, tag=tag, out=out)
        key = self.driver.current_call_key()
        if key is not None:
            pos = self._recv_seq.get(key, 0)
            self._recv_seq[key] = pos + 1
            pend.journal_key = key
            pend.journal_pos = pos
        self.pending_recvs.append(pend)
        return pend

    def attempt_recv(self, pend: PendingRecv) -> None:
        """Journal-first, then buffer-first receive.

        A re-executed leaf replays receives it had already completed from
        the journal; drained messages win over the lower half for the rest.
        """
        if not pend.active:
            return
        if pend.journal_key is not None:
            journal = self.recv_journal.get(pend.journal_key, {})
            if pend.journal_pos in journal:
                data, status = journal[pend.journal_pos]
                self._finish_recv(pend, data, status, count=False,
                                  journal=False)
                return
        hit = self.buffer.take(pend.vcomm, pend.src_world, pend.tag)
        if hit is not None:
            self._finish_recv(pend, hit.data,
                              Status(self._local_rank_of(pend.vcomm, hit.src_world),
                                     hit.tag, hit.size),
                              count=False, journal=True)
            return
        real = self.table.resolve(HandleKind.COMM, pend.vcomm)
        source = (
            ANY_SOURCE if pend.src_world == ANY_SOURCE
            else real.rank_of_world(pend.src_world)
        )
        req = self.endpoint.irecv(source=source, tag=pend.tag, comm=real)
        pend.req = req
        req.completion.on_done(
            lambda value: self._lower_recv_done(pend, value)
        )

    def _lower_recv_done(self, pend: PendingRecv, value: Any) -> None:
        if not pend.active:
            return
        data, status = value
        # status.source is comm-local; bookmark receives by world rank
        real = self.table.resolve(HandleKind.COMM, pend.vcomm)
        self._finish_recv(pend, data, status, count=True, journal=True,
                          src_world=real.world_of_rank(status.source))

    def _finish_recv(self, pend: PendingRecv, data: Any, status: Status,
                     count: bool, journal: bool,
                     src_world: Optional[int] = None) -> None:
        pend.active = False
        pend.req = None
        if pend in self.pending_recvs:
            self.pending_recvs.remove(pend)
        if count:
            self.counters.count_receive(src_world)
        if journal and pend.journal_key is not None:
            self.recv_journal.setdefault(pend.journal_key, {})[
                pend.journal_pos
            ] = (data, status)
        pend.out.resolve((data, status))

    def _local_rank_of(self, vcomm: int, world_rank: int) -> Optional[int]:
        real = self.table.resolve(HandleKind.COMM, vcomm)
        return real.rank_of_world(world_rank)

    # --------------------------------------------------------- fault injection

    def kill(self) -> None:
        """The rank's node crashed: silence the helper thread, kill the
        driver, and cancel every wrapper-level completion still pending.

        After this the rank emits no further events — the coordinator's
        round stalls (detected by heartbeat timeout) and completions that
        resolve into the dead rank are dropped.  Idempotent.
        """
        if not self.alive:
            return
        self.alive = False
        self.driver.kill()
        for pend in list(self.pending_recvs):
            pend.active = False
            pend.out.cancel()
        self.pending_recvs = []
        self.held_entries = []
        self._revision_cont = None
        self._drain_expected = None
        self.endpoint.drain_sink = None
        if (self.current_trivial_barrier is not None
                and not self.current_trivial_barrier.done):
            self.current_trivial_barrier.cancel()
        for rec in self.vrequests.values():
            if rec.completion is not None and not rec.completion.done:
                rec.completion.cancel()
        for rec in self.icolls.values():
            if rec.barrier is not None and not rec.barrier.done:
                rec.barrier.cancel()

    # ------------------------------------------------- helper thread (§2.6)

    def _reply(self, msg: CkptMsg, payload: Any = None) -> None:
        if not self.alive:
            return  # a dead helper thread never answers
        if self.reply_fn is None:
            raise RuntimeError(f"rank {self.rank}: no coordinator attached")
        self.reply_fn(self.rank, msg, payload)

    def on_ctrl(self, msg: CkptMsg, payload: Any = None) -> None:
        """Receive one control-plane message from the coordinator."""
        if not self.alive:
            return  # delivered to a crashed node: silently lost
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant(ctrl_instant_name(msg), cat=Category.PROTOCOL,
                       rank=self.rank)
        if msg in (CkptMsg.INTEND_TO_CKPT, CkptMsg.EXTRA_ITERATION):
            self.protocol.mode = ProtocolMode.PRE_CKPT
            state = self.protocol.classify()
            if state is None:
                self.protocol.pending_reply = True
            elif state is RankCkptState.IN_PHASE_1:
                # The reply names the barrier we are waiting in, so the
                # coordinator can detect a fully-entered (and therefore
                # about-to-commit) trivial barrier — Challenge I.
                self.protocol.replied_in_phase1 = True
                comm = self.current_wrapper_comm
                info = (comm.context_id, tuple(comm.group.world_ranks))
                self._reply(CkptMsg.STATE_REPLY, (state, info))
            else:
                self.protocol.replied_in_phase1 = False
                self._reply(CkptMsg.STATE_REPLY, state)
        elif msg is CkptMsg.TOPO_INTENT:
            # Topological-sort protocol: freeze immediately and answer the
            # whole round in one reply.  Wrapper sends are bookmarked
            # synchronously at call time and a quiesced driver issues no
            # further calls, so the counters here are final.  The mode stays
            # PRE_CKPT (not QUIESCED) so the synchronous revision rule still
            # fires if our trivial barrier commits under the intent.
            self.protocol.mode = ProtocolMode.PRE_CKPT
            self.driver.quiesce()
            phase = self.protocol.phase
            comm = self.current_wrapper_comm
            coll = (
                (comm.context_id, tuple(comm.group.world_ranks))
                if comm is not None else None
            )
            if phase in (WrapperPhase.PHASE_2, WrapperPhase.COMMIT_PENDING):
                # a laggard: it owes a deferred exit-phase-2 reply once the
                # collective completes, and drains only after that
                self.protocol.pending_reply = True
                state = "in-phase-2"
            elif phase is WrapperPhase.PHASE_1:
                self.protocol.replied_in_phase1 = True
                state = "in-phase-1"
            else:
                state = "ready"
                coll = None
            self._reply(CkptMsg.TOPO_STATE, {
                "state": state,
                "coll": coll,
                "sent": dict(self.counters.sent),
                "received": dict(self.counters.received),
            })
        elif msg is CkptMsg.DO_CKPT:
            self.protocol.mode = ProtocolMode.QUIESCED
            self.driver.quiesce()
            self._reply(CkptMsg.BOOKMARKS, dict(self.counters.sent))
        elif msg is CkptMsg.DRAIN:
            self._begin_drain(int(payload))
        elif msg is CkptMsg.WRITE:
            self._write_image(float(payload))
        elif msg is CkptMsg.REVISE_ACK:
            cont = self._revision_cont
            if cont is None:
                raise RuntimeError(f"rank {self.rank}: spurious revision ack")
            self._revision_cont = None
            cont()
        elif msg is CkptMsg.RESUME:
            self._finish_checkpoint()
        else:
            raise ValueError(f"rank {self.rank}: unexpected ctrl msg {msg}")

    # ------------------------------------------------------------- draining

    def _begin_drain(self, expected_received_total: int) -> None:
        tr = self.engine.tracer
        if tr.enabled:
            self._drain_span = tr.begin(
                "rank:drain", cat=Category.CHECKPOINT, rank=self.rank,
                expected=expected_received_total,
            )
        self._drain_expected = expected_received_total
        self.endpoint.drain_sink = self._drain_sink
        for record in self.endpoint.harvest_unexpected():
            self._absorb(record)
        self._check_drained()

    def _drain_sink(self, record: MsgRecord) -> None:
        self._absorb(record)
        self._check_drained()

    def _absorb(self, record: MsgRecord) -> None:
        vcomm = self.ctx_to_vcomm.get(record.context_id)
        if vcomm is None:
            raise RuntimeError(
                f"rank {self.rank}: drained message on unknown context "
                f"{record.context_id}"
            )
        self.buffer.add(BufferedMsg(
            vcomm=vcomm, src_world=record.src, tag=record.tag,
            data=record.data, size=record.size, seq=record.seq,
        ))
        self.counters.count_receive(record.src)
        self.stats.drained_messages += 1
        self._m_drained.inc()

    def _check_drained(self) -> None:
        if self._drain_expected is None:
            return
        if self.counters.received_total >= self._drain_expected:
            self._drain_expected = None
            tr = self.engine.tracer
            if tr.enabled:
                tr.end(self._drain_span, drained=len(self.buffer))
                self._drain_span = None
            self._reply(CkptMsg.DRAINED, self.proc.upper_bytes())

    # ---------------------------------------------------------------- image

    def capture_state(self) -> dict:
        """The picklable restore payload (everything upper-half)."""
        log_snap = self.log.snapshot(compact=self.compact, table=self.table,
                                     n_ranks=self.n_ranks)
        self.last_compaction = (
            log_snap.get("stats") if isinstance(log_snap, dict) else None
        )
        return {
            "interp": self.driver.interp.snapshot(),
            "app_state": dict(self.driver.interp.state),
            "heap": self.proc.heap.snapshot_payload(),
            "counters": self.counters.snapshot(),
            "buffer": self.buffer.snapshot(),
            "log": log_snap,
            "table": self.table.snapshot(),
            "icolls": [rec.snapshot() for rec in self.icolls.values()],
            "icoll_ids": self._icoll_ids,
            "sends_done": dict(self.sends_done),
            "vrequests": [rec.snapshot() for rec in self.vrequests.values()],
            "vreq_ids": self._vreq_ids,
            "vreq_sites": {k: list(v) for k, v in self.vreq_sites.items()},
            "recv_journal": {k: dict(v) for k, v in self.recv_journal.items()},
        }

    def _write_image(self, duration: float) -> None:
        if self.protocol.phase is WrapperPhase.PHASE_2:
            # Theorem 1's invariant, enforced at runtime: the protocol must
            # never cut an image while this rank is inside a collective.
            raise RuntimeError(
                f"rank {self.rank}: checkpoint requested inside phase 2 "
                "(two-phase protocol invariant violated)"
            )
        image = CheckpointImage.capture(
            self.rank, self.proc.upper_regions(), self.capture_state(),
            taken_at=self.engine.now,
        )
        self.stats.checkpoints += 1
        tr = self.engine.tracer
        span = None
        if tr.enabled:
            span = tr.begin("rank:write", cat=Category.CHECKPOINT,
                            rank=self.rank, bytes=image.size_bytes)
        self.engine.call_after(
            duration, self._write_done, span, image,
            label=f"mana-r{self.rank}:write",
        )

    def _write_done(self, span, image: CheckpointImage) -> None:
        """The simulated image write finished: close the span, report done."""
        self.engine.tracer.end(span)
        self._reply(CkptMsg.WRITE_DONE, image)

    # ---------------------------------------------------------------- resume

    def _finish_checkpoint(self) -> None:
        self.endpoint.drain_sink = None
        self._drain_expected = None
        self.protocol.mode = ProtocolMode.NORMAL
        self.protocol.exited_phase2 = False
        self.protocol.replied_in_phase1 = False
        # Pending receives whose message was drained must now be served from
        # the buffer; the lower-half posting is cancelled.
        for pend in list(self.pending_recvs):
            hit = self.buffer.take(pend.vcomm, pend.src_world, pend.tag)
            if hit is None:
                continue
            if pend.req is not None:
                self.endpoint.cancel_recv(pend.req)
            self._finish_recv(
                pend, hit.data,
                Status(self._local_rank_of(pend.vcomm, hit.src_world),
                       hit.tag, hit.size),
                count=False, journal=True,
            )
        self._post_pending_icolls()
        self._release_held()
        self.driver.resume()

    # --------------------------------------------------------------- restart

    def restore_from(self, state: dict) -> ReplayEngine:
        """Install a checkpoint payload; returns the (unstarted) replay
        engine that rebuilds the lower-half opaque objects."""
        self.table.restore(state["table"])
        self.table.rebind(HandleKind.COMM, VCOMM_WORLD, self.endpoint.comm_world)
        self.ctx_to_vcomm = {self.endpoint.comm_world.context_id: VCOMM_WORLD}
        self.log.restore(state["log"])
        self.counters.restore(state["counters"])
        self.buffer.restore(state["buffer"])
        self.proc.heap.restore_payload(state["heap"])
        self.icolls = {}
        for vreq, op, vcomm, args, done, value in state.get("icolls", ()):
            self.icolls[vreq] = IColl(vreq=vreq, op=op, vcomm=vcomm,
                                      args=args, done=done, value=value)
        self._icoll_ids = state.get("icoll_ids", self._icoll_ids)
        self.sends_done = dict(state.get("sends_done", {}))
        self._send_seq = {}
        self.vrequests = {}
        for vreq, kind, vcomm, src, tag, done, value in state.get(
                "vrequests", ()):
            self.vrequests[vreq] = VRequest(
                vreq=vreq, kind=kind, vcomm=vcomm, src_world=src, tag=tag,
                done=done, value=value,
            )
        self._vreq_ids = state.get("vreq_ids", self._vreq_ids)
        self.vreq_sites = {k: list(v) for k, v in
                           state.get("vreq_sites", {}).items()}
        self._vreq_seq = {}
        self.recv_journal = {
            k: dict(v) for k, v in state.get("recv_journal", {}).items()
        }
        self._recv_seq = {}
        self.driver.interp.state.clear()
        self.driver.interp.state.update(state["app_state"])
        self.driver.interp.restore(state["interp"])
        replay = ReplayEngine(
            self.engine, self.endpoint, self.table, self.log,
            label=f"mana-r{self.rank}",
        )
        return replay

    def finish_restore(self) -> None:
        """After replay: rebuild the context map, re-post the phase-1
        Ibarriers of outstanding nonblocking collectives (the old ones died
        with the old lower half), and release the app."""
        for vid, real in self.table.bound(HandleKind.COMM).items():
            self.ctx_to_vcomm[real.context_id] = vid
        self._post_pending_icolls()
        self._repost_pending_irecvs()
        self.driver.start()
