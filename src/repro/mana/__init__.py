"""MANA: MPI-Agnostic Network-Agnostic transparent checkpointing.

This package is the paper's contribution, implemented in full against the
simulated substrate:

* :mod:`split_process` — the split-process runtime: one address space, a
  discardable lower half (MPI library + network driver) and a checkpointable
  upper half (application), with FS-register switch accounting and the
  ``sbrk`` interposition of §2.1;
* :mod:`virtualize` — virtual MPI handles, stable across restarts (§2.2);
* :mod:`record_replay` — the log of persistent MPI calls (communicator /
  group / topology / datatype creation) replayed into a fresh MPI library at
  restart (§2.2);
* :mod:`wrappers` — the interposed MPI API, including the two-phase
  collective wrapper (Algorithm 1) and p2p send/recv metadata recording;
* :mod:`protocol` — the rank-side state machine of Algorithm 2
  (``ready`` / ``in-phase-1`` / ``exit-phase-2``);
* :mod:`coordinator` — the DMTCP-style checkpoint coordinator running
  Algorithm 2's coordinator side plus drain and write phases;
* :mod:`checkpoint_image` — upper-half-only checkpoint images;
* :mod:`job` — launching applications under MANA and restarting them on a
  different MPI implementation / interconnect / cluster / rank layout.

Public entry points: :func:`repro.mana.job.launch_mana` and
:func:`repro.mana.job.restart`.
"""

from repro.mana.checkpoint_image import CheckpointError, CheckpointImage, CheckpointSet
from repro.mana.coordinator import CheckpointReport, Coordinator
from repro.mana.job import ManaJob, launch_mana, restart
from repro.mana.protocol import CkptMsg, RankCkptState, WrapperPhase
from repro.mana.split_process import SplitProcess
from repro.mana.autockpt import run_with_periodic_checkpoints, young_daly_interval
from repro.mana.storage import describe_checkpoint, load_checkpoint, save_checkpoint
from repro.mana.virtualize import HandleKind, VirtualHandleTable, VirtualizationError
from repro.mana.wrappers import ManaApi

__all__ = [
    "CheckpointError",
    "CheckpointImage",
    "CheckpointReport",
    "CheckpointSet",
    "CkptMsg",
    "Coordinator",
    "HandleKind",
    "ManaApi",
    "ManaJob",
    "RankCkptState",
    "SplitProcess",
    "VirtualHandleTable",
    "VirtualizationError",
    "WrapperPhase",
    "describe_checkpoint",
    "launch_mana",
    "load_checkpoint",
    "restart",
    "run_with_periodic_checkpoints",
    "save_checkpoint",
    "young_daly_interval",
]
