"""Periodic checkpointing: the production fault-tolerance loop.

Sites run MANA by checkpointing long jobs on an interval chosen from the
optimal-checkpoint-period literature (Young/Daly: sqrt(2 * MTBF * ckpt_cost))
and keeping the last couple of checkpoint sets on stable storage.  This
module packages that loop for simulated jobs:

* :func:`run_with_periodic_checkpoints` — drive a job to completion, cutting
  a coordinated checkpoint every ``interval`` simulated seconds, optionally
  persisting each to disk and pruning old ones;
* :func:`young_daly_interval` — the classic period formula.
"""

from __future__ import annotations

import math
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.mana.checkpoint_image import CheckpointSet
from repro.mana.coordinator import CheckpointReport
from repro.mana.job import ManaJob
from repro.mana.storage import save_checkpoint


def young_daly_interval(mtbf_seconds: float, ckpt_cost_seconds: float) -> float:
    """Young's first-order optimal checkpoint period: sqrt(2 * C * MTBF)."""
    if mtbf_seconds <= 0 or ckpt_cost_seconds <= 0:
        raise ValueError("MTBF and checkpoint cost must be positive")
    return math.sqrt(2.0 * ckpt_cost_seconds * mtbf_seconds)


class CheckpointPruner:
    """Two-generation checkpoint retention on stable storage.

    Saves each :class:`CheckpointSet` to ``out_dir/ckpt_NNNN`` and prunes
    the oldest directories down to ``keep`` — but only after the new set is
    safely on disk, so the newest checkpoint is never at risk.  Shared by
    the periodic loop and by :func:`repro.faults.run_resilient`, whose
    numbering continues across recoveries.
    """

    def __init__(self, out_dir: Union[str, pathlib.Path], keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.out_dir = pathlib.Path(out_dir)
        self.keep = keep
        self.saved_dirs: list[pathlib.Path] = []
        self._index = 0

    @property
    def latest_dir(self) -> Optional[pathlib.Path]:
        """The newest saved checkpoint directory, if any."""
        return self.saved_dirs[-1] if self.saved_dirs else None

    def save(self, ckpt: CheckpointSet) -> pathlib.Path:
        """Persist ``ckpt`` as the next generation, then prune old ones."""
        target = self.out_dir / f"ckpt_{self._index:04d}"
        save_checkpoint(ckpt, target)
        self.saved_dirs.append(target)
        self._index += 1
        # prune, oldest first, but never below `keep` (and so never the
        # directory just written)
        while len(self.saved_dirs) > self.keep:
            doomed = self.saved_dirs.pop(0)
            shutil.rmtree(doomed, ignore_errors=True)
        return target


@dataclass
class PeriodicRun:
    """Outcome of a periodic-checkpoint run."""

    completed: bool
    reports: list[CheckpointReport] = field(default_factory=list)
    saved_dirs: list[pathlib.Path] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def checkpoint_overhead(self) -> float:
        """Total simulated seconds spent inside checkpoint protocols."""
        return sum(r.total_time for r in self.reports)

    @property
    def latest_dir(self) -> Optional[pathlib.Path]:
        """The newest saved checkpoint directory, if any."""
        return self.saved_dirs[-1] if self.saved_dirs else None


def run_with_periodic_checkpoints(
    job: ManaJob,
    interval: float,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    keep: int = 2,
    max_checkpoints: Optional[int] = None,
    until: Optional[float] = None,
) -> PeriodicRun:
    """Run ``job`` to completion, checkpointing every ``interval`` seconds.

    If ``out_dir`` is given, each checkpoint is saved to
    ``out_dir/ckpt_NNNN`` and only the newest ``keep`` directories are
    retained (the standard two-generation scheme: never delete the old
    checkpoint before the new one is safely on disk).  ``until`` stops the
    loop at an absolute virtual time (e.g. an injected failure) —
    ``completed`` is then False unless the job finished first.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if keep < 1:
        raise ValueError("must keep at least one checkpoint")
    out = PeriodicRun(completed=False)
    pruner = CheckpointPruner(out_dir, keep=keep) if out_dir is not None else None
    t0 = job.engine.now
    # Record the exact virtual time the job finishes: `run_until` always
    # advances the clock to its deadline, so the clock alone can overshoot.
    finish_time: list[float] = []
    job.finished.on_done(lambda _v: finish_time.append(job.engine.now))
    next_ckpt = t0 + interval
    index = 0
    while True:
        deadline = next_ckpt if until is None else min(next_ckpt, until)
        job.run_until(deadline)
        if job.finished.done:
            out.completed = True
            break
        if until is not None and job.engine.now >= until:
            break  # the injected failure (or budget) hit first
        if max_checkpoints is not None and index >= max_checkpoints:
            job.run_to_completion()
            out.completed = True
            break
        ckpt, report = job.checkpoint()
        out.reports.append(report)
        if pruner is not None:
            pruner.save(ckpt)
            out.saved_dirs = list(pruner.saved_dirs)
        index += 1
        next_ckpt = job.engine.now + interval
    end = finish_time[0] if (out.completed and finish_time) else job.engine.now
    out.total_time = end - t0
    return out
