"""Periodic checkpointing: the production fault-tolerance loop.

Sites run MANA by checkpointing long jobs on an interval chosen from the
optimal-checkpoint-period literature (Young/Daly: sqrt(2 * MTBF * ckpt_cost))
and keeping the last couple of checkpoint sets on stable storage.  This
module packages that loop for simulated jobs:

* :func:`run_with_periodic_checkpoints` — drive a job to completion, cutting
  a coordinated checkpoint every ``interval`` simulated seconds, optionally
  persisting each to disk and pruning old ones;
* :func:`young_daly_interval` — the classic period formula.
"""

from __future__ import annotations

import math
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.mana.coordinator import CheckpointReport
from repro.mana.job import ManaJob
from repro.mana.storage import save_checkpoint


def young_daly_interval(mtbf_seconds: float, ckpt_cost_seconds: float) -> float:
    """Young's first-order optimal checkpoint period: sqrt(2 * C * MTBF)."""
    if mtbf_seconds <= 0 or ckpt_cost_seconds <= 0:
        raise ValueError("MTBF and checkpoint cost must be positive")
    return math.sqrt(2.0 * ckpt_cost_seconds * mtbf_seconds)


@dataclass
class PeriodicRun:
    """Outcome of a periodic-checkpoint run."""

    completed: bool
    reports: list[CheckpointReport] = field(default_factory=list)
    saved_dirs: list[pathlib.Path] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def checkpoint_overhead(self) -> float:
        """Total simulated seconds spent inside checkpoint protocols."""
        return sum(r.total_time for r in self.reports)

    @property
    def latest_dir(self) -> Optional[pathlib.Path]:
        """The newest saved checkpoint directory, if any."""
        return self.saved_dirs[-1] if self.saved_dirs else None


def run_with_periodic_checkpoints(
    job: ManaJob,
    interval: float,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    keep: int = 2,
    max_checkpoints: Optional[int] = None,
    until: Optional[float] = None,
) -> PeriodicRun:
    """Run ``job`` to completion, checkpointing every ``interval`` seconds.

    If ``out_dir`` is given, each checkpoint is saved to
    ``out_dir/ckpt_NNNN`` and only the newest ``keep`` directories are
    retained (the standard two-generation scheme: never delete the old
    checkpoint before the new one is safely on disk).  ``until`` stops the
    loop at an absolute virtual time (e.g. an injected failure) —
    ``completed`` is then False unless the job finished first.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if keep < 1:
        raise ValueError("must keep at least one checkpoint")
    out = PeriodicRun(completed=False)
    out_path = pathlib.Path(out_dir) if out_dir is not None else None
    t0 = job.engine.now
    next_ckpt = t0 + interval
    index = 0
    while True:
        deadline = next_ckpt if until is None else min(next_ckpt, until)
        job.run_until(deadline)
        if job.finished.done:
            out.completed = True
            break
        if until is not None and job.engine.now >= until:
            break  # the injected failure (or budget) hit first
        if max_checkpoints is not None and index >= max_checkpoints:
            job.run_to_completion()
            out.completed = True
            break
        ckpt, report = job.checkpoint()
        out.reports.append(report)
        if out_path is not None:
            target = out_path / f"ckpt_{index:04d}"
            save_checkpoint(ckpt, target)
            out.saved_dirs.append(target)
            # prune, oldest first, but never below `keep`
            while len(out.saved_dirs) > keep:
                doomed = out.saved_dirs.pop(0)
                shutil.rmtree(doomed, ignore_errors=True)
        index += 1
        next_ckpt = job.engine.now + interval
    out.total_time = job.engine.now - t0
    return out
