"""Pluggable checkpoint-protocol engines (coordinator side).

The :class:`~repro.mana.coordinator.Coordinator` owns messaging (broadcast
fan-out, reply delivery, failure aborts) and delegates the protocol state
machine to a :class:`ProtocolEngine`:

* :class:`Alg2Protocol` — the paper's Algorithm 2: intent rounds with extra
  iterations until no rank reports ``exit-phase-2`` and no trivial barrier
  is fully entered, then a global quiesce → drain → write pipeline.  This
  is the original coordinator logic, moved verbatim; its event sequence
  (and therefore every trace and every golden fingerprint) is unchanged.

* :class:`TopoSortProtocol` — protocol v2 (after the topological-sort
  successor to MANA, arXiv:2408.02218): a *single* intent round that
  freezes every rank immediately, collects send/receive bookmarks in the
  same reply, orders ranks by their in-flight message dependency DAG and
  writes images in topological waves as each rank's local drain completes.
  Ranks caught inside a collective (laggards) and ranks stuck in a
  dependency cycle fall back to a bounded local drain and write last.
  There is no global quiesce wait: the time from intent to first drain is
  one control round, not ``2 + extra`` rounds.

Both engines produce the same consistent cut — bit-identical restart
fingerprints — which the conformance matrix checks differentially
(``repro conformance --protocol both``).  See docs/protocols.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.mana.protocol import CkptMsg, RankCkptState
from repro.obs.events import Category

__all__ = [
    "ProtocolEngine",
    "Alg2Protocol",
    "TopoSortProtocol",
    "build_inflight_dag",
    "topological_waves",
    "make_protocol",
]


# --------------------------------------------------------------- pure helpers


def build_inflight_dag(
    sent: dict[int, dict[int, int]],
    received: dict[int, dict[int, int]],
) -> dict[int, set[int]]:
    """The rank-level in-flight message dependency DAG.

    ``sent[j][i]`` is rank j's bookmark of messages sent to rank i;
    ``received[i][j]`` is rank i's bookmark of messages received from j.
    An edge ``j -> i`` means j has messages still in flight toward i, so
    i's local drain (and therefore its image) depends on j: i must be
    checkpointed **after** j.  Returns ``{j: {i, ...}}``.
    """
    edges: dict[int, set[int]] = {}
    for j, per_dst in sent.items():
        for i, count in per_dst.items():
            if i == j:
                continue
            if count - received.get(i, {}).get(j, 0) > 0:
                edges.setdefault(j, set()).add(i)
    return edges


def topological_waves(
    nodes: Iterable[int],
    edges: dict[int, set[int]],
) -> tuple[list[tuple[int, ...]], tuple[int, ...]]:
    """Kahn's algorithm, grouped into waves.

    Returns ``(waves, fallback)``: ``waves`` is a list of rank tuples such
    that every rank appears after all ranks it depends on (edge ``j -> i``
    puts i in a strictly later wave than j); ``fallback`` is the set of
    ranks on (or downstream of) a dependency cycle, which no linear order
    can serve — the protocol checkpoints them last via the bounded local
    drain.  Only edges between ``nodes`` are considered.
    """
    nodes = sorted(nodes)
    nodeset = set(nodes)
    indeg = {r: 0 for r in nodes}
    out: dict[int, list[int]] = {r: [] for r in nodes}
    for j, dsts in edges.items():
        if j not in nodeset:
            continue
        for i in sorted(dsts):
            if i in nodeset and i != j:
                indeg[i] += 1
                out[j].append(i)
    frontier = [r for r in nodes if indeg[r] == 0]
    waves: list[tuple[int, ...]] = []
    placed: set[int] = set()
    while frontier:
        waves.append(tuple(frontier))
        placed.update(frontier)
        nxt: list[int] = []
        for j in frontier:
            for i in out[j]:
                indeg[i] -= 1
                if indeg[i] == 0:
                    nxt.append(i)
        frontier = sorted(nxt)
    fallback = tuple(r for r in nodes if r not in placed)
    return waves, fallback


# ------------------------------------------------------------ engine protocol


class ProtocolEngine:
    """One checkpoint protocol's coordinator-side state machine.

    The coordinator calls :meth:`begin` when a checkpoint is requested and
    forwards every (non-stale) rank reply to :meth:`on_reply`; the engine
    drives broadcasts through the coordinator's control-plane helpers and
    finishes by calling ``Coordinator._resolve_report``.  :meth:`reset`
    drops in-flight protocol state on an abort.
    """

    name = "?"

    def __init__(self, coord) -> None:
        self.c = coord

    def begin(self) -> None:
        """Start the protocol (open spans, send the first broadcast)."""
        raise NotImplementedError

    def on_reply(self, rank: int, msg: CkptMsg, payload: Any) -> None:
        """Process one rank reply delivered by the coordinator."""
        raise NotImplementedError

    def reset(self) -> None:
        """Abort: drop any in-flight protocol state (default: nothing)."""


# ------------------------------------------------------------------ Algorithm 2


class Alg2Protocol(ProtocolEngine):
    """The paper's Algorithm 2 plus the DMTCP-style pipeline (original
    coordinator logic, moved here unchanged)."""

    name = "alg2"

    def begin(self) -> None:
        """Open the ckpt/intent spans and broadcast intend-to-ckpt."""
        c = self.c
        tr = c.engine.tracer
        if tr.enabled:
            c._spans = {
                "ckpt": tr.begin("ckpt", cat=Category.PROTOCOL),
                "ckpt:intent": tr.begin("ckpt:intent", cat=Category.PROTOCOL),
            }
        self._round(CkptMsg.INTEND_TO_CKPT)

    def on_reply(self, rank: int, msg: CkptMsg, payload: Any) -> None:
        """Collect replies for the current phase; advance when all are in."""
        c = self.c
        if msg is CkptMsg.REVISE_IN_PHASE_1:
            # The rank's earlier in-phase-1 reply went stale (its trivial
            # barrier completed).  Un-count it, acknowledge (the rank parks
            # until then), and wait for its deferred exit-phase-2.  The
            # fully-entered-barrier check guarantees this can only arrive
            # while the round is still collecting.
            if c._phase != "collect-states":
                raise RuntimeError(
                    f"revision from rank {rank} outside a state round "
                    f"(phase {c._phase!r})"
                )
            c._replies.pop(rank, None)
            rt = c.runtimes[rank]
            c.engine.call_after(
                c.control.reply_delay(), rt.on_ctrl, CkptMsg.REVISE_ACK,
                None, label=f"coord:revise-ack->r{rank}",
            )
            return
        if msg is not c._expect_kind:
            raise RuntimeError(
                f"coordinator in phase {c._phase!r} got {msg} from rank "
                f"{rank}, expected {c._expect_kind}"
            )
        if rank in c._replies:
            raise RuntimeError(f"duplicate {msg} reply from rank {rank}")
        c._replies[rank] = payload
        if len(c._replies) == len(c.runtimes):
            replies, c._replies = c._replies, {}
            self._phase_complete(replies)

    # -------------------------------------------------------- phase machine

    def _needs_extra_iteration(self, replies: dict[int, Any]) -> bool:
        """True if it is not yet safe to send do-ckpt.

        Unsafe when (a) some rank reported ``exit-phase-2`` — Algorithm 2's
        printed condition — or (b) every member of some communicator reports
        ``in-phase-1`` on the *same* trivial barrier: that barrier will
        complete and commit its ranks into phase 2 right after they replied
        (the Challenge-I race), so the collective must be allowed to flow
        through before checkpointing.
        """
        in_phase1: dict[int, tuple[set[int], tuple[int, ...]]] = {}
        for rank, reply in replies.items():
            if reply is RankCkptState.EXIT_PHASE_2:
                return True
            if isinstance(reply, tuple):
                state, (ctx, members) = reply
                assert state is RankCkptState.IN_PHASE_1
                entry = in_phase1.setdefault(ctx, (set(), tuple(members)))
                entry[0].add(rank)
        return any(
            waiting == set(members) for waiting, members in in_phase1.values()
        )

    def _round(self, msg: CkptMsg) -> None:
        c = self.c
        c._rounds += 1
        c._start_phase("collect-states", CkptMsg.STATE_REPLY)
        c._broadcast(msg, lambda i: None)

    def _phase_complete(self, replies: dict[int, Any]) -> None:
        c = self.c
        phase = c._phase
        if phase == "collect-states":
            if self._needs_extra_iteration(replies):
                # Algorithm 2 line 7 (plus the Challenge-I refinement):
                # iterate while anyone exited phase 2, or while some trivial
                # barrier is fully entered and therefore about to commit.
                self._round(CkptMsg.EXTRA_ITERATION)
                return
            # all ready or safely parked in-phase-1: checkpoint is safe
            c._trace_phase("ckpt:intent", "ckpt:quiesce", rounds=c._rounds)
            c._start_phase("bookmarks", CkptMsg.BOOKMARKS)
            c._broadcast(CkptMsg.DO_CKPT, lambda i: None)
        elif phase == "bookmarks":
            # expected receive total per rank = sum of everyone's sends to it
            expected = [0] * len(c.runtimes)
            for sent in replies.values():
                for dst, count in sent.items():
                    expected[dst] += count
            c._t_drain_start = c.engine.now
            c._trace_phase("ckpt:quiesce", "ckpt:drain",
                           expected_total=sum(expected))
            c._start_phase("drain", CkptMsg.DRAINED)
            c._broadcast(CkptMsg.DRAIN, lambda i: expected[i])
        elif phase == "drain":
            c._t_drain_end = c.engine.now
            c._trace_phase("ckpt:drain", "ckpt:write")
            sizes = [int(replies[r]) for r in range(len(c.runtimes))]
            report = c.storage.burst(sizes, c.node_of, rng=c.rng)
            c._t_write_start = c.engine.now
            c._start_phase("write", CkptMsg.WRITE_DONE)
            c._broadcast(CkptMsg.WRITE, lambda i: float(report.per_rank[i]))
        elif phase == "write":
            images = [replies[r] for r in range(len(c.runtimes))]
            t_write_end = c.engine.now
            c._start_phase("idle", None)
            c._broadcast(CkptMsg.RESUME, lambda i: None)
            total = t_write_end - c._t0
            drain = c._t_drain_end - c._t_drain_start
            write = t_write_end - c._t_write_start
            quiesce_wait = c._t_drain_start - c._t0
            c.checkpoints_taken += 1
            tr = c.engine.tracer
            if tr.enabled:
                c._trace_phase("ckpt:write")
                c._trace_phase("ckpt", rounds=c._rounds,
                               drain_s=drain, write_s=write)
                tr.instant("ckpt:resume", cat=Category.PROTOCOL)
            m = c.engine.metrics
            m.counter("ckpt.completed").inc()
            m.histogram("ckpt.drain_seconds").observe(drain)
            m.histogram("ckpt.write_seconds").observe(write)
            m.histogram("ckpt.quiesce_wait_seconds").observe(quiesce_wait)
            m.gauge("ckpt.last_total_seconds").set(total)
            m.gauge("ckpt.last_rounds").set(c._rounds)
            c._resolve_report(
                total=total, drain=drain, write=write, images=images,
                quiesce_wait=quiesce_wait,
            )
        else:
            raise RuntimeError(f"unexpected phase completion in {phase!r}")


# ------------------------------------------------------- topological-sort v2


class TopoSortProtocol(ProtocolEngine):
    """Protocol v2: single-round intent, topological-wave image writes.

    One broadcast freezes every rank (``driver.quiesce()`` at intent
    receipt); because wrapper sends are bookmarked synchronously at call
    time and a quiesced driver issues no further calls, the send/receive
    counters in the single ``TOPO_STATE`` reply are final.  From that one
    round the coordinator derives

    * the expected receive total per rank (drain target),
    * the set of *laggards* — ranks inside a collective's phase 2, or
      in-phase-1 ranks whose trivial barrier has (or provably will have)
      committed — which must exit the collective before draining, and
    * the in-flight dependency DAG over the remaining (settled) ranks.

    Settled ranks drain immediately and write in Kahn waves as their local
    drains complete; ranks on a dependency cycle and laggards form the
    final waves (the bounded-local-drain fallback).  ``RESUME`` stays
    global — the cut is the single quiesce instant, so restarts are
    bit-identical to Algorithm 2's.
    """

    name = "topo"

    def begin(self) -> None:
        """Open the topo spans and broadcast the single topo-intent."""
        c = self.c
        self._states: dict[int, Any] = {}
        self._revised: set[int] = set()
        self._exited: set[int] = set()
        self._laggards: set[int] = set()
        self._expected: Optional[list[int]] = None
        self._sizes: dict[int, int] = {}
        self._drained: set[int] = set()
        self._images: dict[int, Any] = {}
        self._waves: list[tuple[int, ...]] = []
        self._wave_issued = 0
        self._fallback: tuple[int, ...] = ()
        self._quiesce_wait = 0.0
        self._t_drain_last = c._t0
        self._t_write_first: Optional[float] = None
        tr = c.engine.tracer
        if tr.enabled:
            c._spans = {
                "ckpt": tr.begin("ckpt", cat=Category.PROTOCOL),
                "ckpt:topo-intent": tr.begin(
                    "ckpt:topo-intent", cat=Category.PROTOCOL
                ),
            }
        c._rounds = 1
        c._start_phase("topo-intent", CkptMsg.TOPO_STATE)
        c._broadcast(CkptMsg.TOPO_INTENT, lambda i: None)

    def reset(self) -> None:
        """Abort: drop round state so late replies cannot advance it."""
        self._states = {}
        self._expected = None
        self._waves = []
        self._wave_issued = 0

    # ------------------------------------------------------------- replies

    def on_reply(self, rank: int, msg: CkptMsg, payload: Any) -> None:
        """Dispatch one rank reply by message kind (see class docstring)."""
        c = self.c
        if msg is CkptMsg.REVISE_IN_PHASE_1:
            # A trivial barrier completed under the intent: the rank is
            # committing into phase 2.  Ack immediately (topo never blocks
            # a commit) — the rank is a laggard and drains after its exit.
            if c._phase == "idle":
                # Post-resume straggler (found by the TopoSortModel checker):
                # another rank resumed first and completed the barrier
                # before this rank processed its own RESUME.  The checkpoint
                # is over; ack so the rank can commit, and ignore.
                rt = c.runtimes[rank]
                c.engine.call_after(
                    c.control.reply_delay(), rt.on_ctrl, CkptMsg.REVISE_ACK,
                    None, label=f"coord:revise-ack->r{rank}",
                )
                return
            if self._expected is not None and rank not in self._laggards:
                raise RuntimeError(
                    f"topo: revision from rank {rank} classified settled — "
                    "the per-communicator commit analysis missed a barrier"
                )
            self._revised.add(rank)
            rt = c.runtimes[rank]
            c.engine.call_after(
                c.control.reply_delay(), rt.on_ctrl, CkptMsg.REVISE_ACK,
                None, label=f"coord:revise-ack->r{rank}",
            )
        elif msg is CkptMsg.TOPO_STATE:
            if c._phase != "topo-intent":
                raise RuntimeError(
                    f"topo: state reply from rank {rank} outside the intent "
                    f"round (phase {c._phase!r})"
                )
            if rank in self._states:
                raise RuntimeError(f"duplicate {msg} reply from rank {rank}")
            self._states[rank] = payload
            if len(self._states) == len(c.runtimes):
                self._classify()
        elif msg is CkptMsg.STATE_REPLY:
            # a laggard's deferred exit-phase-2: its collective completed
            if payload is not RankCkptState.EXIT_PHASE_2:
                raise RuntimeError(
                    f"topo: unexpected state reply {payload!r} from rank {rank}"
                )
            self._exited.add(rank)
            if self._expected is not None:
                if rank not in self._laggards:
                    raise RuntimeError(
                        f"topo: exit-phase-2 from settled rank {rank}"
                    )
                self._send_drain(rank)
        elif msg is CkptMsg.DRAINED:
            self._sizes[rank] = int(payload)
            self._drained.add(rank)
            self._t_drain_last = c.engine.now
            if len(self._drained) == len(c.runtimes):
                c._t_drain_end = c.engine.now
                c._trace_phase("ckpt:topo-drain")
            self._maybe_issue_waves()
        elif msg is CkptMsg.WRITE_DONE:
            self._images[rank] = payload
            if len(self._images) == len(c.runtimes):
                self._finish()
        else:
            raise RuntimeError(
                f"coordinator in phase {c._phase!r} got {msg} from rank "
                f"{rank} (topo protocol)"
            )

    # ------------------------------------------------------- classification

    def _classify(self) -> None:
        """The single round is complete: derive laggards, drain targets and
        the write-order waves, then start draining the settled ranks."""
        c = self.c
        n = len(c.runtimes)
        now = c.engine.now
        self._quiesce_wait = now - c._t0
        states = self._states
        # Per-communicator commit analysis.  A trivial barrier completes
        # (committing every member into phase 2) iff all members entered
        # phase 1 — so a barrier is doomed to commit if some member already
        # reports phase 2 on it, or if every member reports in-phase-1.
        # In-phase-1 ranks on such a barrier will revise and must be
        # treated as laggards; any other in-phase-1 rank is safely parked
        # (its barrier cannot complete while entries are gated).
        waiting: dict[int, set[int]] = {}
        committed: dict[int, set[int]] = {}
        members_of: dict[int, tuple[int, ...]] = {}
        laggards = set(self._revised) | set(self._exited)
        for r, p in states.items():
            if p["coll"] is not None:
                ctx, members = p["coll"]
                members_of[ctx] = tuple(members)
                bucket = waiting if p["state"] == "in-phase-1" else committed
                bucket.setdefault(ctx, set()).add(r)
            if p["state"] == "in-phase-2":
                laggards.add(r)
        for ctx, members in members_of.items():
            w = waiting.get(ctx, set())
            if committed.get(ctx) or w == set(members):
                laggards |= w
        self._laggards = laggards
        # Expected receive totals: every wrapper send is bookmarked at call
        # time and all drivers are quiesced, so these sums are final.
        expected = [0] * n
        for p in states.values():
            for dst, count in p["sent"].items():
                expected[dst] += count
        self._expected = expected
        settled = [r for r in range(n) if r not in laggards]
        edges = build_inflight_dag(
            {r: states[r]["sent"] for r in settled},
            {r: states[r]["received"] for r in settled},
        )
        waves, fallback = topological_waves(settled, edges)
        self._fallback = fallback
        self._waves = list(waves)
        if fallback:
            self._waves.append(fallback)
        if laggards:
            self._waves.append(tuple(sorted(laggards)))
        c._t_drain_start = now
        c._trace_phase("ckpt:topo-intent", "ckpt:topo-drain",
                       laggards=sorted(laggards),
                       waves=[list(w) for w in self._waves],
                       fallback=list(fallback))
        c._start_phase("topo-drain", CkptMsg.DRAINED)
        for index, r in enumerate(settled):
            self._send_drain(r, index=index)
        # laggards whose deferred exit raced the round: drain them now too
        for r in sorted(self._exited):
            self._send_drain(r)

    def _send_drain(self, rank: int, index: int = 0) -> None:
        c = self.c
        rt = c.runtimes[rank]
        c.engine.call_after(
            c.control.fanout_delay(index), rt.on_ctrl, CkptMsg.DRAIN,
            self._expected[rank], label=f"coord:{CkptMsg.DRAIN.value}->r{rank}",
        )

    # ------------------------------------------------------------- writing

    def _maybe_issue_waves(self) -> None:
        """Issue WRITEs for every leading wave whose ranks have all locally
        drained.  Waves are strictly ordered: a rank's write is never issued
        before the writes of every rank it depends on."""
        c = self.c
        while self._wave_issued < len(self._waves):
            wave = self._waves[self._wave_issued]
            if not all(r in self._drained for r in wave):
                return
            self._wave_issued += 1
            report = c.storage.burst(
                [self._sizes[r] for r in wave],
                [c.node_of[r] for r in wave],
                rng=c.rng,
            )
            if self._t_write_first is None:
                self._t_write_first = c.engine.now
                c._phase = "topo-write"
                tr = c.engine.tracer
                if tr.enabled:
                    c._spans["ckpt:topo-write"] = tr.begin(
                        "ckpt:topo-write", cat=Category.PROTOCOL
                    )
            for index, r in enumerate(wave):
                rt = c.runtimes[r]
                c.engine.call_after(
                    c.control.fanout_delay(index), rt.on_ctrl,
                    CkptMsg.WRITE, float(report.per_rank[index]),
                    label=f"coord:{CkptMsg.WRITE.value}->r{r}",
                )

    def _finish(self) -> None:
        c = self.c
        n = len(c.runtimes)
        t_end = c.engine.now
        images = [self._images[r] for r in range(n)]
        c._start_phase("idle", None)
        c._broadcast(CkptMsg.RESUME, lambda i: None)
        total = t_end - c._t0
        drain = max(0.0, self._t_drain_last - c._t_drain_start)
        write = t_end - (
            self._t_write_first if self._t_write_first is not None else t_end
        )
        c.checkpoints_taken += 1
        tr = c.engine.tracer
        if tr.enabled:
            c._trace_phase("ckpt:topo-write")
            c._trace_phase("ckpt", rounds=c._rounds, drain_s=drain,
                           write_s=write, quiesce_wait_s=self._quiesce_wait,
                           laggards=len(self._laggards),
                           fallback=len(self._fallback))
            tr.instant("ckpt:resume", cat=Category.PROTOCOL)
        m = c.engine.metrics
        m.counter("ckpt.completed").inc()
        m.histogram("ckpt.drain_seconds").observe(drain)
        m.histogram("ckpt.write_seconds").observe(write)
        m.histogram("ckpt.quiesce_wait_seconds").observe(self._quiesce_wait)
        m.gauge("ckpt.last_total_seconds").set(total)
        m.gauge("ckpt.last_rounds").set(c._rounds)
        c._resolve_report(
            total=total, drain=drain, write=write, images=images,
            quiesce_wait=self._quiesce_wait, fallback_ranks=self._fallback,
        )


_ENGINES = {
    Alg2Protocol.name: Alg2Protocol,
    TopoSortProtocol.name: TopoSortProtocol,
}


def make_protocol(name: str, coord) -> ProtocolEngine:
    """Instantiate the named protocol engine bound to ``coord``."""
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown checkpoint protocol {name!r} "
            f"(choose from {sorted(_ENGINES)})"
        ) from None
    return cls(coord)
