"""Checkpoint images: upper-half memory plus MANA wrapper state.

An image is what one rank's helper thread writes to stable storage.  It has

* a *payload* — the pickled bytes actually restored at restart: interpreter
  continuation, application ``ProgramState``, the upper heap, the virtual
  handle descriptors, the record-replay log, p2p counters and the drained
  message buffer;
* a *modeled size* — the sum of the rank's upper-half region sizes, which is
  what the Lustre model times and what Fig. 6 reports per rank.

The image constructor enforces invariant 2 of DESIGN.md: regions tagged
LOWER (or marked ephemeral) may never be captured.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.memory.region import Half, MemoryRegion


class CheckpointError(RuntimeError):
    """Image construction/restore violations."""


@dataclass(frozen=True)
class RegionDescriptor:
    """Metadata of one saved region (layout restored verbatim)."""

    name: str
    kind: str
    perm: int
    size: int


@dataclass
class CheckpointImage:
    """One rank's checkpoint."""

    rank: int
    #: modeled on-disk size in bytes (drives write/read timing)
    size_bytes: int
    #: descriptors of the saved upper-half regions
    regions: tuple[RegionDescriptor, ...]
    #: pickled restore payload
    payload: bytes
    #: wall-clock (virtual) time the image was cut
    taken_at: float

    @classmethod
    def capture(
        cls,
        rank: int,
        upper_regions: list[MemoryRegion],
        state: dict,
        taken_at: float,
    ) -> "CheckpointImage":
        """Build an image from a rank's upper half and wrapper state."""
        for region in upper_regions:
            if region.half is not Half.UPPER:
                raise CheckpointError(
                    f"rank {rank}: lower-half region {region.name!r} "
                    "reached the checkpoint writer"
                )
            if region.ephemeral:
                raise CheckpointError(
                    f"rank {rank}: ephemeral region {region.name!r} "
                    "reached the checkpoint writer"
                )
        descriptors = tuple(
            RegionDescriptor(r.name, r.kind.value, r.perm.value, r.size)
            for r in upper_regions
        )
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(
            rank=rank,
            size_bytes=sum(r.size for r in upper_regions),
            regions=descriptors,
            payload=payload,
            taken_at=taken_at,
        )

    def restore_state(self) -> dict:
        """Unpickle the restore payload."""
        return pickle.loads(self.payload)


@dataclass
class CheckpointSet:
    """A coordinated checkpoint: one image per rank plus job metadata."""

    images: list[CheckpointImage]
    #: job facts a restart needs: n_ranks, app name, seed, source cluster...
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        ranks = [img.rank for img in self.images]
        if ranks != list(range(len(ranks))):
            raise CheckpointError(
                f"checkpoint set must cover ranks 0..n-1 in order, got {ranks}"
            )

    @property
    def n_ranks(self) -> int:
        """Number of ranks covered."""
        return len(self.images)

    @property
    def total_bytes(self) -> int:
        """Sum of all images' modeled sizes."""
        return sum(img.size_bytes for img in self.images)

    def image_for(self, rank: int) -> CheckpointImage:
        """The image of one rank; raises CheckpointError if absent."""
        if not 0 <= rank < self.n_ranks:
            raise CheckpointError(f"no image for rank {rank}")
        return self.images[rank]
