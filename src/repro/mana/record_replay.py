"""Record-replay of persistent MPI calls (§2.2).

"MPI calls with persistent effects (such as creation of these opaque
objects) are recorded during runtime and replayed on restart."

Each rank keeps an ordered log of the communicator-, topology- and
datatype-shaping calls it made, with every handle argument expressed as a
*virtual* id.  At restart, MANA replays the log against the fresh lower
half: communicator-management entries are genuine collectives in the new
MPI library, so all ranks replay concurrently and their calls match exactly
as the originals did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mana.virtualize import HandleKind, VirtualHandleTable
from repro.mpilib.comm import Group
from repro.mpilib.datatypes import rebuild as rebuild_datatype
from repro.simtime import Completion, Engine


@dataclass(frozen=True)
class LogEntry:
    """One recorded persistent call.

    ``op`` names the MPI operation; ``args`` are plain data and virtual
    handles only (picklable); ``result_vid`` is the virtual id the original
    call produced (None for frees and for non-member comm_create/split
    results).
    """

    op: str
    args: tuple
    result_vid: Optional[int]


class RecordLog:
    """Ordered per-rank log of persistent calls."""

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def record(self, op: str, args: tuple, result_vid: Optional[int]) -> None:
        """Append one persistent-call entry."""
        self.entries.append(LogEntry(op, tuple(args), result_vid))

    def __len__(self) -> int:
        return len(self.entries)

    def snapshot(self) -> list[LogEntry]:
        """Picklable representation for the checkpoint image."""
        return list(self.entries)

    def restore(self, entries: list[LogEntry]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self.entries = list(entries)


class ReplayEngine:
    """Replays one rank's log against a fresh endpoint, rebinding virtuals.

    Entries run strictly in order; communicator-management entries are real
    collectives on the new world, so every participating rank's ReplayEngine
    must be started before any of them can finish.  :attr:`finished`
    resolves when the whole log has been replayed.
    """

    def __init__(self, engine: Engine, endpoint: Any, table: VirtualHandleTable,
                 log: RecordLog, label: str = "replay") -> None:
        self.engine = engine
        self.endpoint = endpoint
        self.table = table
        self.log = log
        self.finished = Completion(engine, label=f"{label}:finished")
        self._idx = 0
        self.replayed = 0

    def start(self) -> None:
        # COMM_WORLD is predefined: bind it before anything else.
        """Begin execution (schedules the first event)."""
        self.engine.call_after(0.0, self._step, label="replay:start")

    # ------------------------------------------------------------ stepping

    def _step(self) -> None:
        if self._idx >= len(self.log.entries):
            self.finished.resolve(self.replayed)
            return
        entry = self.log.entries[self._idx]
        self._idx += 1
        handler = getattr(self, f"_replay_{entry.op}", None)
        if handler is None:
            raise ValueError(f"no replay handler for op {entry.op!r}")
        handler(entry)

    def _continue(self, entry: LogEntry, real: Any) -> None:
        if entry.result_vid is not None:
            self.table.rebind(HandleKind.COMM, entry.result_vid, real)
        self.replayed += 1
        self._step()

    def _resolve_comm(self, vid: int) -> Any:
        return self.table.resolve(HandleKind.COMM, vid)

    # ------------------------------------------------------------ handlers

    def _replay_comm_dup(self, entry: LogEntry) -> None:
        (parent_vid,) = entry.args
        done = self.endpoint.comm_dup(self._resolve_comm(parent_vid))
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_split(self, entry: LogEntry) -> None:
        parent_vid, color, key = entry.args
        done = self.endpoint.comm_split(color, key, self._resolve_comm(parent_vid))
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_create(self, entry: LogEntry) -> None:
        parent_vid, world_ranks = entry.args
        done = self.endpoint.comm_create(
            Group(tuple(world_ranks)), self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_cart_create(self, entry: LogEntry) -> None:
        parent_vid, dims, periods = entry.args
        done = self.endpoint.cart_create(
            list(dims), list(periods), self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_graph_create(self, entry: LogEntry) -> None:
        parent_vid, edges = entry.args
        done = self.endpoint.graph_create(
            [tuple(e) for e in edges], self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_free(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        # The create entry earlier in the log re-bound this vid; retire it
        # again so the table converges to the pre-checkpoint bindings.
        self.table.unregister(HandleKind.COMM, vid)
        self.replayed += 1
        self._step()

    def _replay_type_create(self, entry: LogEntry) -> None:
        (recipe, vid) = entry.args
        real = rebuild_datatype(recipe)
        self.table.rebind(HandleKind.DATATYPE, vid, real)
        self.replayed += 1
        self._step()

    # --------------------------------------------------------- file ops

    def _replay_file_open(self, entry: LogEntry) -> None:
        from repro.mana.wrappers import FileBinding

        vcomm, path, mode = entry.args
        done = self.endpoint.file_open(path, mode, self._resolve_comm(vcomm))

        def rebind(real: Any) -> None:
            self.table.rebind(
                HandleKind.FILE, entry.result_vid,
                FileBinding(real=real, vcomm=vcomm, path=path, mode=mode),
            )
            self.replayed += 1
            self._step()

        done.on_done(rebind)

    def _replay_file_close(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        binding = self.table.resolve(HandleKind.FILE, vid)
        binding.real.close()
        self.table.unregister(HandleKind.FILE, vid)
        self.replayed += 1
        self._step()

    # ------------------------------------------------- group ops (local)

    def _rebind_group(self, entry: LogEntry, group: Group) -> None:
        self.table.rebind(HandleKind.GROUP, entry.result_vid, group)
        self.replayed += 1
        self._step()

    def _replay_comm_group(self, entry: LogEntry) -> None:
        (parent_vid,) = entry.args
        self._rebind_group(entry, self._resolve_comm(parent_vid).group)

    def _resolve_group(self, vid: int) -> Group:
        return self.table.resolve(HandleKind.GROUP, vid)

    def _replay_group_incl(self, entry: LogEntry) -> None:
        vgroup, ranks = entry.args
        self._rebind_group(entry, self._resolve_group(vgroup).incl(list(ranks)))

    def _replay_group_excl(self, entry: LogEntry) -> None:
        vgroup, ranks = entry.args
        self._rebind_group(entry, self._resolve_group(vgroup).excl(list(ranks)))

    def _replay_group_union(self, entry: LogEntry) -> None:
        va, vb = entry.args
        self._rebind_group(
            entry, self._resolve_group(va).union(self._resolve_group(vb))
        )

    def _replay_group_intersection(self, entry: LogEntry) -> None:
        va, vb = entry.args
        self._rebind_group(
            entry,
            self._resolve_group(va).intersection(self._resolve_group(vb)),
        )

    def _replay_group_free(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        self.table.unregister(HandleKind.GROUP, vid)
        self.replayed += 1
        self._step()
