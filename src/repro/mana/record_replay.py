"""Record-replay of persistent MPI calls (§2.2).

"MPI calls with persistent effects (such as creation of these opaque
objects) are recorded during runtime and replayed on restart."

Each rank keeps an ordered log of the communicator-, topology- and
datatype-shaping calls it made, with every handle argument expressed as a
*virtual* id.  At restart, MANA replays the log against the fresh lower
half: communicator-management entries are genuine collectives in the new
MPI library, so all ranks replay concurrently and their calls match exactly
as the originals did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mana.virtualize import HandleKind, VirtualHandleTable
from repro.mpilib.comm import Group
from repro.mpilib.datatypes import rebuild as rebuild_datatype
from repro.simtime import Completion, Engine


@dataclass(frozen=True)
class LogEntry:
    """One recorded persistent call.

    ``op`` names the MPI operation; ``args`` are plain data and virtual
    handles only (picklable); ``result_vid`` is the virtual id the original
    call produced (None for frees and for non-member comm_create/split
    results); ``result_kind`` is the handle namespace that id lives in, so
    replay rebinds into the right table even for non-comm results.
    """

    op: str
    args: tuple
    result_vid: Optional[int]
    result_kind: HandleKind = HandleKind.COMM


class RecordLog:
    """Ordered per-rank log of persistent calls."""

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def record(self, op: str, args: tuple, result_vid: Optional[int],
               result_kind: HandleKind = HandleKind.COMM) -> None:
        """Append one persistent-call entry."""
        self.entries.append(LogEntry(op, tuple(args), result_vid, result_kind))

    def __len__(self) -> int:
        return len(self.entries)

    def snapshot(self) -> list[LogEntry]:
        """Picklable representation for the checkpoint image."""
        return list(self.entries)

    def restore(self, entries: list[LogEntry]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self.entries = list(entries)


class ReplayEngine:
    """Replays one rank's log against a fresh endpoint, rebinding virtuals.

    Entries run strictly in order; communicator-management entries are real
    collectives on the new world, so every participating rank's ReplayEngine
    must be started before any of them can finish.  :attr:`finished`
    resolves when the whole log has been replayed.
    """

    def __init__(self, engine: Engine, endpoint: Any, table: VirtualHandleTable,
                 log: RecordLog, label: str = "replay") -> None:
        self.engine = engine
        self.endpoint = endpoint
        self.table = table
        self.log = log
        self.finished = Completion(engine, label=f"{label}:finished")
        self._idx = 0
        self.replayed = 0
        self._pumping = False
        self._blocked = False

    def start(self) -> None:
        # COMM_WORLD is predefined: bind it before anything else.
        """Begin execution (schedules the first event)."""
        self.engine.call_after(0.0, self._pump, label="replay:start")

    # ------------------------------------------------------------ stepping
    #
    # The drain loop is iterative: local entries (datatypes, group algebra,
    # frees) complete synchronously inside one pass of the while loop, so a
    # log of any length replays in O(1) stack depth.  Collective entries
    # park the loop (``_blocked``) until the lower half's completion fires;
    # ``_continue`` then re-enters the pump.  The re-entrancy guard makes a
    # completion that resolves synchronously equivalent to a local entry.

    def _pump(self) -> None:
        if self._pumping:
            return
        self._pumping = True
        try:
            while not self._blocked and self._idx < len(self.log.entries):
                entry = self.log.entries[self._idx]
                self._idx += 1
                handler = getattr(self, f"_replay_{entry.op}", None)
                if handler is None:
                    raise ValueError(f"no replay handler for op {entry.op!r}")
                self._blocked = True
                handler(entry)
        finally:
            self._pumping = False
        if (not self._blocked and self._idx >= len(self.log.entries)
                and not self.finished.done):
            self.finished.resolve(self.replayed)

    def _local_done(self) -> None:
        """A local entry finished synchronously; the pump loop continues."""
        self.replayed += 1
        self._blocked = False

    def _continue(self, entry: LogEntry, real: Any) -> None:
        if entry.result_vid is not None:
            self._bind(entry.result_kind, entry.result_vid, real)
        self.replayed += 1
        self._blocked = False
        self._pump()

    def _bind(self, kind: HandleKind, vid: int, real: Any) -> None:
        """Bind a replayed creation result under its original virtual id.

        Handles still bound when the image was cut are *rebinds* (the strict
        path — the restored table expects exactly those ids); handles that
        were freed again before the checkpoint are fresh registrations that
        a later free entry in this same log will retire.
        """
        if self.table.expects_rebind(kind, vid):
            self.table.rebind(kind, vid, real)
        else:
            self.table.register(kind, real, virtual=vid)

    def _resolve_comm(self, vid: int) -> Any:
        return self.table.resolve(HandleKind.COMM, vid)

    # ------------------------------------------------------------ handlers

    def _replay_comm_dup(self, entry: LogEntry) -> None:
        (parent_vid,) = entry.args
        done = self.endpoint.comm_dup(self._resolve_comm(parent_vid))
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_split(self, entry: LogEntry) -> None:
        parent_vid, color, key = entry.args
        done = self.endpoint.comm_split(color, key, self._resolve_comm(parent_vid))
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_create(self, entry: LogEntry) -> None:
        parent_vid, world_ranks = entry.args
        done = self.endpoint.comm_create(
            Group(tuple(world_ranks)), self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_cart_create(self, entry: LogEntry) -> None:
        parent_vid, dims, periods = entry.args
        done = self.endpoint.cart_create(
            list(dims), list(periods), self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_graph_create(self, entry: LogEntry) -> None:
        parent_vid, edges = entry.args
        done = self.endpoint.graph_create(
            [tuple(e) for e in edges], self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_free(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        # The create entry earlier in the log re-bound this vid; retire it
        # again so the table converges to the pre-checkpoint bindings.
        self.table.unregister(HandleKind.COMM, vid)
        self._local_done()

    def _replay_type_create(self, entry: LogEntry) -> None:
        (recipe, vid) = entry.args
        real = rebuild_datatype(recipe)
        self._bind(HandleKind.DATATYPE, vid, real)
        self._local_done()

    # --------------------------------------------------------- file ops

    def _replay_file_open(self, entry: LogEntry) -> None:
        from repro.mana.wrappers import FileBinding

        vcomm, path, mode = entry.args
        done = self.endpoint.file_open(path, mode, self._resolve_comm(vcomm))

        def rebind(real: Any) -> None:
            binding = FileBinding(real=real, vcomm=vcomm, path=path, mode=mode)
            self._continue(entry, binding)

        done.on_done(rebind)

    def _replay_file_close(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        binding = self.table.resolve(HandleKind.FILE, vid)
        binding.real.close()
        self.table.unregister(HandleKind.FILE, vid)
        self._local_done()

    # ------------------------------------------------- group ops (local)

    def _rebind_group(self, entry: LogEntry, group: Group) -> None:
        self._bind(HandleKind.GROUP, entry.result_vid, group)
        self._local_done()

    def _replay_comm_group(self, entry: LogEntry) -> None:
        (parent_vid,) = entry.args
        self._rebind_group(entry, self._resolve_comm(parent_vid).group)

    def _resolve_group(self, vid: int) -> Group:
        return self.table.resolve(HandleKind.GROUP, vid)

    def _replay_group_incl(self, entry: LogEntry) -> None:
        vgroup, ranks = entry.args
        self._rebind_group(entry, self._resolve_group(vgroup).incl(list(ranks)))

    def _replay_group_excl(self, entry: LogEntry) -> None:
        vgroup, ranks = entry.args
        self._rebind_group(entry, self._resolve_group(vgroup).excl(list(ranks)))

    def _replay_group_union(self, entry: LogEntry) -> None:
        va, vb = entry.args
        self._rebind_group(
            entry, self._resolve_group(va).union(self._resolve_group(vb))
        )

    def _replay_group_intersection(self, entry: LogEntry) -> None:
        va, vb = entry.args
        self._rebind_group(
            entry,
            self._resolve_group(va).intersection(self._resolve_group(vb)),
        )

    def _replay_group_free(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        self.table.unregister(HandleKind.GROUP, vid)
        self._local_done()
