"""Record-replay of persistent MPI calls (§2.2).

"MPI calls with persistent effects (such as creation of these opaque
objects) are recorded during runtime and replayed on restart."

Each rank keeps an ordered log of the communicator-, topology- and
datatype-shaping calls it made, with every handle argument expressed as a
*virtual* id.  At restart, MANA replays the log against the fresh lower
half: communicator-management entries are genuine collectives in the new
MPI library, so all ranks replay concurrently and their calls match exactly
as the originals did.

At checkpoint time the log can be *compacted* (``snapshot(compact=True)``,
see :mod:`repro.mana.log_compaction` and docs/record_replay.md): dead
create/free pairs cancel, and purely local entries (datatypes, group
algebra) are replaced by direct value bindings restored at replay start —
restart cost then tracks live handles, not call history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mana.virtualize import HandleKind, VirtualHandleTable
from repro.mpilib.comm import Group
from repro.mpilib.datatypes import rebuild as rebuild_datatype
from repro.simtime import Completion, Engine


class ReplayError(RuntimeError):
    """A replay log that cannot be executed (corrupt, truncated, or from a
    future format).  Raised synchronously by :meth:`ReplayEngine.start` when
    the damage is visible up front, and otherwise delivered by resolving
    :attr:`ReplayEngine.finished` with the error instance — the engine never
    wedges with ``finished`` unresolved."""


@dataclass(frozen=True)
class LogEntry:
    """One recorded persistent call.

    ``op`` names the MPI operation; ``args`` are plain data and virtual
    handles only (picklable); ``result_vid`` is the virtual id the original
    call produced (None for frees and for non-member comm_create/split
    results); ``result_kind`` is the handle namespace that id lives in, so
    replay rebinds into the right table even for non-comm results.

    ``group`` records the result communicator's membership (world ranks)
    for communicator-producing collectives.  Replay never needs it — the
    fresh collective recomputes the membership — but checkpoint-time
    compaction does: a ``comm_split`` may only cancel when its recorded
    result membership equals the parent's (see
    :mod:`repro.mana.log_compaction`).  ``None`` on non-comm entries and on
    entries restored from images that predate the field.
    """

    op: str
    args: tuple
    result_vid: Optional[int]
    result_kind: HandleKind = HandleKind.COMM
    group: Optional[tuple] = None


def _normalize_entry(e: Any) -> LogEntry:
    """Back-compat shim for entries restored from older images.

    * ``type_create`` used to carry the vid redundantly in ``args`` next to
      ``result_vid``; ``result_vid``/``result_kind`` are now the single
      source of truth and the args shrink to ``(recipe,)``.
    * ``group`` did not exist; unpickled old entries simply lack the
      attribute (frozen dataclasses restore their ``__dict__`` verbatim).
    """
    args = e.args
    if e.op == "type_create" and len(args) == 2:
        args = (args[0],)
    return LogEntry(e.op, args, e.result_vid, e.result_kind,
                    getattr(e, "group", None))


class RecordLog:
    """Ordered per-rank log of persistent calls.

    ``local_bindings`` holds value snapshots of live local handles (groups
    as world-rank tuples, datatypes as constructor recipes) restored by
    direct table binding instead of replay.  It is populated by a
    ``compact=True`` snapshot and carried forward by later snapshots, since
    the corresponding create entries are gone from ``entries`` for good.
    """

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []
        #: kind name -> {vid -> ("group", ranks) | ("datatype", recipe)}
        self.local_bindings: dict[str, dict[int, tuple]] = {}
        #: stats of the compaction pass that produced this log (if any)
        self.compaction_stats: Optional[dict] = None

    def record(self, op: str, args: tuple, result_vid: Optional[int],
               result_kind: HandleKind = HandleKind.COMM,
               group: Optional[tuple] = None) -> None:
        """Append one persistent-call entry."""
        self.entries.append(
            LogEntry(op, tuple(args), result_vid, result_kind, group)
        )

    def __len__(self) -> int:
        return len(self.entries)

    # ---------------------------------------------------------- snapshot

    @staticmethod
    def _local_payloads(table: VirtualHandleTable) -> dict:
        """Value snapshots of every live local handle, straight from the
        table: these restore by direct binding, no replay."""
        local: dict = {}
        groups = {
            vid: ("group", tuple(g.world_ranks))
            for vid, g in table.bound(HandleKind.GROUP).items()
        }
        if groups:
            local[HandleKind.GROUP.value] = groups
        dtypes = {
            vid: ("datatype", dt.recipe)
            for vid, dt in table.bound(HandleKind.DATATYPE).items()
        }
        if dtypes:
            local[HandleKind.DATATYPE.value] = dtypes
        return local

    def snapshot(self, compact: bool = False,
                 table: Optional[VirtualHandleTable] = None,
                 n_ranks: Optional[int] = None) -> Any:
        """Picklable representation for the checkpoint image.

        Plain mode returns the bare entry list (the historical shape)
        unless local bindings must ride along; ``compact=True`` runs the
        :mod:`~repro.mana.log_compaction` pass against the live table and
        returns the pruned dict form.  ``restore`` accepts every shape.
        """
        if not compact:
            if not self.local_bindings:
                return list(self.entries)
            return {
                "entries": list(self.entries),
                "local": {k: dict(v) for k, v in self.local_bindings.items()},
                "stats": None,
            }
        if table is None:
            raise ValueError("compact snapshot needs the live handle table")
        from repro.mana.log_compaction import compact_log

        live = {kind: set(table.bound(kind)) for kind in HandleKind}
        result = compact_log(self.entries, live, n_ranks=n_ranks)
        local = self._local_payloads(table)
        result.stats.snapshot_bindings = sum(len(v) for v in local.values())
        return {
            "entries": result.entries,
            "local": local,
            "stats": result.stats.as_dict(),
        }

    def restore(self, snap: Any) -> None:
        """Install state captured by :meth:`snapshot` (any historical shape)."""
        if isinstance(snap, dict):
            entries = snap["entries"]
            self.local_bindings = {
                k: dict(v) for k, v in snap.get("local", {}).items()
            }
            self.compaction_stats = snap.get("stats")
        else:
            entries = snap
            self.local_bindings = {}
            self.compaction_stats = None
        self.entries = [_normalize_entry(e) for e in entries]


class ReplayEngine:
    """Replays one rank's log against a fresh endpoint, rebinding virtuals.

    Entries run strictly in order; communicator-management entries are real
    collectives on the new world, so every participating rank's ReplayEngine
    must be started before any of them can finish.  :attr:`finished`
    resolves when the whole log has been replayed — with the replayed-entry
    count on success, or with a :class:`ReplayError` instance (also stored
    on :attr:`error`) if an entry cannot be executed.

    Compacted logs carry ``local_bindings``: value snapshots of live
    datatype/group handles, bound directly into the table by :meth:`start`
    (counted in :attr:`restored_bindings`) before any entry replays.
    """

    def __init__(self, engine: Engine, endpoint: Any, table: VirtualHandleTable,
                 log: RecordLog, label: str = "replay") -> None:
        self.engine = engine
        self.endpoint = endpoint
        self.table = table
        self.log = log
        self.finished = Completion(engine, label=f"{label}:finished")
        self._idx = 0
        self.replayed = 0
        self.restored_bindings = 0
        self.error: Optional[ReplayError] = None
        self._pumping = False
        self._blocked = False

    def start(self) -> None:
        """Validate the log, apply local bindings, schedule the first event.

        Ops are checked *before* anything executes: a corrupted log raises
        :class:`ReplayError` here, synchronously, instead of wedging the
        engine halfway through a partial replay.
        """
        unknown = sorted({
            e.op for e in self.log.entries
            if getattr(self, f"_replay_{e.op}", None) is None
        })
        if unknown:
            raise ReplayError(
                f"log contains ops with no replay handler: {unknown} "
                "(corrupted image, or one from a newer format?)"
            )
        for kind_name, bindings in self.log.local_bindings.items():
            kind = HandleKind(kind_name)
            for vid, payload in bindings.items():
                self._bind(kind, vid, self._build_local(payload))
                self.restored_bindings += 1
        # COMM_WORLD is predefined and already bound; pump the entries.
        self.engine.call_after(0.0, self._pump, label="replay:start")

    @staticmethod
    def _build_local(payload: tuple) -> Any:
        tag = payload[0]
        if tag == "group":
            return Group(tuple(payload[1]))
        if tag == "datatype":
            return rebuild_datatype(payload[1])
        raise ReplayError(f"unknown local-binding payload {tag!r}")

    # ------------------------------------------------------------ stepping
    #
    # The drain loop is iterative: local entries (datatypes, group algebra,
    # frees) complete synchronously inside one pass of the while loop, so a
    # log of any length replays in O(1) stack depth.  Collective entries
    # park the loop (``_blocked``) until the lower half's completion fires;
    # ``_continue`` then re-enters the pump.  The re-entrancy guard makes a
    # completion that resolves synchronously equivalent to a local entry.

    def _pump(self) -> None:
        if self._pumping or self.error is not None:
            return
        self._pumping = True
        try:
            while not self._blocked and self._idx < len(self.log.entries):
                entry = self.log.entries[self._idx]
                self._idx += 1
                handler = getattr(self, f"_replay_{entry.op}", None)
                try:
                    if handler is None:
                        raise ReplayError(
                            f"no replay handler for op {entry.op!r}"
                        )
                    self._blocked = True
                    handler(entry)
                except Exception as exc:  # noqa: BLE001 - converted to a
                    self._fail(entry, exc)  # typed, finished-resolving error
                    return
        finally:
            self._pumping = False
        if (not self._blocked and self._idx >= len(self.log.entries)
                and not self.finished.done):
            self.finished.resolve(self.replayed)

    def _fail(self, entry: LogEntry, exc: Exception) -> None:
        """Record a typed error and resolve ``finished`` with it: a broken
        log surfaces cleanly instead of hanging the restart."""
        if isinstance(exc, ReplayError):
            err = exc
        else:
            err = ReplayError(
                f"replaying {entry.op!r} (entry {self._idx - 1}) failed: {exc}"
            )
            err.__cause__ = exc
        self.error = err
        self._blocked = True  # no further entries execute
        if not self.finished.done:
            self.finished.resolve(err)

    def _local_done(self) -> None:
        """A local entry finished synchronously; the pump loop continues."""
        self.replayed += 1
        self._blocked = False

    def _continue(self, entry: LogEntry, real: Any) -> None:
        if entry.result_vid is not None:
            self._bind(entry.result_kind, entry.result_vid, real)
        self.replayed += 1
        self._blocked = False
        self._pump()

    def _bind(self, kind: HandleKind, vid: int, real: Any) -> None:
        """Bind a replayed creation result under its original virtual id.

        Handles still bound when the image was cut are *rebinds* (the strict
        path — the restored table expects exactly those ids); handles that
        were freed again before the checkpoint are fresh registrations that
        a later free entry in this same log will retire.
        """
        if self.table.expects_rebind(kind, vid):
            self.table.rebind(kind, vid, real)
        else:
            self.table.register(kind, real, virtual=vid)

    def _resolve_comm(self, vid: int) -> Any:
        return self.table.resolve(HandleKind.COMM, vid)

    # ------------------------------------------------------------ handlers

    def _replay_comm_dup(self, entry: LogEntry) -> None:
        (parent_vid,) = entry.args
        done = self.endpoint.comm_dup(self._resolve_comm(parent_vid))
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_split(self, entry: LogEntry) -> None:
        parent_vid, color, key = entry.args
        done = self.endpoint.comm_split(color, key, self._resolve_comm(parent_vid))
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_create(self, entry: LogEntry) -> None:
        parent_vid, world_ranks = entry.args
        done = self.endpoint.comm_create(
            Group(tuple(world_ranks)), self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_cart_create(self, entry: LogEntry) -> None:
        parent_vid, dims, periods = entry.args
        done = self.endpoint.cart_create(
            list(dims), list(periods), self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_graph_create(self, entry: LogEntry) -> None:
        parent_vid, edges = entry.args
        done = self.endpoint.graph_create(
            [tuple(e) for e in edges], self._resolve_comm(parent_vid)
        )
        done.on_done(lambda real: self._continue(entry, real))

    def _replay_comm_free(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        # The create entry earlier in the log re-bound this vid; retire it
        # again so the table converges to the pre-checkpoint bindings, and
        # release the real communicator in the fresh lower half too — the
        # original free released the old lower half's.
        real = self.table.resolve(HandleKind.COMM, vid)
        if self.endpoint is not None:
            self.endpoint.comm_free(real)
        self.table.unregister(HandleKind.COMM, vid)
        self._local_done()

    def _replay_type_create(self, entry: LogEntry) -> None:
        if entry.result_vid is None:
            raise ReplayError("type_create entry lacks a result vid")
        (recipe,) = entry.args
        real = rebuild_datatype(recipe)
        self._bind(HandleKind.DATATYPE, entry.result_vid, real)
        self._local_done()

    def _replay_type_free(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        # Datatypes are value objects here: retiring the binding is the
        # whole release (nothing lives in the lower half for them).
        self.table.unregister(HandleKind.DATATYPE, vid)
        self._local_done()

    # --------------------------------------------------------- file ops

    def _replay_file_open(self, entry: LogEntry) -> None:
        from repro.mana.wrappers import FileBinding

        vcomm, path, mode = entry.args
        done = self.endpoint.file_open(path, mode, self._resolve_comm(vcomm))

        def rebind(real: Any) -> None:
            binding = FileBinding(real=real, vcomm=vcomm, path=path, mode=mode)
            self._continue(entry, binding)

        done.on_done(rebind)

    def _replay_file_close(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        binding = self.table.resolve(HandleKind.FILE, vid)
        # close() releases the real handle in the fresh lower half's ledger.
        binding.real.close()
        self.table.unregister(HandleKind.FILE, vid)
        self._local_done()

    # ------------------------------------------------- group ops (local)

    def _rebind_group(self, entry: LogEntry, group: Group) -> None:
        if entry.result_vid is None:
            raise ReplayError(
                f"group entry {entry.op!r} lacks a result vid"
            )
        self._bind(HandleKind.GROUP, entry.result_vid, group)
        self._local_done()

    def _replay_comm_group(self, entry: LogEntry) -> None:
        (parent_vid,) = entry.args
        self._rebind_group(entry, self._resolve_comm(parent_vid).group)

    def _resolve_group(self, vid: int) -> Group:
        return self.table.resolve(HandleKind.GROUP, vid)

    def _replay_group_incl(self, entry: LogEntry) -> None:
        vgroup, ranks = entry.args
        self._rebind_group(entry, self._resolve_group(vgroup).incl(list(ranks)))

    def _replay_group_excl(self, entry: LogEntry) -> None:
        vgroup, ranks = entry.args
        self._rebind_group(entry, self._resolve_group(vgroup).excl(list(ranks)))

    def _replay_group_union(self, entry: LogEntry) -> None:
        va, vb = entry.args
        self._rebind_group(
            entry, self._resolve_group(va).union(self._resolve_group(vb))
        )

    def _replay_group_intersection(self, entry: LogEntry) -> None:
        va, vb = entry.args
        self._rebind_group(
            entry,
            self._resolve_group(va).intersection(self._resolve_group(vb)),
        )

    def _replay_group_free(self, entry: LogEntry) -> None:
        (vid,) = entry.args
        # Groups are value objects: no lower-half resource to release.
        self.table.unregister(HandleKind.GROUP, vid)
        self._local_done()
