"""Launching MPI applications under MANA, and restarting them anywhere.

:func:`launch_mana` is ``mana_launch``: it starts an MPI job whose every
rank runs inside a split process with the interposed API, and attaches a
checkpoint coordinator.

:func:`restart` is ``mana_restart``: given a :class:`CheckpointSet`, it
builds a *new* MPI session — possibly a different implementation, a
different interconnect, a different cluster, and a different ranks-per-node
layout (§3.5, §3.6) — bootstraps fresh lower halves, replays each rank's
record log to rebuild the opaque MPI state, restores the upper halves from
the images, and resumes the application exactly where it was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.hardware.cluster import Cluster
from repro.mana.checkpoint_image import CheckpointSet
from repro.mana.coordinator import (
    CheckpointAborted,
    CheckpointReport,
    ControlPlaneModel,
    Coordinator,
)
from repro.mana.rank_runtime import ManaRankRuntime
from repro.mana.split_process import SplitProcess
from repro.mpilib.launcher import init_time, launch
from repro.mprog.ast import Program
from repro.mprog.interp import ProgramState
from repro.simtime import Completion, Engine
from repro.simtime.engine import all_of

MB = 1 << 20

ProgramFactory = Callable[[int, int], Program]


@dataclass
class RestartReport:
    """Timing breakdown of one restart (Fig. 7).

    ``replayed_entries`` counts log entries actually re-executed across all
    ranks; ``restored_bindings`` counts live local handles (datatypes,
    groups) restored by direct table binding instead — the compacted-log
    fast path (docs/record_replay.md).  Both are 0 on reports produced
    before these fields existed.
    """

    total_time: float
    read_time: float
    replay_time: float
    init_time: float
    replayed_entries: int = 0
    restored_bindings: int = 0


class ManaJob:
    """A running (or restarted) MANA job."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        world,
        runtimes: list[ManaRankRuntime],
        coordinator: Coordinator,
        meta: Optional[dict] = None,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.world = world
        self.runtimes = runtimes
        self.coordinator = coordinator
        self.meta = dict(meta or {})
        self.finished = all_of(
            engine, [rt.driver.finished for rt in runtimes], label="mana-job"
        )
        #: resolves once the application is actually executing: immediately
        #: on :meth:`start` for a fresh launch, or after init + image reads +
        #: record-replay for a restart.  A facility scheduler must not
        #: checkpoint a job before this fires — mid-replay there is nothing
        #: coherent to quiesce.
        self.resumed = Completion(engine, label="mana-job:resumed")
        self.restart_report: Optional[RestartReport] = None

    # ------------------------------------------------------------ execution

    def start(self) -> "ManaJob":
        """Begin execution (schedules the first event).

        On a sharded engine each rank's first event is seeded with the
        rank's shard affinity, so the whole downstream compute/drain chain
        of that rank stays on its shard (events inherit the shard of the
        event that scheduled them)."""
        plan = self.engine.plan
        placement = list(self.world.placement)
        for rank, rt in enumerate(self.runtimes):
            shard = (None if plan is None
                     else plan.shard_of_rank(placement, rank))
            with self.engine.scheduling_shard(shard):
                rt.driver.start()
        if not self.resumed.done:
            self.resumed.resolve(None)
        return self

    def kill(self) -> None:
        """Tear the whole job down (the facility's SIGKILL after a
        preemption checkpoint, or a job-fatal node crash): every rank
        runtime dies and its in-flight completions are cancelled.
        Idempotent; recovery means :func:`restart` from a checkpoint."""
        for rt in self.runtimes:
            rt.kill()

    def run_until(self, t: float) -> float:
        """Advance the simulation to absolute virtual time ``t``."""
        return self.engine.run(until=t)

    def run_to_completion(self) -> float:
        """Run the engine until every rank finishes; returns elapsed virtual seconds."""
        t0 = self.engine.now
        self.engine.run()
        if not self.finished.done:
            stuck = [
                f"{rt.driver.label}@{rt.driver.parked_at}"
                for rt in self.runtimes if rt.driver.parked_at != "finished"
            ]
            raise RuntimeError(f"MANA job did not finish: {', '.join(stuck)}")
        return self.engine.now - t0

    @property
    def states(self) -> list[ProgramState]:
        """Each rank's live ProgramState, by rank."""
        return [rt.driver.interp.state for rt in self.runtimes]

    def enable_profiling(self) -> None:
        """Turn on PMPI-style call tracing on every rank (§4.2: substitute a
        profiling MPI mid-run by enabling this after a restart)."""
        for rt in self.runtimes:
            rt.profile = {}

    def call_profile(self) -> dict:
        """Aggregated (count, bytes) per interposed operation across ranks."""
        out: dict = {}
        for rt in self.runtimes:
            for op, (count, nbytes) in (rt.profile or {}).items():
                c0, b0 = out.get(op, (0, 0))
                out[op] = (c0 + count, b0 + nbytes)
        return out

    # ----------------------------------------------------------- checkpoint

    def checkpoint(self) -> tuple[CheckpointSet, CheckpointReport]:
        """Trigger a coordinated checkpoint *now* and run the simulation
        until it completes; the application continues afterwards.

        Raises :class:`CheckpointAborted` if a rank fails mid-protocol (the
        abort is raised once a failure detector times the dead helper out).
        """
        done = self.coordinator.request_checkpoint()
        while not done.done:
            if not self.engine.step():
                raise RuntimeError(
                    "checkpoint protocol stalled: no events pending"
                )
        if isinstance(done.value, CheckpointAborted):
            raise done.value
        report: CheckpointReport = done.value
        report.ckpt_set.meta.update(self.meta)
        report.ckpt_set.meta["taken_at"] = self.engine.now
        report.ckpt_set.meta["source_cluster"] = self.cluster.name
        report.ckpt_set.meta["source_mpi"] = self.world.impl.name
        stats = [rt.last_compaction for rt in self.runtimes]
        if all(s is not None for s in stats):
            # summed across ranks; per-rank stats live in each image's log
            report.ckpt_set.meta["log_compaction"] = {
                key: sum(s[key] for s in stats) for key in stats[0]
            }
        return report.ckpt_set, report

    def checkpoint_at(self, t: float) -> tuple[CheckpointSet, CheckpointReport]:
        """Run until virtual time ``t``, then checkpoint."""
        self.run_until(t)
        return self.checkpoint()


def _build_runtimes(
    engine: Engine,
    cluster: Cluster,
    world,
    program_factory: ProgramFactory,
    app_mem_bytes: Union[int, Callable[[int], int]],
    states: Optional[list[ProgramState]] = None,
    compact: bool = False,
) -> list[ManaRankRuntime]:
    n_ranks = world.size
    n_nodes = len(set(world.placement))
    ranks_per_node = max(
        world.placement.count(n) for n in set(world.placement)
    )
    runtimes = []
    for rank in range(n_ranks):
        node = cluster.node(world.node_of(rank))
        mem = app_mem_bytes(rank) if callable(app_mem_bytes) else app_mem_bytes
        proc = SplitProcess(
            rank, node.kernel, app_mem_bytes=mem,
            upper_mpi_copy_bytes=world.impl.text_size,
        )
        proc.bootstrap_lower_half(
            world.impl, world.fabric, world.shmem, n_nodes, ranks_per_node
        )
        rt = ManaRankRuntime(
            engine, rank, n_ranks, proc, world.endpoints[rank],
            program_factory(rank, n_ranks),
            state=states[rank] if states else None,
            core_speed=node.core_speed,
            compact=compact,
        )
        runtimes.append(rt)
    return runtimes


def _engine_for(engine: Optional[Engine], cluster: Cluster,
                shards: Optional[int]) -> Engine:
    """Honour the ``shards=`` knob when the caller did not supply an engine.

    Imported lazily: :mod:`repro.harness` imports the experiment runners
    (which import this module) at package-import time, so the partitioner
    must not be imported at :mod:`repro.mana.job` import time.
    """
    if engine is not None:
        return engine
    if shards is not None and shards > 1:
        from repro.harness.partition import make_sharded_engine

        return make_sharded_engine(cluster, shards)
    return Engine()


def launch_mana(
    cluster: Cluster,
    program_factory: ProgramFactory,
    n_ranks: int,
    ranks_per_node: Optional[int] = None,
    mpi: Optional[str] = None,
    engine: Optional[Engine] = None,
    app_mem_bytes: Union[int, Callable[[int], int]] = 16 * MB,
    seed: int = 0,
    control: Optional[ControlPlaneModel] = None,
    stragglers: bool = True,
    protocol: str = "alg2",
    shards: Optional[int] = None,
    compact: bool = False,
) -> ManaJob:
    """Launch a program under MANA on ``cluster``.  Does not start the
    drivers — call :meth:`ManaJob.start` (so tests can instrument first).

    ``protocol`` selects the checkpoint protocol engine (``"alg2"`` or
    ``"topo"``; see docs/protocols.md).  ``shards`` > 1 builds the job on
    a :class:`~repro.simtime.sharded.ShardedEngine` partitioned per
    :func:`repro.harness.partition.plan_for_cluster` (only when ``engine``
    is not supplied); ``None``/1 keeps the plain sequential engine.
    ``compact=True`` compacts each rank's record log at checkpoint time so
    restart replay cost tracks live handles (docs/record_replay.md)."""
    engine = _engine_for(engine, cluster, shards)
    world = launch(engine, cluster, n_ranks, ranks_per_node=ranks_per_node, mpi=mpi)
    runtimes = _build_runtimes(
        engine, cluster, world, program_factory, app_mem_bytes,
        compact=compact,
    )
    rng = np.random.default_rng(seed) if stragglers else None
    coordinator = Coordinator(
        engine, runtimes, cluster.storage, list(world.placement),
        rng=rng, control=control, protocol=protocol,
    )
    return ManaJob(
        engine, cluster, world, runtimes, coordinator,
        meta={"n_ranks": n_ranks, "seed": seed},
    )


def restart(
    ckpt: CheckpointSet,
    cluster: Cluster,
    program_factory: ProgramFactory,
    ranks_per_node: Optional[int] = None,
    mpi: Optional[str] = None,
    engine: Optional[Engine] = None,
    seed: int = 0,
    control: Optional[ControlPlaneModel] = None,
    stragglers: bool = True,
    protocol: str = "alg2",
    shards: Optional[int] = None,
    compact: bool = False,
) -> ManaJob:
    """Restart a checkpointed job on ``cluster`` — any implementation, any
    interconnect, any rank layout.  Returns a job whose drivers resume once
    init + image reads + record-replay have completed (all modeled on the
    job's fresh engine); ``job.restart_report`` is filled in at that point.
    ``shards`` works as in :func:`launch_mana` (the restart cluster's own
    partition — a restart may change shard count like anything else).
    ``compact`` governs *future* checkpoints of the restarted job; whether
    the image being restored was compacted is a property of the image.
    """
    engine = _engine_for(engine, cluster, shards)
    n_ranks = ckpt.n_ranks
    world = launch(engine, cluster, n_ranks, ranks_per_node=ranks_per_node, mpi=mpi)

    def mem_for(rank: int) -> int:
        for desc in ckpt.image_for(rank).regions:
            if desc.name == "app-data":
                return desc.size
        return 16 * MB

    runtimes = _build_runtimes(
        engine, cluster, world, program_factory, mem_for,
        compact=compact,
    )
    rng = np.random.default_rng(seed) if stragglers else None
    coordinator = Coordinator(
        engine, runtimes, cluster.storage, list(world.placement),
        rng=rng, control=control, protocol=protocol,
    )
    job = ManaJob(
        engine, cluster, world, runtimes, coordinator,
        meta=dict(ckpt.meta, restarted=True),
    )

    t_start = engine.now
    t_init = init_time(world.impl, n_ranks)
    read = cluster.storage.burst(
        [img.size_bytes for img in ckpt.images],
        node_of=list(world.placement),
        rng=rng, read=True,
    )
    t_read = read.max_time

    def begin_replay() -> None:
        replay_start = engine.now
        replays = []
        plan = engine.plan
        placement = list(world.placement)
        for rank, rt in enumerate(runtimes):
            state = ckpt.image_for(rank).restore_state()
            replays.append(rt.restore_from(state))
        for rank, rp in enumerate(replays):
            shard = (None if plan is None
                     else plan.shard_of_rank(placement, rank))
            with engine.scheduling_shard(shard):
                rp.start()
        def surface(value) -> None:
            # A failed replay resolves its `finished` with a ReplayError;
            # peers blocked in replay collectives would wait forever, so
            # raise the typed error out of the engine run immediately.
            if isinstance(value, Exception):
                raise value

        for rp in replays:
            rp.finished.on_done(surface)

        def resume_all(_values) -> None:
            errors = [rp.error for rp in replays if rp.error is not None]
            if errors:
                # A corrupted log fails the restart cleanly (typed error
                # out of the engine run) instead of hanging mid-replay.
                raise errors[0]
            replay_time = engine.now - replay_start
            # total is *elapsed* restart time — on a shared multi-tenant
            # engine the clock does not start at 0 when the restart begins
            job.restart_report = RestartReport(
                total_time=engine.now - t_start,
                read_time=t_read,
                replay_time=replay_time,
                init_time=t_init,
                replayed_entries=sum(rp.replayed for rp in replays),
                restored_bindings=sum(rp.restored_bindings for rp in replays),
            )
            for rt in runtimes:
                rt.finish_restore()
            job.resumed.resolve(None)

        all_of(engine, [rp.finished for rp in replays],
               label="restart-replay").on_done(resume_all)

    engine.call_after(t_init + t_read, begin_replay, label="restart:begin")
    return job
