"""The checkpoint coordinator (messaging + abort; protocol via engines).

Modeled after the DMTCP coordinator the paper extends (§2.7): a stateless
central daemon talking TCP to each rank's helper thread.  The control plane
charges a per-message serialization cost at the coordinator — the paper's
observation that "the communication overhead associated with the TCP layer
increases with the number of ranks, especially due to metadata in the case
of small messages" (§3.4, Fig. 8) falls out of exactly this term.

The protocol state machine itself is pluggable (``protocol=``):
``"alg2"`` is the paper's Algorithm 2 with the DMTCP-style pipeline
(``do-ckpt`` → bookmarks → ``drain`` → ``write`` → ``resume``);
``"topo"`` is the topological-sort protocol v2 (single intent round,
per-wave writes ordered by the in-flight dependency DAG).  See
:mod:`repro.mana.protocol_engine` and docs/protocols.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.hardware.storage import LustreModel
from repro.mana.checkpoint_image import CheckpointSet
from repro.mana.protocol import CkptMsg
from repro.mana.protocol_engine import make_protocol
from repro.obs.events import Category
from repro.simtime import Completion, Engine


@dataclass
class ControlPlaneModel:
    """TCP control-plane timing between coordinator and rank helpers."""

    #: one-way latency coordinator <-> compute node (management network)
    latency: float = 100e-6
    #: per-message CPU at the coordinator (serialize/accept/select)
    per_message_cpu: float = 0.3e-3

    def fanout_delay(self, index: int) -> float:
        """Delivery delay of the ``index``-th message of a broadcast."""
        return self.latency + (index + 1) * self.per_message_cpu

    def reply_delay(self) -> float:
        """Delivery delay of one rank->coordinator message."""
        return self.latency + self.per_message_cpu


class CheckpointAborted(RuntimeError):
    """A coordinated checkpoint was abandoned because a rank failed.

    Raised (or resolved through the coordinator's completion) when a rank's
    helper stops responding mid-protocol: the round cannot converge, so the
    coordinator resumes the survivors and reports the failure instead of
    hanging.  Carries the failed rank and the phase that was in flight.
    """

    def __init__(self, rank: int, phase: Optional[str]) -> None:
        super().__init__(
            f"checkpoint aborted: rank {rank} failed during phase {phase!r}"
        )
        self.rank = rank
        self.phase = phase


@dataclass
class CheckpointReport:
    """Timing breakdown of one coordinated checkpoint (Fig. 8)."""

    total_time: float
    drain_time: float
    write_time: float
    comm_overhead: float
    rounds: int
    ckpt_set: Optional[CheckpointSet] = None
    #: time from the checkpoint request to the start of draining — the
    #: protocol's quiesce wait (alg2: intent rounds + bookmark collection;
    #: topo: one control round).  This is the ``ckpt_quiesce_wait_s``
    #: perfbench metric.
    quiesce_wait: float = 0.0
    #: which protocol engine produced this checkpoint
    protocol: str = "alg2"
    #: topo only: ranks that hit the bounded-local-drain cycle fallback
    fallback_ranks: tuple = ()

    @property
    def image_sizes(self) -> list[int]:
        """Per-rank image sizes in bytes."""
        if self.ckpt_set is None:
            raise ValueError(
                "checkpoint report carries no checkpoint set (the protocol "
                "did not complete, or the set was detached)"
            )
        return [img.size_bytes for img in self.ckpt_set.images]


class Coordinator:
    """Drives the checkpoint protocol and pipeline over all ranks."""

    def __init__(
        self,
        engine: Engine,
        runtimes: list,
        storage: LustreModel,
        node_of: list[int],
        rng: Optional[np.random.Generator] = None,
        control: Optional[ControlPlaneModel] = None,
        protocol: str = "alg2",
    ) -> None:
        self.engine = engine
        self.runtimes = runtimes
        self.storage = storage
        self.node_of = list(node_of)
        self.rng = rng
        self.control = control if control is not None else ControlPlaneModel()
        self.protocol = protocol
        self.proto = make_protocol(protocol, self)
        for rt in runtimes:
            rt.reply_fn = self._reply_from_rank
        self._phase: Optional[str] = None
        self._replies: dict[int, Any] = {}
        self._expect_kind: Optional[CkptMsg] = None
        self._done: Optional[Completion] = None
        self._report: Optional[CheckpointReport] = None
        self._t0 = 0.0
        self._t_drain_start = 0.0
        self._t_drain_end = 0.0
        self._t_write_start = 0.0
        self._rounds = 0
        self.checkpoints_taken = 0
        #: open protocol-phase spans, keyed by span name (tracing only)
        self._spans: dict[str, Any] = {}
        #: ranks declared dead (by the failure detector or an injector);
        #: their late replies are dropped and new checkpoints are refused.
        self.failed_ranks: set[int] = set()

    # ------------------------------------------------------------ public

    def request_checkpoint(self) -> Completion:
        """Begin the configured protocol; resolves with a
        :class:`CheckpointReport` (or with a :class:`CheckpointAborted` if a
        rank fails mid-protocol)."""
        if self._done is not None and not self._done.done:
            raise RuntimeError("a checkpoint is already in progress")
        if self.failed_ranks:
            raise RuntimeError(
                f"cannot checkpoint: rank(s) {sorted(self.failed_ranks)} "
                "have failed — restart from the last checkpoint instead"
            )
        self._done = Completion(self.engine, label="coordinator:ckpt")
        self._t0 = self.engine.now
        self._rounds = 0
        self.proto.begin()
        return self._done

    def notify_rank_failure(self, rank: int) -> None:
        """A rank is dead (heartbeat timeout): abort any in-flight protocol.

        The current Algorithm-2 round (or pipeline phase) can never converge
        — the dead helper will not reply — so instead of hanging in
        ``_on_reply`` forever the coordinator resumes the surviving ranks
        and resolves the pending completion with :class:`CheckpointAborted`.
        Idempotent per rank; safe to call with no checkpoint in progress.
        """
        if rank in self.failed_ranks:
            return
        self.failed_ranks.add(rank)
        if self._done is None or self._done.done:
            return  # no protocol in flight; nothing to abort
        aborted_phase = self._phase
        self._phase = "aborted"
        self._expect_kind = None
        self._replies = {}
        self.proto.reset()
        done, self._done = self._done, None
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("ckpt:abort", cat=Category.PROTOCOL,
                       rank=rank, phase=aborted_phase)
            self._spans = {}
        self.engine.metrics.counter("ckpt.aborted").inc()
        # Resume the survivors: un-quiesce, release held wrapper entries.
        for i, rt in enumerate(self.runtimes):
            if i in self.failed_ranks:
                continue
            self.engine.call_after(
                self.control.fanout_delay(i), rt.on_ctrl, CkptMsg.RESUME,
                None, shard=self._rank_shard(i),
                label=f"coord:abort-resume->r{i}",
            )
        done.resolve(CheckpointAborted(rank, aborted_phase))

    # ----------------------------------------------------------- messaging

    def _rank_shard(self, rank: int) -> Optional[int]:
        """Shard of ``rank``'s helper under a sharded engine, else None.

        Control-plane latency (100 µs) dominates every fabric α, so these
        coordinator <-> helper edges always satisfy the plan's lookahead.
        """
        plan = self.engine.plan
        return None if plan is None else plan.shard_of_node[self.node_of[rank]]

    def _broadcast(self, msg: CkptMsg, payload_fn: Callable[[int], Any]) -> None:
        for i, rt in enumerate(self.runtimes):
            self.engine.call_after(
                self.control.fanout_delay(i), rt.on_ctrl, msg, payload_fn(i),
                shard=self._rank_shard(i), label=f"coord:{msg.value}->r{i}",
            )

    def _reply_from_rank(self, rank: int, msg: CkptMsg, payload: Any) -> None:
        plan = self.engine.plan
        self.engine.call_after(
            self.control.reply_delay(), self._on_reply, rank, msg, payload,
            shard=None if plan is None else plan.control_shard,
            label=f"coord:reply<-r{rank}",
        )

    def _on_reply(self, rank: int, msg: CkptMsg, payload: Any) -> None:
        if self._phase == "aborted" or rank in self.failed_ranks:
            return  # stale reply racing an abort: drop, never raise
        self.proto.on_reply(rank, msg, payload)

    def _start_phase(self, phase: str, expect: Optional[CkptMsg]) -> None:
        self._phase = phase
        self._expect_kind = expect
        self._replies = {}

    def _trace_phase(self, close: str, open_next: Optional[str] = None,
                     **close_args) -> None:
        """Close the protocol span ``close`` and optionally open the next."""
        tr = self.engine.tracer
        if not tr.enabled:
            return
        tr.end(self._spans.pop(close, None), **close_args)
        if open_next is not None:
            self._spans[open_next] = tr.begin(open_next, cat=Category.PROTOCOL)

    def _resolve_report(self, *, total: float, drain: float, write: float,
                        images: list, quiesce_wait: float,
                        fallback_ranks: tuple = ()) -> None:
        """Build the :class:`CheckpointReport` and resolve the completion
        (called by the protocol engine once every image is written)."""
        self._report = CheckpointReport(
            total_time=total,
            drain_time=drain,
            write_time=write,
            comm_overhead=max(0.0, total - drain - write),
            rounds=self._rounds,
            ckpt_set=CheckpointSet(images=images),
            quiesce_wait=quiesce_wait,
            protocol=self.protocol,
            fallback_ranks=tuple(fallback_ranks),
        )
        self._done.resolve(self._report)
