"""The checkpoint coordinator (Algorithm 2, coordinator side).

Modeled after the DMTCP coordinator the paper extends (§2.7): a stateless
central daemon talking TCP to each rank's helper thread.  The control plane
charges a per-message serialization cost at the coordinator — the paper's
observation that "the communication overhead associated with the TCP layer
increases with the number of ranks, especially due to metadata in the case
of small messages" (§3.4, Fig. 8) falls out of exactly this term.

Checkpoint pipeline after the Algorithm-2 rounds converge:

``do-ckpt`` → ranks quiesce and report send bookmarks → coordinator
aggregates the expected receive totals → ``drain`` → ranks pull in-flight
messages into upper-half buffers → ``write`` (durations from the Lustre
burst model, stragglers included) → ``resume``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.hardware.storage import LustreModel
from repro.mana.checkpoint_image import CheckpointSet
from repro.mana.protocol import CkptMsg, RankCkptState
from repro.obs.events import Category
from repro.simtime import Completion, Engine


@dataclass
class ControlPlaneModel:
    """TCP control-plane timing between coordinator and rank helpers."""

    #: one-way latency coordinator <-> compute node (management network)
    latency: float = 100e-6
    #: per-message CPU at the coordinator (serialize/accept/select)
    per_message_cpu: float = 0.3e-3

    def fanout_delay(self, index: int) -> float:
        """Delivery delay of the ``index``-th message of a broadcast."""
        return self.latency + (index + 1) * self.per_message_cpu

    def reply_delay(self) -> float:
        """Delivery delay of one rank->coordinator message."""
        return self.latency + self.per_message_cpu


class CheckpointAborted(RuntimeError):
    """A coordinated checkpoint was abandoned because a rank failed.

    Raised (or resolved through the coordinator's completion) when a rank's
    helper stops responding mid-protocol: the round cannot converge, so the
    coordinator resumes the survivors and reports the failure instead of
    hanging.  Carries the failed rank and the phase that was in flight.
    """

    def __init__(self, rank: int, phase: Optional[str]) -> None:
        super().__init__(
            f"checkpoint aborted: rank {rank} failed during phase {phase!r}"
        )
        self.rank = rank
        self.phase = phase


@dataclass
class CheckpointReport:
    """Timing breakdown of one coordinated checkpoint (Fig. 8)."""

    total_time: float
    drain_time: float
    write_time: float
    comm_overhead: float
    rounds: int
    ckpt_set: Optional[CheckpointSet] = None

    @property
    def image_sizes(self) -> list[int]:
        """Per-rank image sizes in bytes."""
        if self.ckpt_set is None:
            raise ValueError(
                "checkpoint report carries no checkpoint set (the protocol "
                "did not complete, or the set was detached)"
            )
        return [img.size_bytes for img in self.ckpt_set.images]


class Coordinator:
    """Drives Algorithm 2 and the checkpoint pipeline over all ranks."""

    def __init__(
        self,
        engine: Engine,
        runtimes: list,
        storage: LustreModel,
        node_of: list[int],
        rng: Optional[np.random.Generator] = None,
        control: Optional[ControlPlaneModel] = None,
    ) -> None:
        self.engine = engine
        self.runtimes = runtimes
        self.storage = storage
        self.node_of = list(node_of)
        self.rng = rng
        self.control = control if control is not None else ControlPlaneModel()
        for rt in runtimes:
            rt.reply_fn = self._reply_from_rank
        self._phase: Optional[str] = None
        self._replies: dict[int, Any] = {}
        self._expect_kind: Optional[CkptMsg] = None
        self._done: Optional[Completion] = None
        self._report: Optional[CheckpointReport] = None
        self._t0 = 0.0
        self._t_drain_start = 0.0
        self._t_drain_end = 0.0
        self._t_write_start = 0.0
        self._rounds = 0
        self.checkpoints_taken = 0
        #: open protocol-phase spans, keyed by span name (tracing only)
        self._spans: dict[str, Any] = {}
        #: ranks declared dead (by the failure detector or an injector);
        #: their late replies are dropped and new checkpoints are refused.
        self.failed_ranks: set[int] = set()

    # ------------------------------------------------------------ public

    def request_checkpoint(self) -> Completion:
        """Begin Algorithm 2; resolves with a :class:`CheckpointReport`
        (or with a :class:`CheckpointAborted` if a rank fails mid-protocol)."""
        if self._done is not None and not self._done.done:
            raise RuntimeError("a checkpoint is already in progress")
        if self.failed_ranks:
            raise RuntimeError(
                f"cannot checkpoint: rank(s) {sorted(self.failed_ranks)} "
                "have failed — restart from the last checkpoint instead"
            )
        self._done = Completion(self.engine, label="coordinator:ckpt")
        self._t0 = self.engine.now
        self._rounds = 0
        tr = self.engine.tracer
        if tr.enabled:
            self._spans = {
                "ckpt": tr.begin("ckpt", cat=Category.PROTOCOL),
                "ckpt:intent": tr.begin("ckpt:intent", cat=Category.PROTOCOL),
            }
        self._round(CkptMsg.INTEND_TO_CKPT)
        return self._done

    def notify_rank_failure(self, rank: int) -> None:
        """A rank is dead (heartbeat timeout): abort any in-flight protocol.

        The current Algorithm-2 round (or pipeline phase) can never converge
        — the dead helper will not reply — so instead of hanging in
        ``_on_reply`` forever the coordinator resumes the surviving ranks
        and resolves the pending completion with :class:`CheckpointAborted`.
        Idempotent per rank; safe to call with no checkpoint in progress.
        """
        if rank in self.failed_ranks:
            return
        self.failed_ranks.add(rank)
        if self._done is None or self._done.done:
            return  # no protocol in flight; nothing to abort
        aborted_phase = self._phase
        self._phase = "aborted"
        self._expect_kind = None
        self._replies = {}
        done, self._done = self._done, None
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("ckpt:abort", cat=Category.PROTOCOL,
                       rank=rank, phase=aborted_phase)
            self._spans = {}
        self.engine.metrics.counter("ckpt.aborted").inc()
        # Resume the survivors: un-quiesce, release held wrapper entries.
        for i, rt in enumerate(self.runtimes):
            if i in self.failed_ranks:
                continue
            self.engine.call_after(
                self.control.fanout_delay(i), rt.on_ctrl, CkptMsg.RESUME,
                None, label=f"coord:abort-resume->r{i}",
            )
        done.resolve(CheckpointAborted(rank, aborted_phase))

    # ----------------------------------------------------------- messaging

    def _broadcast(self, msg: CkptMsg, payload_fn: Callable[[int], Any]) -> None:
        for i, rt in enumerate(self.runtimes):
            self.engine.call_after(
                self.control.fanout_delay(i), rt.on_ctrl, msg, payload_fn(i),
                label=f"coord:{msg.value}->r{i}",
            )

    def _reply_from_rank(self, rank: int, msg: CkptMsg, payload: Any) -> None:
        self.engine.call_after(
            self.control.reply_delay(), self._on_reply, rank, msg, payload,
            label=f"coord:reply<-r{rank}",
        )

    def _on_reply(self, rank: int, msg: CkptMsg, payload: Any) -> None:
        if self._phase == "aborted" or rank in self.failed_ranks:
            return  # stale reply racing an abort: drop, never raise
        if msg is CkptMsg.REVISE_IN_PHASE_1:
            # The rank's earlier in-phase-1 reply went stale (its trivial
            # barrier completed).  Un-count it, acknowledge (the rank parks
            # until then), and wait for its deferred exit-phase-2.  The
            # fully-entered-barrier check guarantees this can only arrive
            # while the round is still collecting.
            if self._phase != "collect-states":
                raise RuntimeError(
                    f"revision from rank {rank} outside a state round "
                    f"(phase {self._phase!r})"
                )
            self._replies.pop(rank, None)
            rt = self.runtimes[rank]
            self.engine.call_after(
                self.control.reply_delay(), rt.on_ctrl, CkptMsg.REVISE_ACK,
                None, label=f"coord:revise-ack->r{rank}",
            )
            return
        if msg is not self._expect_kind:
            raise RuntimeError(
                f"coordinator in phase {self._phase!r} got {msg} from rank "
                f"{rank}, expected {self._expect_kind}"
            )
        if rank in self._replies:
            raise RuntimeError(f"duplicate {msg} reply from rank {rank}")
        self._replies[rank] = payload
        if len(self._replies) == len(self.runtimes):
            replies, self._replies = self._replies, {}
            self._phase_complete(replies)

    def _start_phase(self, phase: str, expect: CkptMsg) -> None:
        self._phase = phase
        self._expect_kind = expect
        self._replies = {}

    # -------------------------------------------------------- phase machine

    def _needs_extra_iteration(self, replies: dict[int, Any]) -> bool:
        """True if it is not yet safe to send do-ckpt.

        Unsafe when (a) some rank reported ``exit-phase-2`` — Algorithm 2's
        printed condition — or (b) every member of some communicator reports
        ``in-phase-1`` on the *same* trivial barrier: that barrier will
        complete and commit its ranks into phase 2 right after they replied
        (the Challenge-I race), so the collective must be allowed to flow
        through before checkpointing.
        """
        in_phase1: dict[int, tuple[set[int], tuple[int, ...]]] = {}
        for rank, reply in replies.items():
            if reply is RankCkptState.EXIT_PHASE_2:
                return True
            if isinstance(reply, tuple):
                state, (ctx, members) = reply
                assert state is RankCkptState.IN_PHASE_1
                entry = in_phase1.setdefault(ctx, (set(), tuple(members)))
                entry[0].add(rank)
        return any(
            waiting == set(members) for waiting, members in in_phase1.values()
        )

    def _round(self, msg: CkptMsg) -> None:
        self._rounds += 1
        self._start_phase("collect-states", CkptMsg.STATE_REPLY)
        self._broadcast(msg, lambda i: None)

    def _trace_phase(self, close: str, open_next: Optional[str] = None,
                     **close_args) -> None:
        """Close the protocol span ``close`` and optionally open the next."""
        tr = self.engine.tracer
        if not tr.enabled:
            return
        tr.end(self._spans.pop(close, None), **close_args)
        if open_next is not None:
            self._spans[open_next] = tr.begin(open_next, cat=Category.PROTOCOL)

    def _phase_complete(self, replies: dict[int, Any]) -> None:
        phase = self._phase
        if phase == "collect-states":
            if self._needs_extra_iteration(replies):
                # Algorithm 2 line 7 (plus the Challenge-I refinement):
                # iterate while anyone exited phase 2, or while some trivial
                # barrier is fully entered and therefore about to commit.
                self._round(CkptMsg.EXTRA_ITERATION)
                return
            # all ready or safely parked in-phase-1: checkpoint is safe
            self._trace_phase("ckpt:intent", "ckpt:quiesce", rounds=self._rounds)
            self._start_phase("bookmarks", CkptMsg.BOOKMARKS)
            self._broadcast(CkptMsg.DO_CKPT, lambda i: None)
        elif phase == "bookmarks":
            # expected receive total per rank = sum of everyone's sends to it
            expected = [0] * len(self.runtimes)
            for sent in replies.values():
                for dst, count in sent.items():
                    expected[dst] += count
            self._t_drain_start = self.engine.now
            self._trace_phase("ckpt:quiesce", "ckpt:drain",
                              expected_total=sum(expected))
            self._start_phase("drain", CkptMsg.DRAINED)
            self._broadcast(CkptMsg.DRAIN, lambda i: expected[i])
        elif phase == "drain":
            self._t_drain_end = self.engine.now
            self._trace_phase("ckpt:drain", "ckpt:write")
            sizes = [int(replies[r]) for r in range(len(self.runtimes))]
            report = self.storage.burst(sizes, self.node_of, rng=self.rng)
            self._t_write_start = self.engine.now
            self._start_phase("write", CkptMsg.WRITE_DONE)
            self._broadcast(CkptMsg.WRITE, lambda i: float(report.per_rank[i]))
        elif phase == "write":
            images = [replies[r] for r in range(len(self.runtimes))]
            t_write_end = self.engine.now
            self._start_phase("idle", None)
            self._broadcast(CkptMsg.RESUME, lambda i: None)
            total = t_write_end - self._t0
            drain = self._t_drain_end - self._t_drain_start
            write = t_write_end - self._t_write_start
            self.checkpoints_taken += 1
            tr = self.engine.tracer
            if tr.enabled:
                self._trace_phase("ckpt:write")
                self._trace_phase("ckpt", rounds=self._rounds,
                                  drain_s=drain, write_s=write)
                tr.instant("ckpt:resume", cat=Category.PROTOCOL)
            m = self.engine.metrics
            m.counter("ckpt.completed").inc()
            m.histogram("ckpt.drain_seconds").observe(drain)
            m.histogram("ckpt.write_seconds").observe(write)
            m.gauge("ckpt.last_total_seconds").set(total)
            m.gauge("ckpt.last_rounds").set(self._rounds)
            self._report = CheckpointReport(
                total_time=total,
                drain_time=drain,
                write_time=write,
                comm_overhead=max(0.0, total - drain - write),
                rounds=self._rounds,
                ckpt_set=CheckpointSet(images=images),
            )
            self._done.resolve(self._report)
        else:
            raise RuntimeError(f"unexpected phase completion in {phase!r}")
