"""A simulated process address space with half-aware region bookkeeping.

The layout mimics the situation MANA faces on Linux/x86-64:

* the *kernel-owned program break* (``brk``) sits at the end of the original
  program's data segment.  After restart, that original program is the
  lower-half bootstrap, so moving the break grows **lower-half** memory —
  which is exactly the ``sbrk`` hazard of §2.1 of the paper;
* everything else is allocated by ``mmap`` from a downward-growing mmap
  area, as on real Linux.

Addresses are virtual and purely simulated, but overlap checking is real:
any attempt to map two live regions over each other raises.
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional

from repro.memory.region import Half, MemoryRegion, Perm, RegionKind


class AddressSpaceError(RuntimeError):
    """Mapping errors: overlap, unmapping an unknown region, bad sbrk."""


PAGE = 4096


def page_align(n: int) -> int:
    """Round ``n`` up to the simulated page size."""
    return (n + PAGE - 1) // PAGE * PAGE


class AddressSpace:
    """The set of live :class:`MemoryRegion` objects of one simulated process."""

    #: Bottom of the brk/data area (arbitrary but realistic).
    BRK_BASE = 0x0000_5555_0000_0000
    #: Top of the downward-growing mmap area.
    MMAP_TOP = 0x0000_7FFF_0000_0000

    def __init__(self) -> None:
        self._regions: list[MemoryRegion] = []   # kept sorted by start
        self._starts: list[int] = []
        self._brk = self.BRK_BASE
        self._mmap_next = self.MMAP_TOP
        #: Hook invoked on every sbrk; MANA's interposition layer installs one.
        self.sbrk_interposer: Optional[Callable[[int], Optional[MemoryRegion]]] = None

    # ------------------------------------------------------------- queries

    def regions(self, half: Optional[Half] = None) -> list[MemoryRegion]:
        """All live regions (optionally filtered by half), address order."""
        if half is None:
            return list(self._regions)
        return [r for r in self._regions if r.half is half]

    def find(self, name: str) -> MemoryRegion:
        """Look up a region by exact name; raises if absent or ambiguous."""
        hits = [r for r in self._regions if r.name == name]
        if not hits:
            raise AddressSpaceError(f"no region named {name!r}")
        if len(hits) > 1:
            raise AddressSpaceError(f"ambiguous region name {name!r} ({len(hits)} hits)")
        return hits[0]

    def region_at(self, addr: int) -> Optional[MemoryRegion]:
        """The region containing ``addr``, or None (a simulated page fault)."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i >= 0 and self._regions[i].contains(addr):
            return self._regions[i]
        return None

    def total_size(self, half: Optional[Half] = None,
                   kind: Optional[RegionKind] = None) -> int:
        """Sum of modeled sizes, optionally filtered by half and kind."""
        return sum(
            r.size
            for r in self._regions
            if (half is None or r.half is half) and (kind is None or r.kind is kind)
        )

    def maps(self) -> str:
        """A /proc/self/maps-style dump, useful in error messages and docs."""
        return "\n".join(r.describe() for r in self._regions)

    # ------------------------------------------------------------- mapping

    def mmap(
        self,
        size: int,
        perm: Perm,
        half: Half,
        kind: RegionKind,
        name: str = "",
        payload: object = None,
        ephemeral: bool = False,
        addr: Optional[int] = None,
    ) -> MemoryRegion:
        """Map a new region; chooses an address unless ``addr`` is given."""
        size = page_align(size)
        if addr is None:
            self._mmap_next -= size + PAGE  # guard page between mappings
            addr = self._mmap_next
        region = MemoryRegion(
            start=addr, size=size, perm=perm, half=half, kind=kind,
            name=name, payload=payload, ephemeral=ephemeral,
        )
        self._insert(region)
        return region

    def munmap(self, region: MemoryRegion) -> None:
        """Unmap a region previously returned by :meth:`mmap`/:meth:`sbrk`."""
        try:
            i = self._index_of(region)
        except ValueError:
            raise AddressSpaceError(f"munmap of unknown region {region.name!r}") from None
        del self._regions[i]
        del self._starts[i]

    def unmap_half(self, half: Half) -> list[MemoryRegion]:
        """Unmap every region of ``half`` (used when discarding the lower half
        at restart, or the upper half's stale image before restore)."""
        doomed = [r for r in self._regions if r.half is half]
        for r in doomed:
            self.munmap(r)
        return doomed

    # ---------------------------------------------------------------- sbrk

    @property
    def brk(self) -> int:
        """Current kernel program break."""
        return self._brk

    def sbrk(self, increment: int, caller_half: Half) -> MemoryRegion:
        """Grow the data segment by ``increment`` bytes.

        Without interposition, this extends the *kernel's* idea of the heap —
        which after a restart belongs to the lower-half bootstrap program.
        MANA interposes on upper-half callers and redirects the growth to an
        anonymous ``mmap`` region tagged UPPER (§2.1).  The interposer hook is
        consulted first; if it handles the call it returns the replacement
        region and the kernel break is left untouched.
        """
        if increment <= 0:
            raise AddressSpaceError(f"sbrk increment must be positive, got {increment}")
        if caller_half is Half.UPPER and self.sbrk_interposer is not None:
            replacement = self.sbrk_interposer(increment)
            if replacement is not None:
                return replacement
        # Kernel path: extend the break.  The resulting region is tagged with
        # the half that the kernel-adjacent program owns, i.e. whichever half
        # the bootstrap program belongs to — recorded by who calls us.
        start = self._brk
        size = page_align(increment)
        self._brk += size
        region = MemoryRegion(
            start=start, size=size, perm=Perm.RW, half=caller_half,
            kind=RegionKind.HEAP, name=f"brk+{size:#x}",
        )
        self._insert(region)
        return region

    # ------------------------------------------------------------ internals

    def _index_of(self, region: MemoryRegion) -> int:
        i = bisect.bisect_left(self._starts, region.start)
        while i < len(self._regions) and self._starts[i] == region.start:
            if self._regions[i] is region:
                return i
            i += 1
        raise ValueError(region)

    def _insert(self, region: MemoryRegion) -> None:
        i = bisect.bisect_left(self._starts, region.start)
        for j in (i - 1, i):
            if 0 <= j < len(self._regions) and self._regions[j].overlaps(region):
                raise AddressSpaceError(
                    f"mapping {region.describe()} overlaps {self._regions[j].describe()}"
                )
        self._regions.insert(i, region)
        self._starts.insert(i, region.start)
