"""Memory regions: the unit of checkpointing.

A region carries two independent notions of "contents":

``size``
    The *modeled* byte size — what the corresponding mapping would occupy in
    the real system (e.g. the 26 MB Cray MPI text segment, a 93 MB GROMACS
    heap).  All timing (Lustre write time), accounting (checkpoint image
    sizes, §3.2.2 memory-overhead analysis) and the figures use this.

``payload``
    The *actual* Python-level data stored in the region: raw bytes, or a
    named-object store holding numpy arrays for application state.  This is
    what makes checkpoint/restart *exactness* machine-checkable without
    allocating tens of gigabytes.

The two are decoupled on purpose and the decoupling is documented here and in
DESIGN.md: the paper's numbers concern modeled sizes; our correctness
invariants concern payloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Half(enum.Enum):
    """Which program of the split process owns a region."""

    UPPER = "upper"
    LOWER = "lower"


class Perm(enum.Flag):
    """Region permissions (subset of mmap PROT_*)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()
    RW = READ | WRITE
    RX = READ | EXEC
    RWX = READ | WRITE | EXEC


class RegionKind(enum.Enum):
    """Role of a region inside its half; used for accounting and assertions."""

    TEXT = "text"
    DATA = "data"
    HEAP = "heap"
    STACK = "stack"
    ANON = "anon"          # anonymous mmap (e.g. interposed sbrk extensions)
    SHMEM = "shmem"        # network-driver shared memory (lower half)
    PINNED = "pinned"      # pinned DMA buffers (lower half)
    DRIVER = "driver"      # memory-mapped driver regions (lower half)
    TLS = "tls"            # thread-local storage (one per half; FS register)
    ENVIRON = "environ"    # environment/auxv


@dataclass
class MemoryRegion:
    """A contiguous mapping inside an :class:`~repro.memory.AddressSpace`."""

    start: int
    size: int
    perm: Perm
    half: Half
    kind: RegionKind
    name: str = ""
    payload: Any = None
    #: Regions marked ephemeral never appear in a checkpoint image even if
    #: they are (erroneously) tagged UPPER; used as a belt-and-braces guard.
    ephemeral: bool = False
    #: Free-form metadata (e.g. which library mapped it).
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.start < 0:
            raise ValueError(f"region {self.name!r} has negative start")

    @property
    def end(self) -> int:
        """One past the last byte (exclusive)."""
        return self.start + self.size

    def overlaps(self, other: "MemoryRegion") -> bool:
        """True if the two regions share any byte."""
        return self.start < other.end and other.start < self.end

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside this region."""
        return self.start <= addr < self.end

    def describe(self) -> str:
        """One-line /proc/self/maps-style description."""
        p = "".join(
            c if flag in self.perm else "-"
            for c, flag in (("r", Perm.READ), ("w", Perm.WRITE), ("x", Perm.EXEC))
        )
        return (
            f"{self.start:012x}-{self.end:012x} {p} "
            f"[{self.half.value}/{self.kind.value}] {self.name}"
        )
