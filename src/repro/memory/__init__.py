"""Simulated Linux-like process memory.

MANA's split-process technique is fundamentally about *tagging memory*: the
address space of one process holds two programs, and only the regions that
belong to the application (the *upper half*) are saved at checkpoint time.
This package reproduces the abstraction MANA manipulates:

* :class:`MemoryRegion` — a contiguous mapping with a start address, a
  *modeled* size (what the region would occupy in the real system, used by
  all timing and accounting), permissions, a :class:`Half` tag, and an
  optional actual payload (raw bytes or a named-array store),
* :class:`AddressSpace` — mmap/munmap/sbrk with overlap checking and
  half-aware queries,
* :class:`UpperHeap` — the upper-half heap allocator with the
  ``sbrk``-interposition semantics of §2.1 of the paper: upper-half ``sbrk``
  growth is redirected to fresh ``mmap`` regions so the kernel-owned program
  break (which, after restart, belongs to the *lower* half) is never moved.
"""

from repro.memory.region import Half, MemoryRegion, Perm, RegionKind
from repro.memory.address_space import AddressSpace, AddressSpaceError
from repro.memory.allocator import AllocationError, UpperHeap

__all__ = [
    "AddressSpace",
    "AddressSpaceError",
    "AllocationError",
    "Half",
    "MemoryRegion",
    "Perm",
    "RegionKind",
    "UpperHeap",
]
