"""The upper-half heap: named-buffer allocation with sbrk interposition.

Application state in this reproduction lives in *named buffers* (numpy
arrays or picklable Python objects) owned by an :class:`UpperHeap`.  The heap
is backed by upper-half regions of the address space:

* a base heap region created at program start, and
* overflow regions obtained through the address space's ``sbrk`` path —
  which, under MANA, is interposed and redirected to ``mmap`` (§2.1).

The heap tracks a modeled "bytes in use" figure against the modeled region
capacity, so that allocation pressure genuinely triggers sbrk growth and the
interposition machinery is exercised by ordinary application behaviour.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np

from repro.memory.address_space import AddressSpace, page_align
from repro.memory.region import Half, MemoryRegion, Perm, RegionKind


class AllocationError(RuntimeError):
    """Raised on double-alloc/free of a named buffer."""


class UpperHeap:
    """Named-buffer allocator over the upper half of an address space."""

    def __init__(
        self,
        space: AddressSpace,
        base_capacity: int = 1 << 20,
        growth_chunk: int = 1 << 20,
    ) -> None:
        self.space = space
        self.growth_chunk = int(growth_chunk)
        self._objects: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}
        self._used = 0
        self._capacity = 0
        self._regions: list[MemoryRegion] = []
        base = space.mmap(
            base_capacity, Perm.RW, Half.UPPER, RegionKind.HEAP, name="upper-heap"
        )
        self._attach(base)

    # ------------------------------------------------------------ interface

    def alloc_array(
        self, name: str, shape: Any, dtype: Any = np.float64, fill: Optional[float] = None
    ) -> np.ndarray:
        """Allocate a named numpy array on the upper-half heap."""
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        self.alloc_object(name, arr, nbytes=arr.nbytes)
        return arr

    def alloc_object(self, name: str, obj: Any, nbytes: Optional[int] = None) -> Any:
        """Store a picklable object under ``name``; ``nbytes`` models its size."""
        if name in self._objects:
            raise AllocationError(f"buffer {name!r} already allocated")
        size = int(nbytes if nbytes is not None else 64)
        self._reserve(size)
        self._objects[name] = obj
        self._sizes[name] = size
        return obj

    def free(self, name: str) -> None:
        """Release a named buffer."""
        if name not in self._objects:
            raise AllocationError(f"free of unallocated buffer {name!r}")
        self._used -= self._sizes.pop(name)
        del self._objects[name]

    def get(self, name: str) -> Any:
        """Fetch a named buffer; raises KeyError if absent."""
        return self._objects[name]

    def set(self, name: str, obj: Any) -> None:
        """Replace the value of an existing named buffer (same modeled size)."""
        if name not in self._objects:
            raise AllocationError(f"set of unallocated buffer {name!r}")
        self._objects[name] = obj

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def names(self) -> Iterator[str]:
        """Allocated buffer names, sorted."""
        return iter(sorted(self._objects))

    @property
    def used(self) -> int:
        """Modeled bytes currently allocated."""
        return self._used

    @property
    def capacity(self) -> int:
        """Modeled bytes available across all heap regions."""
        return self._capacity

    # ------------------------------------------------- checkpoint interface

    def snapshot_payload(self) -> dict[str, Any]:
        """The picklable contents of the heap (object store + size table)."""
        return {"objects": self._objects, "sizes": self._sizes}

    def restore_payload(self, payload: dict[str, Any]) -> None:
        """Install contents captured by :meth:`snapshot_payload`."""
        self._objects = dict(payload["objects"])
        self._sizes = dict(payload["sizes"])
        self._used = sum(self._sizes.values())
        self._reserve(0)  # grow capacity if the snapshot outgrew the base heap

    # ------------------------------------------------------------ internals

    def _attach(self, region: MemoryRegion) -> None:
        region.payload = self  # the heap is the region's live payload owner
        self._regions.append(region)
        self._capacity += region.size

    def _reserve(self, size: int) -> None:
        self._used += size
        while self._used > self._capacity:
            need = max(self.growth_chunk, page_align(self._used - self._capacity))
            # This goes through the address space's sbrk path; under MANA the
            # interposer converts it into an upper-half anonymous mmap.
            region = self.space.sbrk(need, caller_half=Half.UPPER)
            self._attach(region)
