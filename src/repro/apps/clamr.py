"""CLAMR mini-app: cell-based adaptive mesh refinement.

CLAMR's distinguishing MPI behaviour is *imbalance*: refinement makes some
ranks' cell counts (and therefore compute time) grow while others shrink,
with the skew drifting over time; every few steps the mesh is rebalanced
with collective communication (cell-count allgather + redistribution).
The drifting skew means ranks arrive at collectives at very different
times — which is precisely the workload the two-phase wrapper's phase 1
exists for.

Per step: 2D neighbour halo exchange (~24 KB), a shallow-water kernel whose
cost varies ±35 % by rank and step, a dt allreduce; every 4th step a
regrid: allgather of cell counts plus a redistribution alltoall (modeled by
a larger allgather payload).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    AppConfig,
    AppSpec,
    grid_neighbors,
    halo_exchange_seq,
    init_common_state,
    register_app,
    steps_program,
)
from repro.mpilib.ops import MIN
from repro.mprog.ast import Call, Compute, If, Program, Seq

MB = 1 << 20

DEFAULT = AppConfig(
    name="clamr",
    n_steps=16,
    mem_bytes=560 * MB,
    compute_per_step=2.2e-3,
    halo_bytes=24 << 10,
    reduce_bytes=8,
)

REGRID_EVERY = 4


def _init(state) -> None:
    init_common_state(state)
    rng = np.random.default_rng(41 + state["rank"])
    state["h"] = 1.0 + rng.random(40)          # water heights
    state["cells"] = 1000 + 50 * state["rank"]  # refined-cell count
    state["dt_trace"] = []


def _imbalance_factor(state) -> float:
    """Per-rank, per-step compute skew in [0.65, 1.35], drifting over time."""
    phase = 0.7 * state["step"] + 1.3 * state["rank"]
    return 1.0 + 0.35 * float(np.sin(phase))


def _hydro_cost(state) -> float:
    return DEFAULT.compute_per_step * _imbalance_factor(state)


def _hydro_kernel(state) -> None:
    h = state["h"]
    state["h"] = h + 0.01 * (np.roll(h, 1) - 2 * h + np.roll(h, -1)) \
        + 1e-4 * state["halo_in"].mean()
    state["local_dt"] = float(0.1 / (np.abs(h).max() + 1.0))


def _dt_reduce(state, api):
    return api.allreduce(np.array([state["local_dt"]]), MIN,
                         size=DEFAULT.reduce_bytes)


def _is_regrid_step(state) -> bool:
    return state["step"] % REGRID_EVERY == REGRID_EVERY - 1


def _cellcount_allgather(state, api):
    return api.allgather(np.array([float(state["cells"])]), size=8)


def _redistribute(state, api):
    # Cell redistribution: a bulky allgather stands in for the irregular
    # alltoallv of real CLAMR (same synchronizing shape, similar volume).
    return api.allgather(state["h"][:8].copy(), size=64 << 10)


def _apply_regrid(state) -> None:
    counts = np.array([float(c[0]) for c in state["counts"]])
    mean = counts.mean()
    state["cells"] = int(mean)  # perfectly rebalanced
    state["checksum"] += round(float(mean), 6)


def _record_dt(state) -> None:
    state["dt_trace"].append(round(float(state["dt"][0]), 12))
    state["checksum"] += state["dt_trace"][-1]


def build(config: AppConfig):
    """Program factory for this application at the given config."""
    scale = config.compute_per_step / DEFAULT.compute_per_step

    def cost(state) -> float:
        return _hydro_cost(state) * scale

    def factory(rank: int, size: int) -> Program:
        neighbors = grid_neighbors(rank, size, ndims=2)
        parts = []
        halo = halo_exchange_seq(neighbors, config.halo_bytes, tag=71)
        if halo is not None:
            parts.append(halo)
        parts.extend([
            Compute(_hydro_kernel, cost=cost, label="hydro"),
            Call(_dt_reduce, store="dt", label="dt-min"),
            Compute(_record_dt),
            If(_is_regrid_step, Seq(
                Call(_cellcount_allgather, store="counts", label="cell-counts"),
                Call(_redistribute, store="_redis", label="redistribute"),
                Compute(_apply_regrid),
            )),
        ])
        return steps_program(
            Compute(_init, label="amr-init"), Seq(*parts),
            config.n_steps, name="clamr-mini",
        )

    return factory


def memory_bytes(config: AppConfig, rank: int, size: int) -> int:
    # Fig. 6 shows 500–660 MB/rank with mild variation across node counts.
    """Modeled per-rank memory (drives checkpoint image sizes)."""
    return config.mem_bytes


SPEC = register_app(AppSpec(
    name="clamr", default_config=DEFAULT, build=build,
    memory_bytes=memory_bytes,
))
