"""Communicator/datatype churn mini-app (extension, not in the paper).

A synthetic tenant patterned on long-horizon ensemble drivers: every step
it creates *and frees* a duplicated communicator, a uniformly-coloured
split, a derived datatype and a pair of groups.  Its record-replay log
therefore grows linearly with runtime while its live handle set stays
constant — the adversarial workload for restart cost, and the one
checkpoint-time log compaction (docs/record_replay.md) flattens.

Two communicators are created once and kept for the whole run (a dup of
the world and a split of that dup), so compaction's liveness analysis must
pin their parent chain while cancelling everything else.  Each step's
allreduce results feed the checksum, making the conformance fingerprint
sensitive to any replay divergence.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    AppConfig,
    AppSpec,
    init_common_state,
    register_app,
)
from repro.mpilib import DOUBLE
from repro.mpilib.ops import SUM
from repro.mprog.ast import Call, Compute, Loop, Program, Seq
from repro.simtime import Completion

MB = 1 << 20

DEFAULT = AppConfig(
    name="commchurn",
    n_steps=8,
    mem_bytes=16 * MB,
    compute_per_step=0.5e-3,
    halo_bytes=0,
    reduce_bytes=16,
)


def _done(api, value=None) -> Completion:
    """A pre-resolved completion for synchronous persistent-call bundles."""
    engine = api.rt.engine if hasattr(api, "rt") else api.endpoint.engine
    out = Completion(engine)
    out.resolve(value)
    return out


def _init(state) -> None:
    init_common_state(state)
    state["churn_trace"] = []
    state["live_trace"] = []


def _persist_dup(state, api):
    # Long-lived: stays bound across every checkpoint in the run.
    return api.comm_dup()


def _persist_split(state, api):
    # Uniform colour on the persistent dup: full-membership, stays live —
    # the liveness analysis must pin the dup it derives from.
    return api.comm_split(color=0, key=state["rank"], comm=state["pdup"])


def _ephemeral_dup(state, api):
    return api.comm_dup()


def _ephemeral_split(state, api):
    # Same colour on every rank each step: full parent membership, so the
    # freed pair is cancellable cross-rank-consistently.
    return api.comm_split(color=state["step"] % 3, key=state["rank"])


def _edup_barrier(state, api):
    return api.barrier(comm=state["edup"])


def _esplit_reduce(state, api):
    payload = np.array([float(state["rank"] + state["step"])])
    return api.allreduce(payload, SUM, comm=state["esplit"],
                         size=DEFAULT.reduce_bytes)


def _free_ephemerals(state, api):
    """Free this step's churned handles: both comms, a derived datatype
    and two groups (created and retired in one go — the local fast path
    elides all of it from a compacted log)."""
    api.comm_free(state.pop("edup"))
    api.comm_free(state.pop("esplit"))
    tvid = api.type_contiguous(2 + state["step"] % 7, DOUBLE)
    state["checksum"] += api.resolve_type(tvid).extent * 1e-6
    api.type_free(tvid)
    g = api.comm_group()
    half = api.group_incl(g, list(range((state["size"] + 1) // 2)))
    state["checksum"] += api.group_size(half) * 1e-3
    api.group_free(half)
    api.group_free(g)
    return _done(api)


def _psub_reduce(state, api):
    payload = np.array([float(state["rank"]) + state["checksum"]])
    return api.allreduce(payload, SUM, comm=state["psub"],
                         size=DEFAULT.reduce_bytes)


def _absorb(state) -> None:
    churn = float(state["esum"][0])
    live = float(state["psum"][0])
    state["churn_trace"].append(round(churn, 10))
    state["live_trace"].append(round(live, 10))
    state["checksum"] += churn * 1e-3 + live * 1e-6


def build(config: AppConfig):
    """Program factory for this application at the given config."""
    def factory(rank: int, size: int) -> Program:
        step = Seq(
            Call(_ephemeral_dup, store="edup", label="churn-dup"),
            Call(_ephemeral_split, store="esplit", label="churn-split"),
            Call(_edup_barrier, label="churn-barrier"),
            Call(_esplit_reduce, store="esum", label="churn-reduce"),
            Call(_free_ephemerals, label="churn-free"),
            Call(_psub_reduce, store="psum", label="live-reduce"),
            Compute(_absorb, cost=config.compute_per_step),
        )
        return Program(Seq(
            Compute(_init, label="churn-setup"),
            Call(_persist_dup, store="pdup"),
            Call(_persist_split, store="psub"),
            Loop(config.n_steps, step, var="step"),
        ), name="commchurn")

    return factory


def memory_bytes(config: AppConfig, rank: int, size: int) -> int:
    """Modeled per-rank memory (small: the churn is the point)."""
    return config.mem_bytes


SPEC = register_app(AppSpec(
    name="commchurn", default_config=DEFAULT, build=build,
    memory_bytes=memory_bytes,
))
