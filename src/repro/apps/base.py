"""Shared application machinery: configs, registry, halo-exchange builders.

All state-mutating callables referenced by program nodes are module-level
(or built from module-level factories that close only over plain data), so
program *text* is reconstructible at restart exactly like an on-disk binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.mprog.ast import Call, Compute, Loop, Node, Program, Seq


@dataclass(frozen=True)
class AppConfig:
    """Knobs every mini-app shares.

    ``mem_bytes`` is the modeled per-rank application memory (drives image
    sizes, Fig. 6); ``compute_per_step`` is seconds of reference-node work
    per outer step; message sizes are modeled wire bytes.
    """

    name: str = "app"
    n_steps: int = 10
    mem_bytes: int = 64 << 20
    compute_per_step: float = 1e-3
    halo_bytes: int = 8 << 10
    reduce_bytes: int = 64

    def scaled(self, **kw) -> "AppConfig":
        """A copy with the given fields overridden."""
        return replace(self, **kw)


@dataclass(frozen=True)
class AppSpec:
    """Registry entry: how to build and size one application."""

    name: str
    default_config: AppConfig
    #: factory(config) -> program_factory(rank, size) -> Program
    build: Callable[[AppConfig], Callable[[int, int], Program]]
    #: per-rank modeled memory (config, rank, size) -> bytes
    memory_bytes: Callable[[AppConfig, int, int], int]
    #: ranks-per-node constraint hook (LULESH needs cubes); returns a valid
    #: total rank count closest to the requested one
    valid_ranks: Callable[[int], int] = lambda n: n


APP_REGISTRY: dict[str, AppSpec] = {}


def register_app(spec: AppSpec) -> AppSpec:
    """Add an application spec to the registry."""
    APP_REGISTRY[spec.name] = spec
    return spec


def get_app(name: str) -> AppSpec:
    """Look up a registered application by name."""
    try:
        return APP_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; known: {sorted(APP_REGISTRY)}"
        ) from None


# ---------------------------------------------------------------- neighbours

def ring_neighbors(rank: int, size: int) -> list[int]:
    """Left and right neighbour on a 1D periodic ring (dedup for tiny runs)."""
    if size == 1:
        return []
    neighbors = {(rank - 1) % size, (rank + 1) % size}
    neighbors.discard(rank)
    return sorted(neighbors)


def grid_neighbors(rank: int, size: int, ndims: int) -> list[int]:
    """Neighbours on a periodic Cartesian factorization of ``size``."""
    from repro.mpilib.topology import CartTopology, dims_create

    dims = dims_create(size, ndims)
    topo = CartTopology(tuple(dims), tuple(True for _ in dims))
    out = set()
    for d in range(len(dims)):
        src, dst = topo.shift(rank, d, 1)
        for n in (src, dst):
            if n is not None and n != rank:
                out.add(n)
    return sorted(out)


# --------------------------------------------------------- halo exchange

def halo_exchange_seq(neighbors: list[int], size_bytes: int,
                      tag: int = 40) -> Optional[Node]:
    """One batched exchange with every neighbour, plus absorption.

    All sends and receives are posted together (isend/irecv + waitall, as
    real halo exchanges do), so transfers overlap and no cyclic-rendezvous
    deadlock is possible.  The real payload carries the rank's evolving
    halo state, so checkpoint/restart exactness tests detect any lost,
    duplicated, or reordered halo message.
    """
    if not neighbors:
        return None

    def do_exchange(state, api):
        payload = state["halo_out"][:8].copy()
        sends = [(nb, payload, tag, size_bytes) for nb in neighbors]
        recvs = [(nb, tag) for nb in neighbors]
        return api.exchange(sends, recvs)

    def absorb(state):
        received = np.stack([data for data, _status in state["_halo"]])
        state["halo_in"] = 0.5 * (state["halo_in"] + received.mean(axis=0))
        # the outgoing halo evolves every step: stale duplicates are visible
        out = state["halo_out"]
        out[:] = np.roll(out, 1)
        out[:8] += 0.125 * state["halo_in"]

    return Seq(
        Call(do_exchange, store="_halo", label=f"halo-x{len(neighbors)}"),
        Compute(absorb, label="halo-absorb"),
    )


def init_common_state(state) -> None:
    """Baseline numeric state every app starts from (deterministic)."""
    rng = np.random.default_rng(97 + state["rank"])
    state["halo_out"] = rng.random(32)
    state["halo_in"] = np.zeros(8)
    state["checksum"] = 0.0


def steps_program(init: Compute, step_body: Node, n_steps: int,
                  name: str) -> Program:
    """The canonical outer shape: init once, then the stepping loop."""
    return Program(Seq(init, Loop(n_steps, step_body, var="step")), name=name)
