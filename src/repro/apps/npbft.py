"""NPB FT-style mini-app: 3-D FFT with global transposes (extension).

Not part of the paper's evaluation — included as an adoption-grade
extension because its communication pattern (an **all-to-all transpose**
dominating each iteration) is one none of the paper's five benchmarks
exercises, and all-to-all is the hardest case for a checkpointer: every
rank talks to every rank, so the two-phase wrapper and the drain logic see
maximal concurrency.

Per iteration: local 1-D FFTs (compute), a global transpose (alltoall of
1/p of the local volume to each peer), more local FFTs, and a periodic
checksum reduce — the exact skeleton of NPB FT.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppConfig, AppSpec, register_app
from repro.mpilib.ops import SUM
from repro.mprog.ast import Call, Compute, If, Program, Seq
from repro.apps.base import steps_program

MB = 1 << 20

DEFAULT = AppConfig(
    name="npbft",
    n_steps=10,
    mem_bytes=1024 * MB,
    compute_per_step=8e-3,
    halo_bytes=0,            # unused: FT has no halos
    reduce_bytes=16,
)

#: per-iteration all-to-all volume per rank (split across all peers)
TRANSPOSE_BYTES = 256 * MB
CHECKSUM_EVERY = 2


def _init(state) -> None:
    rng = np.random.default_rng(67 + state["rank"])
    state["u"] = rng.random(64) + 1j * rng.random(64)
    state["checksum"] = 0.0
    state["cksum_trace"] = []


def _fft_local_1(state) -> None:
    state["u"] = np.fft.fft(state["u"]) / len(state["u"])


def _transpose(state, api):
    size = api.size
    chunk_bytes = max(1, TRANSPOSE_BYTES // max(size, 1))
    chunks = [state["u"][:4].copy() for _ in range(size)]
    return api.alltoall(chunks, size=chunk_bytes)


def _absorb_transpose(state) -> None:
    received = state["_tp"]
    state["u"][:4] = np.mean([c for c in received], axis=0)


def _fft_local_2(state) -> None:
    state["u"] = np.fft.ifft(state["u"]) * len(state["u"])


def _is_checksum_step(state) -> bool:
    return state["step"] % CHECKSUM_EVERY == CHECKSUM_EVERY - 1


def _checksum(state, api):
    local = complex(state["u"].sum())
    return api.allreduce(np.array([local.real, local.imag]), SUM,
                         size=DEFAULT.reduce_bytes)


def _record(state) -> None:
    re, im = state["_ck"]
    state["cksum_trace"].append((round(float(re), 9), round(float(im), 9)))
    state["checksum"] += round(float(re), 9)


def build(config: AppConfig):
    """Program factory for this application at the given config."""
    def factory(rank: int, size: int) -> Program:
        body = Seq(
            Compute(_fft_local_1, cost=config.compute_per_step * 0.4,
                    label="fft-pass-1"),
            Call(_transpose, store="_tp", label="global-transpose"),
            Compute(_absorb_transpose),
            Compute(_fft_local_2, cost=config.compute_per_step * 0.6,
                    label="fft-pass-2"),
            If(_is_checksum_step, Seq(
                Call(_checksum, store="_ck", label="checksum"),
                Compute(_record),
            )),
        )
        return steps_program(Compute(_init, label="ft-init"), body,
                             config.n_steps, name="npbft-mini")

    return factory


def memory_bytes(config: AppConfig, rank: int, size: int) -> int:
    # strong scaling of a fixed grid: per-rank volume shrinks with p
    """Modeled per-rank memory (drives checkpoint image sizes)."""
    return max(64 * MB, int(config.mem_bytes * 64 / max(size, 64)))


SPEC = register_app(AppSpec(
    name="npbft", default_config=DEFAULT, build=build,
    memory_bytes=memory_bytes,
))
