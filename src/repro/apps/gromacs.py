"""GROMACS mini-app: molecular dynamics communication skeleton.

Real GROMACS with domain decomposition sends *many small messages* every MD
step: coordinate halos to neighbour domains before the force computation,
force halos back after, plus a tiny global allreduce for energies/virial.
That call-dense, small-message profile is why GROMACS is the paper's
worst case for MANA's per-call overhead (2.1 % at 16 ranks unpatched,
0.6 % patched, §3.2/§3.3).

Calibration (per MD step, per rank):
* 2 × paired exchanges with each of ~4 neighbours (coords out, forces back),
  ~2 KB each — small, eager, latency-bound;
* 1 × 64 B allreduce (energy);
* ~420 µs of compute (force kernels), matching the per-step budget of a
  ~100k-atom system at 32 ranks.

Modeled image: ~93 MB/rank (Fig. 6's GROMACS numbers are 91–94 MB).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    AppConfig,
    AppSpec,
    grid_neighbors,
    halo_exchange_seq,
    init_common_state,
    register_app,
    steps_program,
)
from repro.mpilib.ops import SUM
from repro.mprog.ast import Call, Compute, If, Program, Seq

MB = 1 << 20

DEFAULT = AppConfig(
    name="gromacs",
    n_steps=20,
    mem_bytes=93 * MB,
    compute_per_step=420e-6,
    halo_bytes=2 << 10,
    reduce_bytes=64,
)

#: Energies/virial are reduced globally only every few steps (GROMACS's
#: nstcalcenergy behaviour); halo traffic happens every step.
ENERGY_EVERY = 4


def _init(state) -> None:
    init_common_state(state)
    rng = np.random.default_rng(11 + state["rank"])
    state["velocities"] = rng.random(64)
    state["energy_trace"] = []
    state["step_trace"] = []


def _tick(state) -> None:
    state["step_trace"].append(state["step"])


def _is_energy_step(state) -> bool:
    return state["step"] % ENERGY_EVERY == ENERGY_EVERY - 1


def _force_kernel(state) -> None:
    # Deterministic toy dynamics over the small real state.
    v = state["velocities"]
    v *= 0.999
    v += 0.001 * np.sin(v) + 1e-4 * state["halo_in"].mean()
    state["local_energy"] = float(np.dot(v, v))


def _energy_reduce(state, api):
    return api.allreduce(np.array([state["local_energy"]]), SUM,
                         size=DEFAULT.reduce_bytes)


def _record_energy(state) -> None:
    state["energy_trace"].append(round(float(state["esum"][0]), 10))
    state["checksum"] += state["energy_trace"][-1]


def build(config: AppConfig):
    """Program factory for GROMACS-mini."""

    def factory(rank: int, size: int) -> Program:
        neighbors = grid_neighbors(rank, size, ndims=3)
        parts = [Compute(_force_kernel, cost=config.compute_per_step,
                         label="force-kernel")]
        coord_halo = halo_exchange_seq(neighbors, config.halo_bytes, tag=41)
        force_halo = halo_exchange_seq(neighbors, config.halo_bytes, tag=42)
        if coord_halo is not None:
            parts.insert(0, coord_halo)       # coords out before forces
            parts.append(force_halo)          # forces back after
        parts.append(If(_is_energy_step, Seq(
            Call(_energy_reduce, store="esum", label="energy"),
            Compute(_record_energy),
        )))
        parts.append(Compute(_tick))
        return steps_program(
            Compute(_init, label="md-init"), Seq(*parts),
            config.n_steps, name="gromacs-mini",
        )

    return factory


def memory_bytes(config: AppConfig, rank: int, size: int) -> int:
    # Replicated topology tables shrink slightly as ranks grow; the paper
    # measured 91–94 MB/rank essentially flat.
    """Modeled per-rank memory (drives checkpoint image sizes)."""
    return config.mem_bytes


SPEC = register_app(AppSpec(
    name="gromacs", default_config=DEFAULT, build=build,
    memory_bytes=memory_bytes,
))
