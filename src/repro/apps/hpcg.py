"""HPCG mini-app: high-performance conjugate gradient.

HPCG is a preconditioned CG with a 27-point stencil SpMV, a symmetric
Gauss-Seidel multigrid smoother and global dot products.  It is strongly
compute-bound with a fixed, large per-rank working set — the paper's 2 GB
per-rank checkpoint images regardless of node count (weak scaling), summing
to 4 TB for 2048 ranks at 64 nodes.

Per iteration: one 27-point halo exchange (up to 6 paired exchanges in our
3D factorization, ~128 KB faces), one multigrid V-cycle (extra compute + a
coarse-grid allreduce), and two CG dot products.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    AppConfig,
    AppSpec,
    grid_neighbors,
    halo_exchange_seq,
    init_common_state,
    register_app,
    steps_program,
)
from repro.mpilib.ops import SUM
from repro.mprog.ast import Call, Compute, Program, Seq

MB = 1 << 20

DEFAULT = AppConfig(
    name="hpcg",
    n_steps=12,
    mem_bytes=2048 * MB,
    compute_per_step=11e-3,
    halo_bytes=128 << 10,
    reduce_bytes=8,
)


def _init(state) -> None:
    init_common_state(state)
    rng = np.random.default_rng(31 + state["rank"])
    state["z"] = rng.random(64)
    state["res_trace"] = []


def _spmv27(state) -> None:
    z = state["z"]
    state["az"] = (
        26.0 * z - 13.0 * np.roll(z, 1) - 13.0 * np.roll(z, -1)
    ) / 26.0 + 1e-3 * state["halo_in"].mean()


def _mg_smooth(state) -> None:
    state["z"] = 0.9 * state["z"] + 0.1 * state["az"]


def _dot(state, api):
    return api.allreduce(np.array([float(np.dot(state["z"], state["az"]))]),
                         SUM, size=DEFAULT.reduce_bytes)


def _coarse_reduce(state, api):
    return api.allreduce(np.array([float(state["z"].sum())]), SUM,
                         size=DEFAULT.reduce_bytes)


def _update(state) -> None:
    beta = float(state["beta"][0])
    coarse = float(state["coarse"][0])
    state["z"] = state["z"] + 1e-4 * beta * np.sign(coarse or 1.0)
    state["res_trace"].append(round(beta, 10))
    state["checksum"] += beta


def build(config: AppConfig):
    """Program factory for this application at the given config."""
    def factory(rank: int, size: int) -> Program:
        neighbors = grid_neighbors(rank, size, ndims=3)
        parts = []
        halo = halo_exchange_seq(neighbors, config.halo_bytes, tag=61)
        if halo is not None:
            parts.append(halo)
        parts.extend([
            Compute(_spmv27, cost=config.compute_per_step * 0.6, label="spmv"),
            Compute(_mg_smooth, cost=config.compute_per_step * 0.4, label="mg"),
            Call(_coarse_reduce, store="coarse", label="mg-coarse"),
            Call(_dot, store="beta", label="dot"),
            Compute(_update),
        ])
        return steps_program(
            Compute(_init, label="hpcg-setup"), Seq(*parts),
            config.n_steps, name="hpcg-mini",
        )

    return factory


def memory_bytes(config: AppConfig, rank: int, size: int) -> int:
    """Modeled per-rank memory (drives checkpoint image sizes)."""
    return config.mem_bytes  # weak scaling: flat 2 GB/rank


SPEC = register_app(AppSpec(
    name="hpcg", default_config=DEFAULT, build=build,
    memory_bytes=memory_bytes,
))
