"""OSU micro-benchmarks: the probes behind Figures 4 and 5.

* ``osu_latency`` — ping-pong between two ranks; reports one-way latency;
* ``osu_bw`` — windowed flood from rank 0 to rank 1 with a closing ack;
  reports MB/s;
* ``osu_gather`` / ``osu_allreduce`` — collective latency sweeps.

Each benchmark is an ordinary program run either natively or under MANA, so
the measured difference *is* MANA's interposition overhead (FS switches,
virtualization, and — for collectives — the trivial barrier of the
two-phase wrapper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hardware.cluster import Cluster
from repro.mana.job import launch_mana
from repro.mpilib.ops import SUM
from repro.mprog.ast import Call, Compute, Loop, Program, Seq
from repro.runtime.native import NativeJob
from repro.mpilib.launcher import launch
from repro.simtime import Engine

_PAYLOAD = 16  # real doubles carried; wire size is the modeled `size=`


def _mk_payload(state) -> None:
    state["buf"] = np.arange(_PAYLOAD, dtype=np.float64) + state["rank"]


def latency_program(size_bytes: int, n_iters: int = 50):
    """Ping-pong: rank 0 sends/receives, rank 1 receives/sends."""

    def factory(rank: int, world: int) -> Program:
        def send(state, api):
            return api.send(1 - state["rank"], state["buf"], tag=1,
                            size=size_bytes)

        def recv(state, api):
            return api.recv(source=1 - state["rank"], tag=1)

        body = Seq(Call(send), Call(recv, store="_pong")) if rank == 0 \
            else Seq(Call(recv, store="_ping"), Call(send))
        return Program(Seq(Compute(_mk_payload), Loop(n_iters, body)),
                       name=f"osu-latency-{size_bytes}")

    return factory


def bandwidth_program(size_bytes: int, window: int = 32, n_iters: int = 8):
    """Windowed unidirectional flood rank 0 -> rank 1, ack to close."""

    def factory(rank: int, world: int) -> Program:
        def send(state, api):
            return api.send(1, state["buf"], tag=2, size=size_bytes)

        def recv(state, api):
            return api.recv(source=0, tag=2)

        def ack_send(state, api):
            return api.send(0, np.zeros(1), tag=3, size=8)

        def ack_recv(state, api):
            return api.recv(source=1, tag=3)

        if rank == 0:
            body = Seq(Loop(window, Call(send)), Call(ack_recv, store="_a"))
        else:
            body = Seq(Loop(window, Call(recv, store="_d")), Call(ack_send))
        return Program(Seq(Compute(_mk_payload), Loop(n_iters, body)),
                       name=f"osu-bw-{size_bytes}")

    return factory


def gather_program(size_bytes: int, n_iters: int = 30):
    """OSU gather-latency program at one message size."""
    def factory(rank: int, world: int) -> Program:
        def gather(state, api):
            return api.gather(state["buf"], root=0, size=size_bytes)

        return Program(
            Seq(Compute(_mk_payload), Loop(n_iters, Call(gather, store="_g"))),
            name=f"osu-gather-{size_bytes}",
        )

    return factory


def allreduce_program(size_bytes: int, n_iters: int = 30):
    """OSU allreduce-latency program at one message size."""
    def factory(rank: int, world: int) -> Program:
        def allreduce(state, api):
            return api.allreduce(state["buf"], SUM, size=size_bytes)

        return Program(
            Seq(Compute(_mk_payload), Loop(n_iters, Call(allreduce, store="_r"))),
            name=f"osu-allreduce-{size_bytes}",
        )

    return factory


# ------------------------------------------------------------- measurement

def run_program(
    cluster: Cluster,
    factory,
    n_ranks: int,
    ranks_per_node: Optional[int] = None,
    mpi: Optional[str] = None,
    mana: bool = False,
) -> float:
    """Run a benchmark program; returns total job wall time (sim seconds)."""
    if mana:
        job = launch_mana(cluster, factory, n_ranks=n_ranks,
                          ranks_per_node=ranks_per_node, mpi=mpi,
                          app_mem_bytes=1 << 20).start()
        return job.run_to_completion()
    engine = Engine()
    world = launch(engine, cluster, n_ranks, ranks_per_node=ranks_per_node,
                   mpi=mpi)
    programs = [factory(r, n_ranks) for r in range(n_ranks)]
    return NativeJob(engine, world, programs).run_to_completion()


def measure_latency(cluster: Cluster, size_bytes: int, mana: bool,
                    n_iters: int = 50, ranks_per_node: int = 2,
                    mpi: Optional[str] = None) -> float:
    """One-way p2p latency in seconds (two ranks on one node, like §3.2.3)."""
    total = run_program(
        cluster, latency_program(size_bytes, n_iters), n_ranks=2,
        ranks_per_node=ranks_per_node, mpi=mpi, mana=mana,
    )
    return total / n_iters / 2.0


def measure_bandwidth(cluster: Cluster, size_bytes: int, mana: bool,
                      window: int = 32, n_iters: int = 8,
                      ranks_per_node: int = 2,
                      mpi: Optional[str] = None) -> float:
    """Unidirectional bandwidth in bytes/second."""
    total = run_program(
        cluster, bandwidth_program(size_bytes, window, n_iters), n_ranks=2,
        ranks_per_node=ranks_per_node, mpi=mpi, mana=mana,
    )
    return (size_bytes * window * n_iters) / total


def measure_collective(cluster: Cluster, op: str, size_bytes: int, mana: bool,
                       n_ranks: int = 2, ranks_per_node: int = 2,
                       n_iters: int = 30, mpi: Optional[str] = None) -> float:
    """Average collective latency in seconds for 'gather' or 'allreduce'."""
    factory = {"gather": gather_program, "allreduce": allreduce_program}[op](
        size_bytes, n_iters
    )
    total = run_program(cluster, factory, n_ranks=n_ranks,
                        ranks_per_node=ranks_per_node, mpi=mpi, mana=mana)
    return total / n_iters
