"""miniFE mini-app: unstructured implicit finite elements (CG solve).

miniFE assembles a sparse system then runs conjugate gradient.  Per CG
iteration: one SpMV (halo exchange with a handful of neighbours, tens of
kilobytes each) and two dot products (scalar allreduces), against heavy
local compute.  The call-to-compute ratio is low, which is why the paper
measures essentially zero MANA overhead for miniFE.

Image sizes in Fig. 6 vary 0.8–2 GB/rank with node count (the problem is
re-partitioned); we model 2 GB at 2 nodes shrinking toward 0.8 GB.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    AppConfig,
    AppSpec,
    grid_neighbors,
    halo_exchange_seq,
    init_common_state,
    register_app,
    steps_program,
)
from repro.mpilib.ops import SUM
from repro.mprog.ast import Call, Compute, Program, Seq

MB = 1 << 20

DEFAULT = AppConfig(
    name="minife",
    n_steps=15,                 # CG iterations
    mem_bytes=1300 * MB,
    compute_per_step=6e-3,      # SpMV + vector ops on the local partition
    halo_bytes=96 << 10,
    reduce_bytes=8,
)


def _init(state) -> None:
    init_common_state(state)
    rng = np.random.default_rng(23 + state["rank"])
    state["x"] = rng.random(48)
    state["r"] = rng.random(48)
    state["rho_trace"] = []


def _spmv(state) -> None:
    x = state["x"]
    state["ax"] = 2.0 * x - 0.5 * np.roll(x, 1) - 0.5 * np.roll(x, -1) \
        + 1e-3 * state["halo_in"].mean()


def _dot_rr(state, api):
    return api.allreduce(np.array([float(np.dot(state["r"], state["r"]))]),
                         SUM, size=DEFAULT.reduce_bytes)


def _dot_pap(state, api):
    return api.allreduce(np.array([float(np.dot(state["x"], state["ax"]))]),
                         SUM, size=DEFAULT.reduce_bytes)


def _cg_update(state) -> None:
    rho = float(state["rho"][0])
    pap = float(state["pap"][0]) or 1.0
    alpha = rho / pap
    state["x"] = state["x"] + alpha * 0.01 * state["r"]
    state["r"] = state["r"] - alpha * 0.01 * state["ax"]
    state["rho_trace"].append(round(rho, 10))
    state["checksum"] += rho


def build(config: AppConfig):
    """Program factory for this application at the given config."""
    def factory(rank: int, size: int) -> Program:
        neighbors = grid_neighbors(rank, size, ndims=3)
        parts = []
        halo = halo_exchange_seq(neighbors, config.halo_bytes, tag=51)
        if halo is not None:
            parts.append(halo)
        parts.extend([
            Compute(_spmv, cost=config.compute_per_step, label="spmv"),
            Call(_dot_rr, store="rho", label="dot-rr"),
            Call(_dot_pap, store="pap", label="dot-pAp"),
            Compute(_cg_update),
        ])
        return steps_program(
            Compute(_init, label="fe-assembly"), Seq(*parts),
            config.n_steps, name="minife-mini",
        )

    return factory


def memory_bytes(config: AppConfig, rank: int, size: int) -> int:
    # Larger jobs hold smaller partitions per rank (strong-scaling flavour),
    # matching Fig. 6's 2.0 GB → 0.8 GB spread.
    """Modeled per-rank memory (drives checkpoint image sizes)."""
    n_nodes = max(1, size // 32)
    shrink = min(1.0, 2.0 / max(n_nodes, 1) + 0.6)
    return int(config.mem_bytes * shrink)


SPEC = register_app(AppSpec(
    name="minife", default_config=DEFAULT, build=build,
    memory_bytes=memory_bytes,
))
