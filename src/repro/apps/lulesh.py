"""LULESH mini-app: unstructured Lagrangian explicit shock hydrodynamics.

LULESH runs on a cubic process grid (rank counts 1, 8, 27, 64, …, 512 —
the reason Fig. 2 shows it at 1/8/27 ranks and Figs. 3/6/7 at 64/512
total), exchanging with up to 26 neighbours (faces, edges, corners) each
step and agreeing on the time increment with a MIN allreduce.

Per step: 3D halo (6 face exchanges of ~40 KB dominate; edge/corner traffic
is folded into the modeled size), two compute phases (Lagrange nodal +
element), and the dt allreduce.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    AppConfig,
    AppSpec,
    grid_neighbors,
    halo_exchange_seq,
    init_common_state,
    register_app,
    steps_program,
)
from repro.mpilib.ops import MIN
from repro.mprog.ast import Call, Compute, Program, Seq

MB = 1 << 20

DEFAULT = AppConfig(
    name="lulesh",
    n_steps=18,
    mem_bytes=160 * MB,
    compute_per_step=1.6e-3,
    halo_bytes=40 << 10,
    reduce_bytes=8,
)


def cube_ranks(n: int) -> int:
    """The largest cube not exceeding ``n`` (LULESH's rank-count rule)."""
    k = max(1, round(n ** (1 / 3)))
    while k ** 3 > n:
        k -= 1
    return max(1, k) ** 3


def _init(state) -> None:
    init_common_state(state)
    rng = np.random.default_rng(53 + state["rank"])
    state["e"] = rng.random(54)      # element energies
    state["dt_trace"] = []


def _lagrange_nodal(state) -> None:
    e = state["e"]
    state["grad"] = np.roll(e, 1) - np.roll(e, -1)


def _lagrange_elems(state) -> None:
    state["e"] = state["e"] - 0.005 * state["grad"] \
        + 1e-4 * state["halo_in"].mean()
    state["local_dt"] = float(0.05 / (np.abs(state["grad"]).max() + 1.0))


def _make_cart(state, api):
    # LULESH runs on an explicit 3-D processor cube: create the Cartesian
    # communicator (a persistent opaque object MANA records and replays at
    # restart — this is what Fig. 7's "recreate opaque identifiers" time is).
    from repro.mpilib.topology import dims_create

    dims = dims_create(state["size"], 3)
    return api.cart_create(dims, [True] * 3)


def _dt_reduce(state, api):
    return api.allreduce(np.array([state["local_dt"]]), MIN,
                         size=DEFAULT.reduce_bytes, comm=state["cart"])


def _advance(state) -> None:
    state["dt_trace"].append(round(float(state["dt"][0]), 12))
    state["checksum"] += state["dt_trace"][-1]


def build(config: AppConfig):
    """Program factory for this application at the given config."""
    def factory(rank: int, size: int) -> Program:
        neighbors = grid_neighbors(rank, size, ndims=3)
        parts = [
            Compute(_lagrange_nodal, cost=config.compute_per_step * 0.45,
                    label="lagrange-nodal"),
        ]
        halo = halo_exchange_seq(neighbors, config.halo_bytes, tag=81)
        if halo is not None:
            parts.append(halo)
        parts.extend([
            Compute(_lagrange_elems, cost=config.compute_per_step * 0.55,
                    label="lagrange-elems"),
            Call(_dt_reduce, store="dt", label="dt-min"),
            Compute(_advance),
        ])
        from repro.mprog.ast import Loop, Program

        return Program(Seq(
            Compute(_init, label="lulesh-init"),
            Call(_make_cart, store="cart", label="cart-create"),
            Loop(config.n_steps, Seq(*parts), var="step"),
        ), name="lulesh-mini")

    return factory


def memory_bytes(config: AppConfig, rank: int, size: int) -> int:
    # Fig. 6: 276 MB at 64 ranks shrinking to ~85 MB at 512 ranks (strong
    # scaling of a fixed mesh).
    """Modeled per-rank memory (drives checkpoint image sizes)."""
    return int(config.mem_bytes * min(1.8, 64.0 / max(size, 32) + 0.45))


SPEC = register_app(AppSpec(
    name="lulesh", default_config=DEFAULT, build=build,
    memory_bytes=memory_bytes, valid_ranks=cube_ranks,
))
