"""Workload applications: the paper's five HPC benchmarks plus the OSU
micro-benchmarks, as communication-skeleton mini-apps.

Each app reproduces its real counterpart's *MPI behaviour* — which calls it
makes, how often, with what message sizes, against how much compute — which
is what drives every number in the paper's evaluation:

* **GROMACS** — molecular dynamics: many small point-to-point halo/force
  exchanges per step plus one tiny allreduce; the call-dense profile that
  makes MANA's per-call FS-switch overhead visible (the paper's worst case,
  2.1 % unpatched);
* **miniFE** — implicit finite elements: CG solve, a few medium halo
  exchanges and two scalar allreduces per iteration against heavy compute
  (≈0 % overhead);
* **HPCG** — conjugate gradient with 27-point SpMV halos and multigrid
  smoothing; compute-bound, large memory footprint (the 2 GB/rank images);
* **CLAMR** — cell-based AMR: neighbour exchange plus load *imbalance* that
  shifts over time and periodic regrid/allgather;
* **LULESH** — explicit shock hydrodynamics on a 3D Cartesian topology
  (cubic rank counts), 26-neighbour stencil exchanges and a dt allreduce;
* **OSU** — ping-pong latency, windowed bandwidth, gather and allreduce
  latency sweeps (Figures 4 and 5);
* **NPB-FT** *(extension, not in the paper's evaluation)* — 3-D FFT with
  global all-to-all transposes, the adversarial communication pattern for
  drain and the two-phase wrapper;
* **commchurn** *(extension)* — creates and frees communicators, datatypes
  and groups every step: the record-replay log grows with runtime while
  live state stays flat, the adversarial pattern for restart cost that
  checkpoint-time log compaction targets (docs/record_replay.md).

Every app's numeric state is small real numpy data (so checkpoint-restart
exactness is machine-checked) while its *modeled* message sizes and memory
footprint reproduce the paper's (driving all timing and image sizes).
"""

from repro.apps.base import APP_REGISTRY, AppConfig, get_app
from repro.apps import (  # noqa: F401
    clamr,
    commchurn,
    gromacs,
    hpcg,
    lulesh,
    minife,
    npbft,
    osu,
)

__all__ = ["APP_REGISTRY", "AppConfig", "get_app"]
