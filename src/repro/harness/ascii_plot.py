"""Plain-text charts for experiment results.

EXPERIMENTS.md and the CLI render figures as monospace charts so the
reproduction's shapes can be eyeballed against the paper's without any
plotting dependency.  Two forms:

* :func:`line_chart` — multi-series x/y plot on a character canvas
  (optionally log-scaled x), for Figures 4 and 5;
* :func:`bar_chart` — grouped horizontal bars, for Figures 2/3/6/7/9.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.harness.results import Series

#: glyphs assigned to series, in order
_MARKS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(pos * (cells - 1)))))


def line_chart(
    series: Sequence[Series],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Render series onto a character canvas with axes and a legend."""
    if not series:
        raise ValueError("line_chart needs at least one series")
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y]
    if not xs:
        raise ValueError("line_chart needs data points")
    if log_x:
        if min(xs) <= 0:
            raise ValueError("log_x requires positive x values")
        fx = math.log10
    else:
        fx = float
    x_lo, x_hi = min(fx(x) for x in xs), max(fx(x) for x in xs)
    y_lo, y_hi = min(ys), max(ys)
    # anchor near-zero minima at zero so bar-like curves read intuitively
    if 0 < y_lo < y_hi * 0.05:
        y_lo = 0.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(s.x, s.y):
            col = _scale(fx(x), x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            canvas[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    y_label_width = 10
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_hi:>9.3g} "
        elif i == height - 1:
            label = f"{y_lo:>9.3g} "
        else:
            label = " " * y_label_width
        lines.append(label + "|" + "".join(row))
    lines.append(" " * y_label_width + "+" + "-" * width)
    x_left = f"{(10 ** x_lo if log_x else x_lo):.3g}"
    x_right = f"{(10 ** x_hi if log_x else x_hi):.3g}"
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (y_label_width + 1) + x_left + " " * max(1, gap)
                 + x_right)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * (y_label_width + 1) + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal bars, one per label; optional baseline tick rendered '|'."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("bar_chart needs at least one bar")
    hi = max(max(values), baseline or 0.0, 1e-300)
    label_width = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = int(round(value / hi * width))
        bar = "#" * filled + " " * (width - filled)
        if baseline is not None:
            tick = min(width - 1, int(round(baseline / hi * width)))
            if tick >= len(bar.rstrip()) or bar[tick] == " ":
                bar = bar[:tick] + "|" + bar[tick + 1:]
        lines.append(f"{str(label):<{label_width}} {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def table_to_line_chart(table, x_col: str, y_col: str, series_col: str,
                        log_x: bool = False) -> str:
    """Build a line chart directly from a results Table."""
    xi = table.columns.index(x_col)
    yi = table.columns.index(y_col)
    si = table.columns.index(series_col)
    by_series: dict[str, tuple[list, list]] = {}
    for row in table.rows:
        xs, ys = by_series.setdefault(str(row[si]), ([], []))
        xs.append(row[xi])
        ys.append(row[yi])
    series = [Series(name, xs, ys) for name, (xs, ys) in by_series.items()]
    return line_chart(series, log_x=log_x, title=table.title)
