"""Generate the full experiment report (the data behind EXPERIMENTS.md).

Usage::

    python -m repro.harness.report [outfile]

Runs every figure of the paper's evaluation at a mixed scale — the cheap,
checkpoint-centric figures at the paper's full 64-node × 32-rank scale, the
runtime-overhead sweeps at ``medium`` (up to 512 ranks) — and writes the
reproduced tables as markdown.
"""

from __future__ import annotations

import sys
import time
import traceback

from repro.harness import (
    fig2_single_node_overhead,
    fig3_multi_node_overhead,
    fig4_bandwidth_kernel_patch,
    fig5_osu_latency,
    fig6_checkpoint_time,
    fig7_restart_time,
    fig8_ckpt_breakdown,
    fig9_cross_cluster_migration,
    memory_overhead_analysis,
    render_table,
)
from repro.harness.results import Table
from repro.modelcheck import ModelChecker, NaiveModel, TwoPhaseModel


def modelcheck_table() -> Table:
    """Run the §2.6 verification suite and tabulate verdicts."""
    out = Table("§2.6: model checking of the two-phase protocol",
                ["model", "ranks", "collectives", "states", "verdict"])
    for n, k in ((2, 2), (3, 2), (4, 1)):
        res = ModelChecker(TwoPhaseModel(n, k)).run()
        out.add("two-phase", n, k, res.states_explored,
                "verified (safety+deadlock-free+live)" if res.ok else res.failure)
    res = ModelChecker(NaiveModel(3, 1)).run(check_liveness=False)
    out.add("naive (no wrapper)", 3, 1, res.states_explored,
            f"violation found: {res.failure}")
    return out


def observability_metrics_table() -> Table:
    """Run a small checkpointed workload and tabulate its metrics registry.

    Exercises the ``repro.obs`` counters end to end (MPI bytes, FS switches,
    lookups, checkpoint histograms) on a 4-rank job with one mid-run
    checkpoint, and returns the flat metrics table.
    """
    from repro.apps import get_app
    from repro.harness.experiments import _launch_mana_app
    from repro.hardware.cluster import make_cluster
    from repro.obs.export import metrics_table

    spec = get_app("hpcg")
    cfg = spec.default_config.scaled(n_steps=4)
    cluster = make_cluster("obs", 2, interconnect="aries",
                           default_mpi="craympich")
    job = _launch_mana_app(cluster, spec, cfg, n_ranks=4, ranks_per_node=2)
    job.checkpoint_at(0.05)
    job.run_to_completion()
    table = metrics_table(job.engine.metrics, title="observability metrics")
    table.notes.append(
        "4-rank hpcg on 2 aries/craympich nodes, one checkpoint at t=0.05"
    )
    return table


RUNNERS = [
    ("fig2", lambda: fig2_single_node_overhead(scale="paper")),
    ("fig3", lambda: fig3_multi_node_overhead(scale="medium")),
    ("fig4", lambda: fig4_bandwidth_kernel_patch(scale="paper")),
    ("fig5", lambda: fig5_osu_latency(scale="paper")),
    ("fig6", lambda: fig6_checkpoint_time(scale="paper")),
    ("fig7", lambda: fig7_restart_time(scale="paper")),
    ("fig8", lambda: fig8_ckpt_breakdown(scale="paper")),
    ("fig9", fig9_cross_cluster_migration),
    ("mem", memory_overhead_analysis),
    ("modelcheck", modelcheck_table),
    ("obs", observability_metrics_table),
]


def generate(runners=None, log=None) -> tuple[str, list[tuple[str, BaseException]]]:
    """Run every experiment and assemble the report text.

    Returns ``(report, errors)``.  A runner that raises no longer kills the
    whole sweep (and its rows are no longer silently absent): the exception
    is collected, the remaining runners still execute, and the failures are
    surfaced in a trailing ``## errors`` section of the report.
    """
    runners = RUNNERS if runners is None else runners
    log = log if log is not None else sys.stderr
    chunks = []
    errors: list[tuple[str, BaseException]] = []
    for name, runner in runners:
        t0 = time.time()
        try:
            table = runner()
        except Exception as exc:
            errors.append((name, exc))
            print(f"[{name}] FAILED: {exc!r}", file=log, flush=True)
            continue
        elapsed = time.time() - t0
        text = render_table(table)
        chunks.append(text + f"\n  (generated in {elapsed:.1f}s wall)\n")
        print(f"[{name}] done in {elapsed:.1f}s", file=log, flush=True)
    if errors:
        lines = ["## errors", "",
                 "The following experiments raised mid-sweep; their rows are "
                 "missing above."]
        for name, exc in errors:
            lines.append(f"- `{name}`: {type(exc).__name__}: {exc}")
            tb = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ).rstrip()
            lines.append("  ```\n  " + tb.replace("\n", "\n  ") + "\n  ```")
        chunks.append("\n".join(lines) + "\n")
    return "\n\n".join(chunks), errors


def main(argv: list[str]) -> None:
    """CLI entry point; returns a process exit code."""
    out_path = argv[1] if len(argv) > 1 else None
    report, _errors = generate()
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(report + "\n")
    else:
        print(report)


if __name__ == "__main__":
    main(sys.argv)
