"""Generate the full experiment report (the data behind EXPERIMENTS.md).

Usage::

    python -m repro.harness.report [outfile]

Runs every figure of the paper's evaluation at a mixed scale — the cheap,
checkpoint-centric figures at the paper's full 64-node × 32-rank scale, the
runtime-overhead sweeps at ``medium`` (up to 512 ranks) — and writes the
reproduced tables as markdown.
"""

from __future__ import annotations

import sys
import time

from repro.harness import (
    fig2_single_node_overhead,
    fig3_multi_node_overhead,
    fig4_bandwidth_kernel_patch,
    fig5_osu_latency,
    fig6_checkpoint_time,
    fig7_restart_time,
    fig8_ckpt_breakdown,
    fig9_cross_cluster_migration,
    memory_overhead_analysis,
    render_table,
)
from repro.harness.results import Table
from repro.modelcheck import ModelChecker, NaiveModel, TwoPhaseModel


def modelcheck_table() -> Table:
    """Run the §2.6 verification suite and tabulate verdicts."""
    out = Table("§2.6: model checking of the two-phase protocol",
                ["model", "ranks", "collectives", "states", "verdict"])
    for n, k in ((2, 2), (3, 2), (4, 1)):
        res = ModelChecker(TwoPhaseModel(n, k)).run()
        out.add("two-phase", n, k, res.states_explored,
                "verified (safety+deadlock-free+live)" if res.ok else res.failure)
    res = ModelChecker(NaiveModel(3, 1)).run(check_liveness=False)
    out.add("naive (no wrapper)", 3, 1, res.states_explored,
            f"violation found: {res.failure}")
    return out


RUNNERS = [
    ("fig2", lambda: fig2_single_node_overhead(scale="paper")),
    ("fig3", lambda: fig3_multi_node_overhead(scale="medium")),
    ("fig4", lambda: fig4_bandwidth_kernel_patch(scale="paper")),
    ("fig5", lambda: fig5_osu_latency(scale="paper")),
    ("fig6", lambda: fig6_checkpoint_time(scale="paper")),
    ("fig7", lambda: fig7_restart_time(scale="paper")),
    ("fig8", lambda: fig8_ckpt_breakdown(scale="paper")),
    ("fig9", fig9_cross_cluster_migration),
    ("mem", memory_overhead_analysis),
    ("modelcheck", modelcheck_table),
]


def main(argv: list[str]) -> None:
    """CLI entry point; returns a process exit code."""
    out_path = argv[1] if len(argv) > 1 else None
    chunks = []
    for name, runner in RUNNERS:
        t0 = time.time()
        table = runner()
        elapsed = time.time() - t0
        text = render_table(table)
        chunks.append(text + f"\n  (generated in {elapsed:.1f}s wall)\n")
        print(f"[{name}] done in {elapsed:.1f}s", file=sys.stderr, flush=True)
    report = "\n\n".join(chunks)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(report + "\n")
    else:
        print(report)


if __name__ == "__main__":
    main(sys.argv)
