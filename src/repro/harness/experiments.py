"""Figure-by-figure experiment runners (§3 of the paper).

Every runner is deterministic: the simulation has no measurement noise, so
single runs give exact ratios.  ``scale="small"`` (default) keeps sweeps
laptop-sized; ``scale="paper"`` uses the paper's 2–64 nodes × 32 ranks.

Execution model
---------------

Each sweep is decomposed up front into :class:`~repro.harness.parallel.
SweepCell`\\ s — module-level functions over primitive, picklable parameters
that build their own cluster and engine — and executed through
:func:`~repro.harness.parallel.run_cells`.  Every runner takes a ``jobs``
argument: ``jobs=1`` (the default) runs the cells in-process exactly like
the historical sequential loops; ``jobs>1`` fans the same cells out over a
process pool and merges results by cell index, so the emitted tables are
byte-identical either way (the determinism contract, enforced by
``tests/harness/test_parallel.py``).

Shared sub-runs — the checkpoint preludes that fig6/fig7/fig8 would
otherwise re-simulate per figure, and the resilience sweep's probe runs —
go through the content-keyed :func:`~repro.harness.parallel.memo` cache and
are simulated once per (app, cluster, cfg, ranks) key per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps import get_app
from repro.apps import osu
from repro.apps.base import AppSpec
from repro.hardware.cluster import Cluster, cori, local_cluster, make_cluster
from repro.hardware.kernelmodel import PATCHED, UNPATCHED, KernelModel
from repro.harness.parallel import SweepCell, memo, run_cells
from repro.harness.results import Table
from repro.mana.job import launch_mana, restart
from repro.mpilib.launcher import launch
from repro.runtime.native import NativeJob
from repro.simtime import Engine

MB = 1 << 20
GB = 1 << 30

PAPER_APPS = ["gromacs", "minife", "hpcg", "clamr", "lulesh"]


@dataclass(frozen=True)
class Scale:
    node_counts: tuple[int, ...]
    ranks_per_node: int
    single_node_ranks: tuple[int, ...]
    n_steps: int
    osu_sizes: tuple[int, ...]


SCALES = {
    "small": Scale(
        node_counts=(2, 4, 8),
        ranks_per_node=8,
        single_node_ranks=(1, 2, 4, 8, 16),
        n_steps=6,
        osu_sizes=(64, 1 << 12, 1 << 16, 1 << 20, 4 << 20),
    ),
    "medium": Scale(
        node_counts=(2, 8, 32),
        ranks_per_node=16,
        single_node_ranks=(1, 2, 4, 8, 16, 32),
        n_steps=8,
        osu_sizes=tuple(1 << k for k in range(3, 23, 2)),
    ),
    "paper": Scale(
        node_counts=(2, 4, 8, 16, 32, 64),
        ranks_per_node=32,
        single_node_ranks=(1, 2, 4, 8, 16, 32),
        n_steps=10,
        osu_sizes=tuple(1 << k for k in range(3, 23)),
    ),
}


def _lulesh_total_ranks(requested: int) -> int:
    from repro.apps.lulesh import cube_ranks

    return cube_ranks(requested)


def _rank_layout(app: str, n_nodes: int,
                 ranks_per_node: int) -> tuple[int, Optional[int]]:
    """(total ranks, ranks-per-node) for a multi-node sweep point; LULESH
    needs cubic rank counts and therefore a free layout."""
    requested = n_nodes * ranks_per_node
    if app == "lulesh":
        return _lulesh_total_ranks(requested), None
    return requested, ranks_per_node


# ------------------------------------------------------------ app running

def _run_native(cluster: Cluster, spec: AppSpec, cfg, n_ranks: int,
                ranks_per_node: Optional[int]) -> float:
    engine = Engine()
    world = launch(engine, cluster, n_ranks, ranks_per_node=ranks_per_node)
    factory = spec.build(cfg)
    programs = [factory(r, n_ranks) for r in range(n_ranks)]
    return NativeJob(engine, world, programs).run_to_completion()


def _launch_mana_app(cluster: Cluster, spec: AppSpec, cfg, n_ranks: int,
                     ranks_per_node: Optional[int], protocol: str = "alg2",
                     shards: Optional[int] = None, compact: bool = False):
    from repro.mana.split_process import fixed_upper_bytes

    # The app's memory model gives the *target image size*; the app-data
    # region is that minus the fixed upper-half furniture (app text, the
    # duplicated MPI copy, stack, environ, TLS, base heap).
    fixed = fixed_upper_bytes()

    def app_data(rank: int) -> int:
        return max(1 << 20, spec.memory_bytes(cfg, rank, n_ranks) - fixed)

    return launch_mana(
        cluster, spec.build(cfg), n_ranks=n_ranks,
        ranks_per_node=ranks_per_node, app_mem_bytes=app_data,
        protocol=protocol, shards=shards, compact=compact,
    ).start()


def _run_mana(cluster: Cluster, spec: AppSpec, cfg, n_ranks: int,
              ranks_per_node: Optional[int]) -> float:
    return _launch_mana_app(
        cluster, spec, cfg, n_ranks, ranks_per_node
    ).run_to_completion()


def _overhead_row(cluster: Cluster, app: str, n_ranks: int,
                  ranks_per_node: Optional[int], n_steps: int) -> tuple:
    spec = get_app(app)
    cfg = spec.default_config.scaled(n_steps=n_steps)
    t_native = _run_native(cluster, spec, cfg, n_ranks, ranks_per_node)
    t_mana = _run_mana(cluster, spec, cfg, n_ranks, ranks_per_node)
    normalized = 100.0 * t_native / t_mana
    return (app, n_ranks, t_native, t_mana, normalized)


# ------------------------------------------------------------------ Fig 2

def _fig2_cell(app: str, n_ranks: int, n_steps: int,
               kernel: KernelModel) -> tuple:
    """One fig2 sweep point: (app, ranks) on a fresh single-node cluster."""
    cluster = make_cluster("single", 1, cores_per_node=32,
                           interconnect="aries", kernel=kernel,
                           default_mpi="craympich")
    return _overhead_row(cluster, app, n_ranks, n_ranks, n_steps)


def fig2_single_node_overhead(
    scale: str = "small",
    apps: Optional[list[str]] = None,
    kernel: KernelModel = UNPATCHED,
    jobs: Optional[int] = 1,
) -> Table:
    """Single node: normalized performance under MANA (higher is better)."""
    s = SCALES[scale]
    table = Table(
        "Figure 2: single-node runtime overhead under MANA (unpatched kernel)",
        ["app", "ranks", "native_s", "mana_s", "normalized_pct"],
    )
    cells = []
    for app in (apps or PAPER_APPS):
        ranks_list = (
            [r for r in (1, 8, 27) if r <= max(s.single_node_ranks)]
            if app == "lulesh" else s.single_node_ranks
        )
        for n_ranks in ranks_list:
            cells.append(SweepCell(_fig2_cell,
                                   (app, n_ranks, s.n_steps, kernel),
                                   label=f"fig2:{app}/{n_ranks}"))
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append(
        "paper: worst case 2.1% (GROMACS/16); most cases < 2% overhead"
    )
    return table


# ------------------------------------------------------------------ Fig 3

def _fig3_cell(app: str, n_nodes: int, ranks_per_node: int,
               n_steps: int) -> tuple:
    """One fig3 sweep point: (app, nodes) on a fresh Cori slice."""
    n_ranks, rpn = _rank_layout(app, n_nodes, ranks_per_node)
    row = _overhead_row(cori(n_nodes), app, n_ranks, rpn, n_steps)
    return (row[0], n_nodes, *row[1:])


def fig3_multi_node_overhead(
    scale: str = "small",
    apps: Optional[list[str]] = None,
    jobs: Optional[int] = 1,
) -> Table:
    """Multi-node: normalized performance under MANA across node counts."""
    s = SCALES[scale]
    table = Table(
        "Figure 3: multi-node runtime overhead under MANA",
        ["app", "nodes", "ranks", "native_s", "mana_s", "normalized_pct"],
    )
    cells = [
        SweepCell(_fig3_cell, (app, n_nodes, s.ranks_per_node, s.n_steps),
                  label=f"fig3:{app}/{n_nodes}n")
        for app in (apps or PAPER_APPS)
        for n_nodes in s.node_counts
    ]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append("paper: typically <2%; worst 4.5% (GROMACS/512 ranks)")
    return table


# ------------------------------------------------------------------ Fig 4

def _fig4_cell(size: int) -> tuple:
    """One fig4 point: bandwidth at one message size, three configurations."""
    unpatched = make_cluster("u", 1, interconnect="aries", kernel=UNPATCHED)
    patched = make_cluster("p", 1, interconnect="aries", kernel=PATCHED)
    native = osu.measure_bandwidth(unpatched, size, mana=False)
    mana_u = osu.measure_bandwidth(unpatched, size, mana=True)
    mana_p = osu.measure_bandwidth(patched, size, mana=True)
    return (size, native / MB, mana_u / MB, mana_p / MB)


def fig4_bandwidth_kernel_patch(
    scale: str = "small",
    jobs: Optional[int] = 1,
) -> Table:
    """p2p bandwidth: native vs MANA on unpatched and patched kernels."""
    s = SCALES[scale]
    table = Table(
        "Figure 4: point-to-point bandwidth vs message size",
        ["size_bytes", "native_MBps", "mana_unpatched_MBps", "mana_patched_MBps"],
    )
    cells = [SweepCell(_fig4_cell, (size,), label=f"fig4:{size}B")
             for size in s.osu_sizes]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append(
        "paper: MANA degrades below ~1MB on the native kernel; the patched "
        "kernel closes most of the gap"
    )
    return table


# ------------------------------------------------------------------ Fig 5

def _fig5_cell(bench: str, size: int) -> tuple:
    """One fig5 point: latency of one benchmark at one message size."""
    cluster = make_cluster("osu5", 1, interconnect="aries", kernel=UNPATCHED)
    if bench == "p2p-latency":
        native = osu.measure_latency(cluster, size, mana=False, n_iters=20)
        mana = osu.measure_latency(cluster, size, mana=True, n_iters=20)
    else:
        native = osu.measure_collective(cluster, bench, size, mana=False,
                                        n_iters=15)
        mana = osu.measure_collective(cluster, bench, size, mana=True,
                                      n_iters=15)
    return (bench, size, native * 1e6, mana * 1e6)


def fig5_osu_latency(
    scale: str = "small",
    jobs: Optional[int] = 1,
) -> Table:
    """OSU latency: p2p ping-pong, Gather, Allreduce (2 ranks, 1 node)."""
    s = SCALES[scale]
    table = Table(
        "Figure 5: OSU micro-benchmark latency (2 ranks, single node)",
        ["benchmark", "size_bytes", "native_us", "mana_us"],
    )
    cells = [
        SweepCell(_fig5_cell, (bench, size), label=f"fig5:{bench}/{size}B")
        for bench in ("p2p-latency", "gather", "allreduce")
        for size in s.osu_sizes
    ]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append("paper: MANA curves closely follow native")
    return table


# ------------------------------------------------------------------ Fig 6

def _checkpoint_after_steps(cluster, spec, cfg, n_ranks, rpn):
    job = _launch_mana_app(cluster, spec, cfg, n_ranks, rpn)
    # Let the app get ~2 steps in so real traffic is in flight, then cut.
    job.run_until(job.engine.now + 2.2 * cfg.compute_per_step)
    ckpt, report = job.checkpoint()
    return job, ckpt, report


def _ckpt_prelude(app: str, n_nodes: int, ranks_per_node: int,
                  n_steps: int):
    """Memoized checkpoint prelude shared by fig6/fig7/fig8.

    Launches the app under MANA on a Cori slice, lets ~2 steps of real
    traffic build up, cuts one checkpoint, and returns ``(ckpt, report)``.
    The result is cached per (app, nodes, ranks-per-node, steps) key: the
    checkpoint set is only ever *read* afterwards (fig9's triple restart
    relies on the same property), so the figures can share one simulation.
    """
    key = ("ckpt-prelude", "cori", app, n_nodes, ranks_per_node, n_steps)

    def compute():
        spec = get_app(app)
        n_ranks, rpn = _rank_layout(app, n_nodes, ranks_per_node)
        cfg = spec.default_config.scaled(n_steps=n_steps)
        _job, ckpt, report = _checkpoint_after_steps(
            cori(n_nodes), spec, cfg, n_ranks, rpn
        )
        return ckpt, report

    return memo(key, compute)


def _fig6_cell(app: str, n_nodes: int, ranks_per_node: int,
               n_steps: int) -> tuple:
    """One fig6 point: checkpoint time + image size at one node count."""
    n_ranks, _rpn = _rank_layout(app, n_nodes, ranks_per_node)
    ckpt, report = _ckpt_prelude(app, n_nodes, ranks_per_node, n_steps)
    return (
        app, n_nodes, n_ranks, report.total_time,
        ckpt.total_bytes / n_ranks / MB, ckpt.total_bytes / GB,
    )


def fig6_checkpoint_time(
    scale: str = "small",
    apps: Optional[list[str]] = None,
    n_steps: int = 4,
    jobs: Optional[int] = 1,
) -> Table:
    """Checkpoint time and per-rank image size across node counts."""
    s = SCALES[scale]
    table = Table(
        "Figure 6: checkpoint time and image size per rank",
        ["app", "nodes", "ranks", "ckpt_time_s", "image_MB_per_rank",
         "total_GB"],
    )
    cells = [
        SweepCell(_fig6_cell, (app, n_nodes, s.ranks_per_node, n_steps),
                  label=f"fig6:{app}/{n_nodes}n")
        for app in (apps or PAPER_APPS)
        for n_nodes in s.node_counts
    ]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append(
        "paper: 5.9 GB (GROMACS/64 ranks) to 4 TB (HPCG/2048 ranks); time "
        "proportional to data written, bottlenecked by the slowest rank"
    )
    return table


# ------------------------------------------------------------------ Fig 7

def _fig7_cell(app: str, n_nodes: int, ranks_per_node: int,
               n_steps: int) -> tuple:
    """One fig7 point: restart from the (memoized) fig6 prelude checkpoint."""
    spec = get_app(app)
    n_ranks, rpn = _rank_layout(app, n_nodes, ranks_per_node)
    cfg = spec.default_config.scaled(n_steps=n_steps)
    ckpt, _report = _ckpt_prelude(app, n_nodes, ranks_per_node, n_steps)
    job2 = restart(ckpt, cori(n_nodes), spec.build(cfg), ranks_per_node=rpn)
    job2.run_to_completion()
    rep = job2.restart_report
    return (app, n_nodes, n_ranks, rep.total_time, rep.read_time,
            rep.replay_time)


def fig7_restart_time(
    scale: str = "small",
    apps: Optional[list[str]] = None,
    n_steps: int = 4,
    jobs: Optional[int] = 1,
) -> Table:
    """Restart time across node counts (read-dominated)."""
    s = SCALES[scale]
    table = Table(
        "Figure 7: restart time",
        ["app", "nodes", "ranks", "restart_s", "read_s", "replay_s"],
    )
    cells = [
        SweepCell(_fig7_cell, (app, n_nodes, s.ranks_per_node, n_steps),
                  label=f"fig7:{app}/{n_nodes}n")
        for app in (apps or PAPER_APPS)
        for n_nodes in s.node_counts
    ]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append(
        "paper: <10 s to 68 s (HPCG/2048 ranks); dominated by reading "
        "images; opaque-id recreation <10% of restart"
    )
    return table


# ------------------------------------------------------------------ Fig 8

def _fig8_cell(app: str, n_nodes: int, ranks_per_node: int,
               n_steps: int) -> tuple:
    """One fig8 point: checkpoint-time breakdown at the largest node count."""
    n_ranks, _rpn = _rank_layout(app, n_nodes, ranks_per_node)
    _ckpt, report = _ckpt_prelude(app, n_nodes, ranks_per_node, n_steps)
    total = report.total_time or 1.0
    return (
        app, n_ranks,
        100 * report.write_time / total,
        100 * report.drain_time / total,
        100 * report.comm_overhead / total,
        report.drain_time, report.comm_overhead,
    )


def fig8_ckpt_breakdown(
    scale: str = "small",
    apps: Optional[list[str]] = None,
    n_steps: int = 4,
    jobs: Optional[int] = 1,
) -> Table:
    """Contribution of write / drain / protocol-comm to checkpoint time at
    the largest node count of the sweep."""
    s = SCALES[scale]
    n_nodes = s.node_counts[-1]
    table = Table(
        f"Figure 8: checkpoint-time breakdown at {n_nodes} nodes",
        ["app", "ranks", "write_pct", "drain_pct", "comm_pct",
         "drain_s", "comm_s"],
    )
    cells = [
        SweepCell(_fig8_cell, (app, n_nodes, s.ranks_per_node, n_steps),
                  label=f"fig8:{app}/{n_nodes}n")
        for app in (apps or PAPER_APPS)
    ]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append(
        "paper (64 nodes): write dominates; drain <0.7 s; 2-phase comm "
        "<1.6 s, growing with rank count via coordinator TCP metadata"
    )
    return table


# ------------------------------------------------------------------ Fig 9

def _steady_per_step(engine: Engine, states: list, trace_key: str,
                     skip_to: int) -> float:
    """Run the engine to completion and return the average per-step time
    over the steps *after* the trace reaches ``skip_to`` entries — skipping
    partial or warm-up steps that would skew the average."""
    while len(states[0].get(trace_key, ())) < skip_to:
        if not engine.step():
            raise RuntimeError("job finished before reaching steady state")
    t1 = engine.now
    engine.run()
    done = len(states[0][trace_key])
    if done <= skip_to:
        raise RuntimeError("no steady-state steps to measure")
    return (engine.now - t1) / (done - skip_to)


def fig9_cross_cluster_migration(n_steps: int = 14) -> Table:
    """GROMACS migrated from Cori (Cray MPICH / Aries) to a local cluster,
    restarted under three configurations; degradation vs native runs.

    Inherently sequential: the three target configurations restart the same
    in-memory checkpoint cut from a single source run, so there is nothing
    to decompose into independent cells.
    """
    spec = get_app("gromacs")
    cfg = spec.default_config.scaled(n_steps=n_steps)
    src = cori(4)

    # Reference run on Cori (8 ranks over 4 nodes, 2 per node — §3.6).
    t_full = _run_native(src, spec, cfg, n_ranks=8, ranks_per_node=2)

    # Checkpoint at the halfway mark under MANA.
    job = _launch_mana_app(src, spec, cfg, 8, 2)
    ckpt, _ = job.checkpoint_at(t_full / 2)
    steps_done = len(job.states[0]["step_trace"])

    configs = [
        ("OpenMPI/IB (2x4)", local_cluster(2, "infiniband"), "openmpi", 4),
        ("MPICH/TCP (2x4)", local_cluster(2, "tcp"), "mpich", 4),
        ("MPICH (8x1)", local_cluster(1, "tcp"), "mpich", 8),
    ]
    table = Table(
        "Figure 9: GROMACS cross-cluster migration (restarted vs native)",
        ["config", "native_per_step_ms", "restarted_per_step_ms",
         "degradation_pct"],
    )
    for label, dst, mpi, rpn in configs:
        # Native reference on the target (same object files, local MPI);
        # measured over steady-state steps, skipping the first.
        engine = Engine()
        world = launch(engine, dst, 8, ranks_per_node=rpn)
        factory = spec.build(cfg)
        njob = NativeJob(engine, world, [factory(r, 8) for r in range(8)])
        njob.start()
        native_per_step = _steady_per_step(
            engine, njob.states, "step_trace", skip_to=1
        )

        job2 = restart(ckpt, dst, spec.build(cfg), mpi=mpi, ranks_per_node=rpn)
        restarted_per_step = _steady_per_step(
            job2.engine, job2.states, "step_trace", skip_to=steps_done + 1
        )
        degradation = 100.0 * (restarted_per_step / native_per_step - 1.0)
        table.add(label, native_per_step * 1e3, restarted_per_step * 1e3,
                  degradation)
    table.notes.append("paper: degradation < 1.8% across all three configs")
    return table


# ------------------------------------------------------------- §3.2.2

def _mem_cell(n_nodes: int, ranks_per_node: int) -> tuple:
    """One §3.2.2 point: split-process memory overhead at one node count."""
    from repro.mana.split_process import SplitProcess
    from repro.mpilib.impls import get_implementation
    from repro.net import make_interconnect
    from repro.net.fabrics import ShmemTransport

    engine = Engine()
    impl = get_implementation("craympich")
    proc = SplitProcess(0, UNPATCHED, app_mem_bytes=MB,
                        upper_mpi_copy_bytes=impl.text_size)
    fabric = make_interconnect("aries", engine)
    shmem = ShmemTransport(engine)
    proc.bootstrap_lower_half(impl, fabric, shmem, n_nodes, ranks_per_node)
    shmem_bytes = sum(
        r.size for r in proc.space.regions()
        if r.name == "aries-shmem"
    )
    return (
        n_nodes,
        proc.space.find("app-mpi-copy").size / MB,
        shmem_bytes / MB,
        proc.lower_bytes() / MB,
    )


def memory_overhead_analysis(
    scale: str = "small",
    jobs: Optional[int] = 1,
) -> Table:
    """Memory overhead of the split process: duplicated upper-half MPI text
    and lower-half driver regions growing with node count."""
    s = SCALES[scale]
    table = Table(
        "§3.2.2: split-process memory overhead",
        ["nodes", "upper_mpi_copy_MB", "driver_shmem_MB", "lower_total_MB"],
    )
    cells = [
        SweepCell(_mem_cell, (n_nodes, s.ranks_per_node),
                  label=f"mem:{n_nodes}n")
        for n_nodes in (2, 4, 8, 16, 32, 64)
    ]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    table.notes.append(
        "paper: 26 MB duplicated text; driver shared memory 2 MB at 2 nodes "
        "to 40 MB at 64 nodes — all discarded at checkpoint"
    )
    return table


# --------------------------------------------------------------- ablation

def _ablation_two_phase_cell(n_ranks: int, size: int,
                             n_iters: int = 40) -> tuple:
    """One ablation point: allreduce loop with the wrapper on vs off."""
    from repro.mpilib import SUM
    from repro.mprog import Call, Compute, Loop, Program, Seq

    def factory(rank, world):
        def init(s):
            s["x"] = np.ones(8)

        def coll(s, api):
            return api.allreduce(s["x"], SUM, size=size)

        return Program(Seq(Compute(init), Loop(n_iters, Call(coll, store="y"))),
                       name="ablate-coll")

    times = {}
    for enabled in (False, True):
        cluster = cori(2)
        job = launch_mana(cluster, factory, n_ranks=n_ranks,
                          ranks_per_node=n_ranks // 2, app_mem_bytes=1 << 20)
        for rt in job.runtimes:
            rt.two_phase_enabled = enabled
        job.start()
        times[enabled] = job.run_to_completion()
    added = 100.0 * (times[True] / times[False] - 1.0)
    return (n_ranks, size, times[False], times[True], added)


def ablation_two_phase_cost(
    rank_counts: tuple[int, ...] = (4, 16),
    sizes: tuple[int, ...] = (64, 1 << 16, 1 << 21),
    jobs: Optional[int] = 1,
) -> Table:
    """Runtime price of Algorithm 1's trivial barrier, by size and ranks."""
    table = Table(
        "Ablation: two-phase wrapper runtime cost (no checkpoints)",
        ["ranks", "size_bytes", "bare_s", "two_phase_s", "added_pct"],
    )
    cells = [
        SweepCell(_ablation_two_phase_cell, (n_ranks, size),
                  label=f"ablate-2p:{n_ranks}r/{size}B")
        for n_ranks in rank_counts
        for size in sizes
    ]
    for row in run_cells(cells, jobs=jobs):
        table.add(*row)
    return table


# ------------------------------------------------------ resilience (faults)

def _res_init(s):
    """Initialize the resilience-sweep app's per-rank state."""
    s["x"] = np.array([float(s["rank"] + 1)])
    s["acc"] = 0.0


def _res_call(s, api):
    """One allreduce step of the resilience-sweep app."""
    return api.allreduce(s["x"], _res_sum())


def _res_update(s):
    """Absorb the allreduce result and advance the local state."""
    s["acc"] += float(s["sum"][0])
    s["x"] = s["x"] * 0.5 + 1.0


def _res_sum():
    """The SUM reduction op (imported lazily to keep module imports light)."""
    from repro.mpilib import SUM
    return SUM


def resilience_program(n_iters: int = 60, cost: float = 0.5):
    """Program factory for the resilience experiments: an iterative
    allreduce solver with ``cost`` simulated seconds of compute per step."""
    from repro.mprog import Call, Compute, Loop, Program, Seq

    def factory(rank, size):
        return Program(Seq(
            Compute(_res_init),
            Loop(n_iters, Seq(
                Call(_res_call, store="sum"),
                Compute(_res_update, cost=cost),
            )),
        ), name="resilient-app")

    return factory


def _resilience_probe(n_nodes: int, n_ranks: int, n_iters: int,
                      cost: float) -> tuple[float, float]:
    """Memoized (checkpoint cost, uninterrupted runtime) measurement shared
    by every (interval, seed) cell of the resilience sweep."""
    key = ("resilience-probe", n_nodes, n_ranks, n_iters, cost)

    def compute():
        factory = resilience_program(n_iters=n_iters, cost=cost)
        probe = make_cluster("probe", n_nodes)
        job = launch_mana(probe, factory, n_ranks).start()
        _ckpt, report = job.checkpoint_at(1.0)
        ckpt_cost = report.total_time

        ref_cluster = make_cluster("reference", n_nodes)
        ref_job = launch_mana(ref_cluster, factory, n_ranks).start()
        reference_time = ref_job.run_to_completion()
        return ckpt_cost, reference_time

    return memo(key, compute)


def _resilience_cell(factor: float, seed: int, interval: float,
                     n_nodes: int, n_ranks: int, n_iters: int, cost: float,
                     system_mtbf: float, reference_time: float) -> tuple:
    """One resilience sweep point: (interval factor, fault seed)."""
    from repro.faults import ExponentialNodeFaults, run_resilient
    from repro.simtime.rng import RngStreams

    factory = resilience_program(n_iters=n_iters, cost=cost)
    cluster = make_cluster(f"sweep-f{factor:g}-s{seed}", n_nodes)
    model = ExponentialNodeFaults(
        [n.node_id for n in cluster.nodes],
        mtbf_seconds=system_mtbf * n_nodes,
        rng=RngStreams(seed),
    )
    run = run_resilient(
        cluster, factory, n_ranks, interval=interval,
        faults=model, max_restarts=100, seed=seed,
        reference_time=reference_time,
    )
    if not run.completed:
        return (False, 0.0, 0, 0.0)
    return (True, run.efficiency, len(run.failures), run.lost_work_total)


def resilience_efficiency_sweep(
    system_mtbf: float = 12.0,
    interval_factors=(0.25, 0.5, 1.0, 2.0, 4.0),
    n_nodes: int = 6,
    n_ranks: int = 4,
    n_iters: int = 60,
    cost: float = 0.5,
    seeds=(0, 1, 2),
    jobs: Optional[int] = 1,
) -> Table:
    """Efficiency vs. checkpoint interval under exponential node failures.

    Measures the checkpoint cost ``C`` and the uninterrupted runtime once,
    derives the Young/Daly period ``sqrt(2 C MTBF)``, then for each
    ``interval = factor * YD`` runs :func:`repro.faults.run_resilient`
    under per-node exponential faults (per-node MTBF = ``system_mtbf *
    n_nodes``) and reports mean efficiency (useful work / total simulated
    time) over ``seeds``.  Efficiency should peak near factor 1.0:
    checkpointing too often pays protocol overhead, too rarely pays lost
    work.
    """
    from repro.mana.autockpt import young_daly_interval

    ckpt_cost, reference_time = _resilience_probe(
        n_nodes, n_ranks, n_iters, cost
    )
    yd = young_daly_interval(system_mtbf, ckpt_cost)
    table = Table(
        "Resilience: efficiency vs. checkpoint interval (exponential faults)",
        ["interval/YD", "interval_s", "efficiency", "failures", "lost_work_s"],
    )
    cells = [
        SweepCell(
            _resilience_cell,
            (factor, seed, factor * yd, n_nodes, n_ranks, n_iters, cost,
             system_mtbf, reference_time),
            label=f"resilience:f{factor:g}/s{seed}",
        )
        for factor in interval_factors
        for seed in seeds
    ]
    results = run_cells(cells, jobs=jobs)
    n_seeds = len(tuple(seeds))
    for i, factor in enumerate(interval_factors):
        chunk = results[i * n_seeds:(i + 1) * n_seeds]
        effs = [r[1] for r in chunk if r[0]]
        fails = [r[2] for r in chunk if r[0]]
        lost = [r[3] for r in chunk if r[0]]
        table.add(
            factor, factor * yd,
            float(np.mean(effs)) if effs else float("nan"),
            float(np.mean(fails)) if fails else float("nan"),
            float(np.mean(lost)) if lost else float("nan"),
        )
    table.notes.append(
        f"system MTBF {system_mtbf:g}s, measured C={ckpt_cost:.3f}s, "
        f"Young/Daly period {yd:.2f}s, uninterrupted runtime "
        f"{reference_time:.2f}s over {len(tuple(seeds))} seeds"
    )
    return table
