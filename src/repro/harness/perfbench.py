"""Wall-clock performance benchmarks: the data behind ``BENCH_perf.json``.

Every other benchmark in this repo measures *simulated* time (the figures
of the paper); this module measures how fast the simulator itself runs on
the host — the perf trajectory the ROADMAP's "as fast as the hardware
allows" goal is held against.  ``repro bench`` (without ``--figure``) runs
the suite and writes a schema-validated ``BENCH_perf.json`` at the repo
root; CI re-runs it in quick mode and fails if event throughput regresses
more than 30% against the committed baseline.

Metrics
-------

* ``engine_events_per_s`` — raw discrete-event kernel throughput (a
  self-re-arming timer; nothing but the engine hot loop).
* ``engine_events_per_s_sharded`` — the same self-re-arming-timer world
  split across OS processes by the conservative sharded backend
  (:func:`repro.simtime.sharded.run_sharded`), with lookahead ≫ tick so
  each window batches thousands of events.  On a ≥2-core host this should
  beat the single-shard number; on a single-core host the processes
  serialize and the metric is emitted ``informational`` — same pattern as
  ``sweep_speedup_j2``.
* ``p2p_msgs_per_s`` — simulated point-to-point messages per wall second
  (OSU-style ping-pong under MANA interposition).
* ``allreduce_per_s`` — simulated 8-rank allreduces per wall second.
* ``ckpt_restart_cycle_s`` — wall seconds for one checkpoint + restart
  cycle of a 4-rank HPCG slice.
* ``fig2_cell_s`` — wall seconds for one end-to-end fig2 sweep cell
  (native + MANA run, GROMACS/4 ranks).
* ``sweep_speedup_j2`` — wall-clock speedup of a reduced fig3 sweep at
  ``jobs=2`` over ``jobs=1`` (≈1.0 on a single-core host, approaching the
  worker count as cores allow).  On hosts with fewer than two CPUs the
  metric is emitted with ``informational: true`` — the ratio measures the
  host, not the code — and :func:`compare_bench` never thresholds
  informational metrics.
* ``facility_makespan_s`` — wall seconds to drain a whole multi-tenant
  facility workload (FIFO, tiny mix) through one shared engine: the cost
  of the scheduler + many-jobs-one-engine multiplexing path.
* ``ckpt_quiesce_wait_s`` — **simulated** seconds from checkpoint request
  to the start of draining under the topological-sort protocol on a
  collective-heavy HPCG slice, with the Algorithm-2 wait on the same cut
  alongside (``alg2_s``/``topo_s`` extras).  A simulated-time metric: it
  pins protocol v2's latency claim (one control round, not 2+extra) so
  the win is measured, not asserted.
* ``restart_replay_s_vs_log_len`` — **simulated** replay seconds of a
  compacted restart after 10× communicator churn (``commchurn``), with the
  base-churn compacted time and both full-log times as extras.  The
  compaction acceptance criterion in one number: the full log's replay
  grows with call history (``full_ratio`` ≫ 1) while the compacted
  restart stays O(live handles) and flat (``compact_ratio`` ≈ 1).  See
  ``docs/record_replay.md``.

All metrics carry ``higher_is_better`` so a generic threshold check can
compare any of them; see :func:`compare_bench`.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Callable, Optional

BENCH_SCHEMA = "repro-perf/2"

#: shard count used by the sharded engine benchmark (recorded in the host
#: block so baselines from differently-sharded runs never compare silently)
BENCH_SHARDS = 2

#: metric keys guaranteed to be present in every suite run
CORE_METRICS = (
    "engine_events_per_s",
    "engine_events_per_s_sharded",
    "p2p_msgs_per_s",
    "allreduce_per_s",
    "ckpt_restart_cycle_s",
    "fig2_cell_s",
    "sweep_speedup_j2",
    "facility_makespan_s",
    "ckpt_quiesce_wait_s",
    "restart_replay_s_vs_log_len",
)

#: keys :func:`compare_bench` thresholds by default — the wall-clock
#: throughput/scaling trio; parallel metrics skip themselves via the
#: ``informational`` flag on hosts that cannot overlap work
THRESHOLDED_KEYS = (
    "engine_events_per_s",
    "engine_events_per_s_sharded",
    "sweep_speedup_j2",
)


# ------------------------------------------------------------ microbenches

def bench_engine_events(n_events: int = 300_000) -> float:
    """Events per wall second through the bare engine hot loop."""
    from repro.simtime import Engine

    engine = Engine()
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.call_after(0.001, tick, label="tick")

    engine.call_after(0.0, tick, label="tick")
    t0 = time.perf_counter()
    engine.run()
    return n_events / (time.perf_counter() - t0)


def bench_engine_events_sharded(n_events: int = 200_000,
                                n_shards: int = BENCH_SHARDS) -> dict[str, float]:
    """Events per wall second through the process-sharded event backend.

    The same self-re-arming-timer world as :func:`bench_engine_events`,
    split over ``n_shards`` worker processes with a token ring between
    them.  The shape is chosen for window batching — ``tick`` of 1 µs
    under a 1 ms lookahead, a cross-shard token every 500 ticks — so each
    conservative window advances thousands of events per shard and the
    synchronization cost amortizes away.  Returns ``{"events_per_s": ...,
    "windows": ..., "messages": ...}``.
    """
    from repro.simtime.sharded import ring_specs, run_sharded

    per_shard = max(1, n_events // n_shards)
    specs = ring_specs(n_shards, per_shard, tick=1e-6, ping_every=500)
    t0 = time.perf_counter()
    out = run_sharded(specs, lookahead=1e-3, parallel=True)
    wall = time.perf_counter() - t0
    fired = sum(r["fired"] for r in out.results)
    return {"events_per_s": fired / wall, "windows": float(out.windows),
            "messages": float(out.messages)}


def bench_p2p_message_rate(n_iters: int = 400) -> float:
    """Simulated MANA p2p messages per wall second (2-rank ping-pong)."""
    from repro.apps import osu
    from repro.hardware.cluster import make_cluster
    from repro.hardware.kernelmodel import UNPATCHED

    cluster = make_cluster("perf-p2p", 1, interconnect="aries",
                           kernel=UNPATCHED)
    t0 = time.perf_counter()
    osu.measure_latency(cluster, 1 << 10, mana=True, n_iters=n_iters)
    wall = time.perf_counter() - t0
    # each ping-pong iteration is two messages
    return 2 * n_iters / wall


def bench_allreduce_rate(n_iters: int = 60, n_ranks: int = 8) -> float:
    """Simulated 8-rank MANA allreduces per wall second."""
    import numpy as np

    from repro.hardware.cluster import make_cluster
    from repro.mana.job import launch_mana
    from repro.mpilib import SUM
    from repro.mprog import Call, Compute, Loop, Program, Seq

    def factory(rank, world):
        def init(s):
            s["x"] = np.ones(8)

        def coll(s, api):
            return api.allreduce(s["x"], SUM, size=1 << 12)

        return Program(
            Seq(Compute(init), Loop(n_iters, Call(coll, store="y"))),
            name="perf-allreduce",
        )

    cluster = make_cluster("perf-coll", 2)
    job = launch_mana(cluster, factory, n_ranks=n_ranks,
                      ranks_per_node=n_ranks // 2, app_mem_bytes=1 << 20)
    job.start()
    t0 = time.perf_counter()
    job.run_to_completion()
    return n_iters / (time.perf_counter() - t0)


def bench_ckpt_restart_cycle(n_steps: int = 3) -> float:
    """Wall seconds for one 4-rank HPCG checkpoint + restart cycle."""
    from repro.apps import get_app
    from repro.hardware.cluster import make_cluster
    from repro.harness.experiments import _launch_mana_app
    from repro.mana.job import restart

    spec = get_app("hpcg")
    cfg = spec.default_config.scaled(n_steps=n_steps)
    t0 = time.perf_counter()
    cluster = make_cluster("perf-ckpt", 2, interconnect="aries",
                           default_mpi="craympich")
    job = _launch_mana_app(cluster, spec, cfg, n_ranks=4, ranks_per_node=2)
    ckpt, _report = job.checkpoint_at(0.05)
    job2 = restart(ckpt, make_cluster("perf-rst", 2, interconnect="aries",
                                      default_mpi="craympich"),
                   spec.build(cfg), ranks_per_node=2)
    job2.run_to_completion()
    return time.perf_counter() - t0


def bench_fig2_cell(n_steps: int = 4) -> float:
    """Wall seconds for one end-to-end fig2 cell (GROMACS, 4 ranks)."""
    from repro.harness.experiments import _fig2_cell
    from repro.hardware.kernelmodel import UNPATCHED

    t0 = time.perf_counter()
    _fig2_cell("gromacs", 4, n_steps, UNPATCHED)
    return time.perf_counter() - t0


def bench_sweep_speedup(jobs: int = 2) -> dict[str, float]:
    """Wall-clock speedup of a reduced fig3 sweep at ``jobs`` workers.

    Returns ``{"seq_s": ..., "par_s": ..., "speedup": ...}``.  On a
    single-core host the pool adds overhead and the ratio sits near (or
    below) 1.0; the emitted document records the host core count next to
    it so trajectories across machines stay interpretable.
    """
    from repro.harness.experiments import fig3_multi_node_overhead
    from repro.harness.parallel import clear_memo

    apps = ["gromacs", "hpcg"]
    clear_memo()
    t0 = time.perf_counter()
    fig3_multi_node_overhead(scale="small", apps=apps, jobs=1)
    seq = time.perf_counter() - t0
    clear_memo()
    t0 = time.perf_counter()
    fig3_multi_node_overhead(scale="small", apps=apps, jobs=jobs)
    par = time.perf_counter() - t0
    return {"seq_s": seq, "par_s": par, "speedup": seq / par}


def bench_facility_makespan(n_jobs: int = 40) -> float:
    """Wall seconds to drain an ``n_jobs`` tiny-mix facility workload.

    Exercises the whole multi-tenant path — scheduler rounds, many MANA
    jobs multiplexed on one engine, the shared-storage arbiter — with no
    preemptions or faults, so the number tracks orchestration overhead
    rather than any single job's simulation cost.
    """
    from repro.facility import Facility, generate_jobs
    from repro.hardware.cluster import make_cluster

    t0 = time.perf_counter()
    cluster = make_cluster("perf-facility", 8, cores_per_node=16,
                           interconnect="aries", default_mpi="craympich")
    fac = Facility(cluster, scheduler="fifo", seed=0)
    fac.submit_all(generate_jobs("tiny", n_jobs, seed=0))
    rep = fac.run()
    if rep.completed_jobs != n_jobs:
        raise RuntimeError(
            f"facility bench dropped jobs: {rep.completed_jobs}/{n_jobs}"
        )
    return time.perf_counter() - t0


def bench_ckpt_quiesce_wait(n_steps: int = 3) -> dict[str, float]:
    """Simulated quiesce wait of one HPCG checkpoint, per protocol.

    Runs the identical 4-rank HPCG slice twice — once per protocol engine —
    and cuts a checkpoint at the same virtual instant.  Returns
    ``{"alg2_s": ..., "topo_s": ...}`` (CheckpointReport.quiesce_wait);
    the differential tests and CI assert ``topo_s <= alg2_s``.
    """
    from repro.apps import get_app
    from repro.hardware.cluster import make_cluster
    from repro.harness.experiments import _launch_mana_app

    spec = get_app("hpcg")
    cfg = spec.default_config.scaled(n_steps=n_steps)
    waits = {}
    for protocol in ("alg2", "topo"):
        cluster = make_cluster(f"perf-qw-{protocol}", 2,
                               interconnect="aries", default_mpi="craympich")
        job = _launch_mana_app(cluster, spec, cfg, n_ranks=4,
                               ranks_per_node=2, protocol=protocol)
        _ckpt, report = job.checkpoint_at(0.05)
        waits[f"{protocol}_s"] = report.quiesce_wait
    return waits


def bench_restart_replay_vs_log_len(n_steps: int = 6) -> dict[str, float]:
    """Simulated restart-replay time vs record-log length (commchurn).

    Runs the churn-heavy ``commchurn`` app at ``n_steps`` and at
    ``10 * n_steps``, cuts a checkpoint at 90% of each makespan (so the
    log holds the full churn history), and restarts each image twice —
    from the full log and from the compacted one.  Returns per-variant
    replay times and entry counts plus the two growth ratios; the
    compacted ratio must stay flat (O(live handles)) while the full one
    tracks the 10× log growth.
    """
    from repro.apps import get_app
    from repro.hardware.cluster import make_cluster
    from repro.harness.experiments import _launch_mana_app
    from repro.mana.job import restart

    spec = get_app("commchurn")
    out: dict[str, float] = {}
    for label, steps in (("base", n_steps), ("x10", 10 * n_steps)):
        cfg = spec.default_config.scaled(n_steps=steps)
        probe = _launch_mana_app(
            make_cluster(f"perf-rr-{label}", 2, interconnect="aries",
                         default_mpi="craympich"),
            spec, cfg, n_ranks=4, ranks_per_node=2)
        makespan = probe.run_to_completion()
        for compact in (False, True):
            variant = "compact" if compact else "full"
            cluster = make_cluster(f"perf-rr-{label}-{variant}", 2,
                                   interconnect="aries",
                                   default_mpi="craympich")
            job = _launch_mana_app(cluster, spec, cfg, n_ranks=4,
                                   ranks_per_node=2, compact=compact)
            ckpt, _report = job.checkpoint_at(0.9 * makespan)
            job2 = restart(
                ckpt,
                make_cluster(f"perf-rr-{label}-{variant}-dst", 2,
                             interconnect="aries", default_mpi="craympich"),
                spec.build(cfg), ranks_per_node=2)
            job2.run_to_completion()
            rep = job2.restart_report
            out[f"{variant}_{label}_s"] = rep.replay_time
            out[f"{variant}_{label}_entries"] = float(rep.replayed_entries)
    out["compact_ratio"] = out["compact_x10_s"] / max(out["compact_base_s"],
                                                      1e-12)
    out["full_ratio"] = out["full_x10_s"] / max(out["full_base_s"], 1e-12)
    return out


# ------------------------------------------------------------------ suite

def _metric(value: float, unit: str, higher_is_better: bool,
            **extra: Any) -> dict:
    out = {"value": float(value), "unit": unit,
           "higher_is_better": higher_is_better}
    out.update(extra)
    return out


def run_suite(quick: bool = False, jobs: Optional[int] = None,
              log: Optional[Callable[[str], None]] = None) -> dict:
    """Run every microbenchmark and return the ``BENCH_perf.json`` document.

    ``quick`` shrinks iteration counts for CI smoke runs; ``jobs`` is the
    worker count used by the sweep-speedup benchmark (default 2).
    """
    say = log or (lambda _msg: None)
    jobs = 2 if jobs is None else max(2, jobs)

    say("engine event throughput...")
    events = bench_engine_events(60_000 if quick else 300_000)
    say(f"  {events:,.0f} events/s")

    say(f"sharded engine event throughput ({BENCH_SHARDS} shards)...")
    sharded = bench_engine_events_sharded(80_000 if quick else 200_000)
    say(f"  {sharded['events_per_s']:,.0f} events/s "
        f"({sharded['windows']:.0f} windows)")

    say("p2p message rate...")
    p2p = bench_p2p_message_rate(100 if quick else 400)
    say(f"  {p2p:,.0f} msgs/s")

    say("allreduce rate...")
    coll = bench_allreduce_rate(20 if quick else 60)
    say(f"  {coll:,.1f} allreduces/s")

    say("checkpoint/restart cycle...")
    cycle = bench_ckpt_restart_cycle(2 if quick else 3)
    say(f"  {cycle:.3f} s")

    say("fig2 end-to-end cell...")
    cell = bench_fig2_cell(3 if quick else 4)
    say(f"  {cell:.3f} s")

    say(f"sequential vs parallel sweep (j{jobs})...")
    sweep = bench_sweep_speedup(jobs)
    say(f"  {sweep['seq_s']:.2f}s -> {sweep['par_s']:.2f}s "
        f"({sweep['speedup']:.2f}x)")

    say("facility workload drain...")
    facility_jobs = 15 if quick else 40
    facility = bench_facility_makespan(facility_jobs)
    say(f"  {facility:.3f} s ({facility_jobs} jobs)")

    say("checkpoint quiesce wait (alg2 vs topo)...")
    qw = bench_ckpt_quiesce_wait(2 if quick else 3)
    say(f"  alg2 {qw['alg2_s'] * 1e3:.2f} ms, topo {qw['topo_s'] * 1e3:.2f} ms")

    say("restart replay vs log length (compacted vs full)...")
    rr = bench_restart_replay_vs_log_len(3 if quick else 6)
    say(f"  compact {rr['compact_base_s'] * 1e3:.2f} -> "
        f"{rr['compact_x10_s'] * 1e3:.2f} ms across 10x churn "
        f"(full {rr['full_ratio']:.1f}x)")

    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "shards": BENCH_SHARDS,
        },
        "metrics": {
            "engine_events_per_s": _metric(events, "events/s", True),
            "engine_events_per_s_sharded": _metric(
                sharded["events_per_s"], "events/s", True,
                shards=BENCH_SHARDS,
                windows=int(sharded["windows"]),
                messages=int(sharded["messages"]),
                # one worker process per shard: a single-CPU host
                # serializes them, so the number describes the host
                informational=(os.cpu_count() or 1) < 2,
            ),
            "p2p_msgs_per_s": _metric(p2p, "msgs/s", True),
            "allreduce_per_s": _metric(coll, "allreduces/s", True),
            "ckpt_restart_cycle_s": _metric(cycle, "s", False),
            "fig2_cell_s": _metric(cell, "s", False),
            "sweep_speedup_j2": _metric(
                sweep["speedup"], "x", True, jobs=jobs,
                seq_s=sweep["seq_s"], par_s=sweep["par_s"],
                # with one CPU the pool cannot overlap work: the ratio is
                # a host property, never a regression signal
                informational=(os.cpu_count() or 1) < 2,
            ),
            "facility_makespan_s": _metric(
                facility, "s", False, n_jobs=facility_jobs,
            ),
            "ckpt_quiesce_wait_s": _metric(
                qw["topo_s"], "s", False,
                alg2_s=qw["alg2_s"], topo_s=qw["topo_s"],
                # simulated time, not wall time: deterministic per seed
                simulated=True,
            ),
            "restart_replay_s_vs_log_len": _metric(
                rr["compact_x10_s"], "s", False,
                compact_base_s=rr["compact_base_s"],
                full_base_s=rr["full_base_s"],
                full_x10_s=rr["full_x10_s"],
                compact_entries_x10=int(rr["compact_x10_entries"]),
                full_entries_x10=int(rr["full_x10_entries"]),
                compact_ratio=rr["compact_ratio"],
                full_ratio=rr["full_ratio"],
                # simulated time, not wall time: deterministic per seed
                simulated=True,
            ),
        },
    }


# ------------------------------------------------------------- validation

def validate_bench_doc(doc: Any) -> None:
    """Validate a ``BENCH_perf.json`` document; raises ``ValueError``.

    The schema is deliberately small: a known schema tag, a host block
    with a positive ``cpu_count``, and ≥ 5 metrics each carrying a finite
    numeric ``value``, a non-empty ``unit`` and a boolean
    ``higher_is_better``.  Every :data:`CORE_METRICS` key must be present.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"bench doc must be an object, got {type(doc).__name__}")
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unknown schema {doc.get('schema')!r}; expected {BENCH_SCHEMA!r}"
        )
    host = doc.get("host")
    if not isinstance(host, dict) or not isinstance(host.get("cpu_count"), int) \
            or host["cpu_count"] < 1:
        raise ValueError("host.cpu_count must be a positive integer")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or len(metrics) < 5:
        raise ValueError("metrics must be an object with >= 5 entries")
    for key in CORE_METRICS:
        if key not in metrics:
            raise ValueError(f"missing core metric {key!r}")
    for key, m in metrics.items():
        if not isinstance(m, dict):
            raise ValueError(f"metric {key!r} must be an object")
        value = m.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"metric {key!r}: value must be a finite number")
        if not isinstance(m.get("unit"), str) or not m["unit"]:
            raise ValueError(f"metric {key!r}: unit must be a non-empty string")
        if not isinstance(m.get("higher_is_better"), bool):
            raise ValueError(f"metric {key!r}: higher_is_better must be a bool")


def compare_bench(current: dict, baseline: dict,
                  keys: tuple[str, ...] = THRESHOLDED_KEYS,
                  max_regression: float = 0.30) -> list[str]:
    """Compare ``current`` against ``baseline``; return regression messages.

    A metric regresses when it moves in its *bad* direction (down for
    ``higher_is_better``, up otherwise) by more than ``max_regression``
    (fractional).  Metrics missing from the baseline are skipped — a new
    benchmark must not fail the build that introduces it — and so are
    metrics flagged ``informational`` on either side (values that describe
    the host rather than the code, like pool speedup on a single-core
    runner).  An empty return value means within budget.
    """
    failures = []
    for key in keys:
        cur = current["metrics"].get(key)
        base = baseline["metrics"].get(key)
        if cur is None or base is None or base["value"] == 0:
            continue
        if cur.get("informational") or base.get("informational"):
            continue
        ratio = cur["value"] / base["value"]
        if cur["higher_is_better"]:
            regressed = ratio < 1.0 - max_regression
            direction = "dropped"
        else:
            regressed = ratio > 1.0 + max_regression
            direction = "grew"
        if regressed:
            failures.append(
                f"{key} {direction} beyond the {max_regression:.0%} budget: "
                f"{base['value']:.4g} -> {cur['value']:.4g} "
                f"({ratio:.2f}x, {cur['unit']})"
            )
    return failures


def write_bench_doc(doc: dict, path: str) -> None:
    """Validate and write the document as stable, diff-friendly JSON."""
    validate_bench_doc(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench_doc(path: str) -> dict:
    """Load and validate a ``BENCH_perf.json`` document."""
    with open(path) as fh:
        doc = json.load(fh)
    validate_bench_doc(doc)
    return doc
