"""Parallel sweep execution: picklable cells, a process-pool runner, and a
content-keyed memo cache for shared sub-runs.

The figure/ablation/resilience sweeps are embarrassingly parallel — each
(app × nodes × variant × seed) cell builds its own :class:`~repro.simtime.
Engine` and cluster from scratch and shares nothing with its neighbours —
but the runners in :mod:`repro.harness.experiments` used to execute them
strictly sequentially.  This module supplies the missing layer:

* :class:`SweepCell` — one unit of sweep work, declared up front: a
  module-level function plus primitive parameters, so the cell pickles
  cleanly into a worker process.
* :func:`run_cells` — execute a list of cells either in-process
  (``jobs=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs>1``), returning results **in cell order** regardless of which
  worker finished first.  Determinism is the contract: a runner that merges
  ``run_cells`` results by index emits tables byte-identical to a
  sequential run (enforced by ``tests/harness/test_parallel.py``).
* :exc:`CellError` — a cell that raises in a worker surfaces here as an
  exception carrying the original traceback text, instead of hanging or
  poisoning the pool; ``repro.harness.report.generate`` then lands it in
  the report's ``## errors`` section like any other runner failure.
* :func:`memo` — a content-keyed, process-local cache for deterministic
  sub-runs shared between figures (native baselines, the
  ``_checkpoint_after_steps`` preludes that fig6/fig7/fig8 would otherwise
  re-simulate per figure).  Keys must capture every input of the sub-run;
  see ``docs/performance.md`` for the key conventions.
* :class:`WorkerPool` — persistent, *stateful* workers addressed by index.
  ``run_cells`` workers are stateless (any worker may take any cell); the
  sharded engine (:mod:`repro.simtime.sharded`) instead needs each shard's
  world to stay resident in one process across many synchronization
  windows, so the pool pins worker *k* to shard *k* and exchanges
  ``(fn, args)`` calls over a dedicated pipe pair.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence


class CellError(RuntimeError):
    """A sweep cell raised inside a worker.

    Carries enough context to diagnose the failure from the parent process:
    the cell's label, the original exception type/message, and the formatted
    worker-side traceback.
    """

    def __init__(self, label: str, exc_type: str, exc_msg: str,
                 worker_traceback: str) -> None:
        super().__init__(f"sweep cell {label!r} failed: {exc_type}: {exc_msg}")
        self.label = label
        self.exc_type = exc_type
        self.exc_msg = exc_msg
        self.worker_traceback = worker_traceback

    def __str__(self) -> str:  # keep the traceback visible in ## errors
        base = super().__str__()
        if self.worker_traceback:
            return f"{base}\n{self.worker_traceback}"
        return base


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: ``fn(*params)`` returning one result.

    ``fn`` must be a module-level function and ``params`` picklable values
    (strings, numbers, small tuples) so the cell can cross a process
    boundary; clusters, engines and app specs are constructed *inside* the
    cell, never shipped to it.
    """

    fn: Callable[..., Any]
    params: tuple = ()
    label: str = ""

    def name(self) -> str:
        """Human-readable identity used in error messages."""
        if self.label:
            return self.label
        fn_name = getattr(self.fn, "__name__", str(self.fn))
        return f"{fn_name}{self.params!r}"

    def __call__(self) -> Any:
        return self.fn(*self.params)


def _run_cell_guarded(cell: SweepCell) -> tuple[str, Any]:
    """Worker entry point: never let an exception escape unpickled.

    Returns ``("ok", result)`` or ``("err", (label, type, msg, tb))`` — the
    error tuple is all-strings so it survives pickling even when the
    original exception (or its args) would not.
    """
    try:
        return ("ok", cell())
    except BaseException as exc:  # noqa: BLE001 - must not kill the worker
        tb = traceback.format_exc()
        return ("err", (cell.name(), type(exc).__name__, str(exc), tb))


def default_jobs() -> int:
    """The default worker count: ``REPRO_JOBS`` if set, else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def run_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
) -> list[Any]:
    """Execute every cell and return their results in cell order.

    ``jobs=1`` runs in-process (no pool, no pickling — the reference
    execution); ``jobs>1`` fans out over a process pool; ``jobs=None`` uses
    :func:`default_jobs`.  The first failing cell raises :exc:`CellError`
    once all submitted work has settled — the pool is always shut down, never
    left hanging.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cells = list(cells)
    if jobs == 1 or len(cells) <= 1:
        results = []
        for cell in cells:
            try:
                results.append(cell())
            except CellError:
                raise
            except Exception as exc:
                raise CellError(
                    cell.name(), type(exc).__name__, str(exc),
                    traceback.format_exc(),
                ) from exc
        return results

    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        outcomes = list(pool.map(_run_cell_guarded, cells))
    for status, payload in outcomes:
        if status == "err":
            label, exc_type, exc_msg, tb = payload
            raise CellError(label, exc_type, exc_msg, tb)
    return [payload for _status, payload in outcomes]


# ----------------------------------------------------- persistent workers

def _pool_worker_main(conn, worker_id: int) -> None:
    """Worker loop: apply ``(fn, args)`` requests until the None sentinel.

    Replies mirror :func:`_run_cell_guarded`: ``("ok", result)`` or an
    all-strings ``("err", ...)`` tuple that survives pickling.
    """
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg is None:
            break
        fn, args = msg
        try:
            conn.send(("ok", fn(*args)))
        except BaseException as exc:  # noqa: BLE001 - must not kill the worker
            label = f"worker {worker_id}: {getattr(fn, '__name__', fn)}"
            conn.send(("err", (label, type(exc).__name__, str(exc),
                               traceback.format_exc())))
    conn.close()


class WorkerPool:
    """``n`` persistent worker processes, addressed by index.

    Unlike :func:`run_cells`, a given worker keeps its module-level state
    between calls — that is the point: :mod:`repro.simtime.sharded` builds
    one shard world per worker and then drives it through thousands of
    conservative windows without ever re-pickling it.

    ``submit(k, fn, *args)`` dispatches asynchronously to worker ``k``
    (at most one call in flight per worker); ``result(k)`` collects the
    reply, raising :exc:`CellError` if the call failed remotely;
    ``call(k, ...)`` is submit+result.  Usable as a context manager.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self._conns = []
        self._procs = []
        self._busy = [False] * n_workers
        for k in range(n_workers):
            parent, child = mp.Pipe()
            proc = mp.Process(target=_pool_worker_main, args=(child, k),
                              daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def submit(self, worker: int, fn: Callable[..., Any], *args: Any) -> None:
        """Dispatch ``fn(*args)`` to worker ``worker`` without waiting."""
        if self._busy[worker]:
            raise RuntimeError(f"worker {worker} already has a call in flight")
        self._conns[worker].send((fn, args))
        self._busy[worker] = True

    def result(self, worker: int) -> Any:
        """Collect the pending reply from worker ``worker``."""
        if not self._busy[worker]:
            raise RuntimeError(f"worker {worker} has no call in flight")
        try:
            status, payload = self._conns[worker].recv()
        except EOFError:
            self._busy[worker] = False
            raise CellError(
                f"worker {worker}", "EOFError",
                "worker process died mid-call", "",
            ) from None
        self._busy[worker] = False
        if status == "err":
            raise CellError(*payload)
        return payload

    def call(self, worker: int, fn: Callable[..., Any], *args: Any) -> Any:
        """Synchronous ``fn(*args)`` on worker ``worker``."""
        self.submit(worker, fn, *args)
        return self.result(worker)

    def close(self) -> None:
        """Shut every worker down (idempotent; terminates stragglers)."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ------------------------------------------------------------- memo cache

@dataclass
class MemoStats:
    """Hit/miss counters for the process-local memo cache."""

    hits: int = 0
    misses: int = 0
    #: number of times each key was actually computed (diagnosis aid; the
    #: determinism tests assert every value here is exactly 1)
    runs_by_key: dict = field(default_factory=dict)


_memo_cache: dict[tuple, Any] = {}
_memo_stats = MemoStats()


def memo(key: tuple, fn: Callable[[], Any]) -> Any:
    """Return the cached result for ``key``, computing it once via ``fn``.

    The cache is process-local and content-keyed: ``key`` must be a
    hashable tuple capturing *every* input of the computation (app name,
    cluster constructor arguments, config signature, rank layout…), because
    two calls with equal keys return the same object.  Only use it for
    deterministic sub-runs whose results are immutable or safely shareable
    (e.g. a :class:`~repro.mana.checkpoint_image.CheckpointSet` that is
    only ever read, as fig9's triple restart already demonstrates).
    """
    try:
        value = _memo_cache[key]
    except KeyError:
        _memo_stats.misses += 1
        _memo_stats.runs_by_key[key] = _memo_stats.runs_by_key.get(key, 0) + 1
        value = _memo_cache[key] = fn()
    else:
        _memo_stats.hits += 1
    return value


def memo_stats() -> MemoStats:
    """The live hit/miss counters (shared, process-local)."""
    return _memo_stats


def clear_memo() -> None:
    """Drop every cached entry and reset the counters (tests; long sessions)."""
    _memo_cache.clear()
    _memo_stats.hits = 0
    _memo_stats.misses = 0
    _memo_stats.runs_by_key.clear()
