"""Result containers and plain-text rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class Series:
    """One line of a figure: (x, y) pairs with axis labels."""

    name: str
    x: list
    y: list
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x/y length mismatch")

    def as_rows(self) -> list[tuple]:
        """The series as (x, y) tuples."""
        return list(zip(self.x, self.y))


@dataclass
class Table:
    """A figure reproduced as rows, plus free-form notes."""

    title: str
    columns: list[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        """Append one row (arity-checked against the columns)."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"table {self.title!r}: row of {len(row)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(row)

    def column(self, name: str) -> list:
        """All values of one named column."""
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def __str__(self) -> str:
        return render_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_table(table: Table) -> str:
    """GitHub-style plain-text table."""
    cells = [[_fmt(v) for v in row] for row in table.rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(table.columns)
    ]
    lines = [f"## {table.title}", ""]
    lines.append(" | ".join(c.ljust(w) for c, w in zip(table.columns, widths)))
    lines.append("-|-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
