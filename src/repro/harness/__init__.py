"""Experiment harness: one runner per figure of the paper's evaluation.

Each ``fig*`` function reproduces one artifact of §3 end-to-end on the
simulated substrate and returns a structured result that both the benchmark
suite (``benchmarks/``) and EXPERIMENTS.md rendering consume.  Scale is a
parameter: the defaults are laptop-sized sweeps; ``scale="paper"`` runs the
full 64-node × 32-rank configurations of the paper.
"""

from repro.harness.results import Series, Table, render_table
from repro.harness.parallel import (
    CellError,
    SweepCell,
    clear_memo,
    memo,
    memo_stats,
    run_cells,
)
from repro.harness.experiments import (
    ablation_two_phase_cost,
    fig2_single_node_overhead,
    fig3_multi_node_overhead,
    fig4_bandwidth_kernel_patch,
    fig5_osu_latency,
    fig6_checkpoint_time,
    fig7_restart_time,
    fig8_ckpt_breakdown,
    fig9_cross_cluster_migration,
    memory_overhead_analysis,
    resilience_efficiency_sweep,
    resilience_program,
)

__all__ = [
    "CellError",
    "Series",
    "SweepCell",
    "Table",
    "ablation_two_phase_cost",
    "clear_memo",
    "memo",
    "memo_stats",
    "run_cells",
    "fig2_single_node_overhead",
    "fig3_multi_node_overhead",
    "fig4_bandwidth_kernel_patch",
    "fig5_osu_latency",
    "fig6_checkpoint_time",
    "fig7_restart_time",
    "fig8_ckpt_breakdown",
    "fig9_cross_cluster_migration",
    "memory_overhead_analysis",
    "render_table",
    "resilience_efficiency_sweep",
    "resilience_program",
]
