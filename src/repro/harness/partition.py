"""Shard partitioner: node → shard maps with fabric-derived lookahead.

The sharded engine (:mod:`repro.simtime.sharded`) is only as good as its
partition: shards must be **node-aligned** (intra-node shared-memory
traffic has α ≈ 0.45 µs — far below any safe window — so a node's ranks
must never straddle shards) and the conservative lookahead must be a true
lower bound on every cross-shard edge.  For a node-aligned partition that
bound is the *fabric's* α latency: every inter-node message pays at least
``α`` of wire latency before it can land on another shard, and the
checkpoint coordinator's control plane (latency 100 µs,
:class:`repro.mana.coordinator.ControlPlaneModel`) is slower still, so α
is the binding constraint.

:func:`plan_shards` block-partitions node ids — consecutive ids share a
rack (see :meth:`~repro.hardware.cluster.Cluster.rack_groups`), and block
placement puts consecutive ranks on consecutive nodes, so contiguous
blocks also maximize intra-shard locality for nearest-neighbour exchange
patterns.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.simtime.sharded import ShardPlan


def lookahead_for(interconnect: str) -> float:
    """Minimum virtual latency of a cross-shard (inter-node) edge on
    ``interconnect`` — the fabric's α."""
    from repro.net.fabrics import INTERCONNECTS

    try:
        cls = INTERCONNECTS[interconnect]
    except KeyError:
        raise ValueError(
            f"unknown interconnect {interconnect!r}; "
            f"known: {sorted(INTERCONNECTS)}"
        ) from None
    return float(cls.alpha)


def plan_shards(
    n_nodes: int,
    n_shards: int,
    interconnect: str = "tcp",
    control_shard: int = 0,
) -> ShardPlan:
    """Block-partition ``n_nodes`` node ids into ``n_shards`` shards.

    Nodes are split into contiguous, balanced blocks (sizes differ by at
    most one, earlier shards take the remainder — the same convention as
    :meth:`Cluster.place_ranks`).  ``n_shards`` is clamped to ``n_nodes``:
    asking for more shards than nodes silently degrades to one node per
    shard rather than erroring, so callers can pass a fixed ``shards=``
    knob across cluster sizes.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_nodes)
    base, extra = divmod(n_nodes, n_shards)
    shard_of_node: list[int] = []
    for shard in range(n_shards):
        shard_of_node.extend([shard] * (base + (1 if shard < extra else 0)))
    return ShardPlan(
        n_shards=n_shards,
        shard_of_node=tuple(shard_of_node),
        lookahead=lookahead_for(interconnect),
        control_shard=min(control_shard, n_shards - 1),
    )


def plan_for_cluster(cluster, n_shards: int,
                     control_shard: int = 0) -> ShardPlan:
    """A :class:`ShardPlan` for ``cluster``: node-aligned contiguous blocks
    with lookahead from the cluster's fabric.

    Node ids need not be dense (facility slice clusters renumber): the map
    covers ``max(node_id) + 1`` slots, with ids absent from the cluster
    assigned to the shard of the nearest preceding real node so the tuple
    stays total.
    """
    ids = sorted(n.node_id for n in cluster.nodes)
    if not ids:
        raise ValueError(f"cluster {cluster.name!r} has no nodes")
    block_plan = plan_shards(len(ids), n_shards, cluster.interconnect,
                             control_shard=control_shard)
    shard_of_node = [0] * (ids[-1] + 1)
    shard = 0
    for pos, node_id in enumerate(ids):
        shard = block_plan.shard_of_node[pos]
        shard_of_node[node_id] = shard
        # fill any id gap after this node with its shard
        nxt = ids[pos + 1] if pos + 1 < len(ids) else node_id + 1
        for gap in range(node_id + 1, nxt):
            shard_of_node[gap] = shard
    return ShardPlan(
        n_shards=block_plan.n_shards,
        shard_of_node=tuple(shard_of_node),
        lookahead=block_plan.lookahead,
        control_shard=block_plan.control_shard,
    )


def shard_of_ranks(plan: ShardPlan,
                   placement: Sequence[int]) -> tuple[int, ...]:
    """Rank → shard, through a rank → node placement."""
    return tuple(plan.shard_of_node[node] for node in placement)


def make_sharded_engine(
    cluster,
    shards: Optional[int],
    mode: str = "merged",
    start_time: float = 0.0,
):
    """Engine factory honouring a ``shards=`` knob: a plain
    :class:`~repro.simtime.engine.Engine` when ``shards`` is None or 1,
    else a :class:`~repro.simtime.sharded.ShardedEngine` over
    :func:`plan_for_cluster`."""
    from repro.simtime.engine import Engine
    from repro.simtime.sharded import ShardedEngine

    if shards is None or shards <= 1:
        return Engine(start_time)
    return ShardedEngine(plan_for_cluster(cluster, shards), mode=mode,
                         start_time=start_time)
