"""The live MPI session: a world of endpoints over a cluster's fabrics.

An :class:`MpiWorld` is what ``MPI_Init`` across all ranks creates: per-rank
:class:`MpiEndpoint` objects, a point-to-point engine with eager and
rendezvous protocols over the cluster's interconnect (and a shared-memory
transport for co-located ranks), and a collective engine with analytic work
models.  The world *is* the lower half — MANA discards it wholesale at
restart and builds a fresh one, possibly from a different implementation.

Concurrency model: everything is event-driven on the shared
:class:`~repro.simtime.Engine`.  An endpoint method is invoked synchronously
inside some rank's event and returns a :class:`~repro.simtime.Completion`
that resolves at the operation's modeled completion time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.hardware.cluster import Cluster
from repro.mpilib import collectives as coll_models
from repro.mpilib.comm import ANY_SOURCE, ANY_TAG, Communicator, Group, MpiError
from repro.mpilib.impls import MpiImplementation
from repro.mpilib.ops import ReduceOp
from repro.mpilib.topology import CartTopology, GraphTopology
from repro.net import Interconnect, make_interconnect
from repro.net.fabrics import ShmemTransport
from repro.simtime import Completion, Engine

#: Minimal separation used to enforce per-channel FIFO delivery.
_FIFO_EPS = 1e-12


@dataclass(frozen=True)
class Status:
    """MPI_Status subset: the envelope of a received message."""

    source: int
    tag: int
    size: int


@dataclass
class Request:
    """A nonblocking-operation handle (the lower half's real request)."""

    handle: int
    kind: str                      # "send" | "recv" | "coll"
    completion: Completion
    #: Set for recv requests so MANA can cancel/repost across checkpoints.
    envelope: Optional[tuple] = None
    #: recv requests: the pre-translation completion the matcher resolves.
    inner: Optional[Completion] = None

    @property
    def done(self) -> bool:
        """True once the underlying completion resolved."""
        return self.completion.done


@dataclass
class MsgRecord:
    """An application-level p2p message, as the matching layer sees it."""

    src: int                       # world rank of sender
    dst: int                       # world rank of receiver
    context_id: int
    tag: int
    data: Any
    size: int
    seq: int                       # per (src,dst) channel sequence


@dataclass
class _PostedRecv:
    context_id: int
    src: int                       # comm-local or ANY_SOURCE, stored as WORLD rank
    tag: int
    completion: Completion
    cancelled: bool = False

    def matches(self, msg: MsgRecord) -> bool:
        return (
            self.context_id == msg.context_id
            and (self.src == ANY_SOURCE or self.src == msg.src)
            and (self.tag == ANY_TAG or self.tag == msg.tag)
        )


@dataclass
class _PendingRendezvous:
    """Receiver-side record of an RTS whose data has not been pulled yet."""

    record: MsgRecord              # data=None until the payload arrives
    send_id: int


class _CollectiveContext:
    """One matched collective operation on one communicator."""

    def __init__(self, op: str, expected: int) -> None:
        self.op = op
        self.expected = expected
        self.root: Optional[int] = None
        self.reduce_op: Optional[ReduceOp] = None
        self.arrivals: dict[int, Any] = {}           # comm rank -> contribution
        self.completions: dict[int, Completion] = {}
        self.max_size = 0
        self.extra: dict[int, Any] = {}               # per-rank extra args

    @property
    def complete(self) -> bool:
        return len(self.arrivals) == self.expected


class HandleLedger:
    """Live lower-half handle accounting for one MPI session.

    Real MPI libraries leak if handles created at restart replay are never
    released; this ledger is the model's equivalent of the library's
    internal object table for the *persistent* opaque kinds (communicators
    and files — requests are transient, groups are upper-half values here).
    Creation is noted at every mint; release is idempotent, matching
    MPI_Comm_free / MPI_File_close semantics on an already-retired handle.
    """

    def __init__(self) -> None:
        self._live: dict[str, set[int]] = {"comm": set(), "file": set()}
        self.created: dict[str, int] = {"comm": 0, "file": 0}
        self.released: dict[str, int] = {"comm": 0, "file": 0}

    def note_created(self, kind: str, handle: int) -> None:
        """Record a freshly minted real handle."""
        self._live.setdefault(kind, set()).add(handle)
        self.created[kind] = self.created.get(kind, 0) + 1

    def note_released(self, kind: str, handle: int) -> None:
        """Record a release; releasing an unknown/retired handle is a no-op."""
        live = self._live.setdefault(kind, set())
        if handle in live:
            live.discard(handle)
            self.released[kind] = self.released.get(kind, 0) + 1

    def live(self, kind: str) -> int:
        """Number of currently live handles of one kind."""
        return len(self._live.get(kind, ()))

    def live_handles(self, kind: str) -> set[int]:
        """The live handle values themselves (for tests/inspection)."""
        return set(self._live.get(kind, ()))


class MpiWorld:
    """All shared state of one MPI session."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        impl: MpiImplementation,
        placement: list[int],
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.impl = impl
        self.placement = list(placement)      # world rank -> node id
        self.size = len(placement)
        self.fabric: Interconnect = make_interconnect(cluster.interconnect, engine)
        self.shmem: Interconnect = ShmemTransport(engine)
        self._context_ids = itertools.count(100)
        self._request_ids = itertools.count(1)
        self._channel_seq: dict[tuple[int, int], int] = {}
        self._channel_last_arrival: dict[tuple[int, int], float] = {}
        self._colls: dict[tuple[int, int], _CollectiveContext] = {}
        self._ctx_pickups: dict[tuple, int] = {}
        self._ctx_memo: dict[tuple, int] = {}
        self.finalized = False
        #: cumulative p2p statistics (per experiment reporting)
        self.p2p_messages = 0
        self.p2p_bytes = 0
        #: live real-handle accounting (the library's internal object table)
        self.ledger = HandleLedger()

        world_group = Group(tuple(range(self.size)))
        world_ctx = next(self._context_ids)
        self.endpoints = [
            MpiEndpoint(self, rank, Communicator(
                handle=self.new_comm_handle(), context_id=world_ctx,
                group=world_group, name="MPI_COMM_WORLD",
            ))
            for rank in range(self.size)
        ]

    # ------------------------------------------------------------- helpers

    def node_of(self, world_rank: int) -> int:
        """Node id hosting a world rank."""
        return self.placement[world_rank]

    def transport_between(self, src_rank: int, dst_rank: int) -> Interconnect:
        """Shared memory for co-located ranks, the fabric otherwise."""
        if self.node_of(src_rank) == self.node_of(dst_rank):
            return self.shmem
        return self.fabric

    def transport_for_group(self, group: Group) -> Interconnect:
        """Shared memory if the group is single-node, else the fabric."""
        nodes = {self.node_of(w) for w in group.world_ranks}
        return self.shmem if len(nodes) <= 1 else self.fabric

    def new_context_id(self) -> int:
        """Mint a fresh communicator context id."""
        return next(self._context_ids)

    def new_request_handle(self) -> int:
        """Mint a fresh real request handle."""
        return self.impl.new_handle("request")

    def new_comm_handle(self) -> int:
        """Mint a fresh real communicator handle, tracked by the ledger."""
        handle = self.impl.new_handle("comm")
        self.ledger.note_created("comm", handle)
        return handle

    def new_file_handle(self) -> int:
        """Mint a fresh real file handle, tracked by the ledger."""
        handle = self.impl.new_handle("file")
        self.ledger.note_created("file", handle)
        return handle

    def shared_context_id(
        self, op_kind: str, parent_ctx: int, comm_size: int, color_key: Any = None
    ) -> int:
        """Context id shared by every rank of one comm-management collective.

        Each participating rank calls this exactly once per operation
        instance, from its own completion callback.  Instances are identified
        by a pickup counter: the ``i``-th block of ``comm_size`` pickups of
        the same ``(op_kind, parent_ctx)`` belongs to instance ``i`` —
        collectives on one communicator are totally ordered, so blocks never
        interleave.  ``color_key`` separates the per-color communicators of
        MPI_Comm_split within one instance.
        """
        count_key = (op_kind, parent_ctx)
        count = self._ctx_pickups.get(count_key, 0)
        self._ctx_pickups[count_key] = count + 1
        instance = count // comm_size
        memo_key = (op_kind, parent_ctx, instance, color_key)
        ctx = self._ctx_memo.get(memo_key)
        if ctx is None:
            ctx = self._ctx_memo[memo_key] = self.new_context_id()
        return ctx

    # -------------------------------------------------------- wire helpers

    def wire_send(
        self, src: int, dst: int, size: int, payload: Any, meta: dict
    ) -> Completion:
        """FIFO-ordered transfer between two world ranks; resolves on arrival.

        Per-channel delivery is serialized at the link bandwidth: a message
        cannot finish arriving before its predecessor plus its own wire
        occupancy.  This models a point-to-point link as a shared serial
        resource (what makes flooding benchmarks saturate at β).
        """
        transport = self.transport_between(src, dst)
        chan = (src, dst)
        nb = self._channel_last_arrival.get(chan, 0.0) \
            + size / transport.beta + _FIFO_EPS
        _msg, done = transport.transmit(
            self.node_of(src), self.node_of(dst), size,
            payload=payload, meta=meta, not_before=nb,
        )
        self._channel_last_arrival[chan] = _msg.meta["arrival"]
        return done

    def next_channel_seq(self, src: int, dst: int) -> int:
        """Next per-(src,dst) message sequence number."""
        chan = (src, dst)
        seq = self._channel_seq.get(chan, 0)
        self._channel_seq[chan] = seq + 1
        return seq

    # ------------------------------------------------------- drain support

    @property
    def in_flight_p2p(self) -> int:
        """Wire-level messages currently in flight (both transports)."""
        return self.fabric.in_flight_count + self.shmem.in_flight_count

    # ------------------------------------------------------ collective core

    def collective_arrive(
        self,
        endpoint: "MpiEndpoint",
        comm: Communicator,
        op: str,
        contribution: Any,
        size: int,
        root: Optional[int] = None,
        reduce_op: Optional[ReduceOp] = None,
        extra: Any = None,
    ) -> Completion:
        """A rank enters a collective; resolves when the matched op finishes."""
        comm_rank = comm.rank_of_world(endpoint.rank)
        if comm_rank is None:
            raise MpiError(
                f"rank {endpoint.rank} called {op} on communicator "
                f"{comm.name!r} it does not belong to"
            )
        seq = endpoint.bump_coll_seq(comm.context_id)
        key = (comm.context_id, seq)
        ctx = self._colls.get(key)
        if ctx is None:
            ctx = _CollectiveContext(op, expected=comm.size)
            self._colls[key] = ctx
        if ctx.op != op:
            raise MpiError(
                f"collective mismatch on {comm.name!r}: rank {endpoint.rank} "
                f"called {op} but the matched operation is {ctx.op}"
            )
        if root is not None:
            if ctx.root is None:
                ctx.root = root
            elif ctx.root != root:
                raise MpiError(
                    f"{op} root mismatch on {comm.name!r}: {root} vs {ctx.root}"
                )
        if reduce_op is not None:
            if ctx.reduce_op is None:
                ctx.reduce_op = reduce_op
            elif ctx.reduce_op.name != reduce_op.name:
                raise MpiError(f"{op} reduce-op mismatch on {comm.name!r}")
        if comm_rank in ctx.arrivals:
            raise MpiError(f"rank {endpoint.rank} entered {op} twice (seq {seq})")
        ctx.arrivals[comm_rank] = contribution
        if extra is not None:
            ctx.extra[comm_rank] = extra
        ctx.max_size = max(ctx.max_size, size)
        done = Completion(self.engine, label=f"{op}@{comm.name}#{seq}r{comm_rank}")
        ctx.completions[comm_rank] = done
        if ctx.complete:
            self._finish_collective(comm, ctx, key)
        return done

    def _finish_collective(
        self, comm: Communicator, ctx: _CollectiveContext, key: tuple[int, int]
    ) -> None:
        net = self.transport_for_group(comm.group)
        duration = coll_models.collective_duration(
            ctx.op, ctx.max_size, comm.size, net, self.impl
        )
        m = self.engine.metrics
        m.counter("mpi.coll.ops", op=ctx.op).inc()
        m.counter("mpi.coll.bytes", op=ctx.op).inc(ctx.max_size)
        m.counter("mpi.coll.rounds", op=ctx.op).inc(
            coll_models.collective_rounds(ctx.op, comm.size)
        )
        results = _collective_results(ctx, comm)
        del self._colls[key]
        for comm_rank, completion in ctx.completions.items():
            completion.resolve_after(duration, results[comm_rank])

    @property
    def open_collectives(self) -> int:
        """Collectives some rank has entered but not all (protocol tests)."""
        return len(self._colls)


def _copy(value: Any) -> Any:
    """Value semantics at the MPI boundary (send buffers are caller-owned)."""
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


def _collective_results(ctx: _CollectiveContext, comm: Communicator) -> dict[int, Any]:
    """Compute each comm rank's result for a completed collective."""
    p = ctx.expected
    arrivals = ctx.arrivals
    op = ctx.op
    if op == "barrier":
        return {r: None for r in range(p)}
    if op == "bcast":
        data = _copy(arrivals[ctx.root])
        return {r: _copy(data) for r in range(p)}
    if op == "reduce":
        combined = ctx.reduce_op.reduce_all([arrivals[r] for r in range(p)])
        return {r: (combined if r == ctx.root else None) for r in range(p)}
    if op == "allreduce":
        combined = ctx.reduce_op.reduce_all([arrivals[r] for r in range(p)])
        return {r: _copy(combined) for r in range(p)}
    if op == "gather":
        gathered = [_copy(arrivals[r]) for r in range(p)]
        return {r: (gathered if r == ctx.root else None) for r in range(p)}
    if op == "allgather":
        gathered = [_copy(arrivals[r]) for r in range(p)]
        return {r: [_copy(v) for v in gathered] for r in range(p)}
    if op == "scatter":
        chunks = arrivals[ctx.root]
        if chunks is None or len(chunks) != p:
            raise MpiError(f"scatter root must supply {p} chunks")
        return {r: _copy(chunks[r]) for r in range(p)}
    if op == "alltoall":
        for r in range(p):
            if len(arrivals[r]) != p:
                raise MpiError(f"alltoall rank {r} must supply {p} chunks")
        return {r: [_copy(arrivals[s][r]) for s in range(p)] for r in range(p)}
    if op == "reduce_scatter":
        combined = ctx.reduce_op.reduce_all([arrivals[r] for r in range(p)])
        blocks = np.array_split(np.asarray(combined), p)
        return {r: blocks[r].copy() for r in range(p)}
    if op == "scan":
        out: dict[int, Any] = {}
        acc = None
        for r in range(p):
            acc = arrivals[r] if acc is None else ctx.reduce_op.combine(acc, arrivals[r])
            out[r] = _copy(np.asarray(acc))
        return out
    raise MpiError(f"unhandled collective {op!r}")


class MpiEndpoint:
    """One rank's window into the MPI session (its lower-half library)."""

    def __init__(self, world: MpiWorld, rank: int, comm_world: Communicator) -> None:
        self.world = world
        self.rank = rank
        self.comm_world = comm_world
        self.node_id = world.node_of(rank)
        self._posted: list[_PostedRecv] = []
        self._unexpected: list[MsgRecord] = []
        self._pending_rts: list[_PendingRendezvous] = []
        self._coll_seq: dict[int, int] = {}
        #: When set, *all* newly arriving messages are handed to this sink
        #: instead of the matching layer (MANA's drain mode).
        self.drain_sink: Optional[Callable[[MsgRecord], None]] = None
        #: statistics
        self.calls = 0
        # P2p conservation counters, memoized for the data path.  Each
        # delivered MsgRecord is counted exactly once (see _count_delivery).
        metrics = world.engine.metrics
        self._m_sent_msgs = metrics.counter("mpi.p2p.sent_messages", rank=rank)
        self._m_sent_bytes = metrics.counter("mpi.p2p.sent_bytes", rank=rank)
        self._m_recv_msgs = metrics.counter("mpi.p2p.recv_messages", rank=rank)
        self._m_recv_bytes = metrics.counter("mpi.p2p.recv_bytes", rank=rank)

    # ---------------------------------------------------------- accounting

    @property
    def impl(self) -> MpiImplementation:
        """The implementation this endpoint belongs to."""
        return self.world.impl

    @property
    def engine(self) -> Engine:
        """The shared simulation engine."""
        return self.world.engine

    def bump_coll_seq(self, context_id: int) -> int:
        """Advance this rank's collective sequence on a context."""
        seq = self._coll_seq.get(context_id, 0)
        self._coll_seq[context_id] = seq + 1
        return seq

    def _entry_cost(self, extra_cpu: float, payload_bytes: int = 0) -> float:
        """CPU time consumed inside the library before anything moves."""
        return (
            self.impl.call_overhead
            + extra_cpu
            + self.impl.copy_cost_per_byte * payload_bytes
        )

    # ----------------------------------------------------------------- p2p

    def isend(
        self,
        dest: int,
        data: Any,
        tag: int = 0,
        comm: Optional[Communicator] = None,
        size: Optional[int] = None,
        extra_cpu: float = 0.0,
    ) -> Request:
        """Nonblocking send.  ``size`` overrides the modeled wire size
        (defaults to the numpy payload's nbytes, or 64 for objects)."""
        comm = comm or self.comm_world
        comm.validate_rank(dest)
        self.calls += 1
        dst_world = comm.world_of_rank(dest)
        wire = int(size if size is not None else _default_size(data))
        seq = self.world.next_channel_seq(self.rank, dst_world)
        record = MsgRecord(
            src=self.rank, dst=dst_world, context_id=comm.context_id,
            tag=tag, data=_copy(data), size=wire, seq=seq,
        )
        self.world.p2p_messages += 1
        self.world.p2p_bytes += wire
        self._m_sent_msgs.inc()
        self._m_sent_bytes.inc(wire)
        done = Completion(self.engine, label=f"send{self.rank}->{dst_world}")
        req = Request(self.world.new_request_handle(), "send", done)
        cpu = self._entry_cost(extra_cpu, wire) + \
            self.world.transport_between(self.rank, dst_world).per_message_cpu

        if wire <= self.impl.eager_threshold:
            # Eager: inject at once; local completion after CPU cost.
            arrival = self.world.wire_send(
                self.rank, dst_world, wire, payload=record, meta={"kind": "eager"},
            )
            arrival.on_done(
                lambda msg: self.world.endpoints[dst_world]._on_data_arrival(record)
            )
            done.resolve_after(cpu)
        else:
            # Rendezvous: RTS now; data flows once the receiver clears it.
            send_id = self.world.new_request_handle()
            rts = MsgRecord(
                src=self.rank, dst=dst_world, context_id=comm.context_id,
                tag=tag, data=None, size=wire, seq=seq,
            )
            arrival = self.world.wire_send(
                self.rank, dst_world, 0, payload=rts,
                meta={"kind": "rts", "send_id": send_id},
            )
            self._rendezvous_out = getattr(self, "_rendezvous_out", {})
            self._rendezvous_out[send_id] = (record, done, cpu)
            arrival.on_done(
                lambda msg: self.world.endpoints[dst_world]._on_rts(rts, send_id)
            )
        return req

    def send(self, *args: Any, **kwargs: Any) -> Completion:
        """Blocking send: same as isend, caller awaits the completion."""
        return self.isend(*args, **kwargs).completion

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
        extra_cpu: float = 0.0,
    ) -> Request:
        """Nonblocking receive; completion resolves with (data, Status)."""
        comm = comm or self.comm_world
        comm.validate_rank(source, allow_any=True)
        self.calls += 1
        src_world = (
            ANY_SOURCE if source == ANY_SOURCE else comm.world_of_rank(source)
        )
        inner = Completion(self.engine, label=f"recv@{self.rank}")
        posted = _PostedRecv(
            context_id=comm.context_id, src=src_world, tag=tag, completion=inner,
        )
        # Applications see comm-local source ranks in the status, matching
        # MPI semantics; the matching layer works in world ranks throughout.
        done = Completion(self.engine, label=f"recv@{self.rank}:app")

        def translate(value: Any) -> None:
            data, status = value
            local = comm.rank_of_world(status.source)
            done.resolve((data, Status(local, status.tag, status.size)))

        inner.on_done(translate)
        req = Request(
            self.world.new_request_handle(), "recv", done,
            envelope=(comm.context_id, src_world, tag),
        )
        req.inner = inner
        cpu = self._entry_cost(extra_cpu)
        # Check the unexpected queue first (in arrival order).
        for i, msg in enumerate(self._unexpected):
            if posted.matches(msg):
                del self._unexpected[i]
                inner.resolve_after(
                    cpu + self.impl.copy_cost_per_byte * msg.size,
                    (msg.data, Status(msg.src, msg.tag, msg.size)),
                )
                return req
        # Check pending rendezvous RTS records.
        for i, pend in enumerate(self._pending_rts):
            if posted.matches(pend.record):
                del self._pending_rts[i]
                self._accept_rendezvous(pend, posted)
                return req
        self._posted.append(posted)
        return req

    def recv(self, *args: Any, **kwargs: Any) -> Completion:
        """Blocking receive: completion resolves with (data, Status)."""
        return self.irecv(*args, **kwargs).completion

    def cancel_recv(self, req: Request) -> None:
        """MPI_Cancel for a posted receive (used by MANA across checkpoints)."""
        if req.kind != "recv":
            raise MpiError("cancel_recv on a non-recv request")
        for i, posted in enumerate(self._posted):
            if posted.completion is req.inner:
                posted.cancelled = True
                del self._posted[i]
                req.inner.cancel()
                req.completion.cancel()
                return
        # Already matched or already cancelled: nothing to do.

    # ------------------------------------------------------ p2p internals

    def _count_delivery(self, record: MsgRecord) -> None:
        """Count one payload delivery (exactly once per MsgRecord)."""
        self._m_recv_msgs.inc()
        self._m_recv_bytes.inc(record.size)

    def _on_data_arrival(self, record: MsgRecord) -> None:
        """An eager payload (or rendezvous data) reached this rank's NIC."""
        self._count_delivery(record)
        if self.drain_sink is not None:
            self.drain_sink(record)
            return
        for i, posted in enumerate(self._posted):
            if posted.matches(record):
                del self._posted[i]
                posted.completion.resolve(
                    (record.data, Status(record.src, record.tag, record.size))
                )
                return
        self._unexpected.append(record)

    def _on_rts(self, rts: MsgRecord, send_id: int) -> None:
        """A rendezvous request-to-send arrived."""
        pend = _PendingRendezvous(record=rts, send_id=send_id)
        if self.drain_sink is not None:
            self._accept_rendezvous(pend, posted=None)
            return
        for i, posted in enumerate(self._posted):
            if posted.matches(rts):
                del self._posted[i]
                self._accept_rendezvous(pend, posted)
                return
        self._pending_rts.append(pend)

    def _accept_rendezvous(
        self, pend: _PendingRendezvous, posted: Optional[_PostedRecv]
    ) -> None:
        """Send CTS back; the sender then streams the payload."""
        sender = self.world.endpoints[pend.record.src]
        cts = self.world.wire_send(
            self.rank, pend.record.src, 0, payload=None,
            meta={"kind": "cts", "send_id": pend.send_id},
        )

        def on_cts(_msg: Any) -> None:
            record, send_done, cpu = sender._rendezvous_out.pop(pend.send_id)
            data_arrival = self.world.wire_send(
                record.src, record.dst, record.size, payload=record,
                meta={"kind": "data", "send_id": pend.send_id},
            )
            send_done.resolve_after(cpu)

            def on_data(_m: Any) -> None:
                if posted is None or posted.cancelled or self.drain_sink is not None:
                    # Drain mode (or the recv went away): sink or queue it.
                    if self.drain_sink is not None:
                        self._count_delivery(record)
                        self.drain_sink(record)
                    else:
                        self._on_data_arrival(record)
                else:
                    self._count_delivery(record)
                    posted.completion.resolve(
                        (record.data, Status(record.src, record.tag, record.size))
                    )

            data_arrival.on_done(on_data)

        cts.on_done(on_cts)

    # ---------------------------------------------------------- drain API

    def harvest_unexpected(self) -> list[MsgRecord]:
        """Pull everything out of the lower half's unexpected queue and
        auto-accept any pending rendezvous RTS (their data will flow to the
        drain sink).  Called by MANA at the start of draining."""
        out, self._unexpected = self._unexpected, []
        pending, self._pending_rts = self._pending_rts, []
        for pend in pending:
            self._accept_rendezvous(pend, posted=None)
        return out

    @property
    def unexpected_count(self) -> int:
        """Messages delivered but not yet matched (incl. parked RTS)."""
        return len(self._unexpected) + len(self._pending_rts)

    @property
    def posted_recv_count(self) -> int:
        """Receives posted to the matching layer and still open."""
        return len(self._posted)

    # ----------------------------------------------------------- waits

    def waitall(self, requests: list[Request]) -> Completion:
        """MPI_Waitall: resolves with the list of request values."""
        from repro.simtime.engine import all_of

        return all_of(
            self.engine, [r.completion for r in requests], label="waitall"
        )

    # ------------------------------------------------------- collectives

    def barrier(self, comm: Optional[Communicator] = None,
                extra_cpu: float = 0.0) -> Completion:
        """MPI_Barrier."""
        comm = comm or self.comm_world
        self.calls += 1
        return self.world.collective_arrive(self, comm, "barrier", None, 0)

    def ibarrier(self, comm: Optional[Communicator] = None) -> Request:
        """Nonblocking barrier (MPI-3); used by the §4.2 extension."""
        done = self.barrier(comm)
        return Request(self.world.new_request_handle(), "coll", done)

    def bcast(self, data: Any, root: int, comm: Optional[Communicator] = None,
              size: Optional[int] = None, extra_cpu: float = 0.0) -> Completion:
        """MPI_Bcast from ``root``."""
        comm = comm or self.comm_world
        comm.validate_rank(root)
        self.calls += 1
        me = comm.rank_of_world(self.rank)
        contribution = data if me == root else None
        wire = int(size if size is not None else _default_size(data))
        return self.world.collective_arrive(
            self, comm, "bcast", contribution, wire, root=root
        )

    def reduce(self, data: Any, op: ReduceOp, root: int,
               comm: Optional[Communicator] = None,
               size: Optional[int] = None, extra_cpu: float = 0.0) -> Completion:
        """MPI_Reduce to ``root``."""
        comm = comm or self.comm_world
        comm.validate_rank(root)
        self.calls += 1
        wire = int(size if size is not None else _default_size(data))
        return self.world.collective_arrive(
            self, comm, "reduce", data, wire, root=root, reduce_op=op
        )

    def allreduce(self, data: Any, op: ReduceOp,
                  comm: Optional[Communicator] = None,
                  size: Optional[int] = None, extra_cpu: float = 0.0) -> Completion:
        """MPI_Allreduce."""
        comm = comm or self.comm_world
        self.calls += 1
        wire = int(size if size is not None else _default_size(data))
        return self.world.collective_arrive(
            self, comm, "allreduce", data, wire, reduce_op=op
        )

    def gather(self, data: Any, root: int, comm: Optional[Communicator] = None,
               size: Optional[int] = None, extra_cpu: float = 0.0) -> Completion:
        """MPI_Gather to ``root``."""
        comm = comm or self.comm_world
        comm.validate_rank(root)
        self.calls += 1
        wire = int(size if size is not None else _default_size(data))
        return self.world.collective_arrive(
            self, comm, "gather", data, wire, root=root
        )

    def allgather(self, data: Any, comm: Optional[Communicator] = None,
                  size: Optional[int] = None, extra_cpu: float = 0.0) -> Completion:
        """MPI_Allgather."""
        comm = comm or self.comm_world
        self.calls += 1
        wire = int(size if size is not None else _default_size(data))
        return self.world.collective_arrive(self, comm, "allgather", data, wire)

    def scatter(self, chunks: Any, root: int, comm: Optional[Communicator] = None,
                size: Optional[int] = None, extra_cpu: float = 0.0) -> Completion:
        """MPI_Scatter from ``root``."""
        comm = comm or self.comm_world
        comm.validate_rank(root)
        self.calls += 1
        me = comm.rank_of_world(self.rank)
        contribution = chunks if me == root else None
        wire = int(size if size is not None else _default_size(chunks))
        return self.world.collective_arrive(
            self, comm, "scatter", contribution, wire, root=root
        )

    def alltoall(self, chunks: list, comm: Optional[Communicator] = None,
                 size: Optional[int] = None, extra_cpu: float = 0.0) -> Completion:
        """MPI_Alltoall."""
        comm = comm or self.comm_world
        self.calls += 1
        wire = int(size if size is not None else _default_size(chunks))
        return self.world.collective_arrive(self, comm, "alltoall", chunks, wire)

    def reduce_scatter(self, data: Any, op: ReduceOp,
                       comm: Optional[Communicator] = None,
                       size: Optional[int] = None) -> Completion:
        """MPI_Reduce_scatter (equal blocks)."""
        comm = comm or self.comm_world
        self.calls += 1
        wire = int(size if size is not None else _default_size(data))
        return self.world.collective_arrive(
            self, comm, "reduce_scatter", data, wire, reduce_op=op
        )

    def scan(self, data: Any, op: ReduceOp,
             comm: Optional[Communicator] = None,
             size: Optional[int] = None) -> Completion:
        """MPI_Scan (inclusive prefix reduction)."""
        comm = comm or self.comm_world
        self.calls += 1
        wire = int(size if size is not None else _default_size(data))
        return self.world.collective_arrive(
            self, comm, "scan", data, wire, reduce_op=op
        )

    # --------------------------------------------- communicator management

    def comm_free(self, comm: Communicator) -> None:
        """MPI_Comm_free: release this rank's real communicator handle.

        Local in this model (real MPI defers teardown until all pending
        communication completes; nothing here outlives the call).  The
        ledger release is idempotent, so replaying a free against a fresh
        lower half is safe even if the handle was already retired.
        """
        self.calls += 1
        self.world.ledger.note_released("comm", comm.handle)

    def comm_dup(self, comm: Optional[Communicator] = None) -> Completion:
        """Collective; resolves with this rank's new Communicator."""
        comm = comm or self.comm_world
        self.calls += 1
        done = self.world.collective_arrive(self, comm, "allgather", ("dup",), 8)
        out = Completion(self.engine, label="comm_dup")

        def finish(_vals: Any) -> None:
            ctx = self.world.shared_context_id("dup", comm.context_id, comm.size)
            out.resolve(Communicator(
                handle=self.world.new_comm_handle(), context_id=ctx,
                group=comm.group, name=f"{comm.name}.dup",
            ))

        done.on_done(finish)
        return out

    def comm_split(self, color: int, key: int,
                   comm: Optional[Communicator] = None) -> Completion:
        """Collective; resolves with the new Communicator (or None if
        color < 0, the MPI_UNDEFINED convention)."""
        comm = comm or self.comm_world
        self.calls += 1
        done = self.world.collective_arrive(
            self, comm, "allgather", (color, key, self.rank), 12
        )
        out = Completion(self.engine, label="comm_split")

        def finish(values: list) -> None:
            me = comm.rank_of_world(self.rank)
            my_color = values[me][0]
            if my_color < 0:
                out.resolve(None)
                return
            members = sorted(
                (k, w) for (c, k, w) in values if c == my_color
            )
            group = Group(tuple(w for _k, w in members))
            ctx = self.world.shared_context_id("split", comm.context_id, comm.size, my_color)
            out.resolve(Communicator(
                handle=self.world.new_comm_handle(), context_id=ctx,
                group=group, name=f"{comm.name}.split({my_color})",
            ))

        done.on_done(finish)
        return out

    def comm_create(self, group: Group,
                    comm: Optional[Communicator] = None) -> Completion:
        """Collective over ``comm``; resolves with the new Communicator for
        members of ``group``, None for non-members."""
        comm = comm or self.comm_world
        self.calls += 1
        done = self.world.collective_arrive(
            self, comm, "allgather", tuple(group.world_ranks), 8
        )
        out = Completion(self.engine, label="comm_create")

        def finish(values: list) -> None:
            if any(v != values[0] for v in values):
                out.cancel()
                raise MpiError("comm_create called with differing groups")
            ctx = self.world.shared_context_id("create", comm.context_id, comm.size)
            if group.rank_of(self.rank) is None:
                out.resolve(None)
            else:
                out.resolve(Communicator(
                    handle=self.world.new_comm_handle(), context_id=ctx,
                    group=group, name=f"{comm.name}.create",
                ))

        done.on_done(finish)
        return out

    def cart_create(self, dims: list[int], periods: list[bool],
                    comm: Optional[Communicator] = None,
                    reorder: bool = True) -> Completion:
        """Collective; resolves with a Communicator carrying a CartTopology."""
        comm = comm or self.comm_world
        self.calls += 1
        topo = CartTopology(tuple(dims), tuple(bool(p) for p in periods))
        if topo.size != comm.size:
            raise MpiError(
                f"cart_create dims {dims} need {topo.size} ranks, "
                f"communicator has {comm.size}"
            )
        done = self.world.collective_arrive(
            self, comm, "allgather", ("cart", tuple(dims)), 8
        )
        out = Completion(self.engine, label="cart_create")

        def finish(_values: Any) -> None:
            ctx = self.world.shared_context_id("topo", comm.context_id, comm.size)
            new = Communicator(
                handle=self.world.new_comm_handle(), context_id=ctx,
                group=comm.group, name=f"{comm.name}.cart",
            )
            new.topology = topo
            out.resolve(new)

        done.on_done(finish)
        return out

    def file_open(self, path: str, mode: str = "rw",
                  comm: Optional[Communicator] = None) -> Completion:
        """MPI_File_open: collective over ``comm``; resolves with this
        rank's :class:`~repro.mpilib.io.MpiFile` handle."""
        from repro.mpilib.io import MpiFile

        comm = comm or self.comm_world
        self.calls += 1
        done = self.world.collective_arrive(
            self, comm, "allgather", (path, mode), 8
        )
        out = Completion(self.engine, label="file_open")

        def finish(values: list) -> None:
            if any(v != values[0] for v in values):
                out.cancel()
                raise MpiError(
                    f"file_open mismatch across ranks: {sorted(set(values))}"
                )
            sim_file = self.world.cluster.fs.open(path)
            out.resolve(MpiFile(
                handle=self.world.new_file_handle(), file=sim_file,
                comm=comm, endpoint=self, mode=mode,
            ))

        done.on_done(finish)
        return out

    def graph_create(self, edges: list[tuple[int, ...]],
                     comm: Optional[Communicator] = None) -> Completion:
        """MPI_Graph_create (collective)."""
        comm = comm or self.comm_world
        self.calls += 1
        topo = GraphTopology(tuple(tuple(e) for e in edges))
        if topo.size != comm.size:
            raise MpiError("graph_create edge list must cover every rank")
        done = self.world.collective_arrive(
            self, comm, "allgather", ("graph",), 8
        )
        out = Completion(self.engine, label="graph_create")

        def finish(_values: Any) -> None:
            ctx = self.world.shared_context_id("topo", comm.context_id, comm.size)
            new = Communicator(
                handle=self.world.new_comm_handle(), context_id=ctx,
                group=comm.group, name=f"{comm.name}.graph",
            )
            new.topology = topo
            out.resolve(new)

        done.on_done(finish)
        return out


def _default_size(data: Any) -> int:
    """Modeled wire size when the caller does not override it."""
    if isinstance(data, np.ndarray):
        return data.nbytes
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    return 64


