"""MPI process topologies: Cartesian and graph.

Topologies are among the "persistent MPI opaque objects" MANA records and
replays (§2.2).  They also carry the paper's load-balancing point: on
restart, a *fresh* MPI library re-optimises rank-to-host bindings for any
topology declaration, because the topology is re-created through the normal
MPI calls on the new cluster layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mpilib.comm import MpiError


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """MPI_Dims_create: balanced factorization of ``nnodes`` into ``ndims``.

    Matches the standard's contract: dims are as close to each other as
    possible, in non-increasing order, and their product equals ``nnodes``.
    """
    if nnodes <= 0 or ndims <= 0:
        raise MpiError(f"dims_create({nnodes}, {ndims}): positive args required")
    dims = [1] * ndims
    remaining = nnodes
    # Greedy: repeatedly assign the largest prime factor to the smallest dim.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return sorted(dims, reverse=True)


@dataclass(frozen=True)
class CartTopology:
    """A Cartesian topology (MPI_Cart_create result)."""

    dims: tuple[int, ...]
    periods: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.periods):
            raise MpiError("dims and periods must have the same length")
        if any(d <= 0 for d in self.dims):
            raise MpiError(f"non-positive cart dimension in {self.dims}")

    @property
    def size(self) -> int:
        """Total ranks the Cartesian grid holds."""
        n = 1
        for d in self.dims:
            n *= d
        return n

    def coords(self, rank: int) -> tuple[int, ...]:
        """MPI_Cart_coords (row-major, as in MPICH)."""
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} outside cart of size {self.size}")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank; periodic dims wrap, aperiodic out-of-range raises."""
        if len(coords) != len(self.dims):
            raise MpiError("coordinate dimensionality mismatch")
        r = 0
        for c, d, p in zip(coords, self.dims, self.periods):
            if p:
                c %= d
            elif not 0 <= c < d:
                raise MpiError(f"coordinate {c} outside aperiodic dim of {d}")
            r = r * d + c
        return r

    def shift(self, rank: int, dim: int, disp: int) -> tuple[int | None, int | None]:
        """MPI_Cart_shift: (source, dest) ranks; None = MPI_PROC_NULL."""
        if not 0 <= dim < len(self.dims):
            raise MpiError(f"cart dim {dim} out of range")
        coords = list(self.coords(rank))

        def neighbour(offset: int) -> int | None:
            c = list(coords)
            c[dim] += offset
            if self.periods[dim]:
                c[dim] %= self.dims[dim]
                return self.rank(c)
            if 0 <= c[dim] < self.dims[dim]:
                return self.rank(c)
            return None

        return neighbour(-disp), neighbour(+disp)


@dataclass(frozen=True)
class GraphTopology:
    """A general graph topology (MPI_Graph_create result)."""

    #: adjacency as a tuple of neighbour tuples, index = comm rank.
    edges: tuple[tuple[int, ...], ...]

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.edges)

    def neighbors(self, rank: int) -> tuple[int, ...]:
        """Neighbour ranks of ``rank``."""
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} outside graph of size {self.size}")
        return self.edges[rank]
