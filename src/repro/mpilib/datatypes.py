"""MPI datatypes, basic and derived.

Datatypes matter to MANA for two reasons: they determine message sizes (and
therefore all timing), and *derived* datatypes are opaque handles created at
runtime that must be recorded and replayed across restart (§2.2: "A similar
checkpointing strategy also works for other opaque identifiers, such as, MPI
derived datatypes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype: a name, a byte extent, and how it was constructed.

    ``recipe`` is ``None`` for basic types; for derived types it is the
    constructor tuple MANA's record-replay log uses to rebuild the type in a
    fresh MPI library.
    """

    name: str
    extent: int
    np_dtype: Optional[str] = None
    recipe: Optional[tuple] = None

    @property
    def is_derived(self) -> bool:
        """True for constructed (non-basic) datatypes."""
        return self.recipe is not None

    def numpy(self) -> np.dtype:
        """The numpy dtype backing buffers of this type (basic types only)."""
        if self.np_dtype is None:
            raise TypeError(f"datatype {self.name} has no direct numpy mapping")
        return np.dtype(self.np_dtype)

    def nbytes(self, count: int) -> int:
        """Wire size of ``count`` elements."""
        return self.extent * count


# ----------------------------------------------------------------- basic

BYTE = Datatype("MPI_BYTE", 1, "u1")
CHAR = Datatype("MPI_CHAR", 1, "S1")
INT = Datatype("MPI_INT", 4, "i4")
LONG = Datatype("MPI_LONG", 8, "i8")
FLOAT = Datatype("MPI_FLOAT", 4, "f4")
DOUBLE = Datatype("MPI_DOUBLE", 8, "f8")

BASIC_TYPES = {t.name: t for t in (BYTE, CHAR, INT, LONG, FLOAT, DOUBLE)}


# ---------------------------------------------------------------- derived

def contiguous(count: int, base: Datatype) -> Datatype:
    """MPI_Type_contiguous."""
    if count <= 0:
        raise ValueError(f"contiguous count must be positive, got {count}")
    return Datatype(
        name=f"contig({count},{base.name})",
        extent=count * base.extent,
        recipe=("contiguous", count, base),
    )


def vector(count: int, blocklength: int, stride: int, base: Datatype) -> Datatype:
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` elements spaced
    ``stride`` elements apart.  The *extent* spans the full stride pattern but
    the wire size is only the blocks."""
    if count <= 0 or blocklength <= 0:
        raise ValueError("vector count and blocklength must be positive")
    if stride < blocklength:
        raise ValueError("vector stride must be >= blocklength")
    extent = ((count - 1) * stride + blocklength) * base.extent
    return Datatype(
        name=f"vector({count},{blocklength},{stride},{base.name})",
        extent=extent,
        recipe=("vector", count, blocklength, stride, base),
    )


def struct(fields: list[tuple[int, Datatype]]) -> Datatype:
    """MPI_Type_create_struct from (count, type) pairs, densely packed."""
    if not fields:
        raise ValueError("struct needs at least one field")
    extent = sum(c * t.extent for c, t in fields)
    name = "struct(" + ",".join(f"{c}x{t.name}" for c, t in fields) + ")"
    return Datatype(name=name, extent=extent, recipe=("struct", tuple(fields)))


def wire_size(dtype: Datatype, count: int) -> int:
    """Bytes actually transmitted for ``count`` elements of ``dtype``.

    For vector types, holes are not sent; everything else is dense.
    """
    if dtype.recipe and dtype.recipe[0] == "vector":
        _, vcount, blocklength, _stride, base = dtype.recipe
        return count * vcount * blocklength * base.extent
    return dtype.nbytes(count)


def rebuild(recipe: tuple) -> Datatype:
    """Re-execute a derived-type constructor (used by record-replay)."""
    kind = recipe[0]
    if kind == "contiguous":
        return contiguous(recipe[1], recipe[2])
    if kind == "vector":
        return vector(recipe[1], recipe[2], recipe[3], recipe[4])
    if kind == "struct":
        return struct(list(recipe[1]))
    raise ValueError(f"unknown datatype recipe {kind!r}")
