"""MPI-IO: collective file I/O over the simulated parallel filesystem.

Checkpointing an application that holds *open files* is a classic
transparent-checkpointing concern: DMTCP (MANA's substrate, §2.7) records
open file descriptors and re-opens them at restart, relying on the files
themselves living on shared storage.  This module supplies the pieces:

* :class:`SimFilesystem` — a shared parallel filesystem namespace holding
  :class:`SimFile` objects with real (sparse) contents;
* :class:`MpiFile` — one rank's handle, with explicit-offset operations in
  the MPI-IO style: ``write_at`` / ``read_at`` (independent) and
  ``write_at_all`` / ``read_at_all`` (collective, synchronizing, timed
  through the cluster's Lustre model).

File *handles* are opaque MPI objects: under MANA they are virtualized,
``MPI_File_open`` is recorded and replayed, and a restart re-opens the path
on the target cluster's filesystem — which must therefore be the same
shared filesystem object (cross-cluster migration assumes site-shared or
migrated storage, exactly as the paper's checkpoint images do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.filesystem import SimFile, SimFilesystem
from repro.mpilib.comm import Communicator, MpiError
from repro.simtime import Completion


class IoError(MpiError):
    """File-layer failures (missing file, closed handle, mode violations)."""


@dataclass
class MpiFile:
    """One rank's open-file handle (the real, lower-half object)."""

    handle: int
    file: SimFile
    comm: Communicator
    endpoint: "repro.mpilib.world.MpiEndpoint"
    mode: str = "rw"
    closed: bool = False

    # ------------------------------------------------------------ plumbing

    def _check(self, writing: bool) -> None:
        if self.closed:
            raise IoError(f"operation on closed file {self.file.path!r}")
        if writing and "w" not in self.mode:
            raise IoError(f"file {self.file.path!r} opened read-only")

    def _io_time(self, nbytes: int, concurrent: int = 1) -> float:
        storage = self.endpoint.world.cluster.storage
        share = storage.per_node_bandwidth / max(concurrent, 1)
        return storage.per_file_overhead * 0.1 + nbytes / share

    # ---------------------------------------------------------- independent

    def write_at(self, offset: int, data: bytes,
                 size: Optional[int] = None) -> Completion:
        """Independent write at an explicit offset."""
        self._check(writing=True)
        nbytes = size if size is not None else len(data)
        done = Completion(self.endpoint.engine, label=f"write@{offset}")

        def apply() -> None:
            self.file.write(offset, data)
            done.resolve(len(data))

        self.endpoint.engine.call_after(self._io_time(nbytes), apply)
        return done

    def read_at(self, offset: int, length: int,
                size: Optional[int] = None) -> Completion:
        """Independent read; resolves with the bytes."""
        self._check(writing=False)
        nbytes = size if size is not None else length
        done = Completion(self.endpoint.engine, label=f"read@{offset}")
        self.endpoint.engine.call_after(
            self._io_time(nbytes),
            lambda: done.resolve(self.file.read(offset, length)),
        )
        return done

    # ----------------------------------------------------------- collective

    def write_at_all(self, offset: int, data: bytes,
                     size: Optional[int] = None) -> Completion:
        """Collective write: all ranks of the communicator synchronize, then
        write concurrently (sharing the node's injection bandwidth)."""
        self._check(writing=True)
        nbytes = size if size is not None else len(data)
        sync = self.endpoint.barrier(self.comm)
        done = Completion(self.endpoint.engine, label=f"write_all@{offset}")

        def after_sync(_v) -> None:
            def apply() -> None:
                self.file.write(offset, data)
                done.resolve(len(data))

            self.endpoint.engine.call_after(
                self._io_time(nbytes, concurrent=self.comm.size), apply
            )

        sync.on_done(after_sync)
        return done

    def read_at_all(self, offset: int, length: int,
                    size: Optional[int] = None) -> Completion:
        """Collective read."""
        self._check(writing=False)
        nbytes = size if size is not None else length
        sync = self.endpoint.barrier(self.comm)
        done = Completion(self.endpoint.engine, label=f"read_all@{offset}")

        def after_sync(_v) -> None:
            self.endpoint.engine.call_after(
                self._io_time(nbytes, concurrent=self.comm.size),
                lambda: done.resolve(self.file.read(offset, length)),
            )

        sync.on_done(after_sync)
        return done

    def close(self) -> None:
        """MPI_File_close: further operations on this handle fail.

        Releases the real handle in the session's ledger exactly once —
        closing an already-closed handle stays a no-op.
        """
        if not self.closed:
            self.endpoint.world.ledger.note_released("file", self.handle)
        self.closed = True
