"""``mpiexec`` for the simulated world.

:func:`launch` performs what ``srun``/``mpiexec`` plus ``MPI_Init`` do:
places ranks onto nodes, instantiates a fresh implementation instance (fresh
handle counters, as a newly loaded library would have), builds the
:class:`~repro.mpilib.world.MpiWorld`, and charges the modeled startup time.
"""

from __future__ import annotations

from typing import Optional

import math

from repro.hardware.cluster import Cluster
from repro.mpilib.impls import MpiImplementation, get_implementation
from repro.mpilib.world import MpiWorld
from repro.simtime import Engine


def init_time(impl: MpiImplementation, n_ranks: int) -> float:
    """Modeled MPI_Init wall time: out-of-band wire-up, O(log p)."""
    return 0.05 + 0.01 * math.log2(max(n_ranks, 2))


def launch(
    engine: Engine,
    cluster: Cluster,
    n_ranks: int,
    ranks_per_node: Optional[int] = None,
    mpi: Optional[str] = None,
    placement: Optional[list[int]] = None,
) -> MpiWorld:
    """Start an MPI job of ``n_ranks`` on ``cluster``.

    ``mpi`` defaults to the cluster's recommended implementation (the
    ``module load`` default).  An explicit ``placement`` (rank -> node id)
    overrides the block placement — MANA's restart path uses this to model
    topology-preserving or topology-changing restarts.
    """
    impl = get_implementation(mpi if mpi is not None else cluster.default_mpi)
    if placement is None:
        placement = cluster.place_ranks(n_ranks, ranks_per_node)
    elif len(placement) != n_ranks:
        raise ValueError(
            f"placement covers {len(placement)} ranks, job has {n_ranks}"
        )
    world = MpiWorld(engine, cluster, impl, placement)
    # MPI_Init happens "now"; advance the session's start cost by scheduling
    # a zero-op event so `engine.now` reflects it once the job starts running.
    world.init_finished_at = engine.now + init_time(impl, n_ranks)
    return world
