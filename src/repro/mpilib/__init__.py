"""Simulated MPI: the standard subset MANA interposes on.

This package is the *lower half* substrate: several distinct MPI
implementations (:mod:`repro.mpilib.impls`) over the fabrics of
:mod:`repro.net`, speaking a common API (:class:`MpiEndpoint`).  Everything
here is deliberately implementation-flavoured — handle value spaces, eager
thresholds, collective algorithm choices and software overheads all differ
between implementations — because MANA's whole point is to hide exactly those
differences across a checkpoint/restart boundary.

The public entry point is :func:`repro.mpilib.launcher.launch`, the
``mpiexec`` equivalent.
"""

from repro.mpilib.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    Datatype,
    contiguous,
    struct,
    vector,
)
from repro.mpilib.ops import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, ReduceOp
from repro.mpilib.comm import ANY_SOURCE, ANY_TAG, Communicator, Group, MpiError
from repro.mpilib.impls import IMPLEMENTATIONS, MpiImplementation, get_implementation
from repro.mpilib.world import MpiEndpoint, MpiWorld, Request
from repro.mpilib.launcher import launch

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "BAND", "BOR", "BYTE", "CHAR", "DOUBLE", "FLOAT",
    "IMPLEMENTATIONS", "INT", "LAND", "LONG", "LOR", "MAX", "MAXLOC", "MIN",
    "MINLOC", "PROD", "SUM", "Communicator", "Datatype", "Group",
    "MpiEndpoint", "MpiError", "MpiImplementation", "MpiWorld", "ReduceOp",
    "Request", "contiguous", "get_implementation", "launch", "struct",
    "vector",
]
