"""The MPI implementations.

Four simulated implementations mirror the ones the paper touches: Cray MPICH
(Cori's recommended MPI), stock MPICH (including the custom-compiled *debug*
build of §3.5), Open MPI (the local cluster's recommendation), and Intel MPI
(Cori's alternative module).  They differ in everything MANA must abstract
over:

* **handle value spaces** — MPICH-family handles are tagged small integers,
  Open MPI handles look like heap pointers; a restart that switches
  implementations therefore *provably* changes every real handle;
* **eager/rendezvous thresholds** for point-to-point;
* **collective algorithm selection** (and thus timing);
* **per-call software overhead** (the debug MPICH build is deliberately
  slow);
* **lower-half memory footprint** (the Cray text segment is the paper's
  26 MB figure).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.memory.region import RegionKind
from repro.net.base import DriverRegionSpec

MB = 1 << 20


@dataclass
class CollectiveTuning:
    """Algorithm choices; see :mod:`repro.mpilib.collectives` for models."""

    #: allreduce: below this byte size use recursive doubling, above use ring.
    allreduce_ring_threshold: int = 64 << 10
    #: bcast: binomial below, scatter+allgather above.
    bcast_pipeline_threshold: int = 128 << 10
    #: gather/scatter trees: use binomial if True else linear.
    tree_gather: bool = True
    #: multiplicative fudge on all collective times (vendor tuning quality).
    tuning_factor: float = 1.0


@dataclass
class MpiImplementation:
    """Static description of one MPI implementation."""

    name: str
    version: str
    abi: str
    #: First handle value minted (each kind offsets from here).
    handle_base: int
    #: p2p eager→rendezvous switch (bytes).
    eager_threshold: int
    #: software cost of one MPI call entry (seconds).
    call_overhead: float
    #: extra per-byte copy cost inside the library (sec/byte).
    copy_cost_per_byte: float
    collective_tuning: CollectiveTuning = field(default_factory=CollectiveTuning)
    #: text segment size of the library + deps (lower-half accounting).
    text_size: int = 20 * MB
    #: static data segment of the library.
    data_size: int = 4 * MB
    #: is this a debug build (extra checking, used by the §3.5 experiment)?
    debug: bool = False

    def __post_init__(self) -> None:
        self._handle_counter = itertools.count(1)

    def new_handle(self, kind: str) -> int:
        """Mint a fresh real handle value in this implementation's style."""
        n = next(self._handle_counter)
        kind_tag = {"comm": 0x1, "group": 0x2, "datatype": 0x3, "request": 0x4,
                    "op": 0x5, "win": 0x6, "file": 0x7}.get(kind, 0xF)
        return self.handle_base + (kind_tag << 20) + n

    def lower_half_regions(self) -> list[DriverRegionSpec]:
        """Library-owned lower-half regions (the network adds its own)."""
        return [
            DriverRegionSpec(RegionKind.TEXT, f"{self.name}-text", self.text_size),
            DriverRegionSpec(RegionKind.DATA, f"{self.name}-data", self.data_size),
            DriverRegionSpec(RegionKind.TLS, f"{self.name}-tls", 64 << 10),
        ]


def _craympich() -> MpiImplementation:
    return MpiImplementation(
        name="craympich", version="3.0", abi="mpich",
        handle_base=0x4400_0000, eager_threshold=8 << 10,
        call_overhead=90e-9, copy_cost_per_byte=0.018e-9,
        collective_tuning=CollectiveTuning(tuning_factor=0.85),
        text_size=26 * MB,  # the paper's measured figure on Cori
    )


def _mpich() -> MpiImplementation:
    return MpiImplementation(
        name="mpich", version="3.3", abi="mpich",
        handle_base=0x4400_0000, eager_threshold=16 << 10,
        call_overhead=120e-9, copy_cost_per_byte=0.022e-9,
        collective_tuning=CollectiveTuning(tuning_factor=1.0),
        text_size=18 * MB,
    )


def _mpich_debug() -> MpiImplementation:
    # The custom-compiled debug MPICH of §3.5: same ABI, slower internals.
    return MpiImplementation(
        name="mpich-debug", version="3.3", abi="mpich",
        handle_base=0x4400_0000, eager_threshold=16 << 10,
        call_overhead=650e-9, copy_cost_per_byte=0.06e-9,
        collective_tuning=CollectiveTuning(tuning_factor=1.6),
        text_size=42 * MB, debug=True,
    )


def _openmpi() -> MpiImplementation:
    return MpiImplementation(
        name="openmpi", version="4.0", abi="ompi",
        handle_base=0x7F3A_0000, eager_threshold=12 << 10,
        call_overhead=110e-9, copy_cost_per_byte=0.020e-9,
        collective_tuning=CollectiveTuning(
            allreduce_ring_threshold=128 << 10, tree_gather=True,
            tuning_factor=0.95,
        ),
        text_size=22 * MB,
    )


def _intelmpi() -> MpiImplementation:
    return MpiImplementation(
        name="intelmpi", version="2019", abi="mpich",
        handle_base=0x2C00_0000, eager_threshold=32 << 10,
        call_overhead=100e-9, copy_cost_per_byte=0.019e-9,
        collective_tuning=CollectiveTuning(
            allreduce_ring_threshold=32 << 10, tuning_factor=0.9,
        ),
        text_size=30 * MB,
    )


_FACTORIES = {
    "craympich": _craympich,
    "mpich": _mpich,
    "mpich-debug": _mpich_debug,
    "openmpi": _openmpi,
    "intelmpi": _intelmpi,
}

IMPLEMENTATIONS = tuple(sorted(_FACTORIES))


def get_implementation(name: str) -> MpiImplementation:
    """A fresh instance of the named implementation (fresh handle counter,
    as a newly dlopen'ed library would have)."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown MPI implementation {name!r}; known: {list(IMPLEMENTATIONS)}"
        ) from None
