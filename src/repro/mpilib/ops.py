"""MPI reduction operations.

Reductions are implemented with vectorized numpy so that reduction results in
the simulation are the *actual* values an MPI job would compute — this is
what makes the cross-implementation restart exactness test meaningful.
Reductions combine in rank order (deterministic), matching the
commutative-and-associative contract MPI demands of built-in ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative, commutative element-wise reduction."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def combine(self, a, b):
        """Combine two contributions (arrays or scalars)."""
        return self.fn(np.asarray(a), np.asarray(b))

    def reduce_all(self, contributions: list) -> np.ndarray:
        """Fold contributions in rank order."""
        if not contributions:
            raise ValueError(f"{self.name}: nothing to reduce")
        acc = np.array(contributions[0], copy=True)
        for c in contributions[1:]:
            acc = self.combine(acc, c)
        return acc


def _maxloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """MAXLOC on (value, index) pairs packed as 2-column arrays."""
    a2, b2 = np.atleast_2d(a), np.atleast_2d(b)
    take_b = (b2[:, 0] > a2[:, 0]) | ((b2[:, 0] == a2[:, 0]) & (b2[:, 1] < a2[:, 1]))
    out = np.where(take_b[:, None], b2, a2)
    return out.reshape(np.asarray(a).shape)


def _minloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a2, b2 = np.atleast_2d(a), np.atleast_2d(b)
    take_b = (b2[:, 0] < a2[:, 0]) | ((b2[:, 0] == a2[:, 0]) & (b2[:, 1] < a2[:, 1]))
    out = np.where(take_b[:, None], b2, a2)
    return out.reshape(np.asarray(a).shape)


SUM = ReduceOp("MPI_SUM", np.add)
PROD = ReduceOp("MPI_PROD", np.multiply)
MAX = ReduceOp("MPI_MAX", np.maximum)
MIN = ReduceOp("MPI_MIN", np.minimum)
LAND = ReduceOp("MPI_LAND", lambda a, b: (a.astype(bool) & b.astype(bool)))
LOR = ReduceOp("MPI_LOR", lambda a, b: (a.astype(bool) | b.astype(bool)))
BAND = ReduceOp("MPI_BAND", np.bitwise_and)
BOR = ReduceOp("MPI_BOR", np.bitwise_or)
MAXLOC = ReduceOp("MPI_MAXLOC", _maxloc)
MINLOC = ReduceOp("MPI_MINLOC", _minloc)

ALL_OPS = {op.name: op for op in
           (SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR, MAXLOC, MINLOC)}
