"""Analytic timing models for collective algorithms.

Each model gives the duration of the *work* phase of a collective: the time
from the moment the last participant has entered until everyone leaves.  The
functional forms are the standard LogP-style costs of the algorithms MPICH
and Open MPI actually implement (binomial trees, recursive doubling, ring);
implementations pick between them via their :class:`CollectiveTuning`.

MANA never needs to see inside these calls — the whole point of the paper's
two-phase algorithm is that it doesn't have to — but the durations must be
realistic so that (a) OSU-style latency curves (Fig. 5) have the right shape
and (b) the two-phase protocol is exercised with ranks genuinely spending
time inside collectives.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpilib.impls import MpiImplementation
    from repro.net.base import Interconnect


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(max(p, 2))))


def barrier_time(p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    """Dissemination barrier: ceil(log2 p) zero-byte rounds."""
    rounds = _log2ceil(p)
    t = rounds * (net.alpha + net.per_message_cpu + impl.call_overhead)
    return t * impl.collective_tuning.tuning_factor


def bcast_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    """Broadcast work-phase duration."""
    tune = impl.collective_tuning
    if size <= tune.bcast_pipeline_threshold:
        # binomial tree: log p sequential hops of the full payload
        t = _log2ceil(p) * (net.alpha + size / net.beta)
    else:
        # scatter + allgather (van de Geijn): ~2x size/beta, latency log p
        t = 2 * (p - 1) / p * size / net.beta + 2 * _log2ceil(p) * net.alpha
    return (t + impl.copy_cost_per_byte * size) * tune.tuning_factor


def reduce_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    # binomial reduction tree with a per-byte combine cost
    """Reduce work-phase duration (binomial tree)."""
    gamma = 0.25e-9  # sec/byte arithmetic
    t = _log2ceil(p) * (net.alpha + size / net.beta + gamma * size)
    return t * impl.collective_tuning.tuning_factor


def allreduce_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    """Allreduce duration (recursive doubling or ring)."""
    tune = impl.collective_tuning
    gamma = 0.25e-9
    if size <= tune.allreduce_ring_threshold:
        # recursive doubling
        t = _log2ceil(p) * (net.alpha + size / net.beta + gamma * size)
    else:
        # ring reduce-scatter + allgather
        t = 2 * (p - 1) * net.alpha + 2 * (p - 1) / p * size / net.beta \
            + (p - 1) / p * gamma * size
    return t * tune.tuning_factor


def gather_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    """``size`` is the per-rank contribution; root receives (p-1) of them."""
    tune = impl.collective_tuning
    if tune.tree_gather:
        # binomial: log p rounds, doubling payload each round
        t = _log2ceil(p) * net.alpha + (p - 1) * size / net.beta
    else:
        t = (p - 1) * (net.alpha + size / net.beta)
    return t * tune.tuning_factor


def scatter_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    """Scatter duration (mirror of gather)."""
    return gather_time(size, p, net, impl)


def allgather_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    # ring allgather: p-1 steps of one block each
    """Allgather duration (ring)."""
    t = (p - 1) * (net.alpha + size / net.beta)
    return t * impl.collective_tuning.tuning_factor


def alltoall_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    # pairwise exchange: p-1 rounds of per-pair payloads
    """Alltoall duration (pairwise exchange)."""
    t = (p - 1) * (net.alpha + size / net.beta)
    return t * impl.collective_tuning.tuning_factor


def reduce_scatter_time(size: int, p: int, net: "Interconnect",
                        impl: "MpiImplementation") -> float:
    """Reduce-scatter duration."""
    gamma = 0.25e-9
    t = (p - 1) * net.alpha + (p - 1) / p * size / net.beta \
        + (p - 1) / p * gamma * size
    return t * impl.collective_tuning.tuning_factor


def scan_time(size: int, p: int, net: "Interconnect", impl: "MpiImplementation") -> float:
    """Scan duration."""
    gamma = 0.25e-9
    t = _log2ceil(p) * (net.alpha + size / net.beta + gamma * size)
    return t * impl.collective_tuning.tuning_factor


#: op name -> duration model(size, p, net, impl)
TIME_MODELS = {
    "barrier": lambda size, p, net, impl: barrier_time(p, net, impl),
    "bcast": bcast_time,
    "reduce": reduce_time,
    "allreduce": allreduce_time,
    "gather": gather_time,
    "scatter": scatter_time,
    "allgather": allgather_time,
    "alltoall": alltoall_time,
    "reduce_scatter": reduce_scatter_time,
    "scan": scan_time,
}


def collective_duration(op: str, size: int, p: int, net: "Interconnect",
                        impl: "MpiImplementation") -> float:
    """Duration of the work phase of collective ``op``."""
    try:
        model = TIME_MODELS[op]
    except KeyError:
        raise ValueError(f"no timing model for collective {op!r}") from None
    return model(size, p, net, impl)


#: collectives whose nominal algorithm runs in ceil(log2 p) rounds
_LOG_ROUND_OPS = frozenset(
    {"barrier", "bcast", "reduce", "allreduce", "scan", "gather", "scatter"}
)
#: collectives whose nominal algorithm runs in p-1 rounds (ring/pairwise)
_LINEAR_ROUND_OPS = frozenset({"allgather", "alltoall", "reduce_scatter"})


def collective_rounds(op: str, p: int) -> int:
    """Nominal communication-round count of collective ``op`` over ``p`` ranks.

    Tree/doubling algorithms take ``ceil(log2 p)`` rounds; ring and pairwise
    algorithms take ``p - 1``.  This is the round count of the *canonical*
    algorithm family (what ``mpi.coll.rounds`` reports), independent of the
    size-dependent variant selection inside the duration models.
    """
    if op in _LOG_ROUND_OPS:
        return _log2ceil(p)
    if op in _LINEAR_ROUND_OPS:
        return max(1, p - 1)
    raise ValueError(f"no round model for collective {op!r}")
