"""Exporters: Chrome trace-event JSON and flat metrics/timeline tables.

:func:`chrome_trace` turns one or more tracers into the JSON-object flavour
of the Chrome ``trace_event`` format, loadable in ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_.  Each tracer (i.e. each engine — a
restart runs on a fresh engine) becomes one *process* track; ranks become
threads within it, with the coordinator on thread 0.  Virtual seconds map
to trace microseconds.

:func:`validate_chrome_trace` is the schema gate used by the test suite and
the CI smoke job: it checks the structural rules viewers actually rely on
(phase codes, required fields, per-thread B/E nesting).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from repro.obs.events import InstantEvent, SpanEvent
from repro.obs.metrics import MetricsRegistry

#: rank -> trace thread id (thread 0 is the coordinator / unranked actors)
_COORD_TID = 0

#: phase codes this exporter emits / the validator accepts
_PHASES = {"B", "E", "X", "i", "M", "C"}


def _tid(rank: Optional[int]) -> int:
    return _COORD_TID if rank is None else rank + 1


def _us(t: float) -> float:
    return t * 1e6


def _event_args(ev) -> dict:
    args = dict(ev.args)
    if ev.node is not None:
        args["node"] = ev.node
    return args


def chrome_trace(tracers: Iterable, label: str = "repro") -> dict:
    """Render tracers as a Chrome trace-event JSON object.

    ``tracers`` may contain :class:`~repro.obs.tracer.Tracer` objects (a
    :class:`~repro.obs.tracer.NullTracer` contributes nothing).  Dropped
    event counts are surfaced in ``otherData`` rather than lost silently.
    """
    events: list[dict] = []
    dropped = 0
    for pid, tracer in enumerate(tracers, start=1):
        dropped += getattr(tracer, "dropped", 0)
        events.append({
            "ph": "M", "pid": pid, "tid": _COORD_TID,
            "name": "process_name", "args": {"name": f"{label}/engine-{pid}"},
        })
        ranks = sorted({e.rank for e in tracer.events if e.rank is not None})
        events.append({
            "ph": "M", "pid": pid, "tid": _COORD_TID,
            "name": "thread_name", "args": {"name": "coordinator"},
        })
        for r in ranks:
            events.append({
                "ph": "M", "pid": pid, "tid": _tid(r),
                "name": "thread_name", "args": {"name": f"rank {r}"},
            })
        for ev in tracer.events:
            base = {
                "name": ev.name, "cat": ev.cat, "pid": pid,
                "tid": _tid(ev.rank), "ts": _us(ev.ts),
                "args": _event_args(ev),
            }
            if isinstance(ev, SpanEvent):
                if ev.closed:
                    events.append({**base, "ph": "X", "dur": _us(ev.dur)})
                else:
                    events.append({**base, "ph": "B"})
            elif isinstance(ev, InstantEvent):
                events.append({**base, "ph": "i", "s": "t"})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "droppedEvents": dropped},
    }


def write_chrome_trace(path: str, tracers: Iterable, label: str = "repro") -> dict:
    """Validate and write a Chrome trace for ``tracers``; returns the doc."""
    doc = chrome_trace(tracers, label=label)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


# ------------------------------------------------------------- validation

class TraceValidationError(ValueError):
    """The exported document violates the trace-event schema."""

    def __init__(self, errors: list[str]) -> None:
        super().__init__(
            f"{len(errors)} trace-event schema violation(s): "
            + "; ".join(errors[:5])
        )
        self.errors = errors


def validate_chrome_trace(doc: Any) -> None:
    """Check ``doc`` against the trace-event schema; raises on violation.

    Enforces the JSON-object container shape, per-event required fields by
    phase code, and balanced ``B``/``E`` nesting per (pid, tid) thread.
    """
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise TraceValidationError(
            ["document must be an object with a traceEvents list"]
        )
    depth: dict[tuple, int] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                errors.append(f"{where}: missing integer {field}")
        if ph != "M":
            if not isinstance(ev.get("ts"), (int, float)):
                errors.append(f"{where}: missing numeric ts")
            if "cat" in ev and not isinstance(ev["cat"], str):
                errors.append(f"{where}: cat must be a string")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: args must be an object")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0")
        if ph == "i" and ev.get("s") not in ("g", "p", "t"):
            errors.append(f"{where}: instant scope must be g/p/t")
        if ph in ("B", "E"):
            key = (ev.get("pid"), ev.get("tid"))
            d = depth.get(key, 0) + (1 if ph == "B" else -1)
            if d < 0:
                errors.append(f"{where}: E without matching B on {key}")
                d = 0
            depth[key] = d
    if errors:
        raise TraceValidationError(errors)


# --------------------------------------------------------- shard streams

def merge_trace_streams(streams) -> list:
    """Merge per-shard ``(time, label)`` dispatch streams into one
    virtual-time ordering of ``(time, shard, label)`` tuples.

    Each input stream is already time-ordered (a shard fires its own
    events in order); ties across shards break on shard id, so the merged
    ordering is deterministic no matter how the shards interleaved in wall
    clock.  Used by :mod:`repro.simtime.sharded` to present one coherent
    timeline from parallel execution.
    """
    import heapq as _heapq

    def keyed(stream, shard):
        return ((t, shard, label) for (t, label) in stream)

    return list(_heapq.merge(
        *(keyed(stream, shard) for shard, stream in enumerate(streams))
    ))


# ----------------------------------------------------------------- tables

def metrics_table(metrics: MetricsRegistry, title: str = "metrics"):
    """The registry as a flat :class:`~repro.harness.results.Table`."""
    from repro.harness.results import Table

    out = Table(title, ["metric", "labels", "kind", "value"])
    for name, labels, kind, value in metrics.rows():
        out.add(name, labels, kind, value)
    return out


def rank_timeline(tracers: Iterable, title: str = "per-rank timeline"):
    """Per-rank, per-category span totals as a Table.

    One row per (rank, category): how many spans that rank recorded in the
    category and how much virtual time they covered.  The coordinator
    appears as rank ``coord``.  Open spans count as zero duration.
    """
    from repro.harness.results import Table

    agg: dict[tuple, list] = {}
    for tracer in tracers:
        for ev in tracer.events:
            if not isinstance(ev, SpanEvent):
                continue
            key = ("coord" if ev.rank is None else ev.rank, ev.cat)
            row = agg.setdefault(key, [0, 0.0])
            row[0] += 1
            row[1] += ev.dur or 0.0
    out = Table(title, ["rank", "category", "spans", "busy_s"])
    for (rank, cat), (count, busy) in sorted(
            agg.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])):
        out.add(rank, cat, count, busy)
    return out
