"""The tracer: records typed events in virtual time, or does nothing.

Two implementations share one duck-typed surface:

* :class:`Tracer` — the real recorder.  It is bound to an engine-like
  object (anything with a ``now`` property) and appends
  :class:`~repro.obs.events.SpanEvent` / :class:`~repro.obs.events.
  InstantEvent` records to an in-memory list, subject to a category filter
  and a hard event cap (overflow is *counted*, never silent).
* :class:`NullTracer` — the default.  Every method is a no-op and
  ``enabled`` is False, so instrumentation sites guard their argument
  construction with ``if tracer.enabled:`` and cost nothing when tracing
  is off.  The A/B determinism test (``tests/obs/test_ab_determinism.py``)
  verifies that enabling tracing changes neither application output nor the
  virtual clock.

Module-level switches (:func:`enable_tracing` / :func:`disable_tracing`)
let a whole process opt in: every :class:`~repro.simtime.Engine` created
while tracing is enabled gets a fresh :class:`Tracer` (collected through
:func:`live_tracers` / :func:`drain_tracers`), which is how ``repro trace``
captures engines created deep inside an example script.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.events import Category, InstantEvent, SpanEvent

#: default hard cap on recorded events per tracer (overflow is counted)
MAX_EVENTS = 2_000_000


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACER`) is attached to engines
    when tracing is off, so the per-call cost of instrumentation is one
    attribute load and a predictable branch.
    """

    #: instrumentation sites branch on this before building event arguments
    enabled = False
    #: empty event list, so generic consumers need no isinstance checks
    events: tuple = ()
    #: no events are ever dropped because none are recorded
    dropped = 0

    def begin(self, name, cat="default", rank=None, node=None, **args):
        """No-op; returns None (accepted by :meth:`end`)."""
        return None

    def end(self, span, **args) -> None:
        """No-op."""

    def instant(self, name, cat="default", rank=None, node=None, **args) -> None:
        """No-op."""

    def dispatch(self, ts, label) -> None:
        """No-op."""


#: the shared disabled tracer
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans and instants against an engine's virtual clock.

    Parameters
    ----------
    engine:
        Anything with a ``now`` property in virtual seconds.
    categories:
        If given, only events whose ``cat`` is in this set are recorded
        (:data:`Category.DEFAULT` excludes the high-volume engine dispatch
        stream).  ``None`` records everything.
    max_events:
        Hard cap; events beyond it increment :attr:`dropped` instead of
        being recorded, and the exporter surfaces the drop count.
    """

    enabled = True

    def __init__(
        self,
        engine,
        categories: Optional[Iterable[str]] = None,
        max_events: int = MAX_EVENTS,
    ) -> None:
        #: the engine whose virtual clock timestamps every event
        self.engine = engine
        self.categories = None if categories is None else frozenset(categories)
        self.max_events = max_events
        self.events: list = []
        self.dropped = 0

    # ------------------------------------------------------------ recording

    def _admit(self, cat: str) -> bool:
        if self.categories is not None and cat not in self.categories:
            return False
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        return True

    def begin(self, name: str, cat: str = "default", rank: Optional[int] = None,
              node: Optional[int] = None, **args) -> Optional[SpanEvent]:
        """Open a span at the current virtual time; close it with :meth:`end`."""
        if not self._admit(cat):
            return None
        span = SpanEvent(name=name, cat=cat, ts=self.engine.now,
                         rank=rank, node=node, args=dict(args))
        self.events.append(span)
        return span

    def end(self, span: Optional[SpanEvent], **args) -> None:
        """Close ``span`` at the current virtual time (None is accepted)."""
        if span is None or span.dur is not None:
            return
        span.dur = self.engine.now - span.ts
        if args:
            span.args.update(args)

    def instant(self, name: str, cat: str = "default", rank: Optional[int] = None,
                node: Optional[int] = None, **args) -> None:
        """Record a point event at the current virtual time."""
        if not self._admit(cat):
            return
        self.events.append(InstantEvent(
            name=name, cat=cat, ts=self.engine.now,
            rank=rank, node=node, args=dict(args),
        ))

    def dispatch(self, ts: float, label: str) -> None:
        """Record one engine event dispatch (zero-duration span, cat engine)."""
        if not self._admit(Category.ENGINE):
            return
        self.events.append(SpanEvent(
            name=label or "<event>", cat=Category.ENGINE, ts=ts, dur=0.0,
        ))

    # -------------------------------------------------------------- queries

    def spans(self, cat: Optional[str] = None,
              name: Optional[str] = None) -> list[SpanEvent]:
        """Recorded spans, optionally filtered by category and/or name."""
        return [e for e in self.events
                if isinstance(e, SpanEvent)
                and (cat is None or e.cat == cat)
                and (name is None or e.name == name)]

    def instants(self, cat: Optional[str] = None,
                 name: Optional[str] = None) -> list[InstantEvent]:
        """Recorded instants, optionally filtered by category and/or name."""
        return [e for e in self.events
                if isinstance(e, InstantEvent)
                and (cat is None or e.cat == cat)
                and (name is None or e.name == name)]


# ----------------------------------------------------- process-wide switch

_config: dict = {"enabled": False, "categories": None}
_live: list[Tracer] = []


def enable_tracing(categories: Optional[Iterable[str]] = None) -> None:
    """Trace every engine created from now on (until :func:`disable_tracing`).

    ``categories`` limits what those tracers record; ``None`` records
    everything including engine dispatch events.
    """
    _config["enabled"] = True
    _config["categories"] = None if categories is None else frozenset(categories)


def disable_tracing() -> None:
    """Stop attaching tracers to newly created engines."""
    _config["enabled"] = False
    _config["categories"] = None


def tracing_enabled() -> bool:
    """True while the process-wide tracing switch is on."""
    return bool(_config["enabled"])


def attach(engine):
    """Tracer for a newly built engine (called by ``Engine.__init__``).

    Returns :data:`NULL_TRACER` unless process-wide tracing is enabled, in
    which case a fresh :class:`Tracer` is minted and remembered so
    :func:`drain_tracers` can collect it after the traced workload ran.
    """
    if not _config["enabled"]:
        return NULL_TRACER
    tracer = Tracer(engine, categories=_config["categories"])
    _live.append(tracer)
    return tracer


def live_tracers() -> list[Tracer]:
    """Tracers attached since the last :func:`drain_tracers` call."""
    return list(_live)


def drain_tracers() -> list[Tracer]:
    """Remove and return every collected tracer (used by ``repro trace``)."""
    out, _live[:] = list(_live), []
    return out
