"""Typed trace events: the vocabulary of the observability layer.

Every event carries the *virtual* timestamp at which it was recorded plus
the identity of the actor that produced it (rank, node) and a category
(:class:`Category`).  Spans additionally carry a duration once closed;
a span whose producer died mid-flight (e.g. a checkpoint aborted by a rank
failure) legitimately stays open (``dur is None``) and is exported as an
unmatched Chrome ``B`` event.

The taxonomy is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class Category:
    """Well-known event categories (free-form strings are also allowed).

    * ``engine`` — per-event dispatch in the simulation kernel (very high
      volume; off by default in the CLI);
    * ``protocol`` — coordinator-side Algorithm-2 phases and control-plane
      messages;
    * ``checkpoint`` — rank-side checkpoint work (drain, image write);
    * ``mpi`` — interposed MPI calls as the application sees them;
    * ``fault`` — injected faults;
    * ``facility`` — multi-tenant scheduler decisions (submit, start,
      preempt, requeue, crash-requeue).
    """

    ENGINE = "engine"
    PROTOCOL = "protocol"
    CHECKPOINT = "checkpoint"
    MPI = "mpi"
    FAULT = "fault"
    FACILITY = "facility"

    #: every category above (the default recording set)
    ALL = frozenset({ENGINE, PROTOCOL, CHECKPOINT, MPI, FAULT, FACILITY})
    #: ALL minus the high-volume engine dispatch events
    DEFAULT = frozenset({PROTOCOL, CHECKPOINT, MPI, FAULT, FACILITY})


@dataclass
class SpanEvent:
    """An interval of virtual time: begun at ``ts``, closed at ``ts + dur``.

    ``dur`` is ``None`` while the span is open; :meth:`repro.obs.tracer.
    Tracer.end` fills it in.  ``rank`` is ``None`` for actors that are not a
    rank (the coordinator, the engine itself).
    """

    name: str
    cat: str
    ts: float
    dur: Optional[float] = None
    rank: Optional[int] = None
    node: Optional[int] = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        """True once the span has been ended."""
        return self.dur is not None

    @property
    def end_ts(self) -> Optional[float]:
        """Closing timestamp, or None while the span is open."""
        return None if self.dur is None else self.ts + self.dur


@dataclass
class InstantEvent:
    """A point event at virtual time ``ts`` (a fault firing, an abort)."""

    name: str
    cat: str
    ts: float
    rank: Optional[int] = None
    node: Optional[int] = None
    args: dict[str, Any] = field(default_factory=dict)
