"""Counters, gauges and virtual-time histograms behind a registry.

One :class:`MetricsRegistry` lives on every :class:`~repro.simtime.Engine`
(metrics, unlike tracing, are always on — they are plain dictionary
increments and never schedule events, so they cannot perturb a run).
Instruments are identified by ``(name, sorted labels)``; repeated lookups
return the same instrument, and hot paths memoize the instrument object
itself.

Naming conventions (see ``docs/observability.md``): dotted lower-case
names, ``<layer>.<subject>.<unit-ish>`` — e.g. ``mpi.p2p.sent_bytes``,
``mana.fs_switches``, ``ckpt.drain_seconds``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: default histogram buckets for virtual durations, log-spaced (seconds)
TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0,
)


@dataclass
class Counter:
    """A monotonically increasing count (messages, bytes, switches)."""

    name: str
    labels: tuple
    value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time value that can move both ways (queue depth, rounds)."""

    name: str
    labels: tuple
    value: float = 0

    def set(self, v: float) -> None:
        """Install the current value."""
        self.value = v


@dataclass
class Histogram:
    """A fixed-bucket histogram of virtual durations.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts overflow.  Tracks sum and count so means are exact.
    """

    name: str
    labels: tuple
    buckets: tuple = TIME_BUCKETS
    counts: list = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, v: float) -> None:
        """Record one observation."""
        for i, edge in enumerate(self.buckets):
            if v <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += v
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """All instruments of one engine, keyed by name + labels."""

    def __init__(self) -> None:
        self._instruments: dict[tuple, Any] = {}

    def _get(self, kind, name: str, labels: dict, **kw):
        key = (kind.__name__, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = self._instruments[key] = kind(
                name=name, labels=_label_key(labels), **kw
            )
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``name`` + ``labels`` (created on first use)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on first use)."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: tuple = TIME_BUCKETS,
                  **labels) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on first use)."""
        return self._get(Histogram, name, labels, buckets=buckets)

    # --------------------------------------------------------------- queries

    def value(self, name: str, **labels) -> Optional[float]:
        """Current value of a counter/gauge, or None if never touched."""
        for kind in ("Counter", "Gauge"):
            inst = self._instruments.get((kind, name, _label_key(labels)))
            if inst is not None:
                return inst.value
        return None

    def total(self, name: str) -> float:
        """Sum of a counter's value across every label combination."""
        return sum(
            inst.value for (kind, n, _l), inst in self._instruments.items()
            if kind == "Counter" and n == name
        )

    def rows(self) -> list[tuple]:
        """Flat ``(name, labels-str, kind, value)`` rows, sorted by name.

        Histograms contribute their count and mean.  This is the table
        ``repro.obs.export.metrics_table`` renders and ``harness/report.py``
        consumes.
        """
        out = []
        for (kind, name, labels), inst in sorted(self._instruments.items(),
                                                 key=lambda kv: kv[0][1:]):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            if kind == "Histogram":
                out.append((name, label_str, "histogram",
                            f"n={inst.count} mean={inst.mean:.6g}"))
            else:
                out.append((name, label_str, kind.lower(), inst.value))
        return out

    def merged(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry with this one's counters plus ``other``'s.

        Only counters are merged (gauges and histograms are engine-local
        state); used to aggregate across a checkpoint/restart cycle whose
        attempts run on separate engines.
        """
        out = MetricsRegistry()
        for reg in (self, other):
            for (kind, name, labels), inst in reg._instruments.items():
                if kind == "Counter":
                    out._get(Counter, name, dict(labels)).inc(inst.value)
        return out
