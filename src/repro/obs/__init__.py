"""repro.obs — structured tracing and metrics for the simulated stack.

Public surface: the event vocabulary (:mod:`repro.obs.events`), the tracer
and its process-wide switch (:mod:`repro.obs.tracer`), the metrics
instruments (:mod:`repro.obs.metrics`) and the Chrome-trace / table
exporters (:mod:`repro.obs.export`).  See ``docs/observability.md``.
"""

from repro.obs.events import Category, InstantEvent, SpanEvent
from repro.obs.export import (
    TraceValidationError,
    chrome_trace,
    merge_trace_streams,
    metrics_table,
    rank_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    MAX_EVENTS,
    NULL_TRACER,
    NullTracer,
    Tracer,
    attach,
    disable_tracing,
    drain_tracers,
    enable_tracing,
    live_tracers,
    tracing_enabled,
)

__all__ = [
    "Category",
    "InstantEvent",
    "SpanEvent",
    "TraceValidationError",
    "chrome_trace",
    "merge_trace_streams",
    "metrics_table",
    "rank_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
    "TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MAX_EVENTS",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "attach",
    "disable_tracing",
    "drain_tracers",
    "enable_tracing",
    "live_tracers",
    "tracing_enabled",
]
