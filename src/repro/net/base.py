"""Interconnect base: timed delivery with in-flight tracking."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.memory.region import RegionKind
from repro.simtime import Completion, Engine


class NetworkError(RuntimeError):
    """Raised on protocol misuse (delivering unknown messages, etc.)."""


@dataclass(frozen=True)
class DriverRegionSpec:
    """A lower-half memory region the network driver maps at init time."""

    kind: RegionKind
    name: str
    size: int


@dataclass
class Message:
    """One wire-level transfer between two endpoints."""

    msg_id: int
    src_node: int
    dst_node: int
    size: int
    payload: Any = None
    meta: dict = field(default_factory=dict)


class Interconnect:
    """Base class for simulated fabrics.

    Subclasses define the α/β timing constants and the driver memory
    footprint; this base implements timed, order-preserving delivery with an
    in-flight registry used by the drain invariant.
    """

    #: Registry name ("aries", "infiniband", "tcp").
    name: str = "abstract"
    #: One-way wire latency (seconds).
    alpha: float = 10e-6
    #: Link bandwidth (bytes/second).
    beta: float = 1e9
    #: Host CPU cost to inject one message (seconds) — paid by the sender.
    per_message_cpu: float = 300e-9

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._ids = itertools.count(1)
        self._in_flight: dict[int, Message] = {}
        #: cumulative statistics for experiment reporting
        self.messages_sent = 0
        self.bytes_sent = 0
        #: nominal (α, β) saved while a transient degradation is active
        self._nominal: Optional[tuple[float, float]] = None

    # ------------------------------------------------------------- timing

    def transfer_time(self, size: int) -> float:
        """Pure wire time for ``size`` bytes (no host CPU cost)."""
        return self.alpha + size / self.beta

    # ----------------------------------------------------- fault injection

    @property
    def degraded(self) -> bool:
        """True while a transient network degradation is active."""
        return self._nominal is not None

    def degrade(self, alpha_mult: float = 1.0, beta_mult: float = 1.0) -> None:
        """Enter a degraded window: multiply α (latency) by ``alpha_mult``
        and β (bandwidth) by ``beta_mult``.  Used by the fault injector to
        model congestion or a failed-over link; :meth:`restore` undoes it.
        Messages already in flight keep their original arrival times."""
        if alpha_mult <= 0 or beta_mult <= 0:
            raise NetworkError("degradation multipliers must be positive")
        if self._nominal is None:
            self._nominal = (self.alpha, self.beta)
        self.alpha = self._nominal[0] * alpha_mult
        self.beta = self._nominal[1] * beta_mult

    def restore(self) -> None:
        """Leave the degraded window: back to the nominal α/β (idempotent)."""
        if self._nominal is not None:
            self.alpha, self.beta = self._nominal
            self._nominal = None

    # ------------------------------------------------------------ transfer

    def transmit(
        self,
        src_node: int,
        dst_node: int,
        size: int,
        payload: Any = None,
        meta: Optional[dict] = None,
        not_before: float = 0.0,
    ) -> tuple[Message, Completion]:
        """Inject a message; the completion resolves (with the Message) on
        arrival at the destination NIC.

        ``not_before`` lower-bounds the arrival time; the p2p engine uses it
        to enforce per-channel FIFO delivery (MPI's non-overtaking rule)
        even when a small message is injected behind a large one.
        """
        msg = Message(
            msg_id=next(self._ids), src_node=src_node, dst_node=dst_node,
            size=size, payload=payload, meta=dict(meta or {}),
        )
        self._in_flight[msg.msg_id] = msg
        self.messages_sent += 1
        self.bytes_sent += size
        done = Completion(self.engine, label=f"{self.name}:msg{msg.msg_id}")

        def deliver() -> None:
            self._in_flight.pop(msg.msg_id, None)
            done.resolve(msg)

        arrival = max(self.engine.now + self.transfer_time(size), not_before)
        msg.meta["arrival"] = arrival
        # On a sharded engine, delivery belongs to the *destination* node's
        # shard and the edge originates at the *source* node's shard (not
        # the dispatching event's — completions resolve synchronously across
        # ranks).  α lower-bounds inter-node transfer time, so cross-shard
        # edges always carry the plan's lookahead; shared-memory transport
        # is intra-node and hence always shard-local under a node-aligned
        # plan.  Plain engines ignore the tags.
        plan = self.engine.plan
        if plan is None:
            shard = shard_from = None
        else:
            shard = plan.shard_of_node[dst_node]
            shard_from = plan.shard_of_node[src_node]
        self.engine.call_at(arrival, deliver, shard=shard,
                            shard_from=shard_from,
                            label=f"{self.name}:deliver{msg.msg_id}")
        return msg, done

    # ------------------------------------------------------------ draining

    @property
    def in_flight_count(self) -> int:
        """Number of messages currently on the wire (drain invariant)."""
        return len(self._in_flight)

    @property
    def in_flight_bytes(self) -> int:
        """Bytes currently on the wire."""
        return sum(m.size for m in self._in_flight.values())

    # --------------------------------------------------------- lower half

    def driver_regions(self, n_nodes: int, ranks_per_node: int) -> list[DriverRegionSpec]:
        """Lower-half regions this fabric's driver maps at MPI init.

        Subclasses override; the base maps nothing.
        """
        return []
