"""Concrete fabrics: Aries, InfiniBand, TCP, and intra-node shared memory.

Timing constants are calibrated to public OSU-microbenchmark measurements on
the corresponding hardware generation (Cori Aries, FDR InfiniBand, 10 GbE)
— see EXPERIMENTS.md.  Absolute values matter less than their ordering and
the α-dominated small-message / β-dominated large-message regimes, which is
what the paper's Figures 4 and 5 exercise.
"""

from __future__ import annotations

from repro.memory.region import RegionKind
from repro.net.base import DriverRegionSpec, Interconnect
from repro.simtime import Engine

MB = 1 << 20


class AriesInterconnect(Interconnect):
    """Cray Aries (GNI/uGNI), as on Cori."""

    name = "aries"
    alpha = 1.3e-6
    beta = 10.0e9
    per_message_cpu = 250e-9

    def driver_regions(self, n_nodes: int, ranks_per_node: int) -> list[DriverRegionSpec]:
        # The paper (§3.2.2) observes driver shared-memory regions growing
        # from 2 MB at 2 nodes to 40 MB at 64 nodes — ~0.625 MB per node.
        """Lower-half memory this fabric's driver maps at MPI init."""
        shmem = max(2 * MB, int(0.625 * MB * n_nodes))
        return [
            DriverRegionSpec(RegionKind.DRIVER, "aries-gni-mmio", 4 * MB),
            DriverRegionSpec(RegionKind.SHMEM, "aries-shmem", shmem),
            DriverRegionSpec(RegionKind.PINNED, "aries-pinned-dma", 8 * MB),
        ]


class InfinibandInterconnect(Interconnect):
    """Mellanox FDR InfiniBand (verbs), as on the authors' local cluster."""

    name = "infiniband"
    alpha = 1.8e-6
    beta = 6.0e9
    per_message_cpu = 300e-9

    def driver_regions(self, n_nodes: int, ranks_per_node: int) -> list[DriverRegionSpec]:
        """Lower-half memory this fabric's driver maps at MPI init."""
        shmem = max(2 * MB, int(0.5 * MB * n_nodes))
        return [
            DriverRegionSpec(RegionKind.DRIVER, "ib-uverbs-mmio", 2 * MB),
            DriverRegionSpec(RegionKind.SHMEM, "ib-shmem", shmem),
            DriverRegionSpec(RegionKind.PINNED, "ib-pinned-qp", 16 * MB),
        ]


class OmniPathInterconnect(Interconnect):
    """Intel Omni-Path (PSM2) — the fabric DMTCP only partially supported
    (§1's third case study); here it is just another lower half."""

    name = "omnipath"
    alpha = 1.1e-6
    beta = 12.5e9
    per_message_cpu = 280e-9

    def driver_regions(self, n_nodes: int, ranks_per_node: int) -> list[DriverRegionSpec]:
        """Lower-half memory this fabric's driver maps at MPI init."""
        shmem = max(2 * MB, int(0.55 * MB * n_nodes))
        return [
            DriverRegionSpec(RegionKind.DRIVER, "opa-psm2-mmio", 3 * MB),
            DriverRegionSpec(RegionKind.SHMEM, "opa-shmem", shmem),
            DriverRegionSpec(RegionKind.PINNED, "opa-pinned-eager", 12 * MB),
        ]


class TcpInterconnect(Interconnect):
    """Plain TCP over 10 GbE — the lowest common denominator fabric."""

    name = "tcp"
    alpha = 28e-6
    beta = 1.2e9
    per_message_cpu = 1.8e-6

    def driver_regions(self, n_nodes: int, ranks_per_node: int) -> list[DriverRegionSpec]:
        """Lower-half memory this fabric's driver maps at MPI init."""
        return [DriverRegionSpec(RegionKind.ANON, "tcp-socket-buffers", 4 * MB)]


class ShmemTransport(Interconnect):
    """Intra-node shared-memory transport (System V / CMA style).

    Every MPI implementation uses this for ranks that share a node —
    which is exactly the BLCR failure mode the paper recounts (BLCR could
    not checkpoint SysV shared memory).  Under MANA the segments live in
    the lower half and are simply discarded.
    """

    name = "shmem"
    alpha = 0.45e-6
    beta = 20.0e9
    per_message_cpu = 120e-9

    def driver_regions(self, n_nodes: int, ranks_per_node: int) -> list[DriverRegionSpec]:
        # One SysV segment shared by the ranks of a node, sized per peer.
        """Lower-half memory this fabric's driver maps at MPI init."""
        return [
            DriverRegionSpec(
                RegionKind.SHMEM, "sysv-shm-intranode",
                max(1, ranks_per_node) * MB,
            )
        ]


INTERCONNECTS = {
    cls.name: cls
    for cls in (AriesInterconnect, InfinibandInterconnect, OmniPathInterconnect, TcpInterconnect, ShmemTransport)
}


def make_interconnect(name: str, engine: Engine) -> Interconnect:
    """Instantiate a fabric by registry name."""
    try:
        cls = INTERCONNECTS[name]
    except KeyError:
        raise ValueError(
            f"unknown interconnect {name!r}; known: {sorted(INTERCONNECTS)}"
        ) from None
    return cls(engine)
