"""Simulated network interconnects.

MANA's second agnosticism axis: the paper's pitch is one code base over *n*
network libraries (Aries GNI, InfiniBand verbs, TCP sockets, intra-node
shared memory, …).  For the claim to be exercised rather than stubbed, each
interconnect here differs in

* latency/bandwidth (α/β) characteristics,
* per-message host CPU cost,
* and — crucially for checkpointing — the set of *lower-half memory regions*
  its driver maps into the process (pinned DMA buffers, driver mmaps, and
  shared-memory segments that grow with node count, §3.2.2).

In-flight traffic is tracked per interconnect instance so that MANA's drain
phase can assert the network is empty before a checkpoint is cut.
"""

from repro.net.base import DriverRegionSpec, Interconnect, Message, NetworkError
from repro.net.fabrics import (
    INTERCONNECTS,
    AriesInterconnect,
    InfinibandInterconnect,
    ShmemTransport,
    TcpInterconnect,
    make_interconnect,
)

__all__ = [
    "AriesInterconnect",
    "DriverRegionSpec",
    "INTERCONNECTS",
    "InfinibandInterconnect",
    "Interconnect",
    "Message",
    "NetworkError",
    "ShmemTransport",
    "TcpInterconnect",
    "make_interconnect",
]
