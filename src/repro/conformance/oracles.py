"""Equivalence oracles: what "restarted correctly" means, executably.

Two oracles decide every cell of the conformance matrix:

* **golden state** — the restarted run's final application state must be
  *bit-identical* to the uncheckpointed golden run's: every rank's state
  dict is folded into a canonical SHA-256 fingerprint (numpy payloads
  hashed by dtype/shape/raw bytes, floats by their IEEE-754 encoding, so
  "close enough" never passes);
* **message conservation** — over the merged metrics of the source engine
  and the restarted engine, every p2p byte and message sent is received
  exactly once (``mpi.p2p.sent_* == mpi.p2p.recv_*``), and — because the
  wire counters model application payloads, not transport framing — the
  totals equal the golden run's.  Lost drains, duplicated re-sends and
  journal replay bugs all land here.
"""

from __future__ import annotations

import enum
import hashlib
import struct
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry


# ------------------------------------------------------- state fingerprint

def _encode(obj: Any, h) -> None:
    """Fold one value into the hash with an unambiguous type tag."""
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        data = str(obj).encode()
        h.update(b"I" + len(data).to_bytes(4, "little") + data)
    elif isinstance(obj, float):
        h.update(b"F" + struct.pack("<d", obj))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"S" + len(data).to_bytes(4, "little") + data)
    elif isinstance(obj, (bytes, bytearray)):
        h.update(b"Y" + len(obj).to_bytes(8, "little") + bytes(obj))
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        _encode(arr.dtype.str, h)
        _encode(arr.shape, h)
        h.update(b"A" + arr.tobytes())
    elif isinstance(obj, np.generic):
        _encode(np.asarray(obj), h)
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" if isinstance(obj, list) else b"T")
        h.update(len(obj).to_bytes(8, "little"))
        for item in obj:
            _encode(item, h)
    elif isinstance(obj, dict):
        h.update(b"D" + len(obj).to_bytes(8, "little"))
        for key in sorted(obj, key=repr):
            _encode(repr(key), h)
            _encode(obj[key], h)
    elif isinstance(obj, enum.Enum):
        _encode(f"{type(obj).__name__}.{obj.name}", h)
    elif is_dataclass(obj) and not isinstance(obj, type):
        _encode(type(obj).__name__, h)
        for f in fields(obj):
            _encode(f.name, h)
            _encode(getattr(obj, f.name), h)
    else:
        # last resort: a stable repr (sets, simple value objects)
        _encode(f"{type(obj).__name__}:{obj!r}", h)


def state_fingerprint(states: Iterable[Any]) -> str:
    """Canonical SHA-256 over every rank's final application state.

    Keys starting with ``_`` are interpreter scratch (in-flight call
    buffers), not application state, and are excluded; everything the app
    can observe — including every float bit — is hashed.
    """
    h = hashlib.sha256()
    for state in states:
        public = {
            k: v for k, v in dict(state).items()
            if not (isinstance(k, str) and k.startswith("_"))
        }
        _encode(public, h)
    return h.hexdigest()


# ------------------------------------------------------------ conservation

@dataclass(frozen=True)
class ConservationTotals:
    """The four p2p wire counters the conservation oracle balances."""

    sent_messages: float
    recv_messages: float
    sent_bytes: float
    recv_bytes: float

    def as_dict(self) -> dict:
        """Plain-dict form for reports and JSON."""
        return {
            "sent_messages": self.sent_messages,
            "recv_messages": self.recv_messages,
            "sent_bytes": self.sent_bytes,
            "recv_bytes": self.recv_bytes,
        }

    def __add__(self, other: "ConservationTotals") -> "ConservationTotals":
        """Field-wise sum — merges the source and restarted engines' totals
        exactly like :meth:`MetricsRegistry.merged` merges counters."""
        return ConservationTotals(
            sent_messages=self.sent_messages + other.sent_messages,
            recv_messages=self.recv_messages + other.recv_messages,
            sent_bytes=self.sent_bytes + other.sent_bytes,
            recv_bytes=self.recv_bytes + other.recv_bytes,
        )


def conservation_totals(metrics: MetricsRegistry) -> ConservationTotals:
    """Read the p2p conservation counters off one (or a merged) registry."""
    return ConservationTotals(
        sent_messages=metrics.total("mpi.p2p.sent_messages"),
        recv_messages=metrics.total("mpi.p2p.recv_messages"),
        sent_bytes=metrics.total("mpi.p2p.sent_bytes"),
        recv_bytes=metrics.total("mpi.p2p.recv_bytes"),
    )


# -------------------------------------------------------------- divergence

@dataclass(frozen=True)
class Divergence:
    """One oracle violation: which check failed, and the two sides."""

    oracle: str          # "golden_state" | "conservation" | "golden_traffic"
    expected: Any
    actual: Any
    detail: str = ""

    def __str__(self) -> str:
        msg = f"{self.oracle}: expected {self.expected!r}, got {self.actual!r}"
        return f"{msg} ({self.detail})" if self.detail else msg


def check_golden_state(golden_fingerprint: str,
                       states: Iterable[Any]) -> Optional[Divergence]:
    """Golden-state oracle: bit-identical final state, or a Divergence."""
    actual = state_fingerprint(states)
    if actual != golden_fingerprint:
        return Divergence(
            oracle="golden_state",
            expected=golden_fingerprint, actual=actual,
            detail="restarted final state differs from the uncheckpointed run",
        )
    return None


def check_replay_consistency(ckpt) -> list[Divergence]:
    """Replay-deadlock oracle over a checkpoint set's record-replay logs.

    Unpickles every rank's restore payload and runs the cross-rank
    collective-consistency check (:func:`repro.mana.log_compaction.
    check_collective_consistency`) over the logs as they would replay at
    restart.  A compaction pass that cancelled a collective create on some
    ranks but not their peers — the failure mode the per-rank cancellation
    rules are designed to make impossible — lands here as a ``replay_
    consistency`` divergence instead of a wedged restart.
    """
    from repro.mana.log_compaction import check_collective_consistency
    from repro.mana.record_replay import RecordLog

    logs = []
    for image in ckpt.images:
        log = RecordLog()
        log.restore(image.restore_state()["log"])
        logs.append(log.entries)
    stuck = check_collective_consistency(logs, ckpt.n_ranks)
    return [
        Divergence(
            oracle="replay_consistency", expected="all ranks drain",
            actual=line, detail="record-replay logs would deadlock at restart",
        )
        for line in stuck
    ]


def check_replay_accounting(ckpt, report) -> list[Divergence]:
    """Replay-count oracle: the restart must replay *exactly* the log.

    ``report.replayed_entries`` (summed over ranks) must equal the total
    number of entries stored in the images — a wedged pump, a skipped
    entry, or a double replay all break the equality.  When the logs were
    compacted and retain no free entries (every dead pair cancelled), the
    same number is the job's live created-handle count: the O(live
    handles) restart the compactor promises.
    """
    from repro.mana.log_compaction import FREE_OPS
    from repro.mana.record_replay import RecordLog

    entries = frees = 0
    compacted = True
    for image in ckpt.images:
        log = RecordLog()
        log.restore(image.restore_state()["log"])
        entries += len(log.entries)
        frees += sum(1 for e in log.entries if e.op in FREE_OPS)
        compacted = compacted and log.compaction_stats is not None
    out = []
    if report.replayed_entries != entries:
        out.append(Divergence(
            oracle="replay_accounting", expected=entries,
            actual=report.replayed_entries,
            detail="restart replayed a different entry count than the "
                   "images hold",
        ))
    if compacted and frees == 0 and report.replayed_entries != entries:
        # redundant with the check above today, but states the contract:
        # a fully-cancelled compacted log replays one entry per live handle
        out.append(Divergence(
            oracle="replay_accounting", expected=entries,
            actual=report.replayed_entries,
            detail="compacted restart did not run in O(live handles)",
        ))
    return out


def check_handle_ledger(job) -> list[Divergence]:
    """Lower-half leak oracle: the world's handle ledger must agree with
    the per-rank virtual tables.

    Every live ledger entry (a real communicator or file handle the lower
    half still holds) must be reachable from some rank's bound virtual
    handles — a replay path that rebuilds a handle without releasing the
    old one, or frees the upper-half binding without the lower-half
    resource, diverges here.
    """
    from repro.mana.virtualize import HandleKind

    out = []
    for kind, hkind in (("comm", HandleKind.COMM), ("file", HandleKind.FILE)):
        if hkind is HandleKind.FILE:
            # closed files can stay bound in the table (vid reuse is
            # illegal); count only the ones still open
            bound = sum(
                sum(1 for f in rt.table.bound(hkind).values() if not f.closed)
                for rt in job.runtimes
            )
        else:
            bound = sum(len(rt.table.bound(hkind)) for rt in job.runtimes)
        live = job.world.ledger.live(kind)
        if live != bound:
            out.append(Divergence(
                oracle="handle_ledger", expected=bound, actual=live,
                detail=f"lower-half {kind} handles leaked or double-freed "
                       f"(ledger vs virtual tables)",
            ))
    return out


def check_conservation(
    merged: ConservationTotals,
    golden: Optional[ConservationTotals] = None,
) -> list[Divergence]:
    """Conservation oracle over a cycle's merged counters.

    Always checks sent == received (messages and bytes).  When the golden
    run's totals are supplied, also checks the cycle moved exactly the
    golden traffic — a drained message delivered twice balances sent/recv
    on its own but still shows up against the golden totals.
    """
    out = []
    if merged.sent_messages != merged.recv_messages:
        out.append(Divergence(
            "conservation", merged.sent_messages, merged.recv_messages,
            "p2p messages lost or duplicated across the cycle",
        ))
    if merged.sent_bytes != merged.recv_bytes:
        out.append(Divergence(
            "conservation", merged.sent_bytes, merged.recv_bytes,
            "p2p bytes lost or duplicated across the cycle",
        ))
    if golden is not None:
        if (merged.sent_messages, merged.sent_bytes) != (
                golden.sent_messages, golden.sent_bytes):
            out.append(Divergence(
                "golden_traffic",
                (golden.sent_messages, golden.sent_bytes),
                (merged.sent_messages, merged.sent_bytes),
                "cycle sent different wire traffic than the golden run",
            ))
    return out
